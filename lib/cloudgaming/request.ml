open Dbp_num

type t = {
  request_id : int;
  game : Game.t;
  start : Rat.t;
  stop : Rat.t;
}

let make ~request_id ~game ~start ~stop =
  if Rat.(stop <= start) then invalid_arg "Request.make: stop <= start";
  { request_id; game; start; stop }

let session_length t = Rat.sub t.stop t.start

let to_item t =
  Dbp_core.Item.make ~id:t.request_id ~size:t.game.Game.gpu_share
    ~arrival:t.start ~departure:t.stop

let to_vec_item ?dims t =
  {
    Dbp_core.Vec_instance.id = t.request_id;
    size = Game.resources ?dims t.game;
    arrival = t.start;
    departure = t.stop;
  }

let pp fmt t =
  Format.fprintf fmt "req#%d %a [%a, %a]" t.request_id Game.pp t.game Rat.pp
    t.start Rat.pp t.stop
