(** Synthetic cloud-gaming request traces (the substitute for
    production OnLive/Gaikai logs — see DESIGN.md).

    Requests draw a game from the catalog by popularity, arrive by a
    Poisson process whose rate can follow a diurnal (sinusoidal)
    profile, and hold their game server for a log-normal session
    length clamped into [[min_session, max_session]] — the clamp pins
    the trace's [mu], the parameter the paper's bounds depend on. *)

open Dbp_num

type profile = {
  catalog : Game.catalog;
  duration_hours : float;  (** Trace horizon. *)
  base_rate : float;  (** Mean arrivals per hour. *)
  diurnal_amplitude : float;
      (** 0 = flat Poisson; 0.8 = rate swings +-80% over a 24 h
          cycle. *)
  session_log_mean : float;
  session_log_stddev : float;
  min_session : float;  (** Hours; the [Delta] clamp. *)
  max_session : float;  (** Hours; [mu = max_session / min_session]. *)
  quantum : int;
}

val default_profile : profile
(** 24 h, 60 req/h base rate, 50% diurnal swing, log-normal sessions
    of ~1 h median clamped to [[1/4 h, 8 h]] ([mu = 32]). *)

val generate : ?seed:int64 -> profile -> Request.t list
(** Requests sorted by start time, ids [0..n-1]. *)

val to_instance : Request.t list -> Dbp_core.Instance.t
(** GPU capacity 1 per server; request GPU shares as item sizes.
    @raise Invalid_argument on an empty trace. *)

val to_vec_instance : ?dims:int -> Request.t list -> Dbp_core.Vec_instance.t
(** The DVBP instance: unit capacity in each of the first [dims]
    (default {!Game.resource_dims}) resources, each request's
    {!Game.resources} profile as its demand vector.  At [~dims:1] this
    is exactly [Vec_instance.of_scalar (to_instance requests)].
    @raise Invalid_argument on an empty trace. *)

val mu_of : Request.t list -> Rat.t
