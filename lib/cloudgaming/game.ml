open Dbp_num

type t = {
  title : string;
  gpu_share : Rat.t;
  cpu_share : Rat.t;
  ram_share : Rat.t;
  bw_share : Rat.t;
}

let check_share name share =
  if Rat.sign share <= 0 || Rat.(share > Rat.one) then
    invalid_arg (Printf.sprintf "Game.make: %s must be in (0, 1]" name)

let make ~title ~gpu_share ?cpu_share ?ram_share ?bw_share () =
  (* Defaults scale the secondary resources off the GPU share, so a
     scalar catalog entry keeps a well-formed profile. *)
  let default num den = Rat.mul gpu_share (Rat.make num den) in
  let cpu_share = Option.value cpu_share ~default:(default 3 4) in
  let ram_share = Option.value ram_share ~default:(default 1 2) in
  let bw_share = Option.value bw_share ~default:(default 2 5) in
  check_share "gpu_share" gpu_share;
  check_share "cpu_share" cpu_share;
  check_share "ram_share" ram_share;
  check_share "bw_share" bw_share;
  { title; gpu_share; cpu_share; ram_share; bw_share }

let resource_dims = 4
let resource_names = [ "gpu"; "cpu"; "ram"; "bw" ]

let resources ?(dims = resource_dims) t =
  if dims < 1 || dims > resource_dims then
    invalid_arg "Game.resources: dims out of range";
  Vec.truncate
    (Vec.make [ t.gpu_share; t.cpu_share; t.ram_share; t.bw_share ])
    ~dims

type catalog = { games : t array; popularity : float array }

let catalog entries =
  if entries = [] then invalid_arg "Game.catalog: empty";
  List.iter
    (fun (_, w) -> if w <= 0.0 then invalid_arg "Game.catalog: weight <= 0")
    entries;
  {
    games = Array.of_list (List.map fst entries);
    popularity = Array.of_list (List.map snd entries);
  }

let default_catalog =
  let g title num den ~cpu ~ram ~bw =
    make ~title ~gpu_share:(Rat.make num den)
      ~cpu_share:(Rat.make (fst cpu) (snd cpu))
      ~ram_share:(Rat.make (fst ram) (snd ram))
      ~bw_share:(Rat.make (fst bw) (snd bw))
      ()
  in
  catalog
    [
      (g "puzzle-2d" 1 10 ~cpu:(1, 12) ~ram:(1, 16) ~bw:(1, 25), 1.00);
      (g "card-arena" 1 8 ~cpu:(1, 10) ~ram:(1, 12) ~bw:(1, 16), 0.47);
      (g "indie-platformer" 1 6 ~cpu:(1, 8) ~ram:(1, 10) ~bw:(1, 12), 0.29);
      (* MOBAs lean on simulation and netcode more than rendering. *)
      (g "moba" 1 5 ~cpu:(1, 4) ~ram:(1, 6) ~bw:(1, 6), 0.21);
      (g "racing" 1 4 ~cpu:(1, 5) ~ram:(1, 4) ~bw:(1, 5), 0.16);
      (* Open-world streaming is RAM-bound before it is GPU-bound. *)
      (g "open-world" 1 3 ~cpu:(1, 4) ~ram:(2, 5) ~bw:(1, 6), 0.13);
      (g "fps-competitive" 2 5 ~cpu:(1, 3) ~ram:(1, 4) ~bw:(3, 10), 0.11);
      (g "aaa-rpg" 1 2 ~cpu:(2, 5) ~ram:(1, 2) ~bw:(1, 4), 0.09);
    ]

let pp fmt t = Format.fprintf fmt "%s(gpu=%a)" t.title Rat.pp t.gpu_share
