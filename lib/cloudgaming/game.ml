open Dbp_num

type t = { title : string; gpu_share : Rat.t }

let make ~title ~gpu_share =
  if Rat.sign gpu_share <= 0 || Rat.(gpu_share > Rat.one) then
    invalid_arg "Game.make: gpu_share must be in (0, 1]";
  { title; gpu_share }

type catalog = { games : t array; popularity : float array }

let catalog entries =
  if entries = [] then invalid_arg "Game.catalog: empty";
  List.iter
    (fun (_, w) -> if w <= 0.0 then invalid_arg "Game.catalog: weight <= 0")
    entries;
  {
    games = Array.of_list (List.map fst entries);
    popularity = Array.of_list (List.map snd entries);
  }

let default_catalog =
  let g title num den = make ~title ~gpu_share:(Rat.make num den) in
  catalog
    [
      (g "puzzle-2d" 1 10, 1.00);
      (g "card-arena" 1 8, 0.47);
      (g "indie-platformer" 1 6, 0.29);
      (g "moba" 1 5, 0.21);
      (g "racing" 1 4, 0.16);
      (g "open-world" 1 3, 0.13);
      (g "fps-competitive" 2 5, 0.11);
      (g "aaa-rpg" 1 2, 0.09);
    ]

let pp fmt t = Format.fprintf fmt "%s(gpu=%a)" t.title Rat.pp t.gpu_share
