(** Heterogeneous server fleets.

    Real IaaS catalogs offer several GPU instance types with different
    capacities and (usually sub-linear) prices.  The paper's model has
    one bin type; this layer maps server types onto the simulator's
    per-tag capacities and prices each bin by its type, so fleet-mix
    strategies can be compared (experiment E15).

    A {e strategy} decides, whenever a request does not fit into any
    open server, which server type to launch. *)

open Dbp_num
open Dbp_core

type vm_type = {
  type_name : string;
  gpu : Rat.t;  (** Capacity in base-GPU units ([>= 1] so every game fits). *)
  hourly_price : Rat.t;
}

val vm_type : name:string -> gpu:Rat.t -> hourly_price:Rat.t -> vm_type
(** @raise Invalid_argument unless gpu and price are positive. *)

val default_types : vm_type list
(** g.small (1 GPU, $1/h), g.large (2 GPU, $1.9/h),
    g.xlarge (4 GPU, $3.6/h) — sub-linear pricing, as real catalogs. *)

type strategy =
  | Single of string  (** Always launch this type. *)
  | Smallest_fitting  (** Cheapest type the request fits on. *)
  | Largest  (** Always the biggest type (maximal consolidation). *)

type report = {
  strategy_label : string;
  packing : Packing.t;
  dollar_cost : Rat.t;  (** Sum over servers of usage x its type price. *)
  servers_by_type : (string * int) list;
}

val policy : types:vm_type list -> strategy:strategy -> Policy.t
(** First Fit over all open servers; new servers launched per
    [strategy].  @raise Invalid_argument on an empty or duplicate-name
    type list, or a [Single] naming an unknown type. *)

val tag_capacity : types:vm_type list -> string -> Rat.t
(** For [Simulator.run ~tag_capacity]. @raise Invalid_argument on an
    unknown tag. *)

val dispatch :
  types:vm_type list -> strategy:strategy -> Request.t list -> report
(** Runs the whole pipeline on a request trace with exact per-type
    pricing (price per hour of usage, no rounding; compose with
    {!Billing} for block pricing). *)

val pp_report : Format.formatter -> report -> unit
