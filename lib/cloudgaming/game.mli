(** Game catalog for the cloud gaming application (Section 1 of the
    paper): each game title demands a fixed share of a game server's
    resources when an instance of it runs.

    The scalar model keeps only the GPU share — the binding resource
    of the paper's setting.  The DVBP extension gives every title a
    full per-server profile over {!resource_names} (GPU, CPU, RAM,
    network); component 0 is always [gpu_share], so truncating a
    profile to one dimension recovers the scalar catalog exactly. *)

open Dbp_num

type t = {
  title : string;
  gpu_share : Rat.t;
  cpu_share : Rat.t;
  ram_share : Rat.t;
  bw_share : Rat.t;
}

val make :
  title:string ->
  gpu_share:Rat.t ->
  ?cpu_share:Rat.t ->
  ?ram_share:Rat.t ->
  ?bw_share:Rat.t ->
  unit ->
  t
(** Omitted secondary shares default to fixed fractions of the GPU
    share (3/4, 1/2 and 2/5 of it), so a scalar-era catalog entry
    gains a sensible profile without new data.
    @raise Invalid_argument unless every share is in [(0, 1]]. *)

val resource_dims : int
(** 4. *)

val resource_names : string list
(** [["gpu"; "cpu"; "ram"; "bw"]], in component order. *)

val resources : ?dims:int -> t -> Vec.t
(** The demand vector over the first [dims] (default all
    {!resource_dims}) resources; [resources ~dims:1] is exactly
    [[gpu_share]].
    @raise Invalid_argument unless [1 <= dims <= resource_dims]. *)

type catalog = { games : t array; popularity : float array }
(** [popularity] weights the request mix (not necessarily
    normalised). *)

val catalog : (t * float) list -> catalog
(** @raise Invalid_argument on an empty list or non-positive weight. *)

val default_catalog : catalog
(** Eight titles with GPU shares from 1/10 (casual 2D) to 1/2 (AAA 3D)
    and Zipf(1.1)-like popularity — heavier games are rarer.  Each
    carries a hand-set CPU/RAM/network profile (MOBAs lean on CPU and
    netcode, open-world streaming on RAM). *)

val pp : Format.formatter -> t -> unit
