(** Game catalog for the cloud gaming application (Section 1 of the
    paper): each game title demands a fixed share of a game server's
    GPU when an instance of it runs. *)

open Dbp_num

type t = { title : string; gpu_share : Rat.t }

val make : title:string -> gpu_share:Rat.t -> t
(** @raise Invalid_argument unless [0 < gpu_share <= 1]. *)

type catalog = { games : t array; popularity : float array }
(** [popularity] weights the request mix (not necessarily
    normalised). *)

val catalog : (t * float) list -> catalog
(** @raise Invalid_argument on an empty list or non-positive weight. *)

val default_catalog : catalog
(** Eight titles with GPU shares from 1/10 (casual 2D) to 1/2 (AAA 3D)
    and Zipf(1.1)-like popularity — heavier games are rarer. *)

val pp : Format.formatter -> t -> unit
