open Dbp_num

type model =
  | Exact of { rate : Rat.t }
  | Per_block of { rate : Rat.t; block : Rat.t }

let exact ~rate =
  if Rat.sign rate < 0 then invalid_arg "Billing.exact: negative rate";
  Exact { rate }

let hourly ~rate_per_hour =
  if Rat.sign rate_per_hour < 0 then invalid_arg "Billing.hourly: negative rate";
  Per_block { rate = rate_per_hour; block = Rat.one }

let charge model ~usage =
  if Rat.sign usage < 0 then invalid_arg "Billing.charge: usage < 0";
  match model with
  | Exact { rate } -> Rat.mul rate usage
  | Per_block { rate; block } ->
      if Rat.is_zero usage then Rat.zero
      else
        let blocks = Rat.ceil (Rat.div usage block) in
        Rat.mul rate (Rat.mul_int block blocks)

let total model ~usages =
  List.fold_left (fun acc u -> Rat.add acc (charge model ~usage:u)) Rat.zero
    usages

let pp fmt = function
  | Exact { rate } -> Format.fprintf fmt "exact(rate=%a)" Rat.pp rate
  | Per_block { rate; block } ->
      Format.fprintf fmt "per-block(rate=%a, block=%a)" Rat.pp rate Rat.pp block
