(** VM billing models.

    The paper's cost model is [duration * C] (a bin costs its usage
    time at rate [C]).  Real IaaS offerings historically billed by the
    started hour; both are provided, the hourly model as the E8
    ablation. *)

open Dbp_num

type model =
  | Exact of { rate : Rat.t }
      (** Pay [rate] per time unit of server usage — the paper's
          model. *)
  | Per_block of { rate : Rat.t; block : Rat.t }
      (** Pay [rate * block] for every {e started} block of usage
          (e.g. EC2 classic: block = one hour). *)

val exact : rate:Rat.t -> model
val hourly : rate_per_hour:Rat.t -> model
(** [Per_block] with a block of 1 time unit (the simulation convention
    is 1 unit = 1 hour). *)

val charge : model -> usage:Rat.t -> Rat.t
(** Cost of one server open for [usage] time.
    @raise Invalid_argument if [usage < 0]. *)

val total : model -> usages:Rat.t list -> Rat.t
val pp : Format.formatter -> model -> unit
