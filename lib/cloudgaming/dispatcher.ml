open Dbp_num
open Dbp_core

type report = {
  policy_name : string;
  requests : int;
  packing : Packing.t;
  servers_used : int;
  peak_servers : int;
  server_hours : Rat.t;
  dollar_cost : Rat.t;
  mean_utilisation : Rat.t;
  offline_lower_bound : Rat.t;
}

let dispatch ?(billing = Billing.exact ~rate:Rat.one) ~policy requests =
  let instance = Gaming_workload.to_instance requests in
  let packing = Simulator.run ~policy instance in
  let usages =
    Array.to_list packing.Packing.bins
    |> List.map (fun b -> Interval.length (Packing.usage_period b))
  in
  let server_hours = Rat.sum usages in
  let demand = Instance.total_demand instance in
  let capacity = Instance.capacity instance in
  let mean_utilisation =
    if Rat.is_zero server_hours then Rat.zero
    else Rat.div demand (Rat.mul capacity server_hours)
  in
  let lower_hours = Rat.max (Rat.div demand capacity) (Instance.span instance) in
  {
    policy_name = packing.Packing.policy_name;
    requests = List.length requests;
    packing;
    servers_used = Packing.bins_used packing;
    peak_servers = packing.Packing.max_bins;
    server_hours;
    dollar_cost = Billing.total billing ~usages;
    mean_utilisation;
    offline_lower_bound = lower_hours;
  }

let compare_policies ?billing ~policies requests =
  List.map (fun policy -> dispatch ?billing ~policy requests) policies

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%s: %d requests -> %d servers (peak %d), %a server-hours, cost %a \
     (util %.1f%%, offline lb %a)@]"
    r.policy_name r.requests r.servers_used r.peak_servers Rat.pp_float
    r.server_hours Rat.pp_float r.dollar_cost
    (100.0 *. Rat.to_float r.mean_utilisation)
    Rat.pp_float r.offline_lower_bound
