open Dbp_num
open Dbp_core

type report = {
  policy_name : string;
  requests : int;
  packing : Packing.t;
  servers_used : int;
  peak_servers : int;
  server_hours : Rat.t;
  dollar_cost : Rat.t;
  mean_utilisation : Rat.t;
  offline_lower_bound : Rat.t;
}

(* Shared between the fault-free and the fault-injected paths: all
   operational metrics read off whatever packing was actually realised
   (for a faulty run, [packing.instance] is the effective instance of
   hosted session segments). *)
let report_of_packing ~billing ~requests packing =
  let instance = packing.Packing.instance in
  let usages =
    Array.to_list packing.Packing.bins
    |> List.map (fun b -> Interval.length (Packing.usage_period b))
  in
  let server_hours = Rat.sum usages in
  let demand = Instance.total_demand instance in
  let capacity = Instance.capacity instance in
  let mean_utilisation =
    if Rat.is_zero server_hours then Rat.zero
    else Rat.div demand (Rat.mul capacity server_hours)
  in
  let lower_hours = Rat.max (Rat.div demand capacity) (Instance.span instance) in
  {
    policy_name = packing.Packing.policy_name;
    requests;
    packing;
    servers_used = Packing.bins_used packing;
    peak_servers = packing.Packing.max_bins;
    server_hours;
    dollar_cost = Billing.total billing ~usages;
    mean_utilisation;
    offline_lower_bound = lower_hours;
  }

let dispatch ?(billing = Billing.exact ~rate:Rat.one) ~policy requests =
  let instance = Gaming_workload.to_instance requests in
  let packing = Simulator.run ~policy instance in
  report_of_packing ~billing ~requests:(List.length requests) packing

let compare_policies ?billing ~policies requests =
  List.map (fun policy -> dispatch ?billing ~policy requests) policies

type fault_report = {
  base : report;  (* metrics of the realised (faulty) hosting *)
  resilience : Dbp_faults.Resilience.t;
}

let dispatch_faulty ?(billing = Billing.exact ~rate:Rat.one) ?config
    ?priority ~plan ~policy requests =
  let instance = Gaming_workload.to_instance requests in
  let r = Dbp_faults.Injector.run ?config ?priority ~plan ~policy instance in
  {
    base =
      report_of_packing ~billing ~requests:(List.length requests)
        r.Dbp_faults.Injector.packing;
    resilience = r.Dbp_faults.Injector.resilience;
  }

let compare_policies_faulty ?billing ?config ?priority ~plan ~policies
    requests =
  List.map
    (fun policy ->
      dispatch_faulty ?billing ?config ?priority ~plan ~policy requests)
    policies

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%s: %d requests -> %d servers (peak %d), %a server-hours, cost %a \
     (util %.1f%%, offline lb %a)@]"
    r.policy_name r.requests r.servers_used r.peak_servers Rat.pp_float
    r.server_hours Rat.pp_float r.dollar_cost
    (100.0 *. Rat.to_float r.mean_utilisation)
    Rat.pp_float r.offline_lower_bound

let pp_fault_report fmt fr =
  Format.fprintf fmt "@[<v>%a@,%a@]" pp_report fr.base
    Dbp_faults.Resilience.pp fr.resilience
