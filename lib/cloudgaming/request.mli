(** Playing requests: a player starts a session of a game at some time
    and stops when they are done.  The departure time is unknown to the
    dispatcher when the request arrives — exactly the online MinTotal
    DBP information model. *)

open Dbp_num

type t = {
  request_id : int;
  game : Game.t;
  start : Rat.t;  (** Session start (item arrival). *)
  stop : Rat.t;  (** Session end (item departure). *)
}

val make : request_id:int -> game:Game.t -> start:Rat.t -> stop:Rat.t -> t
(** @raise Invalid_argument unless [stop > start]. *)

val session_length : t -> Rat.t
val to_item : t -> Dbp_core.Item.t
(** Item with the request's id, GPU share as size, session as
    interval. *)

val pp : Format.formatter -> t -> unit
