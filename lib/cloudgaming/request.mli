(** Playing requests: a player starts a session of a game at some time
    and stops when they are done.  The departure time is unknown to the
    dispatcher when the request arrives — exactly the online MinTotal
    DBP information model. *)

open Dbp_num

type t = {
  request_id : int;
  game : Game.t;
  start : Rat.t;  (** Session start (item arrival). *)
  stop : Rat.t;  (** Session end (item departure). *)
}

val make : request_id:int -> game:Game.t -> start:Rat.t -> stop:Rat.t -> t
(** @raise Invalid_argument unless [stop > start]. *)

val session_length : t -> Rat.t
val to_item : t -> Dbp_core.Item.t
(** Item with the request's id, GPU share as size, session as
    interval. *)

val to_vec_item : ?dims:int -> t -> Dbp_core.Vec_instance.item
(** The multi-resource item: the game's {!Game.resources} profile
    over the first [dims] (default all) resources as the demand
    vector.  [~dims:1] is {!to_item} embedded in one dimension. *)

val pp : Format.formatter -> t -> unit
