open Dbp_num
open Dbp_core

type vm_type = {
  type_name : string;
  gpu : Rat.t;
  hourly_price : Rat.t;
}

let vm_type ~name ~gpu ~hourly_price =
  if Rat.sign gpu <= 0 then invalid_arg "Fleet.vm_type: gpu <= 0";
  if Rat.sign hourly_price <= 0 then invalid_arg "Fleet.vm_type: price <= 0";
  { type_name = name; gpu; hourly_price }

let default_types =
  [
    vm_type ~name:"g.small" ~gpu:Rat.one ~hourly_price:Rat.one;
    vm_type ~name:"g.large" ~gpu:Rat.two ~hourly_price:(Rat.make 19 10);
    vm_type ~name:"g.xlarge" ~gpu:(Rat.of_int 4) ~hourly_price:(Rat.make 18 5);
  ]

type strategy = Single of string | Smallest_fitting | Largest

type report = {
  strategy_label : string;
  packing : Packing.t;
  dollar_cost : Rat.t;
  servers_by_type : (string * int) list;
}

let validate_types types =
  if types = [] then invalid_arg "Fleet: empty type list";
  let names = List.map (fun t -> t.type_name) types in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Fleet: duplicate type names"

let find_type types name =
  match List.find_opt (fun t -> String.equal t.type_name name) types with
  | Some t -> t
  | None -> invalid_arg ("Fleet: unknown type " ^ name)

let strategy_label types = function
  | Single name -> "single:" ^ (find_type types name).type_name
  | Smallest_fitting -> "smallest-fitting"
  | Largest -> "largest"

let choose_type types strategy ~size =
  match strategy with
  | Single name -> find_type types name
  | Largest ->
      List.fold_left
        (fun best t -> if Rat.(t.gpu > best.gpu) then t else best)
        (List.hd types) (List.tl types)
  | Smallest_fitting -> (
      let fitting = List.filter (fun t -> Rat.(size <= t.gpu)) types in
      match fitting with
      | [] ->
          invalid_arg
            (Format.asprintf "Fleet: no type fits a request of size %a" Rat.pp
               size)
      | t0 :: rest ->
          List.fold_left
            (fun best t ->
              if Rat.(t.hourly_price < best.hourly_price) then t else best)
            t0 rest)

let policy ~types ~strategy =
  validate_types types;
  (match strategy with
  | Single name -> ignore (find_type types name)
  | Smallest_fitting | Largest -> ());
  let name = Printf.sprintf "fleet-ff(%s)" (strategy_label types strategy) in
  Policy.stateless ~name (fun ~capacity:_ ~now:_ ~bins ~size ->
      match Fit.first bins ~size with
      | Some v -> Policy.Existing v.Bin.bin_id
      | None -> Policy.New_bin (choose_type types strategy ~size).type_name)

let tag_capacity ~types tag = (find_type types tag).gpu

let dispatch ~types ~strategy requests =
  validate_types types;
  let max_gpu =
    List.fold_left (fun acc t -> Rat.max acc t.gpu) Rat.zero types
  in
  let items = List.map Request.to_item requests in
  let instance = Instance.create ~capacity:max_gpu items in
  let packing =
    Simulator.run
      ~tag_capacity:(tag_capacity ~types)
      ~policy:(policy ~types ~strategy)
      instance
  in
  let dollar_cost =
    Array.to_list packing.Packing.bins
    |> List.map (fun (b : Packing.bin_record) ->
           let t = find_type types b.tag in
           Rat.mul t.hourly_price (Interval.length (Packing.usage_period b)))
    |> Rat.sum
  in
  let servers_by_type =
    List.map
      (fun t ->
        ( t.type_name,
          Array.to_list packing.Packing.bins
          |> List.filter (fun (b : Packing.bin_record) ->
                 String.equal b.tag t.type_name)
          |> List.length ))
      types
  in
  {
    strategy_label = strategy_label types strategy;
    packing;
    dollar_cost;
    servers_by_type;
  }

let pp_report fmt r =
  Format.fprintf fmt "@[<h>%-18s $%-9.4g servers:" r.strategy_label
    (Rat.to_float r.dollar_cost);
  List.iter
    (fun (name, n) -> if n > 0 then Format.fprintf fmt " %s=%d" name n)
    r.servers_by_type;
  Format.fprintf fmt "@]"
