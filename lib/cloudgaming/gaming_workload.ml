open Dbp_num
open Dbp_rand

type profile = {
  catalog : Game.catalog;
  duration_hours : float;
  base_rate : float;
  diurnal_amplitude : float;
  session_log_mean : float;
  session_log_stddev : float;
  min_session : float;
  max_session : float;
  quantum : int;
}

let default_profile =
  {
    catalog = Game.default_catalog;
    duration_hours = 24.0;
    base_rate = 60.0;
    diurnal_amplitude = 0.5;
    session_log_mean = 0.0;
    session_log_stddev = 0.8;
    min_session = 0.25;
    max_session = 8.0;
    quantum = 10_000;
  }

(* Non-homogeneous Poisson arrivals by thinning: draw candidate points
   at the peak rate, keep each with probability rate(t)/peak. *)
let arrivals rng p =
  let peak = p.base_rate *. (1.0 +. p.diurnal_amplitude) in
  if peak <= 0.0 then invalid_arg "Gaming_workload: non-positive rate";
  let rate_at t =
    (* Trough at t=0 (4 am-style), peak half a cycle later. *)
    p.base_rate
    *. (1.0 -. (p.diurnal_amplitude *. cos (2.0 *. Float.pi *. t /. 24.0)))
  in
  let rec draw clock acc =
    let clock = clock +. Dist.exponential rng ~rate:peak in
    if clock >= p.duration_hours then List.rev acc
    else if Splitmix64.next_float rng < rate_at clock /. peak then
      draw clock (clock :: acc)
    else draw clock acc
  in
  draw 0.0 []

let generate ?(seed = 7L) p =
  if p.min_session <= 0.0 || p.max_session < p.min_session then
    invalid_arg "Gaming_workload: bad session clamps";
  let rng = Splitmix64.create seed in
  let starts = arrivals rng p in
  List.mapi
    (fun request_id start ->
      let game_idx = Dist.discrete rng ~weights:p.catalog.Game.popularity in
      let game = p.catalog.Game.games.(game_idx) in
      let session =
        Dist.lognormal rng ~mu:p.session_log_mean ~sigma:p.session_log_stddev
      in
      let session = Float.max p.min_session (Float.min p.max_session session) in
      let start_q = Rat.of_float ~den:p.quantum start in
      let len_q =
        Rat.max
          (Rat.of_float ~den:p.quantum p.min_session)
          (Rat.of_float ~den:p.quantum session)
      in
      Request.make ~request_id ~game ~start:start_q
        ~stop:(Rat.add start_q len_q))
    starts

let to_instance requests =
  if requests = [] then invalid_arg "Gaming_workload.to_instance: empty trace";
  Dbp_core.Instance.create ~capacity:Rat.one
    (List.map Request.to_item requests)

let to_vec_instance ?dims requests =
  if requests = [] then
    invalid_arg "Gaming_workload.to_vec_instance: empty trace";
  let dims = Option.value dims ~default:Game.resource_dims in
  Dbp_core.Vec_instance.create ~capacity:(Vec.ones ~dims)
    (List.map (Request.to_vec_item ~dims) requests)

let mu_of = function
  | [] -> invalid_arg "Gaming_workload.mu_of: empty trace"
  | requests ->
      let lengths = List.map Request.session_length requests in
      Rat.div (Rat.max_list lengths) (Rat.min_list lengths)
