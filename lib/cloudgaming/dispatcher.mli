(** The request dispatcher: the paper's actual application.

    Maps a request trace onto the MinTotal DBP simulator — game servers
    are bins, requests are items, no migration once dispatched — runs a
    packing policy, and prices the resulting server usage under a
    billing model.  Produces the operational metrics a service
    provider reads: dollar cost, server-hours, peak fleet size and mean
    GPU utilisation. *)

open Dbp_num
open Dbp_core

type report = {
  policy_name : string;
  requests : int;
  packing : Packing.t;
  servers_used : int;  (** Distinct servers (bins) ever rented. *)
  peak_servers : int;  (** Max simultaneously open. *)
  server_hours : Rat.t;  (** Total usage time across servers. *)
  dollar_cost : Rat.t;  (** Under the given billing model. *)
  mean_utilisation : Rat.t;
      (** u(R) / (W * server_hours): busy GPU share averaged over paid
          server time. *)
  offline_lower_bound : Rat.t;
      (** [max(u(R)/W, span(R))] in server-hours: no provider can pay
          less (bound (b.1)/(b.2)); priced at the exact rate. *)
}

val dispatch :
  ?billing:Billing.model -> policy:Policy.t -> Request.t list -> report
(** Default billing: {!Billing.exact} at rate 1.
    @raise Invalid_argument on an empty trace. *)

val compare_policies :
  ?billing:Billing.model -> policies:Policy.t list -> Request.t list ->
  report list
(** One report per policy on the same trace, in the given order. *)

type fault_report = {
  base : report;
      (** Operational metrics of the hosting actually realised under
          faults: the packing covers the effective session segments
          (truncated at evictions, resumed where recovery succeeded),
          and failed servers are still billed for their open interval. *)
  resilience : Dbp_faults.Resilience.t;
      (** Degradation metrics: blast radius, sheds, recovery latency,
          cost overhead vs the fault-free packing. *)
}

val dispatch_faulty :
  ?billing:Billing.model ->
  ?config:Dbp_faults.Injector.config ->
  ?priority:(Dbp_core.Item.t -> int) ->
  plan:Dbp_faults.Fault_plan.t ->
  policy:Policy.t ->
  Request.t list ->
  fault_report
(** {!dispatch} through {!Dbp_faults.Injector.run}: server crashes and
    spot preemptions from [plan] interrupt sessions mid-flight; evicted
    sessions are re-dispatched through the same policy under the
    injector's retry/backoff and admission-gate configuration.
    @raise Invalid_argument on an empty trace or if every session was
    shed. *)

val compare_policies_faulty :
  ?billing:Billing.model ->
  ?config:Dbp_faults.Injector.config ->
  ?priority:(Dbp_core.Item.t -> int) ->
  plan:Dbp_faults.Fault_plan.t ->
  policies:Policy.t list ->
  Request.t list ->
  fault_report list
(** One faulty report per policy on the same trace and the same fault
    plan — the blast-radius comparison of experiment E18. *)

val pp_report : Format.formatter -> report -> unit
val pp_fault_report : Format.formatter -> fault_report -> unit
