(** The request dispatcher: the paper's actual application.

    Maps a request trace onto the MinTotal DBP simulator — game servers
    are bins, requests are items, no migration once dispatched — runs a
    packing policy, and prices the resulting server usage under a
    billing model.  Produces the operational metrics a service
    provider reads: dollar cost, server-hours, peak fleet size and mean
    GPU utilisation. *)

open Dbp_num
open Dbp_core

type report = {
  policy_name : string;
  requests : int;
  packing : Packing.t;
  servers_used : int;  (** Distinct servers (bins) ever rented. *)
  peak_servers : int;  (** Max simultaneously open. *)
  server_hours : Rat.t;  (** Total usage time across servers. *)
  dollar_cost : Rat.t;  (** Under the given billing model. *)
  mean_utilisation : Rat.t;
      (** u(R) / (W * server_hours): busy GPU share averaged over paid
          server time. *)
  offline_lower_bound : Rat.t;
      (** [max(u(R)/W, span(R))] in server-hours: no provider can pay
          less (bound (b.1)/(b.2)); priced at the exact rate. *)
}

val dispatch :
  ?billing:Billing.model -> policy:Policy.t -> Request.t list -> report
(** Default billing: {!Billing.exact} at rate 1.
    @raise Invalid_argument on an empty trace. *)

val compare_policies :
  ?billing:Billing.model -> policies:Policy.t list -> Request.t list ->
  report list
(** One report per policy on the same trace, in the given order. *)

val pp_report : Format.formatter -> report -> unit
