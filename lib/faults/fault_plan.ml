open Dbp_num
open Dbp_rand

type victim = Any_open | Fullest | Emptiest | Bin of int

type kind = Crash | Preemption of { warning : Rat.t }

type event = { at : Rat.t; victim : victim; kind : kind }

type t = { label : string; events : event list }

let empty = { label = "no-faults"; events = [] }

let make ?(label = "custom") events =
  List.iter
    (fun e ->
      if Rat.sign e.at < 0 then
        invalid_arg "Fault_plan.make: negative fault time")
    events;
  let events =
    List.stable_sort (fun a b -> Rat.compare a.at b.at) events
  in
  { label; events }

let is_empty t = t.events = []
let count t = List.length t.events

let merge a b =
  {
    label =
      (* Merging with an empty plan is a no-op; keep its label out. *)
      (if is_empty a then b.label
       else if is_empty b then a.label
       else a.label ^ "+" ^ b.label);
    events =
      List.stable_sort
        (fun x y -> Rat.compare x.at y.at)
        (a.events @ b.events);
  }

(* Poisson arrival times over [0, horizon], quantised to 1/1000 so the
   injector's Rat arithmetic stays small. *)
let poisson_times ~seed ~rate ~horizon =
  if rate < 0.0 then invalid_arg "Fault_plan: rate < 0";
  let horizon_f = Rat.to_float horizon in
  if rate <= 0.0 || horizon_f <= 0.0 then []
  else begin
    let rng = Splitmix64.create seed in
    let rec go clock acc =
      let clock = clock +. Dist.exponential rng ~rate in
      if clock > horizon_f then List.rev acc
      else go clock (Rat.of_float ~den:1000 clock :: acc)
    in
    go 0.0 []
  end

let poisson_crashes ~seed ~rate ~horizon =
  {
    label = Printf.sprintf "poisson-crashes(rate=%g)" rate;
    events =
      List.map
        (fun at -> { at; victim = Any_open; kind = Crash })
        (poisson_times ~seed ~rate ~horizon);
  }

let spot_preemptions ~seed ~rate ~warning ~horizon =
  if Rat.sign warning < 0 then
    invalid_arg "Fault_plan.spot_preemptions: negative warning";
  {
    label = Printf.sprintf "spot-preemptions(rate=%g)" rate;
    events =
      List.map
        (fun at -> { at; victim = Any_open; kind = Preemption { warning } })
        (poisson_times ~seed ~rate ~horizon);
  }

let targeted_fullest ~times =
  make ~label:"targeted-fullest"
    (List.map (fun at -> { at; victim = Fullest; kind = Crash }) times)

let pp_victim fmt = function
  | Any_open -> Format.fprintf fmt "any"
  | Fullest -> Format.fprintf fmt "fullest"
  | Emptiest -> Format.fprintf fmt "emptiest"
  | Bin id -> Format.fprintf fmt "bin %d" id

let pp_event fmt e =
  match e.kind with
  | Crash -> Format.fprintf fmt "crash@%a(%a)" Rat.pp e.at pp_victim e.victim
  | Preemption { warning } ->
      Format.fprintf fmt "preempt@%a(%a, warn %a)" Rat.pp e.at pp_victim
        e.victim Rat.pp warning

let pp fmt t =
  Format.fprintf fmt "@[<h>%s: %d faults" t.label (count t);
  (match t.events with
  | [] -> ()
  | es ->
      Format.fprintf fmt " [";
      List.iteri
        (fun i e ->
          if i > 0 then Format.fprintf fmt "; ";
          pp_event fmt e)
        es;
      Format.fprintf fmt "]");
  Format.fprintf fmt "@]"
