open Dbp_num

type t = {
  faults_injected : int;
  faults_skipped : int;
  interrupted_sessions : int;
  interrupted_session_seconds : Rat.t;
  resumed_sessions : int;
  migrated_sessions : int;
  migrated_volume : Rat.t;
  lost_sessions : int;
  launch_failures : int;
  retries : int;
  shed_requests : int;
  recovery_latencies : Rat.t list;
  served_session_seconds : Rat.t;
  demand_session_seconds : Rat.t;
  faulty_cost : Rat.t;
  fault_free_cost : Rat.t;
}

let availability t =
  if Rat.is_zero t.demand_session_seconds then Rat.one
  else Rat.div t.served_session_seconds t.demand_session_seconds

let cost_overhead t =
  if Rat.is_zero t.fault_free_cost then Rat.one
  else Rat.div t.faulty_cost t.fault_free_cost

let mean_recovery_latency t =
  match t.recovery_latencies with
  | [] -> None
  | ls -> Some (Rat.div_int (Rat.sum ls) (List.length ls))

let max_recovery_latency t =
  match t.recovery_latencies with [] -> None | ls -> Some (Rat.max_list ls)

let quantile_recovery_latency t ~q =
  if q < 0.0 || q > 1.0 then
    invalid_arg "Resilience.quantile_recovery_latency: q outside [0, 1]";
  match List.sort Rat.compare t.recovery_latencies with
  | [] -> None
  | sorted ->
      let n = List.length sorted in
      (* nearest-rank: smallest index i with (i+1)/n >= q *)
      let rank =
        Stdlib.min (n - 1)
          (Stdlib.max 0 (int_of_float (ceil (q *. float_of_int n)) - 1))
      in
      Some (List.nth sorted rank)

let pp fmt t =
  let opt_lat fmt = function
    | None -> Format.fprintf fmt "-"
    | Some l -> Rat.pp_float fmt l
  in
  Format.fprintf fmt
    "@[<v>faults          : %d injected, %d skipped@,\
     interrupted     : %d sessions, %a session-seconds displaced@,\
     live-migrated   : %d sessions, %a volume@,\
     recovered       : %d resumed, %d lost, %d shed@,\
     launch retries  : %d failures, %d retries@,\
     recovery latency: mean %a, p95 %a, max %a@,\
     availability    : %a (served %a / demanded %a)@,\
     cost            : %a faulty vs %a fault-free (overhead %a)@]"
    t.faults_injected t.faults_skipped t.interrupted_sessions Rat.pp_float
    t.interrupted_session_seconds t.migrated_sessions Rat.pp_float
    t.migrated_volume t.resumed_sessions t.lost_sessions
    t.shed_requests t.launch_failures t.retries opt_lat
    (mean_recovery_latency t) opt_lat
    (quantile_recovery_latency t ~q:0.95)
    opt_lat (max_recovery_latency t) Rat.pp_float (availability t)
    Rat.pp_float t.served_session_seconds Rat.pp_float
    t.demand_session_seconds Rat.pp_float t.faulty_cost Rat.pp_float
    t.fault_free_cost Rat.pp_float (cost_overhead t)
