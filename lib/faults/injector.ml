open Dbp_num
open Dbp_core
open Dbp_rand

type config = {
  seed : int64;
  launch_failure_prob : float;
  base_backoff : Rat.t;
  backoff_cap : Rat.t;
  max_retries : int;
  restart_delay : Rat.t;
  max_fleet : int option;
  max_pending : int option;
}

let default_config =
  {
    seed = 42L;
    launch_failure_prob = 0.0;
    base_backoff = Rat.make 1 4;
    backoff_cap = Rat.of_int 4;
    max_retries = 5;
    restart_delay = Rat.make 1 4;
    max_fleet = None;
    max_pending = None;
  }

type result = {
  packing : Packing.t;
  effective : Instance.t;
  resilience : Resilience.t;
}

(* A session segment actually placed in a bin: the unit of the
   effective instance.  [stop] is fixed at departure or eviction. *)
type seg = {
  seg_id : int;
  orig_id : int;
  seg_size : Rat.t;
  seg_start : Rat.t;
  seg_deadline : Rat.t;  (* the original session's departure *)
  mutable stop : Rat.t;
}

(* A dispatch attempt: a fresh request from the trace, a backoff retry,
   or the recovery of an evicted session. *)
type attempt = {
  a_orig_id : int;
  a_size : Rat.t;
  a_priority : int;
  a_deadline : Rat.t;
  a_attempt : int;  (* failed attempts so far *)
  a_evicted_at : Rat.t option;  (* [Some t]: recovery of a t-eviction *)
  a_key : int;  (* unique queue sequence number *)
  mutable a_cancelled : bool;  (* shed while queued *)
}

type ev = Depart of int | Fault of Fault_plan.event | Dispatch of attempt

(* Deterministic event order: at equal times departures complete first,
   then faults strike, then arrivals dispatch — so a fault never kills
   a session that ended at that very instant, and an arrival at the
   fault instant sees the post-crash fleet.  Mirrors [Event.compare]
   (departures before arrivals, ties by id) so that the empty plan
   replays [Simulator.run] exactly. *)
module Key = struct
  type t = Rat.t * int * int

  let compare (t1, r1, s1) (t2, r2, s2) =
    let c = Rat.compare t1 t2 in
    if c <> 0 then c
    else
      let c = Int.compare r1 r2 in
      if c <> 0 then c else Int.compare s1 s2
end

module Q = Map.Make (Key)

let rank_depart = 0
let rank_fault = 1
let rank_dispatch = 2

let backoff_delay cfg ~attempt =
  (* capped exponential: base * 2^attempt, clamped. *)
  let e = Stdlib.min attempt 20 in
  Rat.min cfg.backoff_cap (Rat.mul_int cfg.base_backoff (1 lsl e))

(* The whole run state, explicit so it can be frozen mid-drain and
   thawed in a different process: the engine, the PRNG, the event
   queue, the segment ledger and every counter.  [pending] aliases the
   queued [Dispatch] attempts (an attempt is shed by flipping its
   [a_cancelled] through either handle), and [active] aliases the
   members of [segments] — [thaw] rebuilds both aliasings. *)
type state = {
  cfg : config;
  policy : Policy.t;
  instance : Instance.t;
  online : Simulator.Online.t;
  repack : (Dbp_repack.Budget.t * Dbp_repack.Repack_policy.t) option;
      (* Recourse budget + policy for the live-migration rung of the
         degradation ladder; [None] (and budget zero, and [No_repack])
         reproduce the evict-only injector bit-for-bit. *)
  rng : Pcg32.t;
  sink : Dbp_obs.Sink.t option;
  metrics : Dbp_obs.Metrics.t option;
  priority : Item.t -> int;
  mutable queue : ev Q.t;
  mutable seq : int;
  mutable segments : seg list;  (* reverse seg_id order *)
  mutable next_seg : int;
  active : (int, seg) Hashtbl.t;
  pending : (int, attempt) Hashtbl.t;
  mutable events_done : int;
  mutable faults_injected : int;
  mutable faults_skipped : int;
  mutable interrupted : int;
  mutable interrupted_seconds : Rat.t;
  mutable resumed : int;
  mutable lost : int;
  mutable launch_failures : int;
  mutable retries : int;
  mutable shed : int;
  mutable recovery_latencies : Rat.t list;  (* reverse recovery order *)
}

let validate_config cfg =
  if cfg.launch_failure_prob < 0.0 || cfg.launch_failure_prob > 1.0 then
    invalid_arg "Injector.run: launch_failure_prob outside [0, 1]";
  if cfg.max_retries < 0 then invalid_arg "Injector.run: max_retries < 0";
  if Rat.sign cfg.base_backoff <= 0 then
    invalid_arg "Injector.run: base_backoff <= 0";
  if Rat.sign cfg.restart_delay < 0 then
    invalid_arg "Injector.run: restart_delay < 0"

let emit st ~now kind_of =
  match st.sink with
  | None -> ()
  | Some s -> Dbp_obs.Sink.emit s ~time:now (kind_of ())

let with_metrics st f = match st.metrics with None -> () | Some m -> f m

let enqueue st key ev = st.queue <- Q.add key ev st.queue

let fresh_seq st =
  let s = st.seq in
  st.seq <- st.seq + 1;
  s

let give_up st (a : attempt) ~now =
  emit st ~now (fun () -> Dbp_obs.Trace_event.Shed { item = a.a_orig_id });
  match a.a_evicted_at with
  | None ->
      st.shed <- st.shed + 1;
      with_metrics st (fun m -> Dbp_obs.Metrics.incr m "shed_requests")
  | Some _ ->
      st.lost <- st.lost + 1;
      with_metrics st (fun m -> Dbp_obs.Metrics.incr m "lost_sessions")

let shed_excess_pending st ~now =
  match st.cfg.max_pending with
  | None -> ()
  | Some bound ->
      while Hashtbl.length st.pending > bound do
        (* lowest priority goes first; ties shed the most recently
           queued (highest key). *)
        let victim =
          Hashtbl.fold
            (fun _ (a : attempt) acc ->
              match acc with
              | None -> Some a
              | Some (b : attempt) ->
                  if
                    a.a_priority < b.a_priority
                    || (a.a_priority = b.a_priority && a.a_key > b.a_key)
                  then Some a
                  else acc)
            st.pending None
        in
        match victim with
        | None -> ()
        | Some v ->
            v.a_cancelled <- true;
            Hashtbl.remove st.pending v.a_key;
            give_up st v ~now
      done

let retry st (a : attempt) ~now =
  if a.a_attempt >= st.cfg.max_retries then give_up st a ~now
  else
    let delay = backoff_delay st.cfg ~attempt:a.a_attempt in
    let at = Rat.add now delay in
    if Rat.(at >= a.a_deadline) then give_up st a ~now
    else begin
      st.retries <- st.retries + 1;
      emit st ~now (fun () ->
          Dbp_obs.Trace_event.Retry
            { item = a.a_orig_id; attempt = a.a_attempt + 1 });
      with_metrics st (fun m -> Dbp_obs.Metrics.incr m "retries");
      let a' = { a with a_attempt = a.a_attempt + 1; a_key = fresh_seq st } in
      Hashtbl.replace st.pending a'.a_key a';
      enqueue st (at, rank_dispatch, a'.a_key) (Dispatch a');
      shed_excess_pending st ~now
    end

let place st (a : attempt) ~now =
  let seg_id = st.next_seg in
  st.next_seg <- st.next_seg + 1;
  ignore (Simulator.Online.arrive st.online ~now ~size:a.a_size ~item_id:seg_id);
  let seg =
    {
      seg_id;
      orig_id = a.a_orig_id;
      seg_size = a.a_size;
      seg_start = now;
      seg_deadline = a.a_deadline;
      stop = a.a_deadline;
    }
  in
  st.segments <- seg :: st.segments;
  Hashtbl.replace st.active seg_id seg;
  enqueue st (a.a_deadline, rank_depart, seg_id) (Depart seg_id);
  match a.a_evicted_at with
  | None -> ()
  | Some te ->
      st.resumed <- st.resumed + 1;
      let latency = Rat.sub now te in
      emit st ~now (fun () ->
          Dbp_obs.Trace_event.Resume { item = a.a_orig_id; latency });
      with_metrics st (fun m ->
          Dbp_obs.Metrics.incr m "resumed_sessions";
          Dbp_obs.Metrics.observe_rat m "recovery_latency" latency);
      st.recovery_latencies <- latency :: st.recovery_latencies

let dispatch st (a : attempt) ~now =
  if not a.a_cancelled then begin
    Hashtbl.remove st.pending a.a_key;
    let views = Simulator.Online.open_bins st.online in
    let fits_somewhere =
      List.exists
        (fun (v : Bin.view) -> Rat.(a.a_size <= v.bin_residual))
        views
    in
    let saturated =
      match st.cfg.max_fleet with
      | Some m -> List.length views >= m && not fits_somewhere
      | None -> false
    in
    if saturated then retry st a ~now
    else if
      st.cfg.launch_failure_prob > 0.0
      && Pcg32.next_float st.rng < st.cfg.launch_failure_prob
    then begin
      st.launch_failures <- st.launch_failures + 1;
      with_metrics st (fun m -> Dbp_obs.Metrics.incr m "launch_failures");
      retry st a ~now
    end
    else place st a ~now
  end

let resolve_victim st (views : Bin.view list) = function
  | Fault_plan.Bin id ->
      if List.exists (fun (v : Bin.view) -> v.Bin.bin_id = id) views then
        Some id
      else None
  | Fault_plan.Any_open ->
      let arr = Array.of_list views in
      Some arr.(Pcg32.next_int st.rng (Array.length arr)).Bin.bin_id
  | Fault_plan.Fullest ->
      List.fold_left
        (fun acc (v : Bin.view) ->
          match acc with
          | None -> Some v
          | Some (b : Bin.view) ->
              if Rat.(v.bin_level > b.bin_level) then Some v else acc)
        None views
      |> Option.map (fun (v : Bin.view) -> v.Bin.bin_id)
  | Fault_plan.Emptiest ->
      List.fold_left
        (fun acc (v : Bin.view) ->
          match acc with
          | None -> Some v
          | Some (b : Bin.view) ->
              if Rat.(v.bin_level < b.bin_level) then Some v else acc)
        None views
      |> Option.map (fun (v : Bin.view) -> v.Bin.bin_id)

(* Rung 1 of the graceful-degradation ladder: live-migrate sessions
   out of the failing bin, oldest placement first, first-fit into the
   surviving fleet, while the recourse budget lasts.  The bin is
   charged for [opened, now] whether it crashes or drains, so every
   migrated session is pure blast-radius reduction.  Whoever the
   budget (or the fleet's free space) cannot cover falls down to the
   existing rungs: eviction -> restart/backoff retries -> shed. *)
(* All dispatches at an instant run after all faults at that instant
   (rank order), so during a strike every active segment started
   strictly earlier — unless a previous same-instant fault migrated it.
   A later fault in the same burst could then strike the landing bin
   and end the fresh segment at zero length, which the effective
   instance cannot express.  Migration is therefore unsafe while more
   faults are pending at this instant. *)
let same_instant_fault_pending st ~now =
  match Q.min_binding_opt st.queue with
  | Some ((t, rank, _), _) -> rank = rank_fault && Rat.equal t now
  | None -> false

let migrate_out st ~now ~bin_id =
  match st.repack with
  | None | Some (_, Dbp_repack.Repack_policy.No_repack) -> ()
  | Some _ when same_instant_fault_pending st ~now ->
      () (* correlated burst: ride the eviction rungs instead *)
  | Some (budget, _) ->
      let victims =
        List.rev (Simulator.Online.active_items_in st.online bin_id)
      in
      List.iter
        (fun (seg_id, size) ->
          if
            Dbp_repack.Budget.affords budget
              ~cost:(Dbp_repack.Budget.cost_of budget ~size)
          then begin
            let rec first_fit = function
              | [] -> None
              | (v : Bin.view) :: rest ->
                  if v.Bin.bin_id <> bin_id && Rat.(size <= v.bin_residual)
                  then Some v.Bin.bin_id
                  else first_fit rest
            in
            match first_fit (Simulator.Online.open_bins st.online) with
            | None -> () (* nowhere to go: this one rides the crash *)
            | Some to_bin ->
                let seg = Hashtbl.find st.active seg_id in
                let new_id = st.next_seg in
                st.next_seg <- st.next_seg + 1;
                ignore
                  (Simulator.Online.migrate st.online ~now ~item_id:seg_id
                     ~to_bin ~new_item_id:new_id);
                seg.stop <- now;
                Hashtbl.remove st.active seg_id;
                let seg' =
                  {
                    seg_id = new_id;
                    orig_id = seg.orig_id;
                    seg_size = size;
                    seg_start = now;
                    seg_deadline = seg.seg_deadline;
                    stop = seg.seg_deadline;
                  }
                in
                st.segments <- seg' :: st.segments;
                Hashtbl.replace st.active new_id seg';
                enqueue st (seg'.seg_deadline, rank_depart, new_id)
                  (Depart new_id);
                Dbp_repack.Budget.spend budget ~size
          end
          else Dbp_repack.Budget.note_denied budget)
        victims

let strike st (e : Fault_plan.event) ~now =
  let views = Simulator.Online.open_bins st.online in
  match
    (if views = [] then None else resolve_victim st views e.Fault_plan.victim)
  with
  | None -> st.faults_skipped <- st.faults_skipped + 1
  | Some bin_id ->
      st.faults_injected <- st.faults_injected + 1;
      migrate_out st ~now ~bin_id;
      if
        match Simulator.Online.active_items_in st.online bin_id with
        | [] -> true
        | _ :: _ -> false
      then
        (* Every session was migrated out: the last move already
           closed the bin, charged exactly as a crash at [now] would
           have.  Mark the fault in the trace; nothing to evict. *)
        emit st ~now (fun () ->
            Dbp_obs.Trace_event.Fail_bin
              { bin = bin_id; victims = 0; lost_level = Rat.zero })
      else
      let evicted = Simulator.Online.fail_bin st.online ~now ~bin_id in
      List.iter
        (fun (seg_id, _) ->
          let seg = Hashtbl.find st.active seg_id in
          Hashtbl.remove st.active seg_id;
          seg.stop <- now;
          st.interrupted <- st.interrupted + 1;
          st.interrupted_seconds <-
            Rat.add st.interrupted_seconds (Rat.sub seg.seg_deadline now);
          let restart_at =
            match e.Fault_plan.kind with
            | Fault_plan.Crash -> Rat.add now st.cfg.restart_delay
            | Fault_plan.Preemption _ -> now
          in
          if Rat.(restart_at >= seg.seg_deadline) then begin
            st.lost <- st.lost + 1;
            emit st ~now (fun () ->
                Dbp_obs.Trace_event.Shed { item = seg.orig_id });
            with_metrics st (fun m -> Dbp_obs.Metrics.incr m "lost_sessions")
          end
          else begin
            let a =
              {
                a_orig_id = seg.orig_id;
                a_size = seg.seg_size;
                a_priority = st.priority (Instance.item st.instance seg.orig_id);
                a_deadline = seg.seg_deadline;
                a_attempt = 0;
                a_evicted_at = Some now;
                a_key = fresh_seq st;
                a_cancelled = false;
              }
            in
            Hashtbl.replace st.pending a.a_key a;
            enqueue st (restart_at, rank_dispatch, a.a_key) (Dispatch a);
            shed_excess_pending st ~now
          end)
        evicted

let create ?(audit = false) ?sink ?metrics ?profile ?(config = default_config)
    ?(priority = fun _ -> 0) ?repack ~(plan : Fault_plan.t)
    ~(policy : Policy.t) instance =
  validate_config config;
  let repack =
    Option.map
      (fun (spec, rp) -> (Dbp_repack.Budget.create spec, rp))
      repack
  in
  let online =
    (* The sink is shared with the engine, so injector events (retry /
       shed / resume) interleave with pack/depart/fail_bin events in
       one totally ordered stream. *)
    Simulator.Online.create ~audit ?sink ?metrics ?profile
      ?grid:(Simulator.grid_of_instance instance)
      ~policy ~capacity:(Instance.capacity instance) ()
  in
  let st =
    {
      cfg = config;
      policy;
      instance;
      online;
      repack;
      rng = Pcg32.create config.seed;
      sink;
      metrics;
      priority;
      queue = Q.empty;
      seq = Instance.size instance;
      segments = [];
      next_seg = 0;
      active = Hashtbl.create 64;
      pending = Hashtbl.create 16;
      events_done = 0;
      faults_injected = 0;
      faults_skipped = 0;
      interrupted = 0;
      interrupted_seconds = Rat.zero;
      resumed = 0;
      lost = 0;
      launch_failures = 0;
      retries = 0;
      shed = 0;
      recovery_latencies = [];
    }
  in
  (* -- seed the queue ----------------------------------------------- *)
  Array.iter
    (fun (r : Item.t) ->
      let a =
        {
          a_orig_id = r.id;
          a_size = r.size;
          a_priority = priority r;
          a_deadline = r.departure;
          a_attempt = 0;
          a_evicted_at = None;
          a_key = r.id;
          a_cancelled = false;
        }
      in
      enqueue st (r.arrival, rank_dispatch, r.id) (Dispatch a))
    (Instance.items instance);
  List.iteri
    (fun i (e : Fault_plan.event) ->
      enqueue st (e.Fault_plan.at, rank_fault, i) (Fault e))
    plan.Fault_plan.events;
  st

let events_done st = st.events_done
let engine st = st.online

let step st =
  match Q.min_binding_opt st.queue with
  | None -> false
  | Some (((now, _, _) as key), ev) ->
      st.queue <- Q.remove key st.queue;
      (match st.repack with
      | None -> ()
      | Some (budget, _) -> Dbp_repack.Budget.tick budget);
      (match ev with
      | Depart seg_id -> (
          match Hashtbl.find_opt st.active seg_id with
          | None -> () (* evicted earlier *)
          | Some seg ->
              Simulator.Online.depart st.online ~now ~item_id:seg_id;
              seg.stop <- now;
              Hashtbl.remove st.active seg_id)
      | Fault e -> strike st e ~now
      | Dispatch a -> dispatch st a ~now);
      st.events_done <- st.events_done + 1;
      true

let drain ?checkpoint_every ?on_checkpoint st =
  (match checkpoint_every with
  | Some k when k <= 0 -> invalid_arg "Injector.drain: checkpoint_every <= 0"
  | _ -> ());
  let continue = ref true in
  while !continue do
    if step st then (
      match (checkpoint_every, on_checkpoint) with
      | Some k, Some hook when st.events_done mod k = 0 ->
          hook ~events_done:st.events_done st
      | _ -> ())
    else continue := false
  done

let finish st =
  assert (Hashtbl.length st.active = 0);
  (* -- assemble the effective instance and the packing --------------- *)
  let segs = List.rev st.segments in
  if segs = [] then
    invalid_arg "Injector.run: every session was shed, nothing was packed";
  let items =
    List.map
      (fun s ->
        Item.make ~id:s.seg_id ~size:s.seg_size ~arrival:s.seg_start
          ~departure:s.stop)
      segs
  in
  let effective =
    Instance.create ~capacity:(Instance.capacity st.instance) items
  in
  let packing =
    { (Simulator.Online.finish st.online ~instance:effective) with
      Packing.policy_name = st.policy.Policy.name }
  in
  let fault_free = Simulator.run ~policy:st.policy st.instance in
  let served =
    List.fold_left
      (fun acc s -> Rat.add acc (Rat.sub s.stop s.seg_start))
      Rat.zero segs
  in
  let demand =
    Array.fold_left
      (fun acc it -> Rat.add acc (Item.length it))
      Rat.zero
      (Instance.items st.instance)
  in
  let resilience =
    {
      Resilience.faults_injected = st.faults_injected;
      faults_skipped = st.faults_skipped;
      interrupted_sessions = st.interrupted;
      interrupted_session_seconds = st.interrupted_seconds;
      resumed_sessions = st.resumed;
      migrated_sessions =
        (match st.repack with
        | None -> 0
        | Some (budget, _) -> Dbp_repack.Budget.moves budget);
      migrated_volume =
        (match st.repack with
        | None -> Rat.zero
        | Some (budget, _) -> Dbp_repack.Budget.moved_volume budget);
      lost_sessions = st.lost;
      launch_failures = st.launch_failures;
      retries = st.retries;
      shed_requests = st.shed;
      recovery_latencies = List.rev st.recovery_latencies;
      served_session_seconds = served;
      demand_session_seconds = demand;
      faulty_cost = packing.Packing.total_cost;
      fault_free_cost = fault_free.Packing.total_cost;
    }
  in
  { packing; effective; resilience }

let run ?audit ?sink ?metrics ?profile ?config ?priority ?repack
    ?checkpoint_every ?on_checkpoint ~plan ~policy instance =
  let st =
    create ?audit ?sink ?metrics ?profile ?config ?priority ?repack ~plan
      ~policy instance
  in
  drain ?checkpoint_every ?on_checkpoint st;
  finish st

(* ---- checkpoint/restore --------------------------------------------- *)

(* The frozen image mirrors [state] minus everything re-suppliable at
   thaw (the instance, the policy, the taps, the priority function).
   Queue entries carry their exact keys: dispatch keys embed fire
   times (arrival, backoff landing, restart) that are not derivable
   from the attempt alone. *)
module Frozen = struct
  type fattempt = {
    fa_orig : int;
    fa_size : Rat.t;
    fa_priority : int;
    fa_deadline : Rat.t;
    fa_attempt : int;
    fa_evicted_at : Rat.t option;
    fa_key : int;
    fa_cancelled : bool;
    fa_pending : bool;  (* member of the pending table at freeze *)
  }

  type fev =
    | F_depart of int
    | F_fault of Fault_plan.event
    | F_dispatch of fattempt

  type fseg = {
    fs_id : int;
    fs_orig : int;
    fs_size : Rat.t;
    fs_start : Rat.t;
    fs_deadline : Rat.t;
    fs_stop : Rat.t;
    fs_active : bool;
  }

  type t = {
    f_engine : Simulator.Online.Frozen.t;
    f_config : config;
    f_rng : int64 * int64;  (* Pcg32 (state, increment) *)
    f_seq : int;
    f_next_seg : int;
    f_events_done : int;
    f_segments : fseg list;  (* seg_id order *)
    f_queue : (Key.t * fev) list;  (* ascending key order *)
    f_faults_injected : int;
    f_faults_skipped : int;
    f_interrupted : int;
    f_interrupted_seconds : Rat.t;
    f_resumed : int;
    f_lost : int;
    f_launch_failures : int;
    f_retries : int;
    f_shed : int;
    f_recovery_latencies : Rat.t list;  (* chronological *)
    f_repack : (Dbp_repack.Budget.Frozen.t * Dbp_repack.Repack_policy.t) option;
  }
end

let freeze st : Frozen.t =
  let fatt (a : attempt) =
    {
      Frozen.fa_orig = a.a_orig_id;
      fa_size = a.a_size;
      fa_priority = a.a_priority;
      fa_deadline = a.a_deadline;
      fa_attempt = a.a_attempt;
      fa_evicted_at = a.a_evicted_at;
      fa_key = a.a_key;
      fa_cancelled = a.a_cancelled;
      fa_pending = Hashtbl.mem st.pending a.a_key;
    }
  in
  {
    Frozen.f_engine = Simulator.Online.freeze st.online;
    f_config = st.cfg;
    f_rng = Pcg32.dump st.rng;
    f_seq = st.seq;
    f_next_seg = st.next_seg;
    f_events_done = st.events_done;
    f_segments =
      List.rev_map
        (fun s ->
          {
            Frozen.fs_id = s.seg_id;
            fs_orig = s.orig_id;
            fs_size = s.seg_size;
            fs_start = s.seg_start;
            fs_deadline = s.seg_deadline;
            fs_stop = s.stop;
            fs_active = Hashtbl.mem st.active s.seg_id;
          })
        st.segments;
    f_queue =
      Q.fold
        (fun key ev acc ->
          let fev =
            match ev with
            | Depart seg_id -> Frozen.F_depart seg_id
            | Fault e -> Frozen.F_fault e
            | Dispatch a -> Frozen.F_dispatch (fatt a)
          in
          (key, fev) :: acc)
        st.queue []
      |> List.rev;
    f_faults_injected = st.faults_injected;
    f_faults_skipped = st.faults_skipped;
    f_interrupted = st.interrupted;
    f_interrupted_seconds = st.interrupted_seconds;
    f_resumed = st.resumed;
    f_lost = st.lost;
    f_launch_failures = st.launch_failures;
    f_retries = st.retries;
    f_shed = st.shed;
    f_recovery_latencies = List.rev st.recovery_latencies;
    f_repack =
      Option.map
        (fun (budget, rp) -> (Dbp_repack.Budget.freeze budget, rp))
        st.repack;
  }

let thaw ?(audit = false) ?sink ?metrics ?profile ?(priority = fun _ -> 0)
    ~(policy : Policy.t) ~instance (frozen : Frozen.t) =
  validate_config frozen.Frozen.f_config;
  let online =
    Simulator.Online.thaw ~audit ?sink ?metrics ?profile ~policy
      frozen.Frozen.f_engine
  in
  let state_r, increment = frozen.Frozen.f_rng in
  let st =
    {
      cfg = frozen.Frozen.f_config;
      policy;
      instance;
      online;
      repack =
        Option.map
          (fun (bf, rp) -> (Dbp_repack.Budget.thaw bf, rp))
          frozen.Frozen.f_repack;
      rng = Pcg32.of_dump ~state:state_r ~increment;
      sink;
      metrics;
      priority;
      queue = Q.empty;
      seq = frozen.Frozen.f_seq;
      segments = [];
      next_seg = frozen.Frozen.f_next_seg;
      active = Hashtbl.create 64;
      pending = Hashtbl.create 16;
      events_done = frozen.Frozen.f_events_done;
      faults_injected = frozen.Frozen.f_faults_injected;
      faults_skipped = frozen.Frozen.f_faults_skipped;
      interrupted = frozen.Frozen.f_interrupted;
      interrupted_seconds = frozen.Frozen.f_interrupted_seconds;
      resumed = frozen.Frozen.f_resumed;
      lost = frozen.Frozen.f_lost;
      launch_failures = frozen.Frozen.f_launch_failures;
      retries = frozen.Frozen.f_retries;
      shed = frozen.Frozen.f_shed;
      recovery_latencies = List.rev frozen.Frozen.f_recovery_latencies;
    }
  in
  (* Segments come back in seg_id order; the in-memory list is newest
     first, and [active] aliases the still-running members. *)
  List.iter
    (fun (fs : Frozen.fseg) ->
      let seg =
        {
          seg_id = fs.Frozen.fs_id;
          orig_id = fs.Frozen.fs_orig;
          seg_size = fs.Frozen.fs_size;
          seg_start = fs.Frozen.fs_start;
          seg_deadline = fs.Frozen.fs_deadline;
          stop = fs.Frozen.fs_stop;
        }
      in
      st.segments <- seg :: st.segments;
      if fs.Frozen.fs_active then begin
        if Hashtbl.mem st.active seg.seg_id then
          invalid_arg "Injector.thaw: duplicate active segment";
        Hashtbl.replace st.active seg.seg_id seg
      end)
    frozen.Frozen.f_segments;
  let seg_ids = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace seg_ids s.seg_id ()) st.segments;
  (* Queued dispatch attempts alias the pending table exactly as the
     live run's did: the pending-marked subset is shared, so a future
     shedding cancels the queued copy too. *)
  List.iter
    (fun (key, fev) ->
      let ev =
        match fev with
        | Frozen.F_depart seg_id ->
            (* departures of already-evicted segments are legal queue
               residents (they no-op), but the segment must exist *)
            if not (Hashtbl.mem seg_ids seg_id) then
              invalid_arg "Injector.thaw: departure of unknown segment";
            Depart seg_id
        | Frozen.F_fault e -> Fault e
        | Frozen.F_dispatch fa ->
            let a =
              {
                a_orig_id = fa.Frozen.fa_orig;
                a_size = fa.Frozen.fa_size;
                a_priority = fa.Frozen.fa_priority;
                a_deadline = fa.Frozen.fa_deadline;
                a_attempt = fa.Frozen.fa_attempt;
                a_evicted_at = fa.Frozen.fa_evicted_at;
                a_key = fa.Frozen.fa_key;
                a_cancelled = fa.Frozen.fa_cancelled;
              }
            in
            if fa.Frozen.fa_pending then Hashtbl.replace st.pending a.a_key a;
            Dispatch a
      in
      if Q.mem key st.queue then
        invalid_arg "Injector.thaw: duplicate queue key";
      enqueue st key ev)
    frozen.Frozen.f_queue;
  st
