open Dbp_num
open Dbp_core
open Dbp_rand

type config = {
  seed : int64;
  launch_failure_prob : float;
  base_backoff : Rat.t;
  backoff_cap : Rat.t;
  max_retries : int;
  restart_delay : Rat.t;
  max_fleet : int option;
  max_pending : int option;
}

let default_config =
  {
    seed = 42L;
    launch_failure_prob = 0.0;
    base_backoff = Rat.make 1 4;
    backoff_cap = Rat.of_int 4;
    max_retries = 5;
    restart_delay = Rat.make 1 4;
    max_fleet = None;
    max_pending = None;
  }

type result = {
  packing : Packing.t;
  effective : Instance.t;
  resilience : Resilience.t;
}

(* A session segment actually placed in a bin: the unit of the
   effective instance.  [stop] is fixed at departure or eviction. *)
type seg = {
  seg_id : int;
  orig_id : int;
  seg_size : Rat.t;
  seg_start : Rat.t;
  seg_deadline : Rat.t;  (* the original session's departure *)
  mutable stop : Rat.t;
}

(* A dispatch attempt: a fresh request from the trace, a backoff retry,
   or the recovery of an evicted session. *)
type attempt = {
  a_orig_id : int;
  a_size : Rat.t;
  a_priority : int;
  a_deadline : Rat.t;
  a_attempt : int;  (* failed attempts so far *)
  a_evicted_at : Rat.t option;  (* [Some t]: recovery of a t-eviction *)
  a_key : int;  (* unique queue sequence number *)
  mutable a_cancelled : bool;  (* shed while queued *)
}

type ev = Depart of int | Fault of Fault_plan.event | Dispatch of attempt

(* Deterministic event order: at equal times departures complete first,
   then faults strike, then arrivals dispatch — so a fault never kills
   a session that ended at that very instant, and an arrival at the
   fault instant sees the post-crash fleet.  Mirrors [Event.compare]
   (departures before arrivals, ties by id) so that the empty plan
   replays [Simulator.run] exactly. *)
module Key = struct
  type t = Rat.t * int * int

  let compare (t1, r1, s1) (t2, r2, s2) =
    let c = Rat.compare t1 t2 in
    if c <> 0 then c
    else
      let c = Int.compare r1 r2 in
      if c <> 0 then c else Int.compare s1 s2
end

module Q = Map.Make (Key)

let rank_depart = 0
let rank_fault = 1
let rank_dispatch = 2

let backoff_delay cfg ~attempt =
  (* capped exponential: base * 2^attempt, clamped. *)
  let e = Stdlib.min attempt 20 in
  Rat.min cfg.backoff_cap (Rat.mul_int cfg.base_backoff (1 lsl e))

let run ?(audit = false) ?sink ?metrics ?profile ?(config = default_config)
    ?(priority = fun _ -> 0) ~(plan : Fault_plan.t) ~(policy : Policy.t)
    instance =
  let cfg = config in
  if cfg.launch_failure_prob < 0.0 || cfg.launch_failure_prob > 1.0 then
    invalid_arg "Injector.run: launch_failure_prob outside [0, 1]";
  if cfg.max_retries < 0 then invalid_arg "Injector.run: max_retries < 0";
  if Rat.sign cfg.base_backoff <= 0 then
    invalid_arg "Injector.run: base_backoff <= 0";
  if Rat.sign cfg.restart_delay < 0 then
    invalid_arg "Injector.run: restart_delay < 0";
  let online =
    (* The sink is shared with the engine, so injector events (retry /
       shed / resume) interleave with pack/depart/fail_bin events in
       one totally ordered stream. *)
    Simulator.Online.create ~audit ?sink ?metrics ?profile ~policy
      ~capacity:(Instance.capacity instance) ()
  in
  let emit ~now kind_of =
    match sink with
    | None -> ()
    | Some s -> Dbp_obs.Sink.emit s ~time:now (kind_of ())
  in
  let with_metrics f = match metrics with None -> () | Some m -> f m in
  let rng = Pcg32.create cfg.seed in
  (* -- state ------------------------------------------------------- *)
  let queue = ref Q.empty in
  let seq = ref (Instance.size instance) in
  let fresh_seq () =
    let s = !seq in
    incr seq;
    s
  in
  let segments = ref [] (* reverse seg_id order *) in
  let next_seg = ref 0 in
  let active : (int, seg) Hashtbl.t = Hashtbl.create 64 in
  let pending : (int, attempt) Hashtbl.t = Hashtbl.create 16 in
  (* -- counters ----------------------------------------------------- *)
  let faults_injected = ref 0 in
  let faults_skipped = ref 0 in
  let interrupted = ref 0 in
  let interrupted_seconds = ref Rat.zero in
  let resumed = ref 0 in
  let lost = ref 0 in
  let launch_failures = ref 0 in
  let retries = ref 0 in
  let shed = ref 0 in
  let recovery_latencies = ref [] (* reverse recovery order *) in
  (* -- queue helpers ------------------------------------------------ *)
  let enqueue key ev = queue := Q.add key ev !queue in
  let give_up (a : attempt) ~now =
    emit ~now (fun () -> Dbp_obs.Trace_event.Shed { item = a.a_orig_id });
    match a.a_evicted_at with
    | None ->
        incr shed;
        with_metrics (fun m -> Dbp_obs.Metrics.incr m "shed_requests")
    | Some _ ->
        incr lost;
        with_metrics (fun m -> Dbp_obs.Metrics.incr m "lost_sessions")
  in
  let shed_excess_pending ~now =
    match cfg.max_pending with
    | None -> ()
    | Some bound ->
        while Hashtbl.length pending > bound do
          (* lowest priority goes first; ties shed the most recently
             queued (highest key). *)
          let victim =
            Hashtbl.fold
              (fun _ (a : attempt) acc ->
                match acc with
                | None -> Some a
                | Some (b : attempt) ->
                    if
                      a.a_priority < b.a_priority
                      || (a.a_priority = b.a_priority && a.a_key > b.a_key)
                    then Some a
                    else acc)
              pending None
          in
          match victim with
          | None -> ()
          | Some v ->
              v.a_cancelled <- true;
              Hashtbl.remove pending v.a_key;
              give_up v ~now
        done
  in
  let retry (a : attempt) ~now =
    if a.a_attempt >= cfg.max_retries then give_up a ~now
    else
      let delay = backoff_delay cfg ~attempt:a.a_attempt in
      let at = Rat.add now delay in
      if Rat.(at >= a.a_deadline) then give_up a ~now
      else begin
        incr retries;
        emit ~now (fun () ->
            Dbp_obs.Trace_event.Retry
              { item = a.a_orig_id; attempt = a.a_attempt + 1 });
        with_metrics (fun m -> Dbp_obs.Metrics.incr m "retries");
        let a' =
          { a with a_attempt = a.a_attempt + 1; a_key = fresh_seq () }
        in
        Hashtbl.replace pending a'.a_key a';
        enqueue (at, rank_dispatch, a'.a_key) (Dispatch a');
        shed_excess_pending ~now
      end
  in
  let place (a : attempt) ~now =
    let seg_id = !next_seg in
    incr next_seg;
    ignore
      (Simulator.Online.arrive online ~now ~size:a.a_size ~item_id:seg_id);
    let seg =
      {
        seg_id;
        orig_id = a.a_orig_id;
        seg_size = a.a_size;
        seg_start = now;
        seg_deadline = a.a_deadline;
        stop = a.a_deadline;
      }
    in
    segments := seg :: !segments;
    Hashtbl.replace active seg_id seg;
    enqueue (a.a_deadline, rank_depart, seg_id) (Depart seg_id);
    match a.a_evicted_at with
    | None -> ()
    | Some te ->
        incr resumed;
        let latency = Rat.sub now te in
        emit ~now (fun () ->
            Dbp_obs.Trace_event.Resume { item = a.a_orig_id; latency });
        with_metrics (fun m ->
            Dbp_obs.Metrics.incr m "resumed_sessions";
            Dbp_obs.Metrics.observe_rat m "recovery_latency" latency);
        recovery_latencies := latency :: !recovery_latencies
  in
  let dispatch (a : attempt) ~now =
    if not a.a_cancelled then begin
      Hashtbl.remove pending a.a_key;
      let views = Simulator.Online.open_bins online in
      let fits_somewhere =
        List.exists
          (fun (v : Bin.view) -> Rat.(a.a_size <= v.bin_residual))
          views
      in
      let saturated =
        match cfg.max_fleet with
        | Some m -> List.length views >= m && not fits_somewhere
        | None -> false
      in
      if saturated then retry a ~now
      else if
        cfg.launch_failure_prob > 0.0
        && Pcg32.next_float rng < cfg.launch_failure_prob
      then begin
        incr launch_failures;
        with_metrics (fun m -> Dbp_obs.Metrics.incr m "launch_failures");
        retry a ~now
      end
      else place a ~now
    end
  in
  let resolve_victim (views : Bin.view list) = function
    | Fault_plan.Bin id ->
        if List.exists (fun (v : Bin.view) -> v.Bin.bin_id = id) views then
          Some id
        else None
    | Fault_plan.Any_open ->
        let arr = Array.of_list views in
        Some arr.(Pcg32.next_int rng (Array.length arr)).Bin.bin_id
    | Fault_plan.Fullest ->
        List.fold_left
          (fun acc (v : Bin.view) ->
            match acc with
            | None -> Some v
            | Some (b : Bin.view) ->
                if Rat.(v.bin_level > b.bin_level) then Some v else acc)
          None views
        |> Option.map (fun (v : Bin.view) -> v.Bin.bin_id)
    | Fault_plan.Emptiest ->
        List.fold_left
          (fun acc (v : Bin.view) ->
            match acc with
            | None -> Some v
            | Some (b : Bin.view) ->
                if Rat.(v.bin_level < b.bin_level) then Some v else acc)
          None views
        |> Option.map (fun (v : Bin.view) -> v.Bin.bin_id)
  in
  let strike (e : Fault_plan.event) ~now =
    let views = Simulator.Online.open_bins online in
    match
      (if views = [] then None else resolve_victim views e.Fault_plan.victim)
    with
    | None -> incr faults_skipped
    | Some bin_id ->
        incr faults_injected;
        let evicted = Simulator.Online.fail_bin online ~now ~bin_id in
        List.iter
          (fun (seg_id, _) ->
            let seg = Hashtbl.find active seg_id in
            Hashtbl.remove active seg_id;
            seg.stop <- now;
            incr interrupted;
            interrupted_seconds :=
              Rat.add !interrupted_seconds (Rat.sub seg.seg_deadline now);
            let restart_at =
              match e.Fault_plan.kind with
              | Fault_plan.Crash -> Rat.add now cfg.restart_delay
              | Fault_plan.Preemption _ -> now
            in
            if Rat.(restart_at >= seg.seg_deadline) then begin
              incr lost;
              emit ~now (fun () ->
                  Dbp_obs.Trace_event.Shed { item = seg.orig_id });
              with_metrics (fun m ->
                  Dbp_obs.Metrics.incr m "lost_sessions")
            end
            else begin
              let a =
                {
                  a_orig_id = seg.orig_id;
                  a_size = seg.seg_size;
                  a_priority =
                    priority (Instance.item instance seg.orig_id);
                  a_deadline = seg.seg_deadline;
                  a_attempt = 0;
                  a_evicted_at = Some now;
                  a_key = fresh_seq ();
                  a_cancelled = false;
                }
              in
              Hashtbl.replace pending a.a_key a;
              enqueue (restart_at, rank_dispatch, a.a_key) (Dispatch a);
              shed_excess_pending ~now
            end)
          evicted
  in
  (* -- seed the queue ----------------------------------------------- *)
  Array.iter
    (fun (r : Item.t) ->
      let a =
        {
          a_orig_id = r.id;
          a_size = r.size;
          a_priority = priority r;
          a_deadline = r.departure;
          a_attempt = 0;
          a_evicted_at = None;
          a_key = r.id;
          a_cancelled = false;
        }
      in
      enqueue (r.arrival, rank_dispatch, r.id) (Dispatch a))
    (Instance.items instance);
  List.iteri
    (fun i (e : Fault_plan.event) ->
      enqueue (e.Fault_plan.at, rank_fault, i) (Fault e))
    plan.Fault_plan.events;
  (* -- main loop ----------------------------------------------------- *)
  let rec drain () =
    match Q.min_binding_opt !queue with
    | None -> ()
    | Some (((now, _, _) as key), ev) ->
        queue := Q.remove key !queue;
        (match ev with
        | Depart seg_id -> (
            match Hashtbl.find_opt active seg_id with
            | None -> () (* evicted earlier *)
            | Some seg ->
                Simulator.Online.depart online ~now ~item_id:seg_id;
                seg.stop <- now;
                Hashtbl.remove active seg_id)
        | Fault e -> strike e ~now
        | Dispatch a -> dispatch a ~now);
        drain ()
  in
  drain ();
  assert (Hashtbl.length active = 0);
  (* -- assemble the effective instance and the packing --------------- *)
  let segs = List.rev !segments in
  if segs = [] then
    invalid_arg "Injector.run: every session was shed, nothing was packed";
  let items =
    List.map
      (fun s ->
        Item.make ~id:s.seg_id ~size:s.seg_size ~arrival:s.seg_start
          ~departure:s.stop)
      segs
  in
  let effective = Instance.create ~capacity:(Instance.capacity instance) items in
  let packing =
    { (Simulator.Online.finish online ~instance:effective) with
      Packing.policy_name = policy.Policy.name }
  in
  let fault_free = Simulator.run ~policy instance in
  let served =
    Rat.sum (List.map (fun s -> Rat.sub s.stop s.seg_start) segs)
  in
  let demand =
    Rat.sum
      (Array.to_list (Instance.items instance) |> List.map Item.length)
  in
  let resilience =
    {
      Resilience.faults_injected = !faults_injected;
      faults_skipped = !faults_skipped;
      interrupted_sessions = !interrupted;
      interrupted_session_seconds = !interrupted_seconds;
      resumed_sessions = !resumed;
      lost_sessions = !lost;
      launch_failures = !launch_failures;
      retries = !retries;
      shed_requests = !shed;
      recovery_latencies = List.rev !recovery_latencies;
      served_session_seconds = served;
      demand_session_seconds = demand;
      faulty_cost = packing.Packing.total_cost;
      fault_free_cost = fault_free.Packing.total_cost;
    }
  in
  { packing; effective; resilience }
