(** Graceful-degradation metrics of a faulty run.

    Produced by {!Injector.run}; everything an operator reads off a
    post-incident dashboard: how many sessions faults interrupted and
    how much session time they displaced (the {e blast radius}), how
    many requests were shed by the admission gate or lost to exhausted
    retries, how long recovery took, and what the faults cost relative
    to the fault-free packing of the same trace.

    All quantities are exact {!Dbp_num.Rat.t}: the fault model rides on
    the same accounting as the paper's cost model (a failed bin still
    pays for its whole open interval). *)

open Dbp_num

type t = {
  faults_injected : int;  (** Fault events that found a victim. *)
  faults_skipped : int;  (** Fault events with no open bin to kill. *)
  interrupted_sessions : int;  (** Session segments evicted by faults. *)
  interrupted_session_seconds : Rat.t;
      (** Blast radius: the remaining session time displaced at each
          eviction, summed.  A consolidating policy concentrates
          sessions on few bins and so loses more here per fault. *)
  resumed_sessions : int;  (** Evictions that re-dispatched successfully. *)
  migrated_sessions : int;
      (** Sessions carried out of a failing bin by live migration (the
          recourse-budgeted first rung of the degradation ladder) —
          never interrupted at all. *)
  migrated_volume : Rat.t;  (** Total size live-migrated, exact. *)
  lost_sessions : int;
      (** Evictions never recovered: the session window closed during
          backoff, retries were exhausted, or the gate shed the retry. *)
  launch_failures : int;  (** Dispatch attempts that failed to launch. *)
  retries : int;  (** Backoff retries scheduled. *)
  shed_requests : int;
      (** Fresh requests never served at all (admission gate or
          exhausted launch retries). *)
  recovery_latencies : Rat.t list;
      (** Eviction-to-successful-restart delays, in eviction order:
          restart delay plus any launch-failure backoff. *)
  served_session_seconds : Rat.t;  (** Session time actually hosted. *)
  demand_session_seconds : Rat.t;  (** Session time requested. *)
  faulty_cost : Rat.t;  (** Total cost of the faulty packing. *)
  fault_free_cost : Rat.t;  (** [Simulator.run] cost on the same trace. *)
}

val availability : t -> Rat.t
(** [served / demand] — the fraction of requested session time actually
    hosted; [1] when nothing was interrupted, shed or lost. *)

val cost_overhead : t -> Rat.t
(** [faulty_cost / fault_free_cost]: what the faults (evictions,
    re-dispatches, stranded partial bins) cost relative to the
    fault-free packing.  Can be below [1] when faults shed so much load
    that less capacity was rented overall. *)

val mean_recovery_latency : t -> Rat.t option
val max_recovery_latency : t -> Rat.t option

val quantile_recovery_latency : t -> q:float -> Rat.t option
(** Empirical [q]-quantile (nearest-rank) of the recovery latency
    distribution.  @raise Invalid_argument unless [0 <= q <= 1]. *)

val pp : Format.formatter -> t -> unit
