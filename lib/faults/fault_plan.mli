(** Deterministic fault schedules for the DBP fleet.

    A plan is a time-sorted list of fault events, fixed before the run
    starts (the faults are oblivious to the packing — only the {e
    victim rule} is resolved against the live fleet when the event
    fires).  Plans are generated from explicit seeds, so every faulty
    run is exactly reproducible, like every other experiment in the
    repository. *)

open Dbp_num

type victim =
  | Any_open  (** A uniformly random open bin (injector's seeded PRNG). *)
  | Fullest  (** The open bin with the highest level; ties break to the
                 lowest bin id.  The adversarial "biggest blast radius"
                 rule: consolidating policies concentrate sessions, so
                 this is where Best Fit hurts most. *)
  | Emptiest  (** Lowest level, ties to the lowest bin id. *)
  | Bin of int  (** That bin, if it is currently open. *)

type kind =
  | Crash
      (** Fail-stop: the server vanishes; evicted sessions re-dispatch
          only after the injector's [restart_delay]. *)
  | Preemption of { warning : Rat.t }
      (** Spot reclaim with [warning] time of advance notice: the
          operator pre-warms replacement capacity, so evicted sessions
          re-dispatch immediately at the preemption instant. *)

type event = { at : Rat.t; victim : victim; kind : kind }

type t = {
  label : string;
  events : event list;  (** Sorted by [at], stable. *)
}

val empty : t

val make : ?label:string -> event list -> t
(** Sorts the events by time (stably).
    @raise Invalid_argument if an event time is negative. *)

val is_empty : t -> bool
val count : t -> int

val merge : t -> t -> t
(** Interleaves the two schedules by time. *)

val poisson_crashes : seed:int64 -> rate:float -> horizon:Rat.t -> t
(** Crash times drawn from a Poisson process with [rate] faults per
    unit time over [[0, horizon]], each killing a random open bin.
    Times are quantised to the 1/1000 grid, keeping all downstream
    accounting exact.
    @raise Invalid_argument if [rate < 0]; a zero rate gives {!empty}. *)

val spot_preemptions :
  seed:int64 -> rate:float -> warning:Rat.t -> horizon:Rat.t -> t
(** Like {!poisson_crashes} but each event is a {!Preemption} with the
    given warning, hitting a random open bin. *)

val targeted_fullest : times:Rat.t list -> t
(** "Kill the fullest bin" at each given time — the adversarial plan
    used by experiment E18 to measure blast radius. *)

val pp : Format.formatter -> t -> unit
