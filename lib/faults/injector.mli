(** Weaves a {!Fault_plan} into an instance's event stream and drives
    {!Dbp_core.Simulator.Online} through crashes and recoveries.

    The injector replays the trace exactly like [Simulator.run]
    (departures before arrivals at equal times, submission order on
    ties) with fault events interleaved {e between} the departures and
    the arrivals of their instant.  When a fault fires, the victim bin
    is crashed with [Simulator.Online.fail_bin]: its sessions are
    evicted, the bin pays for its open interval, and each evicted
    session is re-dispatched through the {e same policy} as a fresh
    item covering the remaining session window — after the configured
    restart delay for crashes, immediately for warned spot preemptions.

    Dispatch attempts (fresh arrivals and recoveries alike) can fail to
    launch with probability [launch_failure_prob]; failed launches
    retry under capped exponential backoff up to [max_retries] times.
    An optional admission gate bounds the fleet: when [max_fleet] bins
    are open and the item fits none of them, admission is deferred
    (backoff again), and when more than [max_pending] deferred requests
    are queued the lowest-priority one is shed.  A session whose window
    closes before a retry lands is shed (never served) or lost
    (evicted and not recovered).

    With the empty plan and the default configuration the injector is a
    bit-for-bit replay of [Simulator.run]: same bins, same exact
    [Rat.t] total cost — the fault machinery adds nothing until faults
    actually happen (tested across policies in [test/test_faults.ml]).

    Determinism: victim choice and launch failures draw from a
    [Pcg32] stream seeded by [config.seed]; everything else is exact
    rational arithmetic on a deterministic event order. *)

open Dbp_num
open Dbp_core

type config = {
  seed : int64;  (** PRNG stream for victim choice and launch rolls. *)
  launch_failure_prob : float;  (** Per dispatch attempt, in [[0, 1]]. *)
  base_backoff : Rat.t;  (** First retry delay. *)
  backoff_cap : Rat.t;  (** Ceiling on a single backoff delay. *)
  max_retries : int;  (** Retries per dispatch chain before giving up. *)
  restart_delay : Rat.t;  (** Crash eviction to re-dispatch delay. *)
  max_fleet : int option;
      (** Admission gate: defer arrivals that would need a new bin
          beyond this many open ones.  Advisory for non-Any-Fit
          policies — the gate cannot override a policy that opens a
          new bin although a fit existed.  [None] disables. *)
  max_pending : int option;
      (** Bound on simultaneously queued retries/recoveries; beyond
          it the lowest-priority pending request is shed.  [None]
          disables. *)
}

val default_config : config
(** Seed 42, no launch failures, backoff 1/4 doubling capped at 4,
    5 retries, restart delay 1/4, no fleet or pending bound. *)

type result = {
  packing : Packing.t;
      (** The faulty packing over {!field:effective} — validated by the
          same [Packing.validate] as every fault-free packing. *)
  effective : Instance.t;
      (** The session segments actually hosted: the original items,
          truncated at their eviction instants, plus one item per
          successful recovery covering the remaining window.  Shed and
          lost windows are absent. *)
  resilience : Resilience.t;
}

val run :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?metrics:Dbp_obs.Metrics.t ->
  ?profile:Dbp_obs.Profile.t ->
  ?config:config ->
  ?priority:(Item.t -> int) ->
  plan:Fault_plan.t ->
  policy:Policy.t ->
  Instance.t ->
  result
(** [priority] maps an original item to its admission priority (higher
    keeps it longer under shedding; default: all 0).  [audit] (default
    [false]) runs the underlying engine with the runtime auditor
    enabled ({!Dbp_core.Audit}), re-verifying every invariant after
    each arrival, departure and bin failure.

    The observability taps are shared with the underlying engine, so a
    [sink] sees one totally ordered stream: engine events
    (arrive/pack/depart/bin_open/bin_close/fail_bin) interleaved with
    the injector's own [Retry] (a dispatch attempt backed off), [Shed]
    (a session permanently dropped — never served, or evicted past its
    deadline) and [Resume] (an evicted session re-placed, with its
    recovery latency).  [metrics] additionally accrues
    [retries]/[shed_requests]/[lost_sessions]/[launch_failures]/
    [resumed_sessions] counters and a [recovery_latency] histogram.
    @raise Invalid_argument if every session was shed (nothing was ever
    placed, so there is no packing to report). *)
