(** Weaves a {!Fault_plan} into an instance's event stream and drives
    {!Dbp_core.Simulator.Online} through crashes and recoveries.

    The injector replays the trace exactly like [Simulator.run]
    (departures before arrivals at equal times, submission order on
    ties) with fault events interleaved {e between} the departures and
    the arrivals of their instant.  When a fault fires, the victim bin
    is crashed with [Simulator.Online.fail_bin]: its sessions are
    evicted, the bin pays for its open interval, and each evicted
    session is re-dispatched through the {e same policy} as a fresh
    item covering the remaining session window — after the configured
    restart delay for crashes, immediately for warned spot preemptions.

    Dispatch attempts (fresh arrivals and recoveries alike) can fail to
    launch with probability [launch_failure_prob]; failed launches
    retry under capped exponential backoff up to [max_retries] times.
    An optional admission gate bounds the fleet: when [max_fleet] bins
    are open and the item fits none of them, admission is deferred
    (backoff again), and when more than [max_pending] deferred requests
    are queued the lowest-priority one is shed.  A session whose window
    closes before a retry lands is shed (never served) or lost
    (evicted and not recovered).

    With the empty plan and the default configuration the injector is a
    bit-for-bit replay of [Simulator.run]: same bins, same exact
    [Rat.t] total cost — the fault machinery adds nothing until faults
    actually happen (tested across policies in [test/test_faults.ml]).

    Determinism: victim choice and launch failures draw from a
    [Pcg32] stream seeded by [config.seed]; everything else is exact
    rational arithmetic on a deterministic event order. *)

open Dbp_num
open Dbp_core

type config = {
  seed : int64;  (** PRNG stream for victim choice and launch rolls. *)
  launch_failure_prob : float;  (** Per dispatch attempt, in [[0, 1]]. *)
  base_backoff : Rat.t;  (** First retry delay. *)
  backoff_cap : Rat.t;  (** Ceiling on a single backoff delay. *)
  max_retries : int;  (** Retries per dispatch chain before giving up. *)
  restart_delay : Rat.t;  (** Crash eviction to re-dispatch delay. *)
  max_fleet : int option;
      (** Admission gate: defer arrivals that would need a new bin
          beyond this many open ones.  Advisory for non-Any-Fit
          policies — the gate cannot override a policy that opens a
          new bin although a fit existed.  [None] disables. *)
  max_pending : int option;
      (** Bound on simultaneously queued retries/recoveries; beyond
          it the lowest-priority pending request is shed.  [None]
          disables. *)
}

val default_config : config
(** Seed 42, no launch failures, backoff 1/4 doubling capped at 4,
    5 retries, restart delay 1/4, no fleet or pending bound. *)

type result = {
  packing : Packing.t;
      (** The faulty packing over {!field:effective} — validated by the
          same [Packing.validate] as every fault-free packing. *)
  effective : Instance.t;
      (** The session segments actually hosted: the original items,
          truncated at their eviction instants, plus one item per
          successful recovery covering the remaining window.  Shed and
          lost windows are absent. *)
  resilience : Resilience.t;
}

type state
(** A fault-injected run in flight: the engine, the PRNG, the event
    queue, the segment ledger and every resilience counter.  Built by
    {!create}, advanced by {!step}/{!drain}, finalised by {!finish} —
    and checkpointable mid-drain via {!freeze}/{!thaw}. *)

val create :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?metrics:Dbp_obs.Metrics.t ->
  ?profile:Dbp_obs.Profile.t ->
  ?config:config ->
  ?priority:(Item.t -> int) ->
  ?repack:Dbp_repack.Budget.spec * Dbp_repack.Repack_policy.t ->
  plan:Fault_plan.t ->
  policy:Policy.t ->
  Instance.t ->
  state
(** Seeds the event queue with every trace arrival, departure and
    planned fault; nothing has executed yet.

    [repack] arms the live-migration rung of the degradation ladder:
    when a fault strikes, the victim bin's sessions are first migrated
    out (oldest placement first, first-fit into the surviving fleet)
    while the recourse budget lasts — these sessions are never
    interrupted at all.  Only what the budget or the fleet's free
    space cannot cover is evicted into the usual
    restart/backoff/shed rungs.  The budget ticks once per injector
    queue event (so [Per_event]/[Token_bucket] replenish on the same
    deterministic clock as the repack {!Dbp_repack.Runner}).  With the
    budget {!Dbp_repack.Budget.zero} (or policy [No_repack], or
    [repack] unset) the injector is bit-identical to the evict-only
    one.
    @raise Invalid_argument on a malformed config or budget spec. *)

val step : state -> bool
(** Executes the earliest queued event; [false] when the queue is
    empty. *)

val drain :
  ?checkpoint_every:int ->
  ?on_checkpoint:(events_done:int -> state -> unit) ->
  state ->
  unit
(** Runs {!step} to exhaustion.  [checkpoint_every] (with
    [on_checkpoint]) calls the hook after every [k]-th queue event —
    the periodic checkpoint tap, typically {!freeze} + serialisation.
    @raise Invalid_argument if [checkpoint_every <= 0]. *)

val finish : state -> result
(** Assembles the effective instance, the packing and the resilience
    report; call after {!drain}.
    @raise Invalid_argument if every session was shed. *)

val events_done : state -> int
(** Queue events executed so far. *)

val engine : state -> Simulator.Online.t
(** The underlying engine (shared taps, open-fleet inspection). *)

(** The serialisable image of a mid-drain {!state}: the frozen engine
    plus the injector's own queue, segments, PRNG position and
    counters.  Everything re-suppliable at thaw (instance, policy,
    observability taps, priority function) stays out. *)
module Frozen : sig
  type fattempt = {
    fa_orig : int;
    fa_size : Rat.t;
    fa_priority : int;
    fa_deadline : Rat.t;
    fa_attempt : int;
    fa_evicted_at : Rat.t option;
    fa_key : int;
    fa_cancelled : bool;
    fa_pending : bool;
        (** Member of the pending (shed-eligible) table at freeze. *)
  }

  type fev =
    | F_depart of int
    | F_fault of Fault_plan.event
    | F_dispatch of fattempt

  type fseg = {
    fs_id : int;
    fs_orig : int;
    fs_size : Rat.t;
    fs_start : Rat.t;
    fs_deadline : Rat.t;
    fs_stop : Rat.t;
    fs_active : bool;
  }

  type t = {
    f_engine : Simulator.Online.Frozen.t;
    f_config : config;
    f_rng : int64 * int64;  (** Pcg32 (state, increment). *)
    f_seq : int;
    f_next_seg : int;
    f_events_done : int;
    f_segments : fseg list;  (** In seg_id order. *)
    f_queue : ((Rat.t * int * int) * fev) list;
        (** (time, rank, seq) keys with their events, ascending.
            Ranks: 0 departures, 1 faults, 2 dispatches. *)
    f_faults_injected : int;
    f_faults_skipped : int;
    f_interrupted : int;
    f_interrupted_seconds : Rat.t;
    f_resumed : int;
    f_lost : int;
    f_launch_failures : int;
    f_retries : int;
    f_shed : int;
    f_recovery_latencies : Rat.t list;  (** Chronological. *)
    f_repack :
      (Dbp_repack.Budget.Frozen.t * Dbp_repack.Repack_policy.t) option;
        (** Recourse budget balance and repack policy, when the
            live-migration rung is armed. *)
  }
end

val freeze : state -> Frozen.t
(** Captures the whole run mid-drain (crash-recovery image): engine
    state including mid-failure bin accounting, pending recoveries,
    backoff retries in flight, PRNG position and all counters.
    @raise Dbp_core.Simulator.Invalid_step if the policy's state is
    volatile. *)

val thaw :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?metrics:Dbp_obs.Metrics.t ->
  ?profile:Dbp_obs.Profile.t ->
  ?priority:(Item.t -> int) ->
  policy:Policy.t ->
  instance:Instance.t ->
  Frozen.t ->
  state
(** Rebuilds the run: {!drain} + {!finish} on the result is
    bit-identical to never having stopped (same packing, cost,
    resilience counters and trace events).  [policy] and [instance]
    must be the ones the frozen run was created with; [priority] is
    re-supplied (it only affects future evictions' recovery
    attempts).
    @raise Invalid_argument on an internally inconsistent image. *)

val run :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?metrics:Dbp_obs.Metrics.t ->
  ?profile:Dbp_obs.Profile.t ->
  ?config:config ->
  ?priority:(Item.t -> int) ->
  ?repack:Dbp_repack.Budget.spec * Dbp_repack.Repack_policy.t ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(events_done:int -> state -> unit) ->
  plan:Fault_plan.t ->
  policy:Policy.t ->
  Instance.t ->
  result
(** [priority] maps an original item to its admission priority (higher
    keeps it longer under shedding; default: all 0).  [audit] (default
    [false]) runs the underlying engine with the runtime auditor
    enabled ({!Dbp_core.Audit}), re-verifying every invariant after
    each arrival, departure and bin failure.

    The observability taps are shared with the underlying engine, so a
    [sink] sees one totally ordered stream: engine events
    (arrive/pack/depart/bin_open/bin_close/fail_bin) interleaved with
    the injector's own [Retry] (a dispatch attempt backed off), [Shed]
    (a session permanently dropped — never served, or evicted past its
    deadline) and [Resume] (an evicted session re-placed, with its
    recovery latency).  [metrics] additionally accrues
    [retries]/[shed_requests]/[lost_sessions]/[launch_failures]/
    [resumed_sessions] counters and a [recovery_latency] histogram.
    @raise Invalid_argument if every session was shed (nothing was ever
    placed, so there is no packing to report). *)
