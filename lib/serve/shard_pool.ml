(* Per-shard worker domains.  This module is (with
   lib/experiments/registry.ml) one of the two sanctioned homes for
   Domain/Atomic/Mutex/Condition — lint R5 and typed-lint T3 fence the
   primitives everywhere else.

   Memory discipline: [pending], [failure], [stopped] and the outbox
   are only touched under [olock]; each mailbox only under its own
   [lock].  Shard state reached by [handler] is created before the
   domains spawn (the spawn edge publishes it) and touched by exactly
   one domain afterwards, so no further synchronisation is needed. *)

exception Stopped

type 'req box = {
  lock : Mutex.t;
  cond : Condition.t;  (* signalled on submit and on stop *)
  queue : 'req Queue.t;
  mutable stop : bool;
}

type ('req, 'resp) t = {
  boxes : 'req box array;
  handler : shard:int -> 'req -> 'resp list;
  olock : Mutex.t;
  ocond : Condition.t;  (* signalled when pending drops or a shard fails *)
  outbox : (int * 'resp) Queue.t;
  mutable pending : int;  (* submitted, not yet processed (or discarded) *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable stopped : bool;
  mutable domains : unit Domain.t array;
}

let shards t = Array.length t.boxes

(* One worker: wake, transfer the whole mailbox (the tick batch),
   process it, post the responses in one outbox append.  A handler
   exception kills the shard: its queued work is discarded (and
   accounted out of [pending] so quiesce still converges), the first
   pool-wide failure is parked for the owner to re-raise. *)
let worker t k () =
  let box = t.boxes.(k) in
  let batch = Queue.create () in
  let rec loop () =
    Mutex.lock box.lock;
    while Queue.is_empty box.queue && not box.stop do
      Condition.wait box.cond box.lock
    done;
    Queue.transfer box.queue batch;
    Mutex.unlock box.lock;
    let n = Queue.length batch in
    if n = 0 then () (* stop requested and mailbox drained *)
    else begin
      let out = ref [] in
      let outcome =
        match
          Queue.iter
            (fun req ->
              List.iter (fun r -> out := (k, r) :: !out) (t.handler ~shard:k req))
            batch
        with
        | () -> None
        | exception e -> Some (e, Printexc.get_raw_backtrace ())
      in
      Queue.clear batch;
      match outcome with
      | None ->
          Mutex.lock t.olock;
          List.iter (fun p -> Queue.add p t.outbox) (List.rev !out);
          t.pending <- t.pending - n;
          Condition.broadcast t.ocond;
          Mutex.unlock t.olock;
          loop ()
      | Some f ->
          Mutex.lock box.lock;
          box.stop <- true;
          let leftover = Queue.length box.queue in
          Queue.clear box.queue;
          Mutex.unlock box.lock;
          Mutex.lock t.olock;
          if Option.is_none t.failure then t.failure <- Some f;
          t.pending <- t.pending - n - leftover;
          Condition.broadcast t.ocond;
          Mutex.unlock t.olock
    end
  in
  loop ()

let create ~shards ~handler =
  if shards < 1 then invalid_arg "Shard_pool.create: shards < 1";
  let boxes =
    Array.init shards (fun _ ->
        {
          lock = Mutex.create ();
          cond = Condition.create ();
          queue = Queue.create ();
          stop = false;
        })
  in
  let t =
    {
      boxes;
      handler;
      olock = Mutex.create ();
      ocond = Condition.create ();
      outbox = Queue.create ();
      pending = 0;
      failure = None;
      stopped = false;
      domains = [||];
    }
  in
  t.domains <- Array.init shards (fun k -> Domain.spawn (worker t k));
  t

let submit t ~shard req =
  if shard < 0 || shard >= Array.length t.boxes then
    invalid_arg "Shard_pool.submit: shard out of range";
  Mutex.lock t.olock;
  if t.stopped || Option.is_some t.failure then begin
    Mutex.unlock t.olock;
    raise Stopped
  end;
  (* Count the request before it is visible in any mailbox, so a
     concurrent [quiesce] can never observe pending = 0 mid-hand-off. *)
  t.pending <- t.pending + 1;
  Mutex.unlock t.olock;
  let box = t.boxes.(shard) in
  Mutex.lock box.lock;
  if box.stop then begin
    Mutex.unlock box.lock;
    Mutex.lock t.olock;
    t.pending <- t.pending - 1;
    Condition.broadcast t.ocond;
    Mutex.unlock t.olock;
    raise Stopped
  end;
  Queue.add req box.queue;
  Condition.signal box.cond;
  Mutex.unlock box.lock

let drain_outbox t =
  let out = ref [] in
  while not (Queue.is_empty t.outbox) do
    out := Queue.pop t.outbox :: !out
  done;
  List.rev !out

let poll t =
  Mutex.lock t.olock;
  let out = drain_outbox t in
  Mutex.unlock t.olock;
  out

let quiesce t =
  Mutex.lock t.olock;
  while t.pending > 0 && Option.is_none t.failure do
    Condition.wait t.ocond t.olock
  done;
  let out = drain_outbox t in
  let f = t.failure in
  Mutex.unlock t.olock;
  match f with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> out

let shutdown t =
  Mutex.lock t.olock;
  let already = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.olock;
  if already then []
  else begin
    Array.iter
      (fun box ->
        Mutex.lock box.lock;
        box.stop <- true;
        Condition.signal box.cond;
        Mutex.unlock box.lock)
      t.boxes;
    Array.iter Domain.join t.domains;
    Mutex.lock t.olock;
    let out = drain_outbox t in
    let f = t.failure in
    Mutex.unlock t.olock;
    match f with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> out
  end

let spawn_background f =
  let d =
    Domain.spawn (fun () ->
        match f () with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
  in
  fun () ->
    match Domain.join d with
    | Ok v -> v
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt
