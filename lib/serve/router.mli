(** Shard routing for the fleet service.

    The default policy is the paper's Modified First Fit pool split
    applied as a sharding strategy: items at least [capacity / k] are
    "large" and own shard 0 (MFF's dedicated large pool), the rest
    spread over shards [1 .. shards-1] by coarse size class
    ([floor (capacity / size)], capped), so items of similar size land
    together — exactly the locality the size-class policies exploit.
    [Hash] routes by item id and is the fallback for workloads whose
    sizes carry no signal.

    Routing is total over live shards: when the nominal shard is down
    the router probes linearly to the next live one, so the placement
    path keeps answering through shard loss. *)

open Dbp_num

type policy = Size_class | Hash

val policy_of_string : string -> (policy, string) result
(** ["size-class" | "hash"]. *)

val policy_name : policy -> string

type t

val create : policy:policy -> shards:int -> capacity:Rat.t -> k:Rat.t -> t
(** [k] is the large-pool divisor (threshold [capacity / k]), as in
    [mff:<k>].
    @raise Invalid_argument if [shards < 1] or [k <= 1]. *)

val route : t -> alive:(int -> bool) -> size:Rat.t -> item_id:int -> int
(** The shard that owns this arrival.
    @raise Invalid_argument if no shard is alive. *)
