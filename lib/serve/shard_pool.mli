(** Worker domains behind per-shard FIFO mailboxes.

    The fleet service runs one {!Dbp_core.Simulator.Online} engine per
    shard, each owned by a dedicated OCaml 5 domain.  This module is
    the generic substrate: [shards] domains, each draining its own
    mailbox in submission order, posting responses to a shared outbox.
    A worker wakes, transfers its {e whole} mailbox, and processes the
    batch before looking again — that is the serve loop's tick
    batching: whatever accumulated while the shard was busy is handled
    in one sweep, amortising the wakeup.

    Together with [lib/experiments/registry.ml] this is one of the two
    sanctioned homes for [Domain]/[Atomic]/[Mutex]/[Condition] (lint
    R5 and typed T3); everywhere else parallelism must go through one
    of the two.

    Failure contract: a handler exception kills its shard — the
    shard's queued work is discarded, the first failure (pool-wide) is
    parked with its backtrace, and {!quiesce}, {!shutdown} and
    {!submit} re-raise/refuse from then on.  Per-request ordering
    within a shard is FIFO; responses from different shards interleave
    arbitrarily. *)

type ('req, 'resp) t

exception Stopped
(** Raised by {!submit} after {!shutdown} or after a shard failure. *)

val create :
  shards:int -> handler:(shard:int -> 'req -> 'resp list) -> ('req, 'resp) t
(** Spawns [shards] worker domains.  [handler ~shard req] runs on
    shard [shard]'s domain; any state it reaches must be owned by that
    shard alone (build per-shard state before [create] — the spawn
    edge publishes it safely).
    @raise Invalid_argument if [shards < 1]. *)

val shards : _ t -> int

val submit : ('req, _) t -> shard:int -> 'req -> unit
(** Enqueue on a shard's mailbox; never blocks on the worker.
    @raise Stopped if the pool is shut down or has failed.
    @raise Invalid_argument if [shard] is out of range. *)

val poll : (_, 'resp) t -> (int * 'resp) list
(** Drain whatever responses are ready, [(shard, response)] in
    completion order, without blocking. *)

val quiesce : (_, 'resp) t -> (int * 'resp) list
(** Block until every submitted request has been processed, then
    drain the outbox.  Re-raises a parked shard failure (with its
    original backtrace). *)

val shutdown : (_, 'resp) t -> (int * 'resp) list
(** Stop accepting work, let each shard drain its mailbox, join every
    domain, and return the remaining responses.  Idempotent (second
    call returns []).  Re-raises a parked shard failure after all
    domains are joined. *)

val spawn_background : (unit -> 'a) -> unit -> 'a
(** [spawn_background f] runs [f] on a fresh domain immediately and
    returns its join: calling the result blocks until [f] finishes
    and returns its value, re-raising [f]'s exception with the
    original backtrace.  The serve CLI uses it to run the daemon side
    of an in-process socketpair while the caller drives the client
    side. *)
