(** The fleet service: a long-running sharded allocator daemon.

    [dbp serve] turns the batch simulator into a serving system: it
    reads arrive/depart events as [dbp-trace/2] NDJSON from a stream
    (stdin, a Unix socket, or TCP), answers each arrival with a
    placement line naming the bin, and shards bins across OCaml 5
    domains — each shard a full {!Dbp_core.Simulator.Online} engine
    behind a {!Shard_pool} mailbox, events batched per tick, arrivals
    routed by {!Router} (MFF's large/small pool split as the sharding
    strategy).

    Wire protocol, server to client, one JSON object per line:
    - [{"kind":"place","seq":s,"item":i,"bin":b,"shard":k}] — the
      answer to the arrival with sequence number [s].  FIFO per
      shard; across shards lines interleave in completion order.
    - [{"kind":"summary","schema":"dbp-serve-summary/1",...}] — at
      end of stream: fleet counters and the exact total cost.  The
      fleet cost is the exact {!Dbp_num.Rat} sum of per-shard costs,
      and at [--shards 1] its string is bit-identical to
      [dbp simulate] on the same instance.
    - [{"kind":"error",...}] — protocol violation; the daemon exits
      with status 2 (malformed input, sequence/time violations,
      unknown departures, oversized items).

    Client to server: [dbp-trace/2] [arrive] and [depart] events,
    sequence numbers exactly [0, 1, 2, ...] per connection, time
    non-decreasing across the whole daemon lifetime.  A [depart]'s
    [bin]/[held] fields are ignored (the client cannot know them);
    by convention a client sends [-1] and ["0"].

    Shard loss ({!Fleet.fail_shard}, exercised by tests) degrades
    gracefully: every open bin on the failed shard fails, victims are
    re-admitted into surviving shards through the budget-aware
    migration path (PR 6's {!Dbp_repack.Budget}), and sessions the
    budget cannot afford are shed — the degradation ladder from
    full-fleet to best-effort.  On SIGTERM the daemon quiesces,
    flushes one [dbp-checkpoint/1] snapshot per shard and exits 0. *)

open Dbp_num
open Dbp_core

exception Protocol of string
(** A client broke the wire contract; the CLI maps it to exit 2. *)

type config = {
  shards : int;
  policy : Policy.t;  (** Shared across shards; each engine spawns
                          fresh policy state. *)
  policy_name : string;
  capacity : Rat.t;
  seed : int64;  (** Recorded in checkpoint metadata. *)
  route : Router.policy;
  split_k : Rat.t;  (** Router large-pool divisor, as in [mff:<k>]. *)
  grid_den : int option;
      (** Fixed-point denominator for the per-shard engines' fast
          track; [None] runs exact. *)
  budget : Dbp_repack.Budget.spec;
      (** Recourse for shard-loss migration. *)
}

val default_config : unit -> config
(** First Fit, 1 shard, capacity 1, size-class routing with [k = 2],
    exact track, unlimited migration budget. *)

type placement = { p_seq : int; p_item : int; p_bin : int; p_shard : int }

type summary = {
  su_shards : int;
  su_live : int;
  su_arrivals : int;
  su_departures : int;
  su_active : int;  (** Sessions resident when the summary was cut. *)
  su_migrated : int;  (** Sessions moved off failed shards. *)
  su_shed : int;  (** Sessions lost to shard failure (budget denied). *)
  su_bins_opened : int;
  su_cost : Rat.t;  (** Exact fleet bin-seconds so far. *)
  su_shard_costs : Rat.t array;
}

val placement_line : placement -> string
val summary_line : config -> summary -> string

(** The transport-independent fleet: shard engines, router, session
    tables, budget.  Exposed so tests can drive it directly. *)
module Fleet : sig
  type t

  val create : config -> t

  val arrive : t -> seq:int -> now:Rat.t -> size:Rat.t -> item:int -> unit
  (** Route and enqueue an arrival.  @raise Protocol on duplicate
      ids, time regression, or sizes outside (0, capacity]. *)

  val depart : t -> now:Rat.t -> item:int -> unit
  (** @raise Protocol for an unknown item.  Departures of shed
      sessions are counted and dropped. *)

  val apply : t -> Dbp_obs.Trace_event.t -> unit
  (** Dispatch a wire event.  @raise Protocol on kinds other than
      [arrive]/[depart]. *)

  val placements : t -> placement list
  (** Non-blocking: whatever placement answers are ready. *)

  val quiesce : t -> placement list
  (** Block until every enqueued event is processed. *)

  val fail_shard : t -> now:Rat.t -> int -> placement list
  (** Simulated shard loss: fail every open bin on the shard, then
      migrate its victims into surviving shards within the budget
      (shedding the rest).  Returns placements that were in flight.
      @raise Invalid_argument if the shard id is out of range or all
      shards would be dead. *)

  val snapshot : t -> placement list * Simulator.Online.Frozen.t array
  (** Quiesce and freeze every shard engine (the pool keeps
      running). *)

  val summarize : t -> Simulator.Online.Frozen.t array -> summary

  val events_applied : t -> int

  val shutdown : t -> unit

  val write_checkpoints :
    t -> prefix:string -> Simulator.Online.Frozen.t array -> string list
  (** One [dbp-checkpoint/1] file per shard, [PREFIX.shard<k>];
      returns the paths written. *)
end

val install_sigterm : unit -> unit -> bool
(** Installs SIGTERM/SIGINT handlers; the returned thunk reports
    whether a signal has arrived.  Also ignores SIGPIPE so a client
    hangup surfaces as [EPIPE] instead of killing the daemon. *)

val run_stream :
  config ->
  ?checkpoint:string ->
  ?should_stop:(unit -> bool) ->
  input:Unix.file_descr ->
  output:Unix.file_descr ->
  unit ->
  (summary, string) result
(** Serve one NDJSON stream to completion ([--stdio] and the replay
    socketpair): placements and the final summary go to [output].
    [should_stop] is polled between ticks; when it fires the daemon
    quiesces, writes [checkpoint] snapshots if configured, emits the
    summary and returns. *)

val run_listener :
  config ->
  ?checkpoint:string ->
  ?should_stop:(unit -> bool) ->
  Unix.file_descr ->
  (summary, string) result
(** The daemon proper: accept one client at a time on a listening
    socket, each connection a fresh sequence-numbered stream against
    the {e same} fleet (sessions persist across connections; time is
    monotone for the daemon's lifetime).  Each client receives a
    summary when its stream ends.  Returns at SIGTERM (flushing
    checkpoints) or on a protocol error. *)

val replay_client :
  ?echo:(string -> unit) ->
  Unix.file_descr ->
  Instance.t ->
  (string, string) result
(** Stream an instance's canonical event order to a connected serve
    daemon, draining placements concurrently ([echo] sees every
    placement line); returns the daemon's summary line. *)

val replay :
  config ->
  ?echo:(string -> unit) ->
  Instance.t ->
  (string, string) result
(** In-process end-to-end: run the daemon on one end of a socketpair
    (background domain) and {!replay_client} on the other.  Returns
    the summary line the daemon produced. *)

type bench_result = {
  br_sessions : int;
  br_events : int;
  br_elapsed_s : float;
  br_events_per_s : float;
  br_p50_us : float;  (** Median arrival-to-placement latency. *)
  br_p99_us : float;
  br_cost : string;  (** The daemon's exact fleet cost string. *)
  br_bins_opened : int;
}

val bench : config -> sessions:int -> (bench_result, string) result
(** The soak: drive [sessions] concurrent sessions (one arrival and
    one departure each, all alive at peak) through a socketpair
    against a live daemon, measuring client-observed placement
    latency per arrival and sustained events/s over the whole
    stream. *)

val bench_json : config -> bench_result -> string
(** The [dbp-bench-serve/1] BENCH JSON document. *)
