open Dbp_num

type policy = Size_class | Hash

let policy_of_string = function
  | "size-class" -> Ok Size_class
  | "hash" -> Ok Hash
  | s -> Error (Printf.sprintf "unknown route policy %S (size-class|hash)" s)

let policy_name = function Size_class -> "size-class" | Hash -> "hash"

type t = { policy : policy; shards : int; threshold : Rat.t; capacity : Rat.t }

(* Small items are grouped by [floor (capacity / size)] — the "at most
   c per bin" classes the size-class policies reason about.  Classes
   above this cap carry no locality worth separating. *)
let max_class = 64

let create ~policy ~shards ~capacity ~k =
  if shards < 1 then invalid_arg "Router.create: shards < 1";
  if Rat.(k <= one) then invalid_arg "Router.create: k <= 1";
  { policy; shards; threshold = Rat.div capacity k; capacity }

let nominal t ~size ~item_id =
  match t.policy with
  | Hash -> item_id mod t.shards
  | Size_class ->
      if t.shards = 1 then 0
      else if Rat.(size >= t.threshold) then 0
      else
        let c =
          if Rat.sign size <= 0 then max_class
          else Stdlib.min max_class (Rat.floor (Rat.div t.capacity size))
        in
        1 + (c mod (t.shards - 1))

let route t ~alive ~size ~item_id =
  let s0 = nominal t ~size ~item_id in
  let rec probe i =
    if i >= t.shards then invalid_arg "Router.route: no live shard"
    else
      let s = (s0 + i) mod t.shards in
      if alive s then s else probe (i + 1)
  in
  probe 0
