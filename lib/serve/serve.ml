open Dbp_num
open Dbp_core
module TE = Dbp_obs.Trace_event
module Budget = Dbp_repack.Budget

exception Protocol of string

let protocol fmt = Printf.ksprintf (fun m -> raise (Protocol m)) fmt

type config = {
  shards : int;
  policy : Policy.t;
  policy_name : string;
  capacity : Rat.t;
  seed : int64;
  route : Router.policy;
  split_k : Rat.t;
  grid_den : int option;
  budget : Budget.spec;
}

let default_config () =
  let policy =
    match Algorithms.find "first-fit" with
    | Some p -> p
    | None -> assert false
  in
  {
    shards = 1;
    policy;
    policy_name = "first-fit";
    capacity = Rat.one;
    seed = Algorithms.default_seed;
    route = Router.Size_class;
    split_k = Rat.two;
    grid_den = None;
    budget = Budget.unlimited;
  }

type placement = { p_seq : int; p_item : int; p_bin : int; p_shard : int }

type summary = {
  su_shards : int;
  su_live : int;
  su_arrivals : int;
  su_departures : int;
  su_active : int;
  su_migrated : int;
  su_shed : int;
  su_bins_opened : int;
  su_cost : Rat.t;
  su_shard_costs : Rat.t array;
}

let placement_line p =
  Printf.sprintf {|{"kind":"place","seq":%d,"item":%d,"bin":%d,"shard":%d}|}
    p.p_seq p.p_item p.p_bin p.p_shard

let summary_line cfg su =
  let shard_costs =
    Array.to_list su.su_shard_costs
    |> List.map Rat.to_string |> String.concat ","
  in
  Printf.sprintf
    {|{"kind":"summary","schema":"dbp-serve-summary/1","shards":%d,"live":%d,"policy":"%s","route":"%s","arrivals":%d,"departures":%d,"active":%d,"migrated":%d,"shed":%d,"bins_opened":%d,"cost":"%s","shard_costs":"%s"}|}
    su.su_shards su.su_live cfg.policy_name
    (Router.policy_name cfg.route)
    su.su_arrivals su.su_departures su.su_active su.su_migrated su.su_shed
    su.su_bins_opened
    (Rat.to_string su.su_cost)
    shard_costs

let error_line msg =
  Printf.sprintf {|{"kind":"error","message":"%s"}|}
    (String.concat ""
       (List.map
          (fun c ->
            match c with
            | '"' -> "\\\""
            | '\\' -> "\\\\"
            | '\n' -> "\\n"
            | c -> String.make 1 c)
          (List.init (String.length msg) (String.get msg))))

let stream_error_line (e : TE.stream_error) =
  Printf.sprintf {|{"kind":"error","line":%d,"byte":%d,"message":"%s"}|} e.line
    e.byte
    (String.map (fun c -> if c = '"' then '\'' else c) e.message)

(* ---- the fleet ------------------------------------------------------- *)

module Fleet = struct
  type req =
    | R_arrive of { seq : int; now : Rat.t; size : Rat.t; item : int }
    | R_depart of { now : Rat.t; item : int }
    | R_fail of { now : Rat.t }
    | R_freeze

  type resp =
    | P_placed of { seq : int; item : int; bin : int }
    | P_victims of (int * Rat.t) list
    | P_frozen of Simulator.Online.Frozen.t

  type t = {
    cfg : config;
    router : Router.t;
    pool : (req, resp) Shard_pool.t;
    budget : Budget.t;
    item_shard : (int, int) Hashtbl.t;  (* client id -> shard *)
    alias : (int, int) Hashtbl.t;  (* client id -> engine id *)
    owner : (int, int) Hashtbl.t;  (* synthetic engine id -> client id *)
    lost : (int, unit) Hashtbl.t;  (* shed client ids *)
    dead : bool array;
    mutable now : Rat.t option;
    mutable arrivals : int;
    mutable departures : int;
    mutable migrated : int;
    mutable shed : int;
    mutable events : int;
  mutable next_synth : int;
  }

  (* Runs on the shard's own domain; [eng] is owned by that domain
     after the spawn edge publishes it. *)
  let handle eng req =
    match req with
    | R_arrive { seq; now; size; item } ->
        let bin = Simulator.Online.arrive eng ~now ~size ~item_id:item in
        [ P_placed { seq; item; bin } ]
    | R_depart { now; item } ->
        Simulator.Online.depart eng ~now ~item_id:item;
        []
    | R_fail { now } ->
        (* Shard loss: every open bin fails; the fleet re-admits the
           victims elsewhere under the migration budget. *)
        let open_ids =
          List.map
            (fun (v : Bin.view) -> v.Bin.bin_id)
            (Simulator.Online.open_bins eng)
        in
        let victims =
          List.concat_map
            (fun bin_id -> Simulator.Online.fail_bin eng ~now ~bin_id)
            open_ids
        in
        [ P_victims victims ]
    | R_freeze -> [ P_frozen (Simulator.Online.freeze eng) ]

  let create cfg =
    if cfg.shards < 1 then invalid_arg "Serve.Fleet.create: shards < 1";
    let grid =
      match cfg.grid_den with
      | None -> None
      | Some d -> (
          match Simulator.grid_of_den d with
          | Some _ as g -> g
          | None -> invalid_arg "Serve.Fleet.create: grid denominator")
    in
    let engines =
      Array.init cfg.shards (fun _ ->
          Simulator.Online.create ?grid ~policy:cfg.policy
            ~capacity:cfg.capacity ())
    in
    let pool =
      Shard_pool.create ~shards:cfg.shards ~handler:(fun ~shard req ->
          handle engines.(shard) req)
    in
    Budget.validate cfg.budget;
    {
      cfg;
      router =
        Router.create ~policy:cfg.route ~shards:cfg.shards
          ~capacity:cfg.capacity ~k:cfg.split_k;
      pool;
      budget = Budget.create cfg.budget;
      item_shard = Hashtbl.create 4096;
      alias = Hashtbl.create 64;
      owner = Hashtbl.create 64;
      lost = Hashtbl.create 64;
      dead = Array.make cfg.shards false;
      now = None;
      arrivals = 0;
      departures = 0;
      migrated = 0;
      shed = 0;
      events = 0;
      next_synth = 1 lsl 40;
    }

  let events_applied t = t.events
  let alive t s = not t.dead.(s)

  let step_time t now =
    (match t.now with
    | Some p when Rat.(now < p) ->
        protocol "time %s precedes the stream clock %s" (Rat.to_string now)
          (Rat.to_string p)
    | _ -> ());
    t.now <- Some now

  let arrive t ~seq ~now ~size ~item =
    step_time t now;
    if item < 0 then protocol "negative item id %d" item;
    if Hashtbl.mem t.item_shard item then
      protocol "item %d is already active" item;
    if Hashtbl.mem t.lost item then
      protocol "item %d was shed by a shard failure" item;
    if Hashtbl.mem t.owner item then
      protocol "item %d collides with a migrated session" item;
    if Rat.sign size <= 0 || Rat.(size > t.cfg.capacity) then
      protocol "size %s outside (0, %s]" (Rat.to_string size)
        (Rat.to_string t.cfg.capacity);
    Budget.tick t.budget;
    let shard = Router.route t.router ~alive:(alive t) ~size ~item_id:item in
    Hashtbl.replace t.item_shard item shard;
    Shard_pool.submit t.pool ~shard (R_arrive { seq; now; size; item });
    t.arrivals <- t.arrivals + 1;
    t.events <- t.events + 1

  let depart t ~now ~item =
    step_time t now;
    if Hashtbl.mem t.lost item then
      (* The session died with its shard; accept the departure
         silently — the client is allowed not to know. *)
      Hashtbl.remove t.lost item
    else
      match Hashtbl.find_opt t.item_shard item with
      | None -> protocol "depart of unknown item %d" item
      | Some shard ->
          Budget.tick t.budget;
          let eng_item =
            match Hashtbl.find_opt t.alias item with
            | Some e ->
                Hashtbl.remove t.alias item;
                Hashtbl.remove t.owner e;
                e
            | None -> item
          in
          Hashtbl.remove t.item_shard item;
          Shard_pool.submit t.pool ~shard (R_depart { now; item = eng_item });
          t.departures <- t.departures + 1;
          t.events <- t.events + 1

  let apply t (ev : TE.t) =
    match ev.kind with
    | TE.Arrive { item; size } ->
        arrive t ~seq:ev.seq ~now:ev.time ~size ~item
    | TE.Depart { item; _ } -> depart t ~now:ev.time ~item
    | k ->
        protocol "event kind %S is not accepted on the serve wire"
          (TE.kind_name k)

  let split_resps resps =
    List.fold_left
      (fun (pl, vs, fr) (shard, resp) ->
        match resp with
        | P_placed { seq; item; bin } ->
            if seq >= 0 then
              ({ p_seq = seq; p_item = item; p_bin = bin; p_shard = shard }
               :: pl,
                vs, fr)
            else (pl, vs, fr)
        | P_victims v -> (pl, v :: vs, fr)
        | P_frozen f -> (pl, vs, (shard, f) :: fr))
      ([], [], []) resps
    |> fun (pl, vs, fr) -> (List.rev pl, List.rev vs, List.rev fr)

  let placements t =
    let pl, _, _ = split_resps (Shard_pool.poll t.pool) in
    pl

  let quiesce t =
    let pl, _, _ = split_resps (Shard_pool.quiesce t.pool) in
    pl

  let rec fresh_synth t =
    let s = t.next_synth in
    t.next_synth <- s + 1;
    if Hashtbl.mem t.item_shard s || Hashtbl.mem t.owner s
       || Hashtbl.mem t.lost s
    then fresh_synth t
    else s

  let fail_shard t ~now k =
    if k < 0 || k >= t.cfg.shards then
      invalid_arg "Serve.Fleet.fail_shard: shard out of range";
    if t.dead.(k) then invalid_arg "Serve.Fleet.fail_shard: shard already dead";
    if Array.fold_left (fun n d -> if d then n else n + 1) 0 t.dead <= 1 then
      invalid_arg "Serve.Fleet.fail_shard: no shard would survive";
    step_time t now;
    let pl0 = quiesce t in
    t.dead.(k) <- true;
    Shard_pool.submit t.pool ~shard:k (R_fail { now });
    let pl1, victim_lists, _ = split_resps (Shard_pool.quiesce t.pool) in
    let victims = List.concat victim_lists in
    List.iter
      (fun (eng_item, size) ->
        let client =
          match Hashtbl.find_opt t.owner eng_item with
          | Some c ->
              Hashtbl.remove t.owner eng_item;
              Hashtbl.remove t.alias c;
              c
          | None -> eng_item
        in
        let cost = Budget.cost_of t.budget ~size in
        if Budget.affords t.budget ~cost then begin
          Budget.spend t.budget ~size;
          let synth = fresh_synth t in
          Hashtbl.replace t.alias client synth;
          Hashtbl.replace t.owner synth client;
          let shard =
            Router.route t.router ~alive:(alive t) ~size ~item_id:synth
          in
          Hashtbl.replace t.item_shard client shard;
          Shard_pool.submit t.pool ~shard
            (R_arrive { seq = -1; now; size; item = synth });
          t.migrated <- t.migrated + 1
        end
        else begin
          Budget.note_denied t.budget;
          Hashtbl.remove t.item_shard client;
          Hashtbl.replace t.lost client ();
          t.shed <- t.shed + 1
        end)
      victims;
    let pl2 = quiesce t in
    pl0 @ pl1 @ pl2

  let snapshot t =
    let pl0 = quiesce t in
    for k = 0 to t.cfg.shards - 1 do
      Shard_pool.submit t.pool ~shard:k R_freeze
    done;
    let pl1, _, frozen = split_resps (Shard_pool.quiesce t.pool) in
    let images = Array.make t.cfg.shards None in
    List.iter (fun (k, f) -> images.(k) <- Some f) frozen;
    let images =
      Array.map
        (function Some f -> f | None -> assert false (* one per shard *))
        images
    in
    (pl0 @ pl1, images)

  (* A shard's exact bin-seconds so far: closed bins contribute their
     usage period, open bins the span up to the shard clock.  For a
     fully departed stream this is exactly [Packing.total_cost] of the
     equivalent batch run — rational addition is order-independent, so
     the fleet sum is bit-identical to the single-engine cost. *)
  let frozen_cost (f : Simulator.Online.Frozen.t) =
    List.fold_left
      (fun acc (b : Simulator.Online.Frozen.bin) ->
        match (b.b_closed, f.s_clock) with
        | Some c, _ -> Rat.add acc (Rat.sub c b.b_opened)
        | None, Some clock -> Rat.add acc (Rat.sub clock b.b_opened)
        | None, None -> acc)
      Rat.zero f.s_bins

  let summarize t frozen =
    let shard_costs = Array.map frozen_cost frozen in
    {
      su_shards = t.cfg.shards;
      su_live =
        Array.fold_left (fun n d -> if d then n else n + 1) 0 t.dead;
      su_arrivals = t.arrivals;
      su_departures = t.departures;
      su_active = Hashtbl.length t.item_shard;
      su_migrated = t.migrated;
      su_shed = t.shed;
      su_bins_opened =
        Array.fold_left
          (fun n (f : Simulator.Online.Frozen.t) ->
            n + List.length f.s_bins)
          0 frozen;
      su_cost = Array.fold_left Rat.add Rat.zero shard_costs;
      su_shard_costs = shard_costs;
    }

  let shutdown t = ignore (Shard_pool.shutdown t.pool)

  let write_checkpoints t ~prefix frozen =
    let module S = Dbp_checkpoint.Snapshot in
    Array.to_list
      (Array.mapi
         (fun k f ->
           let path = Printf.sprintf "%s.shard%d" prefix k in
           let snap =
             {
               S.meta =
                 {
                   S.policy = t.cfg.policy_name;
                   seed = t.cfg.seed;
                   events_applied = t.events;
                   trace_seq = 0;
                 };
               metrics = None;
               payload = S.Engine f;
             }
           in
           Dbp_checkpoint.Checkpoint.save_file path snap;
           path)
         frozen)
end

(* ---- non-blocking output queue -------------------------------------- *)

module Outbuf = struct
  type t = { q : string Queue.t; mutable head_off : int; mutable size : int }

  let create () = { q = Queue.create (); head_off = 0; size = 0 }

  let add t s =
    Queue.add s t.q;
    t.size <- t.size + String.length s

  let is_empty t = t.size = 0
  let size t = t.size

  (* Drain as much as the (non-blocking) descriptor will take: keep
     writing head chunks until EAGAIN or empty.  One chunk per call
     would throttle a bounded flush loop to one line per select
     tick — far too slow to evacuate a deep placement backlog. *)
  let write_some t fd =
    let rec go () =
      match Queue.peek_opt t.q with
      | None -> ()
      | Some s -> (
          let len = String.length s - t.head_off in
          match Unix.write_substring fd s t.head_off len with
          | n ->
              t.head_off <- t.head_off + n;
              t.size <- t.size - n;
              if t.head_off >= String.length s then begin
                ignore (Queue.pop t.q);
                t.head_off <- 0
              end;
              if n > 0 then go ()
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              ())
    in
    go ()
end

let set_nonblock fd =
  match Unix.set_nonblock fd with
  | () -> ()
  | exception Unix.Unix_error _ -> ()

(* ---- signals --------------------------------------------------------- *)

let install_sigterm () =
  let flag = ref false in
  let arm s =
    match Sys.set_signal s (Sys.Signal_handle (fun _ -> flag := true)) with
    | () -> ()
    | exception (Invalid_argument _ | Sys_error _) -> ()
  in
  arm Sys.sigterm;
  arm Sys.sigint;
  (match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | () -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ());
  fun () -> !flag

(* ---- one NDJSON session over a pair of descriptors ------------------- *)

(* Returns [Ok (summary, terminated)]: [terminated] is true when the
   session ended because [should_stop] fired (daemon shutdown) rather
   than client EOF. *)
let session fleet cfg ?checkpoint ~should_stop ~input ~output () =
  let feed = TE.Feed.create () in
  let buf = Bytes.create 65536 in
  let outq = Outbuf.create () in
  set_nonblock input;
  set_nonblock output;
  let emit_placements pls =
    List.iter (fun p -> Outbuf.add outq (placement_line p ^ "\n")) pls
  in
  (* Bounded post-EOF flush: keep writing while the client drains, give
     up only after ~10 s with zero progress.  The bound must be on
     progress, not iterations: a busy reader frees socket-buffer space
     continuously, so select reports writable immediately and an
     iteration cap would burn out long before a deep placement backlog
     (megabytes at soak scale) has been evacuated. *)
  let flush_all () =
    let rec go last_progress =
      if not (Outbuf.is_empty outq) then begin
        let before = Outbuf.size outq in
        (match Unix.select [] [ output ] [] 0.2 with
        | _, _ :: _, _ -> Outbuf.write_some outq output
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        let now = Unix.gettimeofday () in
        let last =
          if Outbuf.size outq < before then now else last_progress
        in
        if now -. last < 10.0 then go last
      end
    in
    match go (Unix.gettimeofday ()) with
    | () -> ()
    | exception Unix.Unix_error _ -> () (* client hung up: EPIPE etc. *)
  in
  let cut ~term =
    let pl, frozen = Fleet.snapshot fleet in
    emit_placements pl;
    let su = Fleet.summarize fleet frozen in
    (if term then
       match checkpoint with
       | Some prefix ->
           ignore (Fleet.write_checkpoints fleet ~prefix frozen)
       | None -> ());
    Outbuf.add outq (summary_line cfg su ^ "\n");
    flush_all ();
    Ok (su, term)
  in
  let fail_session msg line =
    Outbuf.add outq (line ^ "\n");
    flush_all ();
    Error msg
  in
  let apply_events evs =
    List.iter (Fleet.apply fleet) evs;
    emit_placements (Fleet.placements fleet)
  in
  let rec loop () =
    if should_stop () then cut ~term:true
    else begin
      let wr = if Outbuf.is_empty outq then [] else [ output ] in
      match Unix.select [ input ] wr [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | rs, ws, _ -> (
          (match ws with [] -> () | _ -> Outbuf.write_some outq output);
          match rs with
          | [] ->
              (* Idle tick: shards may still be chewing a backlog, so
                 keep draining their answers even with no new input. *)
              emit_placements (Fleet.placements fleet);
              loop ()
          | _ -> (
              match Unix.read input buf 0 (Bytes.length buf) with
              | exception
                  Unix.Unix_error
                    ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                  loop ()
              | 0 -> (
                  (* End of stream: flush the feed's final (possibly
                     newline-less) line, drain the fleet, summarise. *)
                  match TE.Feed.close feed with
                  | Error e ->
                      fail_session
                        (TE.stream_error_to_string e)
                        (stream_error_line e)
                  | Ok evs -> (
                      match apply_events evs with
                      | () -> cut ~term:false
                      | exception Protocol msg ->
                          fail_session msg (error_line msg)))
              | n -> (
                  match TE.Feed.feed feed (Bytes.sub_string buf 0 n) with
                  | Error e ->
                      fail_session
                        (TE.stream_error_to_string e)
                        (stream_error_line e)
                  | Ok evs -> (
                      match apply_events evs with
                      | () -> loop ()
                      | exception Protocol msg ->
                          fail_session msg (error_line msg)))))
    end
  in
  loop ()

(* Engine/session failures that surface out of the shard pool (or the
   fleet's own validation) all mean the stream was unserveable. *)
let guard f =
  match f () with
  | r -> r
  | exception Protocol msg -> Error msg
  | exception Simulator.Invalid_step msg -> Error ("engine: " ^ msg)
  | exception Simulator.Invalid_decision msg -> Error ("engine: " ^ msg)
  | exception Shard_pool.Stopped -> Error "shard pool stopped"

let run_stream cfg ?checkpoint ?(should_stop = fun () -> false) ~input
    ~output () =
  guard (fun () ->
      let fleet = Fleet.create cfg in
      let r = session fleet cfg ?checkpoint ~should_stop ~input ~output () in
      (match Fleet.shutdown fleet with
      | () -> ()
      | exception _e -> ());
      Result.map fst r)

let run_listener cfg ?checkpoint ?(should_stop = fun () -> false) lfd =
  guard (fun () ->
      let fleet = Fleet.create cfg in
      let finish_term () =
        let _pl, frozen = Fleet.snapshot fleet in
        (match checkpoint with
        | Some prefix -> ignore (Fleet.write_checkpoints fleet ~prefix frozen)
        | None -> ());
        let su = Fleet.summarize fleet frozen in
        Fleet.shutdown fleet;
        Ok su
      in
      let rec accept_loop () =
        if should_stop () then finish_term ()
        else
          match Unix.select [ lfd ] [] [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | [], _, _ -> accept_loop ()
          | _ :: _, _, _ ->
              let fd, _ = Unix.accept lfd in
              let r =
                session fleet cfg ?checkpoint ~should_stop ~input:fd
                  ~output:fd ()
              in
              (match Unix.close fd with
              | () -> ()
              | exception Unix.Unix_error _ -> ());
              (match r with
              | Ok (su, true) ->
                  (* SIGTERM mid-connection: checkpoints are already
                     flushed by the session's cut. *)
                  Fleet.shutdown fleet;
                  Ok su
              | Ok (_, false) -> accept_loop ()
              | Error msg ->
                  Fleet.shutdown fleet;
                  Error msg)
      in
      accept_loop ())

(* ---- replay client --------------------------------------------------- *)

let is_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let arrive_wire ~seq ~time ~item ~size =
  Printf.sprintf {|{"seq":%d,"t":"%s","kind":"arrive","item":%d,"size":"%s"}|}
    seq time item size

(* A client cannot know the bin or the held time; the daemon ignores
   both, so send the conventional [-1]/["0"]. *)
let depart_wire ~seq ~time ~item =
  Printf.sprintf
    {|{"seq":%d,"t":"%s","kind":"depart","item":%d,"bin":-1,"held":"0"}|} seq
    time item

(* Drive a generated event stream through a connected daemon, duplex:
   keep the output queue topped up from [next_line] while draining
   placement lines into [on_line].  Returns the summary line. *)
let pump fd ~next_line ~on_line =
  set_nonblock fd;
  let outq = Outbuf.create () in
  let inbuf = Bytes.create 65536 in
  let partial = Buffer.create 256 in
  let summary = ref None in
  let failure = ref None in
  let sent_all = ref false in
  let eof = ref false in
  let handle_line l =
    if l = "" then ()
    else if is_prefix ~prefix:{|{"kind":"summary"|} l then summary := Some l
    else if is_prefix ~prefix:{|{"kind":"error"|} l then
      failure := Some ("daemon: " ^ l)
    else on_line l
  in
  let consume n =
    let s = Bytes.sub_string inbuf 0 n in
    let rec split i =
      match String.index_from_opt s i '\n' with
      | None -> Buffer.add_substring partial s i (String.length s - i)
      | Some j ->
          Buffer.add_substring partial s i (j - i);
          handle_line (Buffer.contents partial);
          Buffer.clear partial;
          split (j + 1)
    in
    split 0
  in
  let top_up () =
    let rec go () =
      if Outbuf.size outq < 262144 && not !sent_all then
        match next_line () with
        | Some l ->
            Outbuf.add outq (l ^ "\n");
            go ()
        | None ->
            if Outbuf.is_empty outq then begin
              (match Unix.shutdown fd Unix.SHUTDOWN_SEND with
              | () -> ()
              | exception Unix.Unix_error _ -> ());
              sent_all := true
            end
    in
    go ()
  in
  let rec loop () =
    match !failure with
    | Some _ -> ()
    | None ->
        if !eof then ()
        else begin
          top_up ();
          let wr = if Outbuf.is_empty outq then [] else [ fd ] in
          (match Unix.select [ fd ] wr [] 1.0 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | rs, ws, _ -> (
              (match ws with [] -> () | _ -> Outbuf.write_some outq fd);
              match rs with
              | [] -> ()
              | _ -> (
                  match Unix.read fd inbuf 0 (Bytes.length inbuf) with
                  | exception
                      Unix.Unix_error
                        ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR),
                          _,
                          _ ) ->
                      ()
                  | 0 ->
                      handle_line (Buffer.contents partial);
                      Buffer.clear partial;
                      eof := true
                  | n -> consume n)));
          loop ()
        end
  in
  (match loop () with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      failure := Some ("client: " ^ Unix.error_message e));
  match (!failure, !summary) with
  | Some e, _ -> Error e
  | None, Some s -> Ok s
  | None, None -> Error "stream ended without a summary"

let replay_client ?(echo = fun _ -> ()) fd instance =
  let events = Event.sorted_array_of_instance instance in
  let n = Array.length events in
  let next = ref 0 in
  let next_line () =
    if !next >= n then None
    else begin
      let e = events.(!next) in
      let seq = !next in
      incr next;
      let time = Rat.to_string e.Event.time in
      let item = e.Event.item.Item.id in
      Some
        (match e.Event.kind with
        | Event.Arrival ->
            arrive_wire ~seq ~time ~item
              ~size:(Rat.to_string e.Event.item.Item.size)
        | Event.Departure -> depart_wire ~seq ~time ~item)
    end
  in
  pump fd ~next_line ~on_line:echo

let replay cfg ?echo instance =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let join =
    Shard_pool.spawn_background (fun () ->
        let r = run_stream cfg ~input:a ~output:a () in
        (match Unix.close a with
        | () -> ()
        | exception Unix.Unix_error _ -> ());
        r)
  in
  let rc = replay_client ?echo b instance in
  (match Unix.close b with
  | () -> ()
  | exception Unix.Unix_error _ -> ());
  match (rc, join ()) with
  | (Error _ as e), _ -> e
  | Ok _, Error e -> Error ("daemon: " ^ e)
  | (Ok _ as ok), Ok _ -> ok

(* ---- the soak bench -------------------------------------------------- *)

type bench_result = {
  br_sessions : int;
  br_events : int;
  br_elapsed_s : float;
  br_events_per_s : float;
  br_p50_us : float;
  br_p99_us : float;
  br_cost : string;
  br_bins_opened : int;
}

(* Fast field extraction for the hot response path: place lines have a
   fixed shape, so scanning for the key is much cheaper than the
   strict object parser. *)
let int_field_of_line line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let pn = String.length pat and n = String.length line in
  let rec find i =
    if i + pn > n then None
    else if String.sub line i pn = pat then begin
      let j = ref (i + pn) in
      let neg = !j < n && line.[!j] = '-' in
      if neg then incr j;
      let v = ref 0 in
      let digits = ref 0 in
      while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do
        v := (!v * 10) + (Char.code line.[!j] - Char.code '0');
        incr digits;
        incr j
      done;
      if !digits = 0 then None else Some (if neg then - !v else !v)
    end
    else find (i + 1)
  in
  find 0

let str_field fields key =
  match List.assoc_opt key fields with
  | Some (TE.Str s) -> Some s
  | _ -> None

let int_field fields key =
  match List.assoc_opt key fields with
  | Some (TE.Int i) -> Some i
  | _ -> None

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (float_of_int n *. q)))

(* One session = one arrival + one departure; arrivals at t = 1..S,
   departures at t = S+1..2S, so all S sessions are concurrently
   resident at t = S — the "millions of concurrent sessions" shape.
   Sizes are mostly grid-minimum (1..4 thousandths, hundreds of
   sessions per bin) with one in 1024 large (above capacity/2), so the
   router's large/small split is exercised while the open-bin
   population — which every placement decision walks — stays in the
   low thousands even with a million residents. *)
let bench_size i =
  if i land 1023 = 0 then "501/1000"
  else Printf.sprintf "%d/1000" (1 + (i land 3))

let bench cfg ~sessions =
  if sessions < 1 then invalid_arg "Serve.bench: sessions < 1";
  let cfg = { cfg with grid_den = Some 1000; capacity = Rat.one } in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let join =
    Shard_pool.spawn_background (fun () ->
        let r = run_stream cfg ~input:a ~output:a () in
        (match Unix.close a with
        | () -> ()
        | exception Unix.Unix_error _ -> ());
        r)
  in
  let n_events = 2 * sessions in
  let send_t = Array.make sessions 0.0 in
  let lat = Array.make sessions 0.0 in
  let placed = ref 0 in
  let next = ref 0 in
  let next_line () =
    if !next >= n_events then None
    else begin
      let i = !next in
      incr next;
      let time = string_of_int (i + 1) in
      if i < sessions then begin
        send_t.(i) <- Unix.gettimeofday ();
        Some (arrive_wire ~seq:i ~time ~item:i ~size:(bench_size i))
      end
      else depart_wire ~seq:i ~time ~item:(i - sessions) |> Option.some
    end
  in
  let on_line l =
    match int_field_of_line l "item" with
    | Some item when item >= 0 && item < sessions ->
        lat.(item) <- Unix.gettimeofday () -. send_t.(item);
        incr placed
    | _ -> ()
  in
  let t0 = Unix.gettimeofday () in
  let rc = pump b ~next_line ~on_line in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match Unix.close b with
  | () -> ()
  | exception Unix.Unix_error _ -> ());
  match (rc, join ()) with
  | Error e, dr ->
      let extra =
        match dr with Ok _ -> "" | Error d -> "; daemon: " ^ d
      in
      Error (e ^ extra)
  | Ok _, Error e -> Error ("daemon: " ^ e)
  | Ok summary, Ok _ -> (
      if !placed <> sessions then
        Error
          (Printf.sprintf "placed %d of %d arrivals" !placed sessions)
      else
        match TE.parse_flat_object summary with
        | Error e -> Error ("summary: " ^ e)
        | Ok fields ->
            let cost =
              match str_field fields "cost" with Some c -> c | None -> "?"
            in
            let bins =
              match int_field fields "bins_opened" with
              | Some b -> b
              | None -> 0
            in
            let sorted = Array.map (fun s -> s *. 1e6) lat in
            Array.sort Float.compare sorted;
            Ok
              {
                br_sessions = sessions;
                br_events = n_events;
                br_elapsed_s = elapsed;
                br_events_per_s =
                  (if elapsed > 0.0 then float_of_int n_events /. elapsed
                   else 0.0);
                br_p50_us = percentile sorted 0.50;
                br_p99_us = percentile sorted 0.99;
                br_cost = cost;
                br_bins_opened = bins;
              })

let bench_json cfg r =
  Printf.sprintf
    {|{"schema":"dbp-bench-serve/1","shards":%d,"policy":"%s","route":"%s","sessions":%d,"events":%d,"elapsed_s":%.3f,"events_per_s":%.0f,"p50_us":%.1f,"p99_us":%.1f,"cost":"%s","bins_opened":%d}|}
    cfg.shards cfg.policy_name
    (Router.policy_name cfg.route)
    r.br_sessions r.br_events r.br_elapsed_s r.br_events_per_s r.br_p50_us
    r.br_p99_us r.br_cost r.br_bins_opened
