(** Versioned on-disk images of a running simulation: schema
    ["dbp-checkpoint/1"].

    A snapshot is the serialisable closure of a run mid-flight: the
    engine's {!Dbp_core.Simulator.Online.Frozen.t} (dense bin store,
    accumulated any-fit violations, policy state blob), optionally the
    fault injector's {!Dbp_faults.Injector.Frozen.t} wrapped around it
    (event queue, segment ledger, PRNG position, resilience counters),
    plus the {!Dbp_obs.Metrics.dump} of an attached registry and the
    resume metadata (policy name and seed, events applied, trace
    sequence position).

    The format follows the trace's NDJSON discipline: one flat JSON
    object per line, integers and strings only, every rational an
    exact string — so a decoded snapshot thaws into a run that is
    bit-identical to never having stopped.  Floats (histogram
    observations, launch-failure probability) are stored as ["%h"] hex
    floats, which round-trip exactly.  The final line is a footer with
    the line count: a file truncated by the very crash the subsystem
    guards against is always rejected, never half-loaded. *)

open Dbp_core
open Dbp_faults

val schema : string
(** ["dbp-checkpoint/1"]. *)

type meta = {
  policy : string;  (** Registry name ({!Dbp_core.Algorithms.find}). *)
  seed : int64;  (** Policy seed (Random Fit's PRNG stream). *)
  events_applied : int;
      (** Instance events already replayed; resume starts here. *)
  trace_seq : int;
      (** Trace events emitted so far; a resumed sink is positioned
          here so the combined stream stays a valid [dbp-trace/1]. *)
}

type payload =
  | Engine of Simulator.Online.Frozen.t
      (** A plain [Simulator.run] checkpoint. *)
  | Faults of Injector.Frozen.t
      (** A fault-injected run checkpoint (includes its engine, and —
          when the live-migration rung is armed — the recourse budget
          balance). *)
  | Repack of Dbp_repack.Runner.Frozen.t
      (** A budget-constrained repacking run checkpoint
          ({!Dbp_repack.Runner}): its engine plus the budget balance,
          repack policy and migration log. *)

type t = {
  meta : meta;
  metrics : Dbp_obs.Metrics.dump option;
  payload : payload;
}

val engine_of : t -> Simulator.Online.Frozen.t
(** The engine image of either payload. *)

val kind_name : t -> string
(** ["engine"], ["faults"] or ["repack"]. *)

val to_string : t -> string
(** The NDJSON document, trailing newline included. *)

val of_string : string -> (t, string) result
(** Strict structural validation: unknown schema/kind/keys, type
    mismatches, malformed rationals, duplicate or missing sections,
    count mismatches and missing footers are all errors.  Semantic
    consistency (dense bin ids, capacity bounds, policy-state
    agreement) is checked by the thaw path, not here. *)
