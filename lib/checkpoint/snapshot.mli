(** Versioned on-disk images of a running simulation: schema
    ["dbp-checkpoint/1"].

    A snapshot is the serialisable closure of a run mid-flight: the
    engine's {!Dbp_core.Simulator.Online.Frozen.t} (dense bin store,
    accumulated any-fit violations, policy state blob), optionally the
    fault injector's {!Dbp_faults.Injector.Frozen.t} wrapped around it
    (event queue, segment ledger, PRNG position, resilience counters),
    plus the {!Dbp_obs.Metrics.dump} of an attached registry and the
    resume metadata (policy name and seed, events applied, trace
    sequence position).

    The format follows the trace's NDJSON discipline: one flat JSON
    object per line, integers and strings only, every rational an
    exact string — so a decoded snapshot thaws into a run that is
    bit-identical to never having stopped.  Floats (histogram
    observations, launch-failure probability) are stored as ["%h"] hex
    floats, which round-trip exactly.  The final line is a footer with
    the line count: a file truncated by the very crash the subsystem
    guards against is always rejected, never half-loaded. *)

open Dbp_core
open Dbp_faults

val schema : string
(** ["dbp-checkpoint/1"] — the scalar baseline.  Snapshots of scalar
    runs still emit (and parse as) this schema byte-for-byte. *)

val schema_v2 : string
(** ["dbp-checkpoint/2"] — the vector extension: a [Vector] payload
    (multi-resource engine image) is stamped with this schema, and
    its capacities/levels/demands are
    {!Dbp_num.Vec.to_string}-rendered per-dimension rationals.  The
    parser accepts both versions. *)

type meta = {
  policy : string;  (** Registry name ({!Dbp_core.Algorithms.find}). *)
  seed : int64;  (** Policy seed (Random Fit's PRNG stream). *)
  events_applied : int;
      (** Instance events already replayed; resume starts here. *)
  trace_seq : int;
      (** Trace events emitted so far; a resumed sink is positioned
          here so the combined stream stays a valid [dbp-trace/2]. *)
}

type payload =
  | Engine of Simulator.Online.Frozen.t
      (** A plain [Simulator.run] checkpoint. *)
  | Faults of Injector.Frozen.t
      (** A fault-injected run checkpoint (includes its engine, and —
          when the live-migration rung is armed — the recourse budget
          balance). *)
  | Repack of Dbp_repack.Runner.Frozen.t
      (** A budget-constrained repacking run checkpoint
          ({!Dbp_repack.Runner}): its engine plus the budget balance,
          repack policy and migration log. *)
  | Vector of Vec_simulator.Online.Frozen.t
      (** A multi-resource ([Vec_simulator.run]) checkpoint; stamps
          the file {!schema_v2}. *)

type t = {
  meta : meta;
  metrics : Dbp_obs.Metrics.dump option;
  payload : payload;
}

val schema_of : t -> string
(** The schema the snapshot serialises under: {!schema_v2} for
    [Vector] payloads, {!schema} otherwise. *)

val engine_of : t -> Simulator.Online.Frozen.t
(** The scalar engine image of a scalar payload.
    @raise Invalid_argument on a [Vector] snapshot. *)

val kind_name : t -> string
(** ["engine"], ["faults"], ["repack"] or ["vector"]. *)

val to_string : t -> string
(** The NDJSON document, trailing newline included. *)

val of_string : string -> (t, string) result
(** Strict structural validation: unknown schema/kind/keys, type
    mismatches, malformed rationals, duplicate or missing sections,
    count mismatches and missing footers are all errors.  Semantic
    consistency (dense bin ids, capacity bounds, policy-state
    agreement) is checked by the thaw path, not here. *)
