open Dbp_num
open Dbp_core

(* Drivers around Snapshot: cut a run at an exact event index, resume
   one from an image, and prove a resumed run bit-identical to an
   uninterrupted one.  All determinism arguments live in the engine
   (Simulator.Online.freeze/thaw) and the injector; this layer only
   replays the instance's canonical event stream around them. *)

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let audit_default = function
  | Some b -> b
  | None -> Audit.enabled_from_env ()

let policy_of ?mu (meta : Snapshot.meta) =
  match Algorithms.find ~seed:meta.seed ?mu meta.policy with
  | Some p -> p
  | None -> error "snapshot names an unknown policy %S" meta.policy

let save_at ?audit ?sink ?metrics ?mu ?(seed = Algorithms.default_seed)
    ~policy_name ~at instance =
  let policy =
    match Algorithms.find ~seed ?mu policy_name with
    | Some p -> p
    | None -> error "unknown policy %S" policy_name
  in
  let events = Event.of_instance instance in
  let total = List.length events in
  if at < 0 || at > total then
    error "checkpoint index %d outside [0, %d]" at total;
  let sink = match sink with Some s -> s | None -> Dbp_obs.Sink.null () in
  let online =
    Simulator.Online.create ~audit:(audit_default audit) ~sink ?metrics
      ~policy
      ~capacity:(Instance.capacity instance)
      ()
  in
  List.iteri (fun i e -> if i < at then Simulator.apply_event online e) events;
  let frozen = Simulator.Online.freeze online in
  {
    Snapshot.meta =
      {
        policy = policy_name;
        seed;
        events_applied = at;
        trace_seq = Dbp_obs.Sink.emitted sink;
      };
    metrics = Option.map Dbp_obs.Metrics.dump metrics;
    payload = Engine frozen;
  }

let save_repack_at ?audit ?sink ?metrics ?mu ?(seed = Algorithms.default_seed)
    ?(budget = Dbp_repack.Budget.zero)
    ?(repack = Dbp_repack.Repack_policy.No_repack) ~policy_name ~at instance =
  let policy =
    match Algorithms.find ~seed ?mu policy_name with
    | Some p -> p
    | None -> error "unknown policy %S" policy_name
  in
  let sink = match sink with Some s -> s | None -> Dbp_obs.Sink.null () in
  let runner =
    Dbp_repack.Runner.create ~audit:(audit_default audit) ~sink ?metrics
      ~budget ~repack ~policy instance
  in
  let total = Dbp_repack.Runner.events_total runner in
  if at < 0 || at > total then
    error "checkpoint index %d outside [0, %d]" at total;
  for _ = 1 to at do
    ignore (Dbp_repack.Runner.step runner)
  done;
  let frozen = Dbp_repack.Runner.freeze runner in
  {
    Snapshot.meta =
      {
        policy = policy_name;
        seed;
        events_applied = at;
        trace_seq = Dbp_obs.Sink.emitted sink;
      };
    metrics = Option.map Dbp_obs.Metrics.dump metrics;
    payload = Repack frozen;
  }

let vec_policy_of (meta : Snapshot.meta) =
  match Vec_policy.find ~seed:meta.seed meta.policy with
  | Some p -> p
  | None -> error "snapshot names an unknown vector policy %S" meta.policy

let save_vector_at ?audit ?sink ?metrics ?(seed = Algorithms.default_seed)
    ~policy_name ~at instance =
  let policy =
    match Vec_policy.find ~seed policy_name with
    | Some p -> p
    | None -> error "unknown vector policy %S" policy_name
  in
  let events = Vec_instance.sorted_events instance in
  let total = Array.length events in
  if at < 0 || at > total then
    error "checkpoint index %d outside [0, %d]" at total;
  let sink = match sink with Some s -> s | None -> Dbp_obs.Sink.null () in
  let online =
    Vec_simulator.Online.create ~audit:(audit_default audit) ~sink ?metrics
      ~policy
      ~capacity:(Vec_instance.capacity instance)
      ()
  in
  Array.iteri
    (fun i e -> if i < at then Vec_simulator.apply_event online e)
    events;
  let frozen = Vec_simulator.Online.freeze online in
  {
    Snapshot.meta =
      {
        policy = policy_name;
        seed;
        events_applied = at;
        trace_seq = Dbp_obs.Sink.emitted sink;
      };
    metrics = Option.map Dbp_obs.Metrics.dump metrics;
    payload = Vector frozen;
  }

type resumed = { packing : Packing.t; metrics : Dbp_obs.Metrics.t option }

let resume ?audit ?sink ?mu instance (snap : Snapshot.t) =
  let frozen =
    match snap.payload with
    | Snapshot.Engine f -> f
    | Snapshot.Faults _ ->
        error "snapshot holds a fault-injected run; use resume_faults"
    | Snapshot.Repack _ ->
        error "snapshot holds a repacking run; use resume_repack"
    | Snapshot.Vector _ ->
        error "snapshot holds a vector run; use resume_vector"
  in
  let policy = policy_of ?mu snap.meta in
  (match sink with
  | Some s -> Dbp_obs.Sink.set_seq s snap.meta.trace_seq
  | None -> ());
  let metrics = Option.map Dbp_obs.Metrics.restore snap.metrics in
  let online =
    Simulator.Online.thaw ~audit:(audit_default audit) ?sink ?metrics ~policy
      frozen
  in
  let events = Event.of_instance instance in
  let total = List.length events in
  let at = snap.meta.events_applied in
  if at > total then
    error "snapshot is %d events deep but the instance has only %d" at total;
  List.iteri (fun i e -> if i >= at then Simulator.apply_event online e) events;
  let packing =
    {
      (Simulator.Online.finish online ~instance) with
      Packing.policy_name = policy.Policy.name;
    }
  in
  { packing; metrics }

type resumed_faults = {
  fresult : Dbp_faults.Injector.result;
  fmetrics : Dbp_obs.Metrics.t option;
}

let resume_faults ?audit ?sink ?priority ?mu instance (snap : Snapshot.t) =
  let frozen =
    match snap.payload with
    | Snapshot.Faults f -> f
    | Snapshot.Engine _ ->
        error "snapshot holds a plain engine run; use resume"
    | Snapshot.Repack _ ->
        error "snapshot holds a repacking run; use resume_repack"
    | Snapshot.Vector _ ->
        error "snapshot holds a vector run; use resume_vector"
  in
  let policy = policy_of ?mu snap.meta in
  (match sink with
  | Some s -> Dbp_obs.Sink.set_seq s snap.meta.trace_seq
  | None -> ());
  let metrics = Option.map Dbp_obs.Metrics.restore snap.metrics in
  let st =
    Dbp_faults.Injector.thaw ~audit:(audit_default audit) ?sink ?metrics
      ?priority ~policy ~instance frozen
  in
  Dbp_faults.Injector.drain st;
  { fresult = Dbp_faults.Injector.finish st; fmetrics = metrics }

type resumed_repack = {
  rresult : Dbp_repack.Runner.result;
  rmetrics : Dbp_obs.Metrics.t option;
}

let resume_repack ?audit ?sink ?mu instance (snap : Snapshot.t) =
  let frozen =
    match snap.payload with
    | Snapshot.Repack r -> r
    | Snapshot.Engine _ ->
        error "snapshot holds a plain engine run; use resume"
    | Snapshot.Faults _ ->
        error "snapshot holds a fault-injected run; use resume_faults"
    | Snapshot.Vector _ ->
        error "snapshot holds a vector run; use resume_vector"
  in
  let policy = policy_of ?mu snap.meta in
  (match sink with
  | Some s -> Dbp_obs.Sink.set_seq s snap.meta.trace_seq
  | None -> ());
  let metrics = Option.map Dbp_obs.Metrics.restore snap.metrics in
  let runner =
    Dbp_repack.Runner.thaw ~audit:(audit_default audit) ?sink ?metrics ~policy
      ~instance frozen
  in
  Dbp_repack.Runner.drain runner;
  { rresult = Dbp_repack.Runner.finish runner; rmetrics = metrics }

type resumed_vector = {
  vresult : Vec_simulator.result;
  vmetrics : Dbp_obs.Metrics.t option;
}

let resume_vector ?audit ?sink instance (snap : Snapshot.t) =
  let frozen =
    match snap.payload with
    | Snapshot.Vector v -> v
    | Snapshot.Engine _ ->
        error "snapshot holds a plain engine run; use resume"
    | Snapshot.Faults _ ->
        error "snapshot holds a fault-injected run; use resume_faults"
    | Snapshot.Repack _ ->
        error "snapshot holds a repacking run; use resume_repack"
  in
  let policy = vec_policy_of snap.meta in
  (match sink with
  | Some s -> Dbp_obs.Sink.set_seq s snap.meta.trace_seq
  | None -> ());
  let metrics = Option.map Dbp_obs.Metrics.restore snap.metrics in
  let online =
    Vec_simulator.Online.thaw ~audit:(audit_default audit) ?sink ?metrics
      ~policy frozen
  in
  let events = Vec_instance.sorted_events instance in
  let total = Array.length events in
  let at = snap.meta.events_applied in
  if at > total then
    error "snapshot is %d events deep but the instance has only %d" at total;
  Array.iteri
    (fun i e -> if i >= at then Vec_simulator.apply_event online e)
    events;
  let vresult =
    {
      (Vec_simulator.Online.finish online ~instance) with
      Vec_simulator.r_policy_name = policy.Vec_policy.name;
    }
  in
  { vresult; vmetrics = metrics }

(* ---- verification --------------------------------------------------- *)

type verdict = { ok : bool; mismatches : string list }

let placements_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (t1, i1) (t2, i2) -> i1 = i2 && Rat.equal t1 t2)
       a b

let packing_mismatches (full : Packing.t) (res : Packing.t) =
  let out = ref [] in
  let miss fmt = Printf.ksprintf (fun m -> out := m :: !out) fmt in
  if not (Rat.equal full.total_cost res.total_cost) then
    miss "total cost: uninterrupted %s, resumed %s"
      (Rat.to_string full.total_cost)
      (Rat.to_string res.total_cost);
  if full.max_bins <> res.max_bins then
    miss "max open bins: uninterrupted %d, resumed %d" full.max_bins
      res.max_bins;
  if full.any_fit_violations <> res.any_fit_violations then
    miss "any-fit violations: uninterrupted %d, resumed %d"
      full.any_fit_violations res.any_fit_violations;
  if Array.length full.bins <> Array.length res.bins then
    miss "bin count: uninterrupted %d, resumed %d" (Array.length full.bins)
      (Array.length res.bins)
  else
    Array.iteri
      (fun i (fb : Packing.bin_record) ->
        let rb = res.bins.(i) in
        if
          fb.tag <> rb.tag
          || (not (Rat.equal fb.capacity rb.capacity))
          || (not (Rat.equal fb.opened rb.opened))
          || (not (Rat.equal fb.closed rb.closed))
          || (not (Rat.equal fb.max_level rb.max_level))
          || fb.item_ids <> rb.item_ids
          || not (placements_equal fb.placements rb.placements)
        then miss "bin %d diverges between uninterrupted and resumed runs" i)
      full.bins;
  if full.assignment <> res.assignment then
    miss "item-to-bin assignment diverges";
  List.rev !out

let nonempty_lines text =
  String.split_on_char '\n' text |> List.filter (fun l -> l <> "")

let verify ?audit ?mu instance (snap : Snapshot.t) =
  (match snap.payload with
  | Snapshot.Faults _ ->
      error
        "verify compares against an uninterrupted Simulator.run, which a \
         fault snapshot cannot reconstruct (the remaining plan lives in its \
         queue); engine and repack snapshots only"
  | Snapshot.Vector _ ->
      error "snapshot holds a vector run; use verify_vector"
  | Snapshot.Engine _ | Snapshot.Repack _ -> ());
  let audit = audit_default audit in
  let policy = policy_of ?mu snap.meta in
  let buf_full = Buffer.create 4096 in
  let buf_res = Buffer.create 4096 in
  let full, res =
    match snap.payload with
    | Snapshot.Faults _ | Snapshot.Vector _ -> assert false
    | Snapshot.Engine _ ->
        let full =
          Simulator.run ~audit
            ~sink:(Dbp_obs.Sink.to_buffer buf_full)
            ~policy instance
        in
        let { packing = res; _ } =
          resume ~audit ~sink:(Dbp_obs.Sink.to_buffer buf_res) ?mu instance
            snap
        in
        (full, res)
    | Snapshot.Repack r ->
        (* A repack snapshot carries its own budget spec and repack
           policy, so the uninterrupted run is reconstructible: replay
           the whole instance through a fresh Runner under the same
           configuration. *)
        let budget =
          r.Dbp_repack.Runner.Frozen.r_budget.Dbp_repack.Budget.Frozen.fb_spec
        in
        let full =
          Dbp_repack.Runner.run ~audit
            ~sink:(Dbp_obs.Sink.to_buffer buf_full)
            ~budget ~repack:r.Dbp_repack.Runner.Frozen.r_repack ~policy
            instance
        in
        let { rresult; _ } =
          resume_repack ~audit
            ~sink:(Dbp_obs.Sink.to_buffer buf_res)
            ?mu instance snap
        in
        (full.Dbp_repack.Runner.packing, rresult.Dbp_repack.Runner.packing)
  in
  let mismatches = packing_mismatches full res in
  let full_lines = nonempty_lines (Buffer.contents buf_full) in
  let res_lines = nonempty_lines (Buffer.contents buf_res) in
  let k = snap.meta.trace_seq in
  let trace_mismatches =
    if List.length full_lines < k then
      [
        Printf.sprintf
          "snapshot trace position %d exceeds the uninterrupted run's %d \
           events"
          k (List.length full_lines);
      ]
    else
      let suffix = List.filteri (fun i _ -> i >= k) full_lines in
      if suffix <> res_lines then
        [ "resumed trace diverges from the uninterrupted run's suffix" ]
      else []
  in
  let mismatches = mismatches @ trace_mismatches in
  { ok = mismatches = []; mismatches }

let vector_mismatches (full : Vec_simulator.result) (res : Vec_simulator.result)
    =
  let out = ref [] in
  let miss fmt = Printf.ksprintf (fun m -> out := m :: !out) fmt in
  if not (Rat.equal full.r_total_cost res.r_total_cost) then
    miss "total cost: uninterrupted %s, resumed %s"
      (Rat.to_string full.r_total_cost)
      (Rat.to_string res.r_total_cost);
  if full.r_max_bins <> res.r_max_bins then
    miss "max open bins: uninterrupted %d, resumed %d" full.r_max_bins
      res.r_max_bins;
  if full.r_any_fit_violations <> res.r_any_fit_violations then
    miss "any-fit violations: uninterrupted %d, resumed %d"
      full.r_any_fit_violations res.r_any_fit_violations;
  if Array.length full.r_bins <> Array.length res.r_bins then
    miss "bin count: uninterrupted %d, resumed %d"
      (Array.length full.r_bins)
      (Array.length res.r_bins)
  else
    Array.iteri
      (fun i (fb : Vec_simulator.bin_record) ->
        let rb = res.r_bins.(i) in
        if
          fb.vr_tag <> rb.vr_tag
          || (not (Vec.equal fb.vr_capacity rb.vr_capacity))
          || (not (Rat.equal fb.vr_opened rb.vr_opened))
          || (not (Rat.equal fb.vr_closed rb.vr_closed))
          || (not (Vec.equal fb.vr_max_level rb.vr_max_level))
          || fb.vr_item_ids <> rb.vr_item_ids
          || not (placements_equal fb.vr_placements rb.vr_placements)
        then miss "bin %d diverges between uninterrupted and resumed runs" i)
      full.r_bins;
  if full.r_assignment <> res.r_assignment then
    miss "item-to-bin assignment diverges";
  List.rev !out

let verify_vector ?audit instance (snap : Snapshot.t) =
  (match snap.payload with
  | Snapshot.Vector _ -> ()
  | Snapshot.Engine _ | Snapshot.Repack _ | Snapshot.Faults _ ->
      error "snapshot holds a scalar run; use verify");
  let audit = audit_default audit in
  let policy = vec_policy_of snap.meta in
  let buf_full = Buffer.create 4096 in
  let buf_res = Buffer.create 4096 in
  let full =
    Vec_simulator.run ~audit
      ~sink:(Dbp_obs.Sink.to_buffer buf_full)
      ~policy instance
  in
  let { vresult = res; _ } =
    resume_vector ~audit ~sink:(Dbp_obs.Sink.to_buffer buf_res) instance snap
  in
  let mismatches = vector_mismatches full res in
  let full_lines = nonempty_lines (Buffer.contents buf_full) in
  let res_lines = nonempty_lines (Buffer.contents buf_res) in
  let k = snap.meta.trace_seq in
  let trace_mismatches =
    if List.length full_lines < k then
      [
        Printf.sprintf
          "snapshot trace position %d exceeds the uninterrupted run's %d \
           events"
          k (List.length full_lines);
      ]
    else
      let suffix = List.filteri (fun i _ -> i >= k) full_lines in
      if suffix <> res_lines then
        [ "resumed trace diverges from the uninterrupted run's suffix" ]
      else []
  in
  let mismatches = mismatches @ trace_mismatches in
  { ok = mismatches = []; mismatches }

(* ---- inspection ----------------------------------------------------- *)

let inspect (snap : Snapshot.t) =
  let b = Buffer.create 256 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  let clock, bin_total, bin_open, active, closed_cost, violations =
    match snap.payload with
    | Snapshot.Vector v ->
        let bins = v.Vec_simulator.Online.Frozen.s_bins in
        let open_bins =
          List.filter
            (fun (bin : Vec_simulator.Online.Frozen.bin) ->
              Option.is_none bin.b_closed)
            bins
        in
        let active =
          List.fold_left
            (fun acc (bin : Vec_simulator.Online.Frozen.bin) ->
              acc + List.length bin.b_active)
            0 open_bins
        in
        let closed_cost =
          List.fold_left
            (fun acc (bin : Vec_simulator.Online.Frozen.bin) ->
              match bin.b_closed with
              | Some c -> Rat.add acc (Rat.sub c bin.b_opened)
              | None -> acc)
            Rat.zero bins
        in
        ( v.s_clock,
          List.length bins,
          List.length open_bins,
          active,
          closed_cost,
          v.s_violations )
    | Snapshot.Engine _ | Snapshot.Faults _ | Snapshot.Repack _ ->
        let e = Snapshot.engine_of snap in
        let open_bins =
          List.filter
            (fun (bin : Simulator.Online.Frozen.bin) ->
              Option.is_none bin.b_closed)
            e.Simulator.Online.Frozen.s_bins
        in
        let active =
          List.fold_left
            (fun acc (bin : Simulator.Online.Frozen.bin) ->
              acc + List.length bin.b_active)
            0 open_bins
        in
        let closed_cost =
          List.fold_left
            (fun acc (bin : Simulator.Online.Frozen.bin) ->
              match bin.b_closed with
              | Some c -> Rat.add acc (Rat.sub c bin.b_opened)
              | None -> acc)
            Rat.zero e.s_bins
        in
        ( e.s_clock,
          List.length e.s_bins,
          List.length open_bins,
          active,
          closed_cost,
          e.s_violations )
  in
  line "schema:             %s (%s)" (Snapshot.schema_of snap)
    (Snapshot.kind_name snap);
  line "policy:             %s (seed %Ld)" snap.meta.policy snap.meta.seed;
  line "events applied:     %d" snap.meta.events_applied;
  line "trace position:     %d" snap.meta.trace_seq;
  line "clock:              %s"
    (match clock with
    | None -> "not started"
    | Some t -> Rat.to_string t);
  line "bins:               %d total, %d open" bin_total bin_open;
  line "active items:       %d" active;
  line "closed-bin cost:    %s" (Rat.to_string closed_cost);
  line "any-fit violations: %d" violations;
  line "metrics:            %s"
    (match snap.metrics with Some _ -> "captured" | None -> "none");
  (match snap.payload with
  | Snapshot.Engine _ -> ()
  | Snapshot.Vector v ->
      line "dimensions:         %d"
        (Vec.dim v.Vec_simulator.Online.Frozen.s_capacity)
  | Snapshot.Faults f ->
      let open Dbp_faults.Injector.Frozen in
      line "injector:           %d events done, %d queued, %d segments (%d live)"
        f.f_events_done (List.length f.f_queue) (List.length f.f_segments)
        (List.length (List.filter (fun s -> s.fs_active) f.f_segments));
      line "faults so far:      %d injected, %d skipped; %d interrupted, %d \
            resumed, %d lost, %d shed"
        f.f_faults_injected f.f_faults_skipped f.f_interrupted f.f_resumed
        f.f_lost f.f_shed;
      (match f.f_repack with
      | None -> ()
      | Some (bf, rp) ->
          let open Dbp_repack in
          line "recourse budget:    %s (%s left); %d migrated, %s volume, %d \
                denied"
            (Budget.spec_to_string bf.Budget.Frozen.fb_spec)
            (Rat.to_string bf.fb_tokens)
            bf.fb_moves
            (Rat.to_string bf.fb_moved_volume)
            bf.fb_denied;
          line "migration rung:     %s" (Repack_policy.name rp))
  | Snapshot.Repack r ->
      let open Dbp_repack in
      let bf = r.Runner.Frozen.r_budget in
      line "repacker:           %d events done, policy %s"
        r.Runner.Frozen.r_events_done
        (Repack_policy.name r.Runner.Frozen.r_repack)
      ;
      line "recourse budget:    %s (%s left); %d migrated, %s volume, %d \
            denied"
        (Budget.spec_to_string bf.Budget.Frozen.fb_spec)
        (Rat.to_string bf.fb_tokens)
        bf.fb_moves
        (Rat.to_string bf.fb_moved_volume)
        bf.fb_denied;
      line "repack so far:      %d moves logged, %d bins drained shut, %s \
            bin-seconds reclaimed"
        (List.length r.Runner.Frozen.r_log)
        r.Runner.Frozen.r_bins_closed
        (Rat.to_string r.Runner.Frozen.r_reclaimed));
  Buffer.contents b

(* ---- file IO -------------------------------------------------------- *)

let save_file path snap =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Snapshot.to_string snap))

let load_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Result.Error msg
  | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Snapshot.of_string text
