open Dbp_num
open Dbp_core
open Dbp_faults

(* The versioned checkpoint image: schema "dbp-checkpoint/1".

   Same NDJSON discipline as the trace ("dbp-trace/2"): one flat JSON
   object per line, integers and strings only, rationals rendered as
   exact strings so a decoded snapshot reconstructs the engine
   bit-identically.  Float-valued state (histogram observations, the
   injector's launch-failure probability) is rendered with "%h" hex
   floats, which round-trip without rounding.  The last line is a
   footer carrying the line count, so a truncated file (the crash the
   subsystem exists for) is always detected. *)

let schema = "dbp-checkpoint/1"
let schema_v2 = "dbp-checkpoint/2"

type meta = {
  policy : string;
  seed : int64;
  events_applied : int;
  trace_seq : int;
}

type payload =
  | Engine of Simulator.Online.Frozen.t
  | Faults of Injector.Frozen.t
  | Repack of Dbp_repack.Runner.Frozen.t
  | Vector of Vec_simulator.Online.Frozen.t

type t = {
  meta : meta;
  metrics : Dbp_obs.Metrics.dump option;
  payload : payload;
}

let schema_of t =
  match t.payload with Vector _ -> schema_v2 | _ -> schema

let engine_of t =
  match t.payload with
  | Engine e -> e
  | Faults f -> f.Injector.Frozen.f_engine
  | Repack r -> r.Dbp_repack.Runner.Frozen.r_engine
  | Vector _ ->
      invalid_arg "Snapshot.engine_of: a vector snapshot has no scalar engine"

let kind_name t =
  match t.payload with
  | Engine _ -> "engine"
  | Faults _ -> "faults"
  | Repack _ -> "repack"
  | Vector _ -> "vector"

(* ---- emission ------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rat = Rat.to_string
let opt_rat = function None -> "-" | Some r -> rat r
let hex f = Printf.sprintf "%h" f
let int_of_bool b = if b then 1 else 0

let placements_str ps =
  String.concat " "
    (List.map (fun (t, id) -> Printf.sprintf "%s@%d" (rat t) id) ps)

let active_str xs =
  String.concat " "
    (List.map (fun (id, s) -> Printf.sprintf "%d:%s" id (rat s)) xs)

let vactive_str xs =
  String.concat " "
    (List.map (fun (id, s) -> Printf.sprintf "%d:%s" id (Vec.to_string s)) xs)

let rats_str rs = String.concat " " (List.map rat rs)
let floats_str fs = String.concat " " (List.map hex (Array.to_list fs))

(* Shared between the injector's optional budget line and the repack
   core line: spec in its canonical string form, balance and odometers
   exact. *)
let budget_fields (b : Dbp_repack.Budget.Frozen.t) =
  Printf.sprintf
    "\"budget\":\"%s\",\"tokens\":\"%s\",\"moves\":%d,\"moved_volume\":\"%s\",\"denied\":%d"
    (escape (Dbp_repack.Budget.spec_to_string b.Dbp_repack.Budget.Frozen.fb_spec))
    (rat b.Dbp_repack.Budget.Frozen.fb_tokens)
    b.Dbp_repack.Budget.Frozen.fb_moves
    (rat b.Dbp_repack.Budget.Frozen.fb_moved_volume)
    b.Dbp_repack.Budget.Frozen.fb_denied

let victim_str = function
  | Fault_plan.Any_open -> "any"
  | Fault_plan.Fullest -> "fullest"
  | Fault_plan.Emptiest -> "emptiest"
  | Fault_plan.Bin id -> Printf.sprintf "bin:%d" id

let to_string snap =
  let buf = Buffer.create 4096 in
  let lines = ref 0 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        incr lines;
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let capacity_str, clock, violations, bin_count, policy_state =
    match snap.payload with
    | Vector v ->
        ( Vec.to_string v.Vec_simulator.Online.Frozen.s_capacity,
          v.s_clock,
          v.s_violations,
          List.length v.s_bins,
          v.s_policy_state )
    | Engine _ | Faults _ | Repack _ ->
        let e = engine_of snap in
        ( rat e.Simulator.Online.Frozen.s_capacity,
          e.s_clock,
          e.s_violations,
          List.length e.s_bins,
          e.s_policy_state )
  in
  line
    "{\"schema\":\"%s\",\"kind\":\"%s\",\"policy\":\"%s\",\"seed\":\"%Ld\",\"events_applied\":%d,\"trace_seq\":%d,\"capacity\":\"%s\",\"clock\":\"%s\",\"violations\":%d,\"bins\":%d,\"metered\":%d%s}"
    (schema_of snap) (kind_name snap) (escape snap.meta.policy) snap.meta.seed
    snap.meta.events_applied snap.meta.trace_seq capacity_str (opt_rat clock)
    violations bin_count
    (int_of_bool (Option.is_some snap.metrics))
    (match policy_state with
    | None -> ""
    | Some blob -> Printf.sprintf ",\"policy_state\":\"%s\"" (escape blob));
  (match snap.payload with
  | Vector v ->
      List.iter
        (fun (b : Vec_simulator.Online.Frozen.bin) ->
          line
            "{\"vbin\":%d,\"tag\":\"%s\",\"cap\":\"%s\",\"opened\":\"%s\",\"closed\":\"%s\",\"max_level\":\"%s\",\"placements\":\"%s\",\"active\":\"%s\"}"
            b.b_id (escape b.b_tag)
            (Vec.to_string b.b_capacity)
            (rat b.b_opened) (opt_rat b.b_closed)
            (Vec.to_string b.b_max_level)
            (placements_str b.b_placements)
            (vactive_str b.b_active))
        v.Vec_simulator.Online.Frozen.s_bins
  | Engine _ | Faults _ | Repack _ ->
      let e = engine_of snap in
      List.iter
        (fun (b : Simulator.Online.Frozen.bin) ->
          line
            "{\"bin\":%d,\"tag\":\"%s\",\"cap\":\"%s\",\"opened\":\"%s\",\"closed\":\"%s\",\"max_level\":\"%s\",\"placements\":\"%s\",\"active\":\"%s\"}"
            b.b_id (escape b.b_tag) (rat b.b_capacity) (rat b.b_opened)
            (opt_rat b.b_closed) (rat b.b_max_level)
            (placements_str b.b_placements)
            (active_str b.b_active))
        e.s_bins);
  (match snap.metrics with
  | None -> ()
  | Some d ->
      List.iter
        (fun (name, v) ->
          line "{\"metric\":\"counter\",\"name\":\"%s\",\"value\":%d}"
            (escape name) v)
        d.Dbp_obs.Metrics.d_counters;
      List.iter
        (fun (name, v) ->
          line "{\"metric\":\"gauge\",\"name\":\"%s\",\"value\":%d}" (escape name)
            v)
        d.d_gauges;
      List.iter
        (fun (name, r) ->
          line "{\"metric\":\"rat_sum\",\"name\":\"%s\",\"value\":\"%s\"}"
            (escape name) (rat r))
        d.d_rat_sums;
      List.iter
        (fun (name, obs) ->
          line "{\"metric\":\"hist\",\"name\":\"%s\",\"values\":\"%s\"}"
            (escape name) (floats_str obs))
        d.d_hists);
  (match snap.payload with
  | Engine _ | Repack _ | Vector _ -> ()
  | Faults f ->
      let open Injector.Frozen in
      let c = f.f_config in
      line
        "{\"inj\":\"config\",\"cseed\":\"%Ld\",\"launch_failure_prob\":\"%s\",\"base_backoff\":\"%s\",\"backoff_cap\":\"%s\",\"max_retries\":%d,\"restart_delay\":\"%s\",\"max_fleet\":%d,\"max_pending\":%d}"
        c.Injector.seed
        (hex c.launch_failure_prob)
        (rat c.base_backoff) (rat c.backoff_cap) c.max_retries
        (rat c.restart_delay)
        (match c.max_fleet with None -> -1 | Some n -> n)
        (match c.max_pending with None -> -1 | Some n -> n);
      let rng_state, rng_inc = f.f_rng in
      line
        "{\"inj\":\"core\",\"rng_state\":\"%Ld\",\"rng_inc\":\"%Ld\",\"seq\":%d,\"next_seg\":%d,\"events_done\":%d,\"segments\":%d,\"queue\":%d,\"faults_injected\":%d,\"faults_skipped\":%d,\"interrupted\":%d,\"interrupted_seconds\":\"%s\",\"resumed\":%d,\"lost\":%d,\"launch_failures\":%d,\"retries\":%d,\"shed\":%d,\"latencies\":\"%s\"}"
        rng_state rng_inc f.f_seq f.f_next_seg f.f_events_done
        (List.length f.f_segments)
        (List.length f.f_queue)
        f.f_faults_injected f.f_faults_skipped f.f_interrupted
        (rat f.f_interrupted_seconds)
        f.f_resumed f.f_lost f.f_launch_failures f.f_retries f.f_shed
        (rats_str f.f_recovery_latencies);
      (match f.f_repack with
      | None -> ()
      | Some (b, rp) ->
          line "{\"inj\":\"repack\",%s,\"rpolicy\":\"%s\"}" (budget_fields b)
            (Dbp_repack.Repack_policy.name rp));
      List.iter
        (fun (s : fseg) ->
          line
            "{\"seg\":%d,\"orig\":%d,\"size\":\"%s\",\"start\":\"%s\",\"deadline\":\"%s\",\"stop\":\"%s\",\"live\":%d}"
            s.fs_id s.fs_orig (rat s.fs_size) (rat s.fs_start)
            (rat s.fs_deadline) (rat s.fs_stop)
            (int_of_bool s.fs_active))
        f.f_segments;
      List.iter
        (fun ((t, rank, qseq), ev) ->
          match ev with
          | F_depart seg ->
              line "{\"q\":\"depart\",\"t\":\"%s\",\"rank\":%d,\"qseq\":%d,\"seg\":%d}"
                (rat t) rank qseq seg
          | F_fault fe ->
              line
                "{\"q\":\"fault\",\"t\":\"%s\",\"rank\":%d,\"qseq\":%d,\"victim\":\"%s\",\"fkind\":\"%s\",\"warning\":\"%s\"}"
                (rat t) rank qseq
                (victim_str fe.Fault_plan.victim)
                (match fe.kind with Crash -> "crash" | Preemption _ -> "preempt")
                (match fe.kind with
                | Crash -> "-"
                | Preemption { warning } -> rat warning)
          | F_dispatch a ->
              line
                "{\"q\":\"dispatch\",\"t\":\"%s\",\"rank\":%d,\"qseq\":%d,\"orig\":%d,\"size\":\"%s\",\"priority\":%d,\"deadline\":\"%s\",\"attempt\":%d,\"evicted_at\":\"%s\",\"key\":%d,\"cancelled\":%d,\"pending\":%d}"
                (rat t) rank qseq a.fa_orig (rat a.fa_size) a.fa_priority
                (rat a.fa_deadline) a.fa_attempt
                (opt_rat a.fa_evicted_at)
                a.fa_key
                (int_of_bool a.fa_cancelled)
                (int_of_bool a.fa_pending))
        f.f_queue);
  (match snap.payload with
  | Engine _ | Faults _ | Vector _ -> ()
  | Repack r ->
      let open Dbp_repack.Runner.Frozen in
      line
        "{\"rp\":\"core\",%s,\"rpolicy\":\"%s\",\"events_done\":%d,\"next_seg\":%d,\"log\":%d,\"bins_closed\":%d,\"reclaimed\":\"%s\"}"
        (budget_fields r.r_budget)
        (Dbp_repack.Repack_policy.name r.r_repack)
        r.r_events_done r.r_next_seg
        (List.length r.r_log)
        r.r_bins_closed (rat r.r_reclaimed);
      List.iteri
        (fun i (old_id, new_id, t) ->
          line "{\"mv\":%d,\"old\":%d,\"new\":%d,\"at\":\"%s\"}" i old_id
            new_id (rat t))
        r.r_log);
  Printf.ksprintf
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    "{\"end\":\"%s\",\"lines\":%d}" (schema_of snap) !lines;
  Buffer.contents buf

(* ---- strict parsing ------------------------------------------------- *)

module T = Dbp_obs.Trace_event

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* Field cursor over one parsed line: every accessor records the key it
   consumed, and [finish_line] rejects leftovers — the same
   unknown-key strictness as the trace parser. *)
type cursor = { cfields : (string * T.value) list; mutable used : string list }

let cursor_of_line line =
  match T.parse_flat_object line with
  | Ok cfields -> { cfields; used = [] }
  | Error msg -> corrupt "%s" msg

let take c key =
  c.used <- key :: c.used;
  List.assoc_opt key c.cfields

let req c key =
  match take c key with
  | Some v -> v
  | None -> corrupt "missing key \"%s\"" key

let fint c key =
  match req c key with
  | T.Int i -> i
  | T.Str _ -> corrupt "key \"%s\" must be an integer" key

let fstr c key =
  match req c key with
  | T.Str s -> s
  | T.Int _ -> corrupt "key \"%s\" must be a string" key

let rat_of key s =
  match Rat.of_string s with
  | r -> r
  | exception (Failure _ | Division_by_zero) ->
      corrupt "key \"%s\" is not a rational: '%s'" key s

let vec_of key s =
  match Vec.of_string s with
  | v -> v
  | exception (Failure _ | Division_by_zero | Invalid_argument _) ->
      corrupt "key \"%s\" is not a rational vector: '%s'" key s

let frat c key = rat_of key (fstr c key)

let fopt_rat c key =
  let s = fstr c key in
  if s = "-" then None else Some (rat_of key s)

let fint64 c key =
  let s = fstr c key in
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> corrupt "key \"%s\" is not a 64-bit integer: '%s'" key s

let ffloat c key =
  let s = fstr c key in
  match float_of_string_opt s with
  | Some f -> f
  | None -> corrupt "key \"%s\" is not a float: '%s'" key s

let fbool c key =
  match fint c key with
  | 0 -> false
  | 1 -> true
  | n -> corrupt "key \"%s\" must be 0 or 1, not %d" key n

let finish_line c =
  List.iter
    (fun (key, _) ->
      if not (List.mem key c.used) then corrupt "unknown key \"%s\"" key)
    c.cfields

let split_tokens s = if s = "" then [] else String.split_on_char ' ' s

let decode_placements key s =
  List.map
    (fun tok ->
      match String.index_opt tok '@' with
      | None -> corrupt "key \"%s\": malformed placement '%s'" key tok
      | Some i -> (
          let t = rat_of key (String.sub tok 0 i) in
          match
            int_of_string_opt
              (String.sub tok (i + 1) (String.length tok - i - 1))
          with
          | Some id -> (t, id)
          | None -> corrupt "key \"%s\": malformed placement '%s'" key tok))
    (split_tokens s)

let decode_active key s =
  List.map
    (fun tok ->
      match String.index_opt tok ':' with
      | None -> corrupt "key \"%s\": malformed active item '%s'" key tok
      | Some i -> (
          match int_of_string_opt (String.sub tok 0 i) with
          | Some id ->
              (id, rat_of key (String.sub tok (i + 1) (String.length tok - i - 1)))
          | None -> corrupt "key \"%s\": malformed active item '%s'" key tok))
    (split_tokens s)

let decode_vactive key s =
  List.map
    (fun tok ->
      match String.index_opt tok ':' with
      | None -> corrupt "key \"%s\": malformed active item '%s'" key tok
      | Some i -> (
          match int_of_string_opt (String.sub tok 0 i) with
          | Some id ->
              (id, vec_of key (String.sub tok (i + 1) (String.length tok - i - 1)))
          | None -> corrupt "key \"%s\": malformed active item '%s'" key tok))
    (split_tokens s)

let decode_rats key s = List.map (rat_of key) (split_tokens s)

let decode_floats key s =
  Array.of_list
    (List.map
       (fun tok ->
         match float_of_string_opt tok with
         | Some f -> f
         | None -> corrupt "key \"%s\": malformed float '%s'" key tok)
       (split_tokens s))

let victim_of key s =
  match s with
  | "any" -> Fault_plan.Any_open
  | "fullest" -> Fault_plan.Fullest
  | "emptiest" -> Fault_plan.Emptiest
  | _ ->
      if String.length s > 4 && String.sub s 0 4 = "bin:" then
        match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
        | Some id -> Fault_plan.Bin id
        | None -> corrupt "key \"%s\": unknown victim rule '%s'" key s
      else corrupt "key \"%s\": unknown victim rule '%s'" key s

(* The injector core line, held until the whole file is read so its
   declared segment/queue counts can be checked against the actual
   lines. *)
let budget_frozen_of c =
  let spec =
    match Dbp_repack.Budget.spec_of_string (fstr c "budget") with
    | Ok s -> s
    | Error msg -> corrupt "key \"budget\": %s" msg
  in
  {
    Dbp_repack.Budget.Frozen.fb_spec = spec;
    fb_tokens = frat c "tokens";
    fb_moves = fint c "moves";
    fb_moved_volume = frat c "moved_volume";
    fb_denied = fint c "denied";
  }

let rpolicy_of c =
  match Dbp_repack.Repack_policy.of_string (fstr c "rpolicy") with
  | Ok p -> p
  | Error msg -> corrupt "key \"rpolicy\": %s" msg

(* The repack core line, held like the injector's so its declared
   migration-log length can be checked against the [mv] lines. *)
type rp_line = {
  rl_budget : Dbp_repack.Budget.Frozen.t;
  rl_policy : Dbp_repack.Repack_policy.t;
  rl_events_done : int;
  rl_next_seg : int;
  rl_log : int;
  rl_bins_closed : int;
  rl_reclaimed : Rat.t;
}

type core_line = {
  cl_rng : int64 * int64;
  cl_seq : int;
  cl_next_seg : int;
  cl_events_done : int;
  cl_segments : int;
  cl_queue : int;
  cl_faults_injected : int;
  cl_faults_skipped : int;
  cl_interrupted : int;
  cl_interrupted_seconds : Rat.t;
  cl_resumed : int;
  cl_lost : int;
  cl_launch_failures : int;
  cl_retries : int;
  cl_shed : int;
  cl_latencies : Rat.t list;
}

let of_string text =
  try
    let all_lines =
      String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
    in
    let header, rest =
      match all_lines with
      | [] -> corrupt "empty snapshot"
      | h :: r -> (h, r)
    in
    let c = cursor_of_line header in
    let sch = fstr c "schema" in
    if sch <> schema && sch <> schema_v2 then
      corrupt "unsupported schema \"%s\" (expected \"%s\" or \"%s\")" sch
        schema schema_v2;
    let kind = fstr c "kind" in
    (match kind with
    | "engine" | "faults" | "repack" ->
        if sch <> schema then
          corrupt "snapshot kind \"%s\" belongs to schema \"%s\"" kind schema
    | "vector" ->
        if sch <> schema_v2 then
          corrupt "snapshot kind \"vector\" belongs to schema \"%s\"" schema_v2
    | _ -> corrupt "unknown snapshot kind \"%s\"" kind);
    let policy = fstr c "policy" in
    let seed = fint64 c "seed" in
    let events_applied = fint c "events_applied" in
    let trace_seq = fint c "trace_seq" in
    if events_applied < 0 then corrupt "negative events_applied";
    if trace_seq < 0 then corrupt "negative trace_seq";
    let capacity_str = fstr c "capacity" in
    let clock = fopt_rat c "clock" in
    let violations = fint c "violations" in
    let bin_count = fint c "bins" in
    let metered = fbool c "metered" in
    let policy_state =
      match take c "policy_state" with
      | None -> None
      | Some (T.Str s) -> Some s
      | Some (T.Int _) -> corrupt "key \"policy_state\" must be a string"
    in
    finish_line c;
    let bins = ref [] in
    let vbins = ref [] in
    let counters = ref []
    and gauges = ref []
    and rat_sums = ref []
    and hists = ref [] in
    let config = ref None and core = ref None in
    let segs = ref [] and queue = ref [] in
    let inj_repack = ref None in
    let rp_core = ref None in
    let mvs = ref [] (* reverse order *) and mv_count = ref 0 in
    let body_lines = ref 0 in
    let footer_seen = ref false in
    List.iter
      (fun line ->
        if !footer_seen then corrupt "content after the footer line";
        let c = cursor_of_line line in
        match c.cfields with
        | [] -> corrupt "empty object line"
        | (first, _) :: _ -> (
            match first with
            | "bin" ->
                incr body_lines;
                let b_id = fint c "bin" in
                let b_tag = fstr c "tag" in
                let b_capacity = frat c "cap" in
                let b_opened = frat c "opened" in
                let b_closed = fopt_rat c "closed" in
                let b_max_level = frat c "max_level" in
                let b_placements =
                  decode_placements "placements" (fstr c "placements")
                in
                let b_active = decode_active "active" (fstr c "active") in
                finish_line c;
                bins :=
                  {
                    Simulator.Online.Frozen.b_id;
                    b_tag;
                    b_capacity;
                    b_opened;
                    b_closed;
                    b_max_level;
                    b_placements;
                    b_active;
                  }
                  :: !bins
            | "vbin" ->
                incr body_lines;
                let b_id = fint c "vbin" in
                let b_tag = fstr c "tag" in
                let b_capacity = vec_of "cap" (fstr c "cap") in
                let b_opened = frat c "opened" in
                let b_closed = fopt_rat c "closed" in
                let b_max_level = vec_of "max_level" (fstr c "max_level") in
                let b_placements =
                  decode_placements "placements" (fstr c "placements")
                in
                let b_active = decode_vactive "active" (fstr c "active") in
                finish_line c;
                vbins :=
                  {
                    Vec_simulator.Online.Frozen.b_id;
                    b_tag;
                    b_capacity;
                    b_opened;
                    b_closed;
                    b_max_level;
                    b_placements;
                    b_active;
                  }
                  :: !vbins
            | "metric" ->
                incr body_lines;
                (match fstr c "metric" with
                | "counter" ->
                    let name = fstr c "name" in
                    counters := (name, fint c "value") :: !counters
                | "gauge" ->
                    let name = fstr c "name" in
                    gauges := (name, fint c "value") :: !gauges
                | "rat_sum" ->
                    let name = fstr c "name" in
                    rat_sums := (name, frat c "value") :: !rat_sums
                | "hist" ->
                    let name = fstr c "name" in
                    hists :=
                      (name, decode_floats "values" (fstr c "values"))
                      :: !hists
                | other -> corrupt "unknown metric class \"%s\"" other);
                finish_line c
            | "inj" ->
                incr body_lines;
                (match fstr c "inj" with
                | "config" ->
                    if Option.is_some !config then
                      corrupt "duplicate injector config line";
                    let cseed = fint64 c "cseed" in
                    let launch_failure_prob = ffloat c "launch_failure_prob" in
                    let base_backoff = frat c "base_backoff" in
                    let backoff_cap = frat c "backoff_cap" in
                    let max_retries = fint c "max_retries" in
                    let restart_delay = frat c "restart_delay" in
                    let opt_count key =
                      match fint c key with
                      | -1 -> None
                      | n when n >= 0 -> Some n
                      | n -> corrupt "key \"%s\": bad bound %d" key n
                    in
                    let max_fleet = opt_count "max_fleet" in
                    let max_pending = opt_count "max_pending" in
                    config :=
                      Some
                        {
                          Injector.seed = cseed;
                          launch_failure_prob;
                          base_backoff;
                          backoff_cap;
                          max_retries;
                          restart_delay;
                          max_fleet;
                          max_pending;
                        }
                | "core" ->
                    if Option.is_some !core then
                      corrupt "duplicate injector core line";
                    core :=
                      Some
                        {
                          cl_rng = (fint64 c "rng_state", fint64 c "rng_inc");
                          cl_seq = fint c "seq";
                          cl_next_seg = fint c "next_seg";
                          cl_events_done = fint c "events_done";
                          cl_segments = fint c "segments";
                          cl_queue = fint c "queue";
                          cl_faults_injected = fint c "faults_injected";
                          cl_faults_skipped = fint c "faults_skipped";
                          cl_interrupted = fint c "interrupted";
                          cl_interrupted_seconds =
                            frat c "interrupted_seconds";
                          cl_resumed = fint c "resumed";
                          cl_lost = fint c "lost";
                          cl_launch_failures = fint c "launch_failures";
                          cl_retries = fint c "retries";
                          cl_shed = fint c "shed";
                          cl_latencies = decode_rats "latencies" (fstr c "latencies");
                        }
                | "repack" ->
                    if Option.is_some !inj_repack then
                      corrupt "duplicate injector repack line";
                    let budget = budget_frozen_of c in
                    let rp = rpolicy_of c in
                    inj_repack := Some (budget, rp)
                | other -> corrupt "unknown injector line \"%s\"" other);
                finish_line c
            | "rp" ->
                incr body_lines;
                (match fstr c "rp" with
                | "core" ->
                    if Option.is_some !rp_core then
                      corrupt "duplicate repack core line";
                    rp_core :=
                      Some
                        {
                          rl_budget = budget_frozen_of c;
                          rl_policy = rpolicy_of c;
                          rl_events_done = fint c "events_done";
                          rl_next_seg = fint c "next_seg";
                          rl_log = fint c "log";
                          rl_bins_closed = fint c "bins_closed";
                          rl_reclaimed = frat c "reclaimed";
                        }
                | other -> corrupt "unknown repack line \"%s\"" other);
                finish_line c
            | "mv" ->
                incr body_lines;
                let i = fint c "mv" in
                if i <> !mv_count then
                  corrupt "migration log out of order: entry %d at position %d"
                    i !mv_count;
                incr mv_count;
                let old_id = fint c "old" in
                let new_id = fint c "new" in
                let t = frat c "at" in
                finish_line c;
                mvs := (old_id, new_id, t) :: !mvs
            | "seg" ->
                incr body_lines;
                let fs_id = fint c "seg" in
                let fs_orig = fint c "orig" in
                let fs_size = frat c "size" in
                let fs_start = frat c "start" in
                let fs_deadline = frat c "deadline" in
                let fs_stop = frat c "stop" in
                let fs_active = fbool c "live" in
                finish_line c;
                segs :=
                  {
                    Injector.Frozen.fs_id;
                    fs_orig;
                    fs_size;
                    fs_start;
                    fs_deadline;
                    fs_stop;
                    fs_active;
                  }
                  :: !segs
            | "q" ->
                incr body_lines;
                let t = frat c "t" in
                let rank = fint c "rank" in
                let qseq = fint c "qseq" in
                let check_rank expected =
                  if rank <> expected then
                    corrupt "queue rank %d does not match its event kind" rank
                in
                let ev =
                  match fstr c "q" with
                  | "depart" ->
                      check_rank 0;
                      Injector.Frozen.F_depart (fint c "seg")
                  | "fault" ->
                      check_rank 1;
                      let victim = victim_of "victim" (fstr c "victim") in
                      let warning = fopt_rat c "warning" in
                      let kind =
                        match (fstr c "fkind", warning) with
                        | "crash", None -> Fault_plan.Crash
                        | "crash", Some _ ->
                            corrupt "crash fault carries a warning"
                        | "preempt", Some warning ->
                            Fault_plan.Preemption { warning }
                        | "preempt", None ->
                            corrupt "preemption fault without a warning"
                        | other, _ -> corrupt "unknown fault kind \"%s\"" other
                      in
                      Injector.Frozen.F_fault
                        { Fault_plan.at = t; victim; kind }
                  | "dispatch" ->
                      check_rank 2;
                      Injector.Frozen.F_dispatch
                        {
                          Injector.Frozen.fa_orig = fint c "orig";
                          fa_size = frat c "size";
                          fa_priority = fint c "priority";
                          fa_deadline = frat c "deadline";
                          fa_attempt = fint c "attempt";
                          fa_evicted_at = fopt_rat c "evicted_at";
                          fa_key = fint c "key";
                          fa_cancelled = fbool c "cancelled";
                          fa_pending = fbool c "pending";
                        }
                  | other -> corrupt "unknown queue event \"%s\"" other
                in
                finish_line c;
                queue := ((t, rank, qseq), ev) :: !queue
            | "end" ->
                let fsch = fstr c "end" in
                if fsch <> sch then
                  corrupt "footer schema \"%s\" does not match" fsch;
                let declared = fint c "lines" in
                let actual = !body_lines + 1 in
                if declared <> actual then
                  corrupt "truncated snapshot: footer declares %d lines, found %d"
                    declared actual;
                finish_line c;
                footer_seen := true
            | other -> corrupt "unknown line type \"%s\"" other))
      rest;
    if not !footer_seen then corrupt "missing footer line (truncated snapshot?)";
    let bins = List.rev !bins in
    let vbins = List.rev !vbins in
    (if kind = "vector" then (
       if bins <> [] then corrupt "scalar bin lines in a vector snapshot";
       if List.length vbins <> bin_count then
         corrupt "header declares %d bins, found %d" bin_count
           (List.length vbins))
     else (
       if vbins <> [] then corrupt "vector bin lines in a scalar snapshot";
       if List.length bins <> bin_count then
         corrupt "header declares %d bins, found %d" bin_count
           (List.length bins)));
    let have_metric_lines =
      !counters <> [] || !gauges <> [] || !rat_sums <> [] || !hists <> []
    in
    if (not metered) && have_metric_lines then
      corrupt "metric lines in an unmetered snapshot";
    let metrics =
      if metered then
        Some
          {
            Dbp_obs.Metrics.d_counters = List.rev !counters;
            d_gauges = List.rev !gauges;
            d_rat_sums = List.rev !rat_sums;
            d_hists = List.rev !hists;
          }
      else None
    in
    let engine () =
      {
        Simulator.Online.Frozen.s_capacity = rat_of "capacity" capacity_str;
        s_clock = clock;
        s_violations = violations;
        s_bins = bins;
        s_policy_state = policy_state;
      }
    in
    let no_fault_lines what =
      if
        Option.is_some !config || Option.is_some !core || !segs <> []
        || !queue <> []
        || Option.is_some !inj_repack
      then corrupt "fault-injector lines in %s snapshot" what
    in
    let no_repack_lines what =
      if Option.is_some !rp_core || !mvs <> [] then
        corrupt "repack lines in %s snapshot" what
    in
    let payload =
      match kind with
      | "vector" ->
          no_fault_lines "a vector";
          no_repack_lines "a vector";
          Vector
            {
              Vec_simulator.Online.Frozen.s_capacity =
                vec_of "capacity" capacity_str;
              s_clock = clock;
              s_violations = violations;
              s_bins = vbins;
              s_policy_state = policy_state;
            }
      | "engine" ->
          if
            Option.is_some !config || Option.is_some !core || !segs <> []
            || !queue <> []
            || Option.is_some !inj_repack
          then corrupt "fault-injector lines in an engine snapshot";
          if Option.is_some !rp_core || !mvs <> [] then
            corrupt "repack lines in an engine snapshot";
          Engine (engine ())
      | "repack" ->
          if
            Option.is_some !config || Option.is_some !core || !segs <> []
            || !queue <> []
            || Option.is_some !inj_repack
          then corrupt "fault-injector lines in a repack snapshot";
          let rl =
            match !rp_core with
            | Some rl -> rl
            | None -> corrupt "missing the repack core line"
          in
          let log = List.rev !mvs in
          if List.length log <> rl.rl_log then
            corrupt "repack core line declares %d log entries, found %d"
              rl.rl_log (List.length log);
          Repack
            {
              Dbp_repack.Runner.Frozen.r_engine = engine ();
              r_budget = rl.rl_budget;
              r_repack = rl.rl_policy;
              r_events_done = rl.rl_events_done;
              r_next_seg = rl.rl_next_seg;
              r_log = log;
              r_bins_closed = rl.rl_bins_closed;
              r_reclaimed = rl.rl_reclaimed;
            }
      | _ ->
          if Option.is_some !rp_core || !mvs <> [] then
            corrupt "repack lines in a faults snapshot";
          let config =
            match !config with
            | Some c -> c
            | None -> corrupt "missing the injector config line"
          in
          let core =
            match !core with
            | Some c -> c
            | None -> corrupt "missing the injector core line"
          in
          let segments = List.rev !segs in
          let queue = List.rev !queue in
          if List.length segments <> core.cl_segments then
            corrupt "core line declares %d segments, found %d" core.cl_segments
              (List.length segments);
          if List.length queue <> core.cl_queue then
            corrupt "core line declares %d queue events, found %d"
              core.cl_queue (List.length queue);
          Faults
            {
              Injector.Frozen.f_engine = engine ();
              f_config = config;
              f_rng = core.cl_rng;
              f_seq = core.cl_seq;
              f_next_seg = core.cl_next_seg;
              f_events_done = core.cl_events_done;
              f_segments = segments;
              f_queue = queue;
              f_faults_injected = core.cl_faults_injected;
              f_faults_skipped = core.cl_faults_skipped;
              f_interrupted = core.cl_interrupted;
              f_interrupted_seconds = core.cl_interrupted_seconds;
              f_resumed = core.cl_resumed;
              f_lost = core.cl_lost;
              f_launch_failures = core.cl_launch_failures;
              f_retries = core.cl_retries;
              f_shed = core.cl_shed;
              f_recovery_latencies = core.cl_latencies;
              f_repack = !inj_repack;
            }
    in
    Ok { meta = { policy; seed; events_applied; trace_seq }; metrics; payload }
  with Corrupt msg -> Error msg
