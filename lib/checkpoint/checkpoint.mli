(** Checkpoint/restore drivers: cut a run at an exact event index,
    resume one from a {!Snapshot}, and prove the resumed run
    bit-identical to never having stopped.

    The contract (tested over every registry policy in
    [test/test_checkpoint.ml] and smoked in CI): for any engine
    snapshot cut at event [k], resuming and replaying events
    [k..n-1] yields the same packing (bins, placements, exact total
    cost, violation count) {e and} the same trace — the resumed sink,
    positioned at the snapshot's [trace_seq], emits exactly the
    uninterrupted run's line suffix, so prefix + suffix validates as
    one [dbp-trace/2] stream.  Fault-injected runs checkpoint through
    {!Dbp_faults.Injector.freeze} with the same guarantee.

    Volatile policies ({!Dbp_core.Policy.Volatile}) cannot checkpoint;
    {!save_at} propagates the engine's
    {!Dbp_core.Simulator.Invalid_step}.  Heterogeneous [tag_capacity]
    functions are not serialisable and are not supported here — a
    snapshot records each bin's own capacity, but resumes re-open new
    bins at the instance capacity only. *)

open Dbp_num
open Dbp_core

exception Error of string
(** Driver-level failures: unknown policy names, event indices out of
    range, payload kind mismatches.  Corrupt snapshot {e files} are
    reported as [Error _] results by {!load_file} instead; engine-level
    inconsistencies raise {!Dbp_core.Simulator.Invalid_step}. *)

val save_at :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?metrics:Dbp_obs.Metrics.t ->
  ?mu:Rat.t ->
  ?seed:int64 ->
  policy_name:string ->
  at:int ->
  Instance.t ->
  Snapshot.t
(** Replays the first [at] events of the instance's canonical stream
    through the named policy (registry lookup as in
    {!Dbp_core.Algorithms.find}; [seed] defaults to the registry
    default, [mu] is for ["mff-known-mu"]) and freezes.  A [sink]
    passed here sees the replayed prefix and its position is recorded
    as the snapshot's [trace_seq]; without one a null sink counts
    events so [trace_seq] is correct either way.  [audit] defaults to
    {!Dbp_core.Audit.enabled_from_env}. *)

val save_repack_at :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?metrics:Dbp_obs.Metrics.t ->
  ?mu:Rat.t ->
  ?seed:int64 ->
  ?budget:Dbp_repack.Budget.spec ->
  ?repack:Dbp_repack.Repack_policy.t ->
  policy_name:string ->
  at:int ->
  Instance.t ->
  Snapshot.t
(** The {!save_at} analogue for budget-constrained repacking runs:
    replays the first [at] instance events through a
    {!Dbp_repack.Runner} under [budget] (default
    {!Dbp_repack.Budget.zero}) and [repack] (default [No_repack]) and
    freezes — budget balance, migration log and odometers included.
    The snapshot is self-describing: {!verify} and {!resume_repack}
    recover the budget spec and repack policy from the image. *)

type resumed = { packing : Packing.t; metrics : Dbp_obs.Metrics.t option }

val resume :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?mu:Rat.t ->
  Instance.t ->
  Snapshot.t ->
  resumed
(** Thaws an [Engine] snapshot, replays the remaining events and
    assembles the packing.  The instance must be the one the snapshot
    was cut from.  A [sink] is positioned at the snapshot's
    [trace_seq] before any event fires; [metrics] is the restored
    registry (when the snapshot carried one) with the tail of the run
    accrued on top.
    @raise Error on a [Faults] snapshot or an unknown policy. *)

type resumed_faults = {
  fresult : Dbp_faults.Injector.result;
  fmetrics : Dbp_obs.Metrics.t option;
}

val resume_faults :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?priority:(Item.t -> int) ->
  ?mu:Rat.t ->
  Instance.t ->
  Snapshot.t ->
  resumed_faults
(** Thaws a [Faults] snapshot and drains the injector to completion.
    [priority] must be the run's original admission priority (it only
    affects future shedding decisions).
    @raise Error on an [Engine] snapshot or an unknown policy. *)

type resumed_repack = {
  rresult : Dbp_repack.Runner.result;
  rmetrics : Dbp_obs.Metrics.t option;
}

val resume_repack :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?mu:Rat.t ->
  Instance.t ->
  Snapshot.t ->
  resumed_repack
(** Thaws a [Repack] snapshot and drains the runner to completion:
    packing, effective instance and migration stats are the frozen
    run's continuation, bit-identical to never having stopped.
    @raise Error on an [Engine] or [Faults] snapshot or an unknown
    policy. *)

val save_vector_at :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?metrics:Dbp_obs.Metrics.t ->
  ?seed:int64 ->
  policy_name:string ->
  at:int ->
  Vec_instance.t ->
  Snapshot.t
(** The {!save_at} analogue for multi-resource runs: replays the first
    [at] events of {!Dbp_core.Vec_instance.sorted_events} through the
    named vector policy ({!Dbp_core.Vec_policy.find} — native DVBP
    names plus every scalar registry name at [d = 1]) and freezes.
    The snapshot serialises under {!Snapshot.schema_v2}. *)

type resumed_vector = {
  vresult : Vec_simulator.result;
  vmetrics : Dbp_obs.Metrics.t option;
}

val resume_vector :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  Vec_instance.t ->
  Snapshot.t ->
  resumed_vector
(** Thaws a [Vector] snapshot, replays the remaining events and
    assembles the result, bit-identically to never having stopped.
    @raise Error on a scalar snapshot or an unknown policy. *)

type verdict = { ok : bool; mismatches : string list }

val verify :
  ?audit:bool -> ?mu:Rat.t -> Instance.t -> Snapshot.t -> verdict
(** The bit-identity proof for an [Engine] or [Repack] snapshot: runs
    the uninterrupted traced simulation (for [Repack], a fresh
    {!Dbp_repack.Runner.run} under the budget spec and repack policy
    recorded in the image), resumes the snapshot with its own sink,
    and compares exact total cost, max open bins, violation counts,
    every bin record (tag, capacity, usage period, max level,
    placements, item ids), the item-to-bin assignment, and the trace
    (resumed lines = uninterrupted suffix after [trace_seq]).
    [mismatches] is empty iff [ok].
    @raise Error on a [Faults] snapshot — the uninterrupted faulty run
    is not reconstructible from the snapshot alone (the remaining plan
    lives in its queue); the test suite checks those round trips
    directly. *)

val verify_vector :
  ?audit:bool -> Vec_instance.t -> Snapshot.t -> verdict
(** The {!verify} analogue for [Vector] snapshots: uninterrupted
    {!Dbp_core.Vec_simulator.run} vs resume, packings and trace
    suffix compared exactly.
    @raise Error on a scalar snapshot. *)

val inspect : Snapshot.t -> string
(** A human-readable summary derived from the snapshot alone (no
    instance needed): policy, progress, clock, fleet shape, accrued
    closed-bin cost, and the injector's counters for fault
    snapshots. *)

val save_file : string -> Snapshot.t -> unit
val load_file : string -> (Snapshot.t, string) result
(** [load_file] returns [Error] for unreadable files and corrupt or
    truncated snapshots (see {!Snapshot.of_string}). *)
