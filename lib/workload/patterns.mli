(** Deterministic structured workloads.

    Closed-form families used by the experiments and tests: they have
    known optimal costs or known qualitative behaviour, making them
    good fixtures alongside the random workloads of {!Generator}. *)

open Dbp_num
open Dbp_core

val fragmentation : k:int -> mu:Rat.t -> Instance.t
(** The {e oblivious} Figure 2 workload (capacity 1): [k^2] items of
    size [1/k] at time 0; items [i] with [i mod k <> 0] depart at 1,
    the rest at [mu].  Against First Fit this realises exactly the
    Theorem 1 adversary (FF fills bins in index order), without
    adaptivity.  @raise Invalid_argument if [k < 1] or [mu < 1]. *)

val fragmentation_fine : bins:int -> per_bin:int -> mu:Rat.t -> Instance.t
(** Generalised Figure 2 workload with {e small} items: [bins * per_bin]
    items of size [1/per_bin] at time 0 (First Fit fills [bins] bins in
    index order); the first item of each bin-block survives to [mu],
    the rest depart at 1.  With [per_bin > k] every size is [< W/k], so
    this is the adversarial instance for the Theorem 4 regime: FF pays
    [bins * mu] while OPT pays [bins + mu - 1].
    @raise Invalid_argument if [bins < 1], [per_bin < 1] or [mu < 1]. *)

val staircase : steps:int -> step_length:Rat.t -> Instance.t
(** [steps] unit-size items; item [i] arrives at [i * step_length] and
    departs at [(i + 2) * step_length]: a sliding window of exactly two
    active items.  Any algorithm pays the same; OPT equals it.  Good
    calibration fixture (ratio 1). *)

val spike : base:int -> spike_height:int -> Instance.t
(** A long-lived background of [base] half-capacity items plus a short
    burst of [spike_height] half-capacity items in the middle. *)

val sawtooth : teeth:int -> per_tooth:int -> mu:Rat.t -> Instance.t
(** [teeth] waves of [per_tooth] items of size [1/per_tooth]; in each
    wave all but one item live [1] time unit, the last lives [mu]:
    repeated fragmentation pressure with overlapping long tails. *)

val pairwise_conflict : pairs:int -> Instance.t
(** Items of size 0.6 (capacity 1) arriving in overlapping pairs — no
    two can ever share a bin; OPT equals any algorithm.  Exercises the
    all-large regime of Theorem 3 with [k = 2]. *)
