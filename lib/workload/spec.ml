open Dbp_num

type size_model =
  | Uniform_sizes of { lo : float; hi : float }
  | Discrete_sizes of (Rat.t * float) list
  | Constant_size of Rat.t

type duration_model =
  | Uniform_durations of { lo : float; hi : float }
  | Lognormal_durations of { log_mean : float; log_stddev : float }
  | Exponential_durations of { mean : float }
  | Constant_duration of float

type arrival_model =
  | Poisson of { rate : float }
  | Uniform_over of { horizon : float }
  | Batched of { batches : int; gap : float }

type t = {
  capacity : Rat.t;
  count : int;
  sizes : size_model;
  durations : duration_model;
  arrivals : arrival_model;
  min_duration : float;
  max_duration : float;
  quantum : int;
}

let default =
  {
    capacity = Rat.one;
    count = 200;
    sizes = Uniform_sizes { lo = 0.0; hi = 1.0 };
    durations = Exponential_durations { mean = 3.0 };
    arrivals = Poisson { rate = 2.0 };
    min_duration = 1.0;
    max_duration = 10.0;
    quantum = 10_000;
  }

exception Invalid_spec of { field : string; reason : string }

let invalid ~field fmt =
  Printf.ksprintf (fun reason -> raise (Invalid_spec { field; reason })) fmt

(* Construction-time validation.  The float parameters only become
   exact once Generator snaps them onto the 1/quantum grid, so the
   dangerous specs are the ones whose bounds are fine as floats but
   collapse to zero or cross each other after snapping — those used to
   surface as silently degenerate workloads (every size equal to one
   grid step, durations clamped to a point). *)
let validate t =
  if t.count <= 0 then invalid ~field:"count" "%d items (need at least 1)" t.count;
  if t.quantum <= 0 then
    invalid ~field:"quantum" "grid denominator %d (need >= 1)" t.quantum;
  if Rat.sign t.capacity <= 0 then
    invalid ~field:"capacity" "capacity %s is not positive"
      (Rat.to_string t.capacity);
  let q = t.quantum in
  let step = Rat.make 1 q in
  if t.min_duration <= 0.0 then
    invalid ~field:"min_duration" "%g is not positive" t.min_duration;
  if t.max_duration < t.min_duration then
    invalid ~field:"max_duration" "clamp [%g, %g] is inverted" t.min_duration
      t.max_duration;
  let dlo = Rat.of_float ~den:q t.min_duration in
  let dhi = Rat.of_float ~den:q t.max_duration in
  if Rat.sign dlo <= 0 then
    invalid ~field:"min_duration" "%g collapses to zero on the 1/%d grid"
      t.min_duration q;
  if Rat.compare dhi dlo < 0 then
    invalid ~field:"max_duration"
      "clamp [%g, %g] inverts after 1/%d grid snapping" t.min_duration
      t.max_duration q;
  if t.max_duration > t.min_duration && Rat.equal dlo dhi then
    invalid ~field:"max_duration"
      "clamp [%g, %g] collapses to a point on the 1/%d grid" t.min_duration
      t.max_duration q;
  (match t.durations with
  | Uniform_durations { lo; hi } ->
      if hi < lo then
        invalid ~field:"durations" "uniform(%g, %g) is inverted" lo hi
  | Lognormal_durations { log_stddev; _ } ->
      if log_stddev < 0.0 then
        invalid ~field:"durations" "lognormal stddev %g is negative" log_stddev
  | Exponential_durations { mean } ->
      if mean <= 0.0 then
        invalid ~field:"durations" "exponential mean %g is not positive" mean
  | Constant_duration d ->
      if d <= 0.0 then
        invalid ~field:"durations" "constant duration %g is not positive" d);
  match t.sizes with
  | Constant_size s ->
      if Rat.sign s <= 0 then
        invalid ~field:"sizes" "constant size %s is not positive"
          (Rat.to_string s);
      if Rat.compare s t.capacity > 0 then
        invalid ~field:"sizes" "constant size %s exceeds capacity %s"
          (Rat.to_string s) (Rat.to_string t.capacity)
  | Discrete_sizes [] -> invalid ~field:"sizes" "empty size catalog"
  | Discrete_sizes catalog ->
      List.iter
        (fun (s, w) ->
          if Rat.sign s <= 0 then
            invalid ~field:"sizes" "catalog size %s is not positive"
              (Rat.to_string s);
          if Rat.compare s t.capacity > 0 then
            invalid ~field:"sizes" "catalog size %s exceeds capacity %s"
              (Rat.to_string s) (Rat.to_string t.capacity);
          if w < 0.0 || not (Float.is_finite w) then
            invalid ~field:"sizes" "catalog weight %g is negative or not finite"
              w)
        catalog;
      if List.for_all (fun (_, w) -> w <= 0.0) catalog then
        invalid ~field:"sizes" "every catalog weight is zero"
  | Uniform_sizes { lo; hi } ->
      if lo < 0.0 then invalid ~field:"sizes" "lower bound %g is negative" lo;
      if hi <= lo then
        invalid ~field:"sizes" "uniform(%g, %g) is inverted or empty" lo hi;
      let lo_q = Rat.of_float ~den:q lo in
      let hi_q = Rat.of_float ~den:q hi in
      if Rat.sign hi_q <= 0 then
        invalid ~field:"sizes" "upper bound %g collapses to zero on the 1/%d grid"
          hi q;
      if Rat.compare hi_q t.capacity < 0 then begin
        (* Sub-capacity bound: Generator keeps draws strictly below it,
           snapping them down onto [step, hi_q - step]. *)
        if Rat.compare hi_q step <= 0 then
          invalid ~field:"sizes"
            "upper bound %g leaves no grid point strictly below it (1/%d grid)"
            hi q;
        if Rat.compare lo_q (Rat.sub hi_q step) > 0 then
          invalid ~field:"sizes"
            "bounds [%g, %g) collapse after 1/%d grid snapping" lo hi q
      end

let check t =
  match validate t with
  | () -> Ok ()
  | exception Invalid_spec { field; reason } ->
      Error (Printf.sprintf "%s: %s" field reason)

let with_target_mu t ~mu =
  if mu < 1.0 then invalid_arg "Spec.with_target_mu: mu < 1";
  let t = { t with max_duration = t.min_duration *. mu } in
  validate t;
  t

(* The class boundary W/k is generally not a 1/quantum grid point, and
   [Rat.to_float W /. float k] is not W/k either; snapping draws near
   that float used to cross the exact boundary (W = 1, k = 3: raw
   draws just above 1/3 rounded down to 3333/10000 < 1/3, breaking
   the "every size >= W/k" premise of the large-items regime).  Place
   the boundary with exact Rat arithmetic on the smallest grid point
   >= W/k instead: a grid point survives the float round-trip because
   round-to-nearest snapping moves a value by at most 1/(2 quantum). *)
let class_boundary t ~k =
  let wk = Rat.div_int t.capacity k in
  Rat.make (Rat.ceil (Rat.mul_int wk t.quantum)) t.quantum

let small_items t ~k =
  if k <= 1 then invalid_arg "Spec.small_items: k <= 1";
  (* Generator keeps draws strictly below a sub-capacity [hi], so the
     admissible grid sizes are exactly those strictly below W/k. *)
  let hi = Rat.to_float (class_boundary t ~k) in
  let t = { t with sizes = Uniform_sizes { lo = 0.0; hi } } in
  validate t;
  t

let large_items t ~k =
  if k <= 1 then invalid_arg "Spec.large_items: k <= 1";
  let lo = Rat.to_float (class_boundary t ~k) in
  let t = { t with sizes = Uniform_sizes { lo; hi = Rat.to_float t.capacity } } in
  validate t;
  t

let pp_sizes fmt = function
  | Uniform_sizes { lo; hi } -> Format.fprintf fmt "uniform(%g, %g)" lo hi
  | Discrete_sizes catalog ->
      Format.fprintf fmt "discrete(%d sizes)" (List.length catalog)
  | Constant_size s -> Format.fprintf fmt "constant(%a)" Rat.pp s

let pp_durations fmt = function
  | Uniform_durations { lo; hi } -> Format.fprintf fmt "uniform(%g, %g)" lo hi
  | Lognormal_durations { log_mean; log_stddev } ->
      Format.fprintf fmt "lognormal(%g, %g)" log_mean log_stddev
  | Exponential_durations { mean } -> Format.fprintf fmt "exp(mean=%g)" mean
  | Constant_duration d -> Format.fprintf fmt "constant(%g)" d

let pp_arrivals fmt = function
  | Poisson { rate } -> Format.fprintf fmt "poisson(rate=%g)" rate
  | Uniform_over { horizon } -> Format.fprintf fmt "uniform[0, %g]" horizon
  | Batched { batches; gap } ->
      Format.fprintf fmt "batched(%d x gap %g)" batches gap

let pp fmt t =
  Format.fprintf fmt
    "@[<v>spec: %d items, W=%a, sizes=%a, durations=%a in [%g, %g], \
     arrivals=%a@]"
    t.count Rat.pp t.capacity pp_sizes t.sizes pp_durations t.durations
    t.min_duration t.max_duration pp_arrivals t.arrivals
