open Dbp_num

type size_model =
  | Uniform_sizes of { lo : float; hi : float }
  | Discrete_sizes of (Rat.t * float) list
  | Constant_size of Rat.t

type duration_model =
  | Uniform_durations of { lo : float; hi : float }
  | Lognormal_durations of { log_mean : float; log_stddev : float }
  | Exponential_durations of { mean : float }
  | Constant_duration of float

type arrival_model =
  | Poisson of { rate : float }
  | Uniform_over of { horizon : float }
  | Batched of { batches : int; gap : float }

type t = {
  capacity : Rat.t;
  count : int;
  sizes : size_model;
  durations : duration_model;
  arrivals : arrival_model;
  min_duration : float;
  max_duration : float;
  quantum : int;
}

let default =
  {
    capacity = Rat.one;
    count = 200;
    sizes = Uniform_sizes { lo = 0.0; hi = 1.0 };
    durations = Exponential_durations { mean = 3.0 };
    arrivals = Poisson { rate = 2.0 };
    min_duration = 1.0;
    max_duration = 10.0;
    quantum = 10_000;
  }

let with_target_mu t ~mu =
  if mu < 1.0 then invalid_arg "Spec.with_target_mu: mu < 1";
  { t with max_duration = t.min_duration *. mu }

let small_items t ~k =
  if k <= 1 then invalid_arg "Spec.small_items: k <= 1";
  let hi = Rat.to_float t.capacity /. float_of_int k in
  { t with sizes = Uniform_sizes { lo = 0.0; hi } }

let large_items t ~k =
  if k <= 1 then invalid_arg "Spec.large_items: k <= 1";
  let lo = Rat.to_float t.capacity /. float_of_int k in
  { t with sizes = Uniform_sizes { lo; hi = Rat.to_float t.capacity } }

let pp_sizes fmt = function
  | Uniform_sizes { lo; hi } -> Format.fprintf fmt "uniform(%g, %g)" lo hi
  | Discrete_sizes catalog ->
      Format.fprintf fmt "discrete(%d sizes)" (List.length catalog)
  | Constant_size s -> Format.fprintf fmt "constant(%a)" Rat.pp s

let pp_durations fmt = function
  | Uniform_durations { lo; hi } -> Format.fprintf fmt "uniform(%g, %g)" lo hi
  | Lognormal_durations { log_mean; log_stddev } ->
      Format.fprintf fmt "lognormal(%g, %g)" log_mean log_stddev
  | Exponential_durations { mean } -> Format.fprintf fmt "exp(mean=%g)" mean
  | Constant_duration d -> Format.fprintf fmt "constant(%g)" d

let pp_arrivals fmt = function
  | Poisson { rate } -> Format.fprintf fmt "poisson(rate=%g)" rate
  | Uniform_over { horizon } -> Format.fprintf fmt "uniform[0, %g]" horizon
  | Batched { batches; gap } ->
      Format.fprintf fmt "batched(%d x gap %g)" batches gap

let pp fmt t =
  Format.fprintf fmt
    "@[<v>spec: %d items, W=%a, sizes=%a, durations=%a in [%g, %g], \
     arrivals=%a@]"
    t.count Rat.pp t.capacity pp_sizes t.sizes pp_durations t.durations
    t.min_duration t.max_duration pp_arrivals t.arrivals
