(** CSV (de)serialisation of instances.

    Format: a header line [# capacity=<rational>], then a column header
    [id,size,arrival,departure], then one row per item with exact
    rational fields ([3/10] style), in submission order.  Round-trips
    losslessly. *)

open Dbp_core

val to_string : Instance.t -> string
val of_string : string -> Instance.t
(** @raise Failure on malformed input. *)

val save : Instance.t -> path:string -> unit
val load : path:string -> Instance.t
