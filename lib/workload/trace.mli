(** CSV (de)serialisation of instances.

    Format: a header line [# capacity=<rational>], then a column header
    [id,size,arrival,departure], then one row per item with exact
    rational fields ([3/10] style), in submission order.  Round-trips
    losslessly.

    Parsing never raises a bare [Failure]: every malformed input maps
    to a {!Parse_error} carrying the 1-based line number and, where it
    applies, the offending field — so the CLI can print a readable
    diagnostic instead of a backtrace. *)

open Dbp_core

type parse_error = {
  line : int;  (** 1-based line number in the input text/file. *)
  field : string option;
      (** ["id"], ["size"], ["arrival"], ["departure"] or ["capacity"]
          when a specific field is at fault; [None] for structural
          errors. *)
  message : string;
}

exception Parse_error of parse_error

val parse_error_to_string : parse_error -> string
val pp_parse_error : Format.formatter -> parse_error -> unit

val to_string : Instance.t -> string

val of_string : string -> Instance.t
(** Ids are parsed and preserved: rows may appear in any order, but
    their ids must be distinct and form a permutation of [0..n-1]
    (what {!to_string} always writes, and the only id assignment
    [Instance.create]'s positional renumbering can keep stable).
    Duplicate ids are reported with the line that first used the id.
    @raise Parse_error on malformed input: missing/bad capacity header,
    wrong column header (the exact text [id,size,arrival,departure] is
    required), wrong field count, bad id column, non-rational fields,
    non-positive or over-capacity sizes, and departure-before-arrival
    rows. *)

val save : Instance.t -> path:string -> unit

val load : path:string -> Instance.t
(** @raise Parse_error as {!of_string}; [Sys_error] on unreadable
    paths. *)
