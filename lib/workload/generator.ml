open Dbp_num
open Dbp_core
open Dbp_rand

let grid_step (spec : Spec.t) = Rat.make 1 spec.quantum

let size_on_grid (spec : Spec.t) raw =
  let q = spec.quantum in
  let step = grid_step spec in
  let s = Rat.of_float ~den:q raw in
  let s = Rat.max s step in
  let s = Rat.min s spec.capacity in
  (* Keep uniform draws strictly below a sub-capacity upper bound so
     that e.g. the Theorem 4 "all sizes < W/k" premise holds exactly. *)
  match spec.sizes with
  | Spec.Uniform_sizes { hi; _ } ->
      let hi_q = Rat.of_float ~den:q hi in
      if Rat.(hi_q < spec.capacity) && Rat.(s >= hi_q) then
        Rat.max step (Rat.sub hi_q step)
      else s
  | Spec.Discrete_sizes _ | Spec.Constant_size _ -> s

let duration_on_grid (spec : Spec.t) raw =
  let q = spec.quantum in
  let d = Rat.of_float ~den:q raw in
  let lo = Rat.of_float ~den:q spec.min_duration in
  let hi = Rat.of_float ~den:q spec.max_duration in
  Rat.max lo (Rat.min hi d)

(* Built once per generation run: the old per-draw sampler rebuilt the
   weight array and walked the catalog with List.nth on every draw,
   making Discrete_sizes generation O(catalog) per item.  The draw
   sequence is unchanged (same single Dist.discrete call), so seeded
   workloads are bit-identical to before. *)
let size_sampler (spec : Spec.t) =
  match spec.sizes with
  | Spec.Constant_size s -> fun _rng -> s
  | Spec.Uniform_sizes { lo; hi } ->
      fun rng -> size_on_grid spec (Dist.uniform rng ~lo ~hi)
  | Spec.Discrete_sizes catalog ->
      let sizes = Array.of_list (List.map fst catalog) in
      let weights = Array.of_list (List.map snd catalog) in
      fun rng -> sizes.(Dist.discrete rng ~weights)

let sample_duration (spec : Spec.t) rng =
  match spec.durations with
  | Spec.Constant_duration d -> duration_on_grid spec d
  | Spec.Uniform_durations { lo; hi } ->
      duration_on_grid spec (Dist.uniform rng ~lo ~hi)
  | Spec.Lognormal_durations { log_mean; log_stddev } ->
      duration_on_grid spec (Dist.lognormal rng ~mu:log_mean ~sigma:log_stddev)
  | Spec.Exponential_durations { mean } ->
      duration_on_grid spec (Dist.exponential rng ~rate:(1.0 /. mean))

let sample_arrivals (spec : Spec.t) rng =
  let q = spec.quantum in
  match spec.arrivals with
  | Spec.Poisson { rate } ->
      let clock = ref 0.0 in
      List.init spec.count (fun _ ->
          clock := !clock +. Dist.exponential rng ~rate;
          Rat.of_float ~den:q !clock)
  | Spec.Uniform_over { horizon } ->
      List.init spec.count (fun _ ->
          Rat.of_float ~den:q (Dist.uniform rng ~lo:0.0 ~hi:horizon))
      |> List.sort Rat.compare
  | Spec.Batched { batches; gap } ->
      let per_batch = (spec.count + batches - 1) / batches in
      List.init spec.count (fun i ->
          let b = i / per_batch in
          Rat.of_float ~den:q (float_of_int b *. gap))

let validate (spec : Spec.t) =
  Spec.validate spec;
  if spec.min_duration < 2.0 /. float_of_int spec.quantum then
    invalid_arg "Generator: quantum too coarse for min_duration"

let generate ?(seed = 42L) (spec : Spec.t) =
  validate spec;
  let rng = Splitmix64.create seed in
  let sample_size = size_sampler spec in
  let arrivals = sample_arrivals spec rng in
  let items =
    List.map
      (fun arrival ->
        let size = sample_size rng in
        let duration = sample_duration spec rng in
        Item.make ~id:0 ~size ~arrival ~departure:(Rat.add arrival duration))
      arrivals
  in
  Instance.create ~capacity:spec.capacity items

let generate_many ?(seed = 42L) spec ~runs =
  let root = Splitmix64.create seed in
  List.init runs (fun _ ->
      let child = Splitmix64.split root in
      generate ~seed:(Splitmix64.next_int64 child) spec)
