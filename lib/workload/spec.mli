(** Declarative random-workload specifications.

    A spec pins down the three distributions a MinTotal DBP workload is
    made of — sizes, interval lengths, arrivals — plus the clamps that
    control the parameters the paper's bounds depend on: the minimum
    interval length [Delta], the maximum [mu * Delta], and the size
    regime (all-small [< W/k], all-large [>= W/k], or mixed). *)

open Dbp_num

type size_model =
  | Uniform_sizes of { lo : float; hi : float }
  | Discrete_sizes of (Rat.t * float) list
      (** Weighted catalog of exact sizes. *)
  | Constant_size of Rat.t

type duration_model =
  | Uniform_durations of { lo : float; hi : float }
  | Lognormal_durations of { log_mean : float; log_stddev : float }
  | Exponential_durations of { mean : float }
  | Constant_duration of float

type arrival_model =
  | Poisson of { rate : float }  (** Exponential inter-arrival gaps. *)
  | Uniform_over of { horizon : float }
      (** Independent uniform arrival times on [[0, horizon]]. *)
  | Batched of { batches : int; gap : float }
      (** Items split evenly over [batches] simultaneous-arrival
          batches spaced [gap] apart. *)

type t = {
  capacity : Rat.t;
  count : int;
  sizes : size_model;
  durations : duration_model;
  arrivals : arrival_model;
  min_duration : float;  (** Lower clamp [Delta] on interval lengths. *)
  max_duration : float;  (** Upper clamp — sets the target [mu]. *)
  quantum : int;
      (** Denominator of the rational grid all generated times and
          sizes are quantised to. *)
}

val default : t
(** 200 items, capacity 1, uniform sizes in (0, 1], Poisson arrivals,
    exponential durations clamped to [[1, 10]] (target [mu = 10]),
    quantum 10000. *)

exception Invalid_spec of { field : string; reason : string }
(** Structured construction-time rejection: which spec field is broken
    and why. *)

val validate : t -> unit
(** Rejects degenerate specs {e before} any sampling happens: empty or
    inverted models, non-positive counts/quanta/capacities, and —
    the subtle class — bounds that are fine as floats but collapse or
    invert once [Rat.of_float ~den:quantum] snaps them onto the grid
    (a duration clamp collapsing to a point, a size upper bound with
    no grid point strictly below it).  Called by the constructors
    below and by [Generator.generate].
    @raise Invalid_spec with the offending field. *)

val check : t -> (unit, string) result
(** {!validate} as a result, message ["field: reason"]. *)

val with_target_mu : t -> mu:float -> t
(** Rescales the duration clamps to [[Delta, mu * Delta]] keeping
    [Delta = min_duration]. *)

val small_items : t -> k:int -> t
(** Restricts the size model to sizes < W/k (Theorem 4 regime). *)

val large_items : t -> k:int -> t
(** Restricts the size model to sizes in [[W/k, W]] (Theorem 3
    regime). *)

val pp : Format.formatter -> t -> unit
