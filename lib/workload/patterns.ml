open Dbp_num
open Dbp_core

let item = Item.make ~id:0

let fragmentation ~k ~mu =
  if k < 1 then invalid_arg "Patterns.fragmentation: k < 1";
  if Rat.(mu < Rat.one) then invalid_arg "Patterns.fragmentation: mu < 1";
  let size = Rat.make 1 k in
  let items =
    List.init (k * k) (fun i ->
        let departure = if i mod k = 0 then mu else Rat.one in
        item ~size ~arrival:Rat.zero ~departure)
  in
  Instance.create ~capacity:Rat.one items

let fragmentation_fine ~bins ~per_bin ~mu =
  if bins < 1 then invalid_arg "Patterns.fragmentation_fine: bins < 1";
  if per_bin < 1 then invalid_arg "Patterns.fragmentation_fine: per_bin < 1";
  if Rat.(mu < Rat.one) then invalid_arg "Patterns.fragmentation_fine: mu < 1";
  let size = Rat.make 1 per_bin in
  let items =
    List.init (bins * per_bin) (fun i ->
        let departure = if i mod per_bin = 0 then mu else Rat.one in
        item ~size ~arrival:Rat.zero ~departure)
  in
  Instance.create ~capacity:Rat.one items

let staircase ~steps ~step_length =
  if steps < 1 then invalid_arg "Patterns.staircase: steps < 1";
  if Rat.sign step_length <= 0 then
    invalid_arg "Patterns.staircase: step_length <= 0";
  let items =
    List.init steps (fun i ->
        let arrival = Rat.mul_int step_length i in
        let departure = Rat.mul_int step_length (i + 2) in
        item ~size:Rat.one ~arrival ~departure)
  in
  Instance.create ~capacity:Rat.one items

let spike ~base ~spike_height =
  if base < 1 || spike_height < 1 then invalid_arg "Patterns.spike";
  let half = Rat.make 1 2 in
  let background =
    List.init base (fun i ->
        item ~size:half
          ~arrival:(Rat.of_int i)
          ~departure:(Rat.of_int (i + 20)))
  in
  let mid = Rat.of_int (base / 2) in
  let burst =
    List.init spike_height (fun _ ->
        item ~size:half ~arrival:mid ~departure:(Rat.add mid Rat.two))
  in
  Instance.create ~capacity:Rat.one (background @ burst)

let sawtooth ~teeth ~per_tooth ~mu =
  if teeth < 1 || per_tooth < 1 then invalid_arg "Patterns.sawtooth";
  if Rat.(mu < Rat.one) then invalid_arg "Patterns.sawtooth: mu < 1";
  let size = Rat.make 1 per_tooth in
  let items =
    List.concat
      (List.init teeth (fun t ->
           let start = Rat.mul_int mu t in
           List.init per_tooth (fun i ->
               let departure =
                 if i = per_tooth - 1 then Rat.add start mu
                 else Rat.add start Rat.one
               in
               item ~size ~arrival:start ~departure)))
  in
  Instance.create ~capacity:Rat.one items

let pairwise_conflict ~pairs =
  if pairs < 1 then invalid_arg "Patterns.pairwise_conflict";
  let size = Rat.make 3 5 in
  let items =
    List.concat
      (List.init pairs (fun p ->
           let start = Rat.of_int (2 * p) in
           [
             item ~size ~arrival:start ~departure:(Rat.add start Rat.two);
             item ~size
               ~arrival:(Rat.add start Rat.one)
               ~departure:(Rat.add start (Rat.of_int 3));
           ]))
  in
  Instance.create ~capacity:Rat.one items
