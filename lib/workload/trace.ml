open Dbp_num
open Dbp_core

let to_string instance =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "# capacity=%s\n" (Rat.to_string (Instance.capacity instance)));
  Buffer.add_string buf "id,size,arrival,departure\n";
  Array.iter
    (fun (r : Item.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%s\n" r.id (Rat.to_string r.size)
           (Rat.to_string r.arrival)
           (Rat.to_string r.departure)))
    (Instance.items instance);
  Buffer.contents buf

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let capacity, rows =
    match lines with
    | header :: rest when String.length header > 0 && header.[0] = '#' -> (
        match String.index_opt header '=' with
        | None -> failwith "Trace.of_string: missing capacity"
        | Some i ->
            let cap =
              Rat.of_string
                (String.sub header (i + 1) (String.length header - i - 1))
            in
            (cap, rest))
    | _ -> failwith "Trace.of_string: missing '# capacity=' header"
  in
  let rows =
    match rows with
    | col_header :: data when String.length col_header > 1 && col_header.[0] = 'i'
      ->
        data
    | _ -> failwith "Trace.of_string: missing column header"
  in
  let parse_row line =
    match String.split_on_char ',' line with
    | [ _id; size; arrival; departure ] ->
        Item.make ~id:0 ~size:(Rat.of_string size)
          ~arrival:(Rat.of_string arrival)
          ~departure:(Rat.of_string departure)
    | _ -> failwith ("Trace.of_string: malformed row: " ^ line)
  in
  Instance.create ~capacity (List.map parse_row rows)

let save instance ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string instance))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
