open Dbp_num
open Dbp_core

type parse_error = { line : int; field : string option; message : string }

exception Parse_error of parse_error

let parse_error_to_string e =
  Printf.sprintf "trace parse error at line %d%s: %s" e.line
    (match e.field with
    | None -> ""
    | Some f -> Printf.sprintf " (field '%s')" f)
    e.message

let pp_parse_error fmt e =
  Format.pp_print_string fmt (parse_error_to_string e)

let parse_fail ~line ?field fmt =
  Format.kasprintf
    (fun message -> raise (Parse_error { line; field; message }))
    fmt

let to_string instance =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "# capacity=%s\n" (Rat.to_string (Instance.capacity instance)));
  Buffer.add_string buf "id,size,arrival,departure\n";
  Array.iter
    (fun (r : Item.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%s\n" r.id (Rat.to_string r.size)
           (Rat.to_string r.arrival)
           (Rat.to_string r.departure)))
    (Instance.items instance);
  Buffer.contents buf

let of_string text =
  (* Keep the original 1-based line numbers through blank-line
     filtering, so errors point at the actual file line. *)
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let rat_field ~line ~field s =
    match Rat.of_string (String.trim s) with
    | r -> r
    | exception Failure _ ->
        parse_fail ~line ~field "'%s' is not a rational number" (String.trim s)
  in
  let capacity, cap_line, rows =
    match lines with
    | (line, header) :: rest when header.[0] = '#' -> (
        match String.index_opt header '=' with
        | None ->
            parse_fail ~line ~field:"capacity"
              "header '%s' carries no 'capacity=<rational>'" header
        | Some i ->
            let cap =
              rat_field ~line ~field:"capacity"
                (String.sub header (i + 1) (String.length header - i - 1))
            in
            if Rat.sign cap <= 0 then
              parse_fail ~line ~field:"capacity" "capacity %s is not positive"
                (Rat.to_string cap);
            (cap, line, rest))
    | (line, header) :: _ ->
        parse_fail ~line "expected '# capacity=<rational>' header, got '%s'"
          header
    | [] -> parse_fail ~line:1 "empty trace: missing '# capacity=' header"
  in
  let rows =
    match rows with
    | (_, col_header) :: data when col_header = "id,size,arrival,departure" ->
        data
    | (line, other) :: _ ->
        parse_fail ~line
          "expected column header 'id,size,arrival,departure', got '%s'" other
    | [] ->
        parse_fail ~line:cap_line
          "trace ends after the capacity header: missing column header"
  in
  if rows = [] then
    parse_fail ~line:(cap_line + 1) "trace contains no item rows";
  let parse_row (line, text) =
    match String.split_on_char ',' text with
    | [ id; size; arrival; departure ] ->
        let id =
          match int_of_string_opt (String.trim id) with
          | Some id when id >= 0 -> id
          | Some id -> parse_fail ~line ~field:"id" "id %d is negative" id
          | None ->
              parse_fail ~line ~field:"id" "'%s' is not an integer id"
                (String.trim id)
        in
        let size = rat_field ~line ~field:"size" size in
        let arrival = rat_field ~line ~field:"arrival" arrival in
        let departure = rat_field ~line ~field:"departure" departure in
        if Rat.sign size <= 0 then
          parse_fail ~line ~field:"size" "size %s is not positive"
            (Rat.to_string size);
        if Rat.(size > capacity) then
          parse_fail ~line ~field:"size"
            "size %s exceeds the capacity %s: the item could never be packed"
            (Rat.to_string size) (Rat.to_string capacity);
        if Rat.(departure <= arrival) then
          parse_fail ~line ~field:"departure"
            "departure %s does not follow arrival %s" (Rat.to_string departure)
            (Rat.to_string arrival);
        (line, Item.make ~id ~size ~arrival ~departure)
    | fields ->
        parse_fail ~line "expected 4 comma-separated fields, got %d: '%s'"
          (List.length fields) text
  in
  let parsed = List.map parse_row rows in
  (* [Instance.create] renumbers items 0..n-1 by list position, so ids
     survive a round-trip only if they already are a permutation of
     0..n-1 handed over in id order — validate exactly that instead of
     silently discarding the column. *)
  let n = List.length parsed in
  let first_line = Hashtbl.create n in
  List.iter
    (fun (line, (r : Item.t)) ->
      (match Hashtbl.find_opt first_line r.id with
      | Some earlier ->
          parse_fail ~line ~field:"id" "duplicate id %d (first used at line %d)"
            r.id earlier
      | None -> Hashtbl.replace first_line r.id line);
      if r.id >= n then
        parse_fail ~line ~field:"id"
          "id %d out of range: %d ids must form a permutation of 0..%d" r.id n
          (n - 1))
    parsed;
  let items =
    List.sort
      (fun (_, (a : Item.t)) (_, (b : Item.t)) -> Int.compare a.id b.id)
      parsed
    |> List.map snd
  in
  Instance.create ~capacity items

let save instance ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string instance))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
