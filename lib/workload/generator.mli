(** Random instance generation from a {!Spec}.

    All draws go through a seeded SplitMix64 stream and are quantised
    onto the spec's rational grid, so generation is exactly
    reproducible and downstream arithmetic exact.  Duration clamps are
    applied {e after} sampling, so the realised [mu] never exceeds
    [max_duration / min_duration]. *)

open Dbp_num
open Dbp_core

val generate : ?seed:int64 -> Spec.t -> Instance.t
(** @raise Spec.Invalid_spec on a degenerate spec (see
    {!Spec.validate}: empty/inverted models, bounds that collapse or
    invert on the rational grid).
    @raise Invalid_argument when the quantum is too coarse for the
    minimum duration. *)

val generate_many : ?seed:int64 -> Spec.t -> runs:int -> Instance.t list
(** Independent instances (seed split per run). *)

val size_on_grid : Spec.t -> float -> Rat.t
(** Quantises a raw size draw: clamps into [(0, W]] on the grid. *)

val duration_on_grid : Spec.t -> float -> Rat.t
(** Quantises a raw duration draw: clamps into
    [[min_duration, max_duration]] on the grid. *)
