(** Random instance generation from a {!Spec}.

    All draws go through a seeded SplitMix64 stream and are quantised
    onto the spec's rational grid, so generation is exactly
    reproducible and downstream arithmetic exact.  Duration clamps are
    applied {e after} sampling, so the realised [mu] never exceeds
    [max_duration / min_duration]. *)

open Dbp_num
open Dbp_core

val generate : ?seed:int64 -> Spec.t -> Instance.t
(** @raise Invalid_argument on a degenerate spec (count <= 0,
    min_duration <= 0, max < min, quantum too coarse to separate
    sizes from zero). *)

val generate_many : ?seed:int64 -> Spec.t -> runs:int -> Instance.t list
(** Independent instances (seed split per run). *)

val size_on_grid : Spec.t -> float -> Rat.t
(** Quantises a raw size draw: clamps into [(0, W]] on the grid. *)

val duration_on_grid : Spec.t -> float -> Rat.t
(** Quantises a raw duration draw: clamps into
    [[min_duration, max_duration]] on the grid. *)
