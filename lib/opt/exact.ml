open Dbp_num

type result = Exact of int | Interval of { lower : int; upper : int }

exception Budget_exhausted

let solve ?(node_budget = 200_000) sizes ~capacity =
  if Size_set.is_empty sizes then Exact 0
  else begin
    let items = Array.of_list (Size_set.to_list sizes) in
    let n = Array.length items in
    let global_lb = Lower_bound.best sizes ~capacity in
    let best_ub = ref (Heuristic.best sizes ~capacity) in
    let nodes = ref 0 in
    (* Levels of currently open bins, as a mutable stack; [used] is its
       size.  Suffix totals let the remaining-demand bound be O(1). *)
    let levels = Array.make n Rat.zero in
    let suffix_total = Array.make (n + 1) Rat.zero in
    for i = n - 1 downto 0 do
      suffix_total.(i) <- Rat.add suffix_total.(i + 1) items.(i)
    done;
    let rec branch i used =
      incr nodes;
      if !nodes > node_budget then raise Budget_exhausted;
      if i >= n then best_ub := min !best_ub used
      else begin
        (* Prune: even filling all open residual space perfectly, the
           overflow demand needs ceil(overflow / W) further bins. *)
        let open_space =
          let acc = ref Rat.zero in
          for b = 0 to used - 1 do
            acc := Rat.add !acc (Rat.sub capacity levels.(b))
          done;
          !acc
        in
        let overflow = Rat.sub suffix_total.(i) open_space in
        let lb =
          used
          + if Rat.sign overflow > 0 then Rat.ceil (Rat.div overflow capacity) else 0
        in
        if lb >= !best_ub then ()
        else begin
          let size = items.(i) in
          (* Try each open bin with a distinct residual. *)
          let tried = ref [] in
          for b = 0 to used - 1 do
            let residual = Rat.sub capacity levels.(b) in
            if
              Rat.(size <= residual)
              && not (List.exists (Rat.equal residual) !tried)
            then begin
              tried := residual :: !tried;
              levels.(b) <- Rat.add levels.(b) size;
              branch (i + 1) used;
              levels.(b) <- Rat.sub levels.(b) size
            end
          done;
          (* Try a new bin. *)
          if used + 1 < !best_ub then begin
            levels.(used) <- size;
            branch (i + 1) (used + 1);
            levels.(used) <- Rat.zero
          end
        end
      end
    in
    if global_lb >= !best_ub then Exact !best_ub
    else
      match branch 0 0 with
      | () -> Exact !best_ub
      | exception Budget_exhausted ->
          if global_lb = !best_ub then Exact !best_ub
          else Interval { lower = global_lb; upper = !best_ub }
  end

let solve_exn ?node_budget sizes ~capacity =
  match solve ?node_budget sizes ~capacity with
  | Exact n -> n
  | Interval { lower; upper } ->
      failwith
        (Printf.sprintf "Exact.solve_exn: budget exhausted in [%d, %d]" lower
           upper)

let lower = function Exact n -> n | Interval { lower; _ } -> lower
let upper = function Exact n -> n | Interval { upper; _ } -> upper
let is_exact = function Exact _ -> true | Interval _ -> false

let pp fmt = function
  | Exact n -> Format.fprintf fmt "%d" n
  | Interval { lower; upper } -> Format.fprintf fmt "[%d, %d]" lower upper
