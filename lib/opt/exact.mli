(** Exact bin packing by branch and bound (Martello–Toth style).

    Items are branched in descending size order; at each node the item
    is tried in every open bin with a {e distinct} residual capacity
    (symmetry reduction) and then in a new bin.  Nodes are pruned with
    the L2 lower bound on the remaining items plus bins already open.
    A node budget keeps worst cases bounded: when exceeded, the result
    degrades to a certified interval. *)

open Dbp_num

type result =
  | Exact of int  (** The optimal bin count. *)
  | Interval of { lower : int; upper : int }
      (** Node budget exhausted; OPT lies within (inclusive). *)

val solve : ?node_budget:int -> Size_set.t -> capacity:Rat.t -> result
(** [node_budget] defaults to 200_000 nodes. *)

val solve_exn : ?node_budget:int -> Size_set.t -> capacity:Rat.t -> int
(** @raise Failure when the budget trips before optimality is proven. *)

val lower : result -> int
val upper : result -> int
val is_exact : result -> bool
val pp : Format.formatter -> result -> unit
