open Dbp_num

type t = { sizes : Rat.t list; total : Rat.t }

let of_sizes sizes =
  List.iter
    (fun s ->
      if Rat.sign s <= 0 then invalid_arg "Size_set.of_sizes: size <= 0")
    sizes;
  let sorted = List.sort (fun a b -> Rat.compare b a) sizes in
  { sizes = sorted; total = Rat.sum sorted }

let to_list t = t.sizes
let cardinal t = List.length t.sizes
let is_empty t = t.sizes = []
let total t = t.total
let max_size t = match t.sizes with [] -> None | s :: _ -> Some s

let equal a b =
  List.length a.sizes = List.length b.sizes
  && List.for_all2 Rat.equal a.sizes b.sizes

let hash t =
  List.fold_left
    (fun acc s -> (acc * 31) + Rat.hash s)
    (List.length t.sizes) t.sizes

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
       Rat.pp)
    t.sizes
