(** Lower bounds for classical bin packing (Martello & Toth, 1990).

    These make the branch-and-bound solver fast and certify the
    [lower] side of {!Opt_total} answers when the node budget trips. *)

open Dbp_num

val l1 : Size_set.t -> capacity:Rat.t -> int
(** The continuous bound [ceil(total / W)] (paper bound (b.1) at a
    fixed instant). *)

val l2 : Size_set.t -> capacity:Rat.t -> int
(** The Martello–Toth L2 bound: the maximum over thresholds [alpha] of
    [|J1| + |J2| + max(0, ceil((sum J3 - (|J2| W - sum J2)) / W))]
    where J1 are items > W - alpha, J2 items in (W/2, W - alpha],
    J3 items in [alpha, W/2].  Dominates {!l1}. *)

val best : Size_set.t -> capacity:Rat.t -> int
(** [max (l1 ...) (l2 ...)]. *)
