open Dbp_num

(* Both heuristics scan items in descending size order and keep the
   list of current bin levels. *)

let pack_decreasing ~choose sizes ~capacity =
  let place levels size =
    match choose levels ~capacity ~size with
    | None -> size :: levels
    | Some picked ->
        let rec replace = function
          | [] -> assert false
          | l :: rest ->
              if Rat.equal l picked then Rat.add l size :: rest
              else l :: replace rest
        in
        replace levels
  in
  List.fold_left place [] (Size_set.to_list sizes) |> List.length

let first_fit_choice levels ~capacity ~size =
  List.find_opt (fun l -> Rat.(Rat.add l size <= capacity)) levels

let best_fit_choice levels ~capacity ~size =
  List.filter (fun l -> Rat.(Rat.add l size <= capacity)) levels
  |> function
  | [] -> None
  | l :: rest ->
      Some (List.fold_left (fun acc x -> if Rat.(x > acc) then x else acc) l rest)

let first_fit_decreasing sizes ~capacity =
  pack_decreasing ~choose:first_fit_choice sizes ~capacity

let best_fit_decreasing sizes ~capacity =
  pack_decreasing ~choose:best_fit_choice sizes ~capacity

let best sizes ~capacity =
  min (first_fit_decreasing sizes ~capacity) (best_fit_decreasing sizes ~capacity)
