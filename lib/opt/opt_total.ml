open Dbp_num
open Dbp_core

type t = {
  lower : Rat.t;
  upper : Rat.t;
  exact : bool;
  profile : Step_fn.t;
  segments_total : int;
  segments_exact : int;
}

module Memo = Hashtbl.Make (struct
  type t = Size_set.t

  let equal = Size_set.equal
  let hash = Size_set.hash
end)

let compute ?node_budget instance =
  let capacity = Instance.capacity instance in
  let times = Array.of_list (Instance.event_times instance) in
  let memo = Memo.create 256 in
  let solve sizes =
    match Memo.find_opt memo sizes with
    | Some r -> r
    | None ->
        let r = Exact.solve ?node_budget sizes ~capacity in
        Memo.add memo sizes r;
        r
  in
  let n_segments = max 0 (Array.length times - 1) in
  let lower = ref Rat.zero
  and upper = ref Rat.zero
  and exact_count = ref 0
  and profile_points = ref [] in
  for s = 0 to n_segments - 1 do
    let t0 = times.(s) and t1 = times.(s + 1) in
    let len = Rat.sub t1 t0 in
    let active = Instance.active_at instance t0 in
    let result =
      match active with
      | [] -> Exact.Exact 0
      | items ->
          solve (Size_set.of_sizes (List.map (fun r -> r.Item.size) items))
    in
    if Exact.is_exact result then incr exact_count;
    lower := Rat.add !lower (Rat.mul_int len (Exact.lower result));
    upper := Rat.add !upper (Rat.mul_int len (Exact.upper result));
    profile_points := (t0, Exact.upper result) :: !profile_points
  done;
  let profile =
    match times with
    | [||] -> Step_fn.empty
    | _ ->
        Step_fn.of_breakpoints
          (List.rev ((times.(Array.length times - 1), 0) :: !profile_points))
  in
  {
    lower = !lower;
    upper = !upper;
    exact = Rat.equal !lower !upper;
    profile;
    segments_total = n_segments;
    segments_exact = !exact_count;
  }

let value_exn t =
  if t.exact then t.lower
  else
    failwith
      (Format.asprintf "Opt_total.value_exn: only bounded in [%a, %a]" Rat.pp
         t.lower Rat.pp t.upper)

let max_bins t = Step_fn.max_value t.profile

let pp fmt t =
  if t.exact then Format.fprintf fmt "OPT_total = %a" Rat.pp t.lower
  else
    Format.fprintf fmt "OPT_total in [%a, %a] (%d/%d segments exact)" Rat.pp
      t.lower Rat.pp t.upper t.segments_exact t.segments_total
