open Dbp_num
open Dbp_core

let demand_bound instance =
  Rat.div (Instance.total_demand instance) (Instance.capacity instance)

let span_bound = Instance.span

let naive_upper_bound instance =
  Instance.items instance |> Array.to_list
  |> List.map Item.length
  |> Rat.sum

let opt_lower_bound instance =
  Rat.max (demand_bound instance) (span_bound instance)

let segment_lower_bound instance =
  let capacity = Instance.capacity instance in
  let times = Array.of_list (Instance.event_times instance) in
  let acc = ref Rat.zero in
  for s = 0 to Array.length times - 2 do
    let t0 = times.(s) and t1 = times.(s + 1) in
    let active = Instance.active_at instance t0 in
    if active <> [] then begin
      let total = Rat.sum (List.map (fun r -> r.Item.size) active) in
      let bins = max 1 (Rat.ceil (Rat.div total capacity)) in
      acc := Rat.add !acc (Rat.mul_int (Rat.sub t1 t0) bins)
    end
  done;
  !acc
