open Dbp_num
open Dbp_core

let demand_bound instance =
  Rat.div (Instance.total_demand instance) (Instance.capacity instance)

let span_bound = Instance.span

let naive_upper_bound instance =
  Instance.items instance |> Array.to_list
  |> List.map Item.length
  |> Rat.sum

let opt_lower_bound instance =
  Rat.max (demand_bound instance) (span_bound instance)

let segment_lower_bound instance =
  let capacity = Instance.capacity instance in
  let times = Array.of_list (Instance.event_times instance) in
  let acc = ref Rat.zero in
  for s = 0 to Array.length times - 2 do
    let t0 = times.(s) and t1 = times.(s + 1) in
    let active = Instance.active_at instance t0 in
    if active <> [] then begin
      let total = Rat.sum (List.map (fun r -> r.Item.size) active) in
      let bins = max 1 (Rat.ceil (Rat.div total capacity)) in
      acc := Rat.add !acc (Rat.mul_int (Rat.sub t1 t0) bins)
    end
  done;
  !acc

(* ---- the DVBP analogues --------------------------------------------- *)

(* Every scalar bound vectorises dimension by dimension and the
   tightest dimension wins: a valid packing satisfies every resource
   at once, so OPT is at least the scalar bound of each [d = 1]
   projection. *)

let vec_demand_bound vinstance =
  Vec.max_norm
    ~capacity:(Vec_instance.capacity vinstance)
    (Vec_instance.demand_per_dim vinstance)

let vec_span_bound = Vec_instance.span

let vec_opt_lower_bound vinstance =
  Rat.max (vec_demand_bound vinstance) (vec_span_bound vinstance)

let vec_event_times vinstance =
  Vec_instance.items vinstance |> Array.to_list
  |> List.concat_map (fun (r : Vec_instance.item) -> [ r.arrival; r.departure ])
  |> List.sort_uniq Rat.compare

let vec_segment_lower_bound vinstance =
  let capacity = Vec_instance.capacity vinstance in
  let dims = Vec_instance.dims vinstance in
  let items = Array.to_list (Vec_instance.items vinstance) in
  let times = Array.of_list (vec_event_times vinstance) in
  let acc = ref Rat.zero in
  for s = 0 to Array.length times - 2 do
    let t0 = times.(s) and t1 = times.(s + 1) in
    let active =
      List.filter
        (fun (r : Vec_instance.item) ->
          Rat.(r.arrival <= t0) && Rat.(t0 < r.departure))
        items
    in
    if active <> [] then begin
      let total =
        List.fold_left
          (fun a (r : Vec_instance.item) -> Vec.add a r.size)
          (Vec.zero ~dims) active
      in
      (* Per-instant bins needed: the worst dimension's volume bound,
         never below 1 while anything is active. *)
      let bins = ref 1 in
      for j = 0 to dims - 1 do
        bins :=
          max !bins
            (Rat.ceil (Rat.div (Vec.get total j) (Vec.get capacity j)))
      done;
      acc := Rat.add !acc (Rat.mul_int (Rat.sub t1 t0) !bins)
    end
  done;
  !acc
