open Dbp_num

let l1 sizes ~capacity =
  if Size_set.is_empty sizes then 0
  else Rat.ceil (Rat.div (Size_set.total sizes) capacity)

let l2 sizes ~capacity =
  if Size_set.is_empty sizes then 0
  else
    let all = Size_set.to_list sizes in
    let half = Rat.div_int capacity 2 in
    (* Candidate thresholds: every distinct size <= W/2, plus 0. *)
    let alphas =
      Rat.zero
      :: (List.filter (fun s -> Rat.(s <= half)) all
         |> List.sort_uniq Rat.compare)
    in
    let bound_for alpha =
      let j1 = List.filter (fun s -> Rat.(s > Rat.sub capacity alpha)) all in
      let j2 =
        List.filter
          (fun s -> Rat.(s > half) && Rat.(s <= Rat.sub capacity alpha))
          all
      in
      let j3 =
        List.filter (fun s -> Rat.(s >= alpha) && Rat.(s <= half)) all
      in
      let n2 = List.length j2 in
      let sum2 = Rat.sum j2 and sum3 = Rat.sum j3 in
      let slack = Rat.sub (Rat.mul_int capacity n2) sum2 in
      let overflow = Rat.sub sum3 slack in
      let extra = if Rat.sign overflow > 0 then Rat.ceil (Rat.div overflow capacity) else 0 in
      List.length j1 + n2 + extra
    in
    List.fold_left (fun acc alpha -> max acc (bound_for alpha)) 0 alphas

let best sizes ~capacity = max (l1 sizes ~capacity) (l2 sizes ~capacity)
