(** Multisets of item sizes — the input of a classical (static) bin
    packing subproblem.  Canonically sorted descending so multisets can
    key memoisation tables. *)

open Dbp_num

type t

val of_sizes : Rat.t list -> t
(** @raise Invalid_argument if any size is [<= 0]. *)

val to_list : t -> Rat.t list
(** Sizes in descending order. *)

val cardinal : t -> int
val is_empty : t -> bool
val total : t -> Rat.t
val max_size : t -> Rat.t option
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
