(** The paper's offline reference cost
    [OPT_total(R) = integral of OPT(R,t) dt] (cost rate [C = 1]).

    [OPT(R,t)] is the minimum number of bins into which the items
    active at time [t] can be repacked.  Between two consecutive event
    times the active set is constant, so [OPT(R,t)] is a step function:
    we solve one static bin packing problem per event segment (with
    memoisation — neighbouring segments differ by one item) and
    integrate exactly.  When the exact solver's budget trips on some
    segment, the result degrades to a certified interval. *)

open Dbp_num
open Dbp_core

type t = {
  lower : Rat.t;  (** Certified lower bound on [OPT_total(R)]. *)
  upper : Rat.t;  (** Certified upper bound. *)
  exact : bool;  (** [lower = upper]: every segment solved to optimality. *)
  profile : Step_fn.t;
      (** The step function [t -> OPT(R,t)] (its upper bound when not
          exact). *)
  segments_total : int;
  segments_exact : int;
}

val compute : ?node_budget:int -> Instance.t -> t

val value_exn : t -> Rat.t
(** The exact [OPT_total].  @raise Failure when not {!t.exact}. *)

val max_bins : t -> int
(** Max over time of (the upper bound of) [OPT(R,t)] — the classical
    DBP offline objective with repacking. *)

val pp : Format.formatter -> t -> unit
