(** The paper's instance-level cost bounds (Section 4), cost rate
    [C = 1]:

    - (b.1)  [A_total(R) >= u(R) / W] for any algorithm A — in
      particular [OPT_total(R) >= u(R)/W];
    - (b.2)  [A_total(R) >= span(R)];
    - (b.3)  [A_total(R) <= sum of len(I(r))] for any reasonable
      algorithm (each item alone in a bin).

    Plus a strictly stronger computable lower bound on [OPT_total]
    obtained by integrating [max(1 if active, ceil(S(t)/W))] where
    [S(t)] is the total active size at time [t]. *)

open Dbp_num
open Dbp_core

val demand_bound : Instance.t -> Rat.t
(** (b.1): [u(R) / W]. *)

val span_bound : Instance.t -> Rat.t
(** (b.2): [span(R)]. *)

val naive_upper_bound : Instance.t -> Rat.t
(** (b.3): [sum of len(I(r))]. *)

val opt_lower_bound : Instance.t -> Rat.t
(** [max (demand_bound) (span_bound)] — the combination the paper uses
    to bound [OPT_total] from below in Theorems 4 and 5. *)

val segment_lower_bound : Instance.t -> Rat.t
(** The integrated per-instant volume bound
    [integral of max(min(1, |active|), ceil(S(t)/W)) dt].
    Dominates both (b.1) and (b.2); much cheaper than {!Opt_total}. *)

(** {1 Vector (DVBP) bounds}

    Each scalar bound vectorises per dimension, and the tightest
    dimension wins: a feasible packing satisfies every resource at
    once, so [OPT_total] is bounded below by the scalar bound of each
    [d = 1] projection.  At [d = 1] each function agrees exactly with
    its scalar twin. *)

val vec_demand_bound : Vec_instance.t -> Rat.t
(** (b.1) per dimension: [max_j demand_j / W_j]. *)

val vec_span_bound : Vec_instance.t -> Rat.t
(** (b.2): the span does not depend on the dimension. *)

val vec_opt_lower_bound : Vec_instance.t -> Rat.t
(** [max (vec_demand_bound) (vec_span_bound)]. *)

val vec_segment_lower_bound : Vec_instance.t -> Rat.t
(** The integrated per-instant bound with the per-dimension volume:
    [integral of max(min(1, |active|), max_j ceil(S_j(t)/W_j)) dt].
    Dominates both vector bounds above. *)
