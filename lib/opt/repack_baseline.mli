(** A migrating baseline: repack all active items with FFD at every
    event.

    The paper's model forbids moving items between bins ("the migration
    of game instances ... is not preferable due to large migration
    overheads"); this baseline breaks that rule on purpose, yielding
    (a) a cheap upper bound on [OPT_total] (FFD per segment, so within
    an 11/9-ish factor of each segment's optimum), and (b) the price of
    that cost saving in migration volume, which is what makes the
    no-migration model realistic.

    Bins of consecutive segments are identified greedily by largest
    item overlap; an item migrates when its bin identity changes while
    it stays active. *)

open Dbp_num
open Dbp_core

type t = {
  cost : Rat.t;  (** Integral of the FFD bin count over time. *)
  migrations : int;  (** Item moves between consecutive segments. *)
  migrated_demand : Rat.t;
      (** Total size volume moved (sum of sizes over migrations) — the
          "state transfer" a cloud gaming provider would pay. *)
  max_bins : int;
}

val compute : Instance.t -> t
