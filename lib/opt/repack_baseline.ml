open Dbp_num
open Dbp_core

type t = {
  cost : Rat.t;
  migrations : int;
  migrated_demand : Rat.t;
  max_bins : int;
}

(* FFD over (id, size) pairs; returns the per-bin id lists. *)
let ffd_assign items ~capacity =
  let sorted =
    List.sort (fun (_, s1) (_, s2) -> Rat.compare s2 s1) items
  in
  let place bins (id, size) =
    let rec go acc = function
      | [] -> List.rev ((Rat.sub capacity size, [ id ]) :: acc)
      | (residual, ids) :: rest ->
          if Rat.(size <= residual) then
            List.rev_append acc ((Rat.sub residual size, id :: ids) :: rest)
          else go ((residual, ids) :: acc) rest
    in
    go [] bins
  in
  List.fold_left place [] sorted |> List.map snd

(* Greedy identification of new bins with previous bins by largest
   overlap of surviving items.  Returns item id -> bin identity. *)
let identify ~prev_assignment bins ~next_identity =
  let overlap ids =
    List.fold_left
      (fun acc id ->
        match Hashtbl.find_opt prev_assignment id with
        | Some prev_bin -> (
            match List.assoc_opt prev_bin acc with
            | Some n -> (prev_bin, n + 1) :: List.remove_assoc prev_bin acc
            | None -> (prev_bin, 1) :: acc)
        | None -> acc)
      [] ids
  in
  (* score each (bin, candidate identity); assign greedily *)
  let scored =
    List.concat_map
      (fun ids ->
        List.map (fun (identity, n) -> (n, identity, ids)) (overlap ids))
    bins
    |> List.sort (fun (n1, _, _) (n2, _, _) -> Int.compare n2 n1)
  in
  let taken_identity = Hashtbl.create 16 in
  let assigned : (int list, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (_, identity, ids) ->
      if
        (not (Hashtbl.mem taken_identity identity))
        && not (Hashtbl.mem assigned ids)
      then begin
        Hashtbl.add taken_identity identity ();
        Hashtbl.add assigned ids identity
      end)
    scored;
  let counter = ref next_identity in
  List.map
    (fun ids ->
      match Hashtbl.find_opt assigned ids with
      | Some identity -> (identity, ids)
      | None ->
          let identity = !counter in
          incr counter;
          (identity, ids))
    bins
  |> fun tagged -> (tagged, !counter)

let compute instance =
  let capacity = Instance.capacity instance in
  let times = Array.of_list (Instance.event_times instance) in
  let prev_assignment : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let cost = ref Rat.zero in
  let migrations = ref 0 in
  let migrated_demand = ref Rat.zero in
  let max_bins = ref 0 in
  let next_identity = ref 0 in
  for s = 0 to Array.length times - 2 do
    let t0 = times.(s) and t1 = times.(s + 1) in
    let active = Instance.active_at instance t0 in
    let items = List.map (fun (r : Item.t) -> (r.id, r.size)) active in
    let bins = ffd_assign items ~capacity in
    max_bins := max !max_bins (List.length bins);
    cost := Rat.add !cost (Rat.mul_int (Rat.sub t1 t0) (List.length bins));
    let tagged, next = identify ~prev_assignment bins ~next_identity:!next_identity in
    next_identity := next;
    (* count migrations among items active in both this and the
       previous segment *)
    List.iter
      (fun (identity, ids) ->
        List.iter
          (fun id ->
            (match Hashtbl.find_opt prev_assignment id with
            | Some old when old <> identity ->
                incr migrations;
                migrated_demand :=
                  Rat.add !migrated_demand (Instance.item instance id).Item.size
            | Some _ | None -> ());
            Hashtbl.replace prev_assignment id identity)
          ids)
      tagged;
    (* drop items that departed at t1 *)
    List.iter
      (fun (r : Item.t) ->
        if Rat.(r.departure <= t1) then Hashtbl.remove prev_assignment r.id)
      active
  done;
  {
    cost = !cost;
    migrations = !migrations;
    migrated_demand = !migrated_demand;
    max_bins = !max_bins;
  }
