(** Static bin packing heuristics: upper bounds for the exact solver
    and fast stand-ins when an instance segment is too large to solve
    exactly. *)

open Dbp_num

val first_fit_decreasing : Size_set.t -> capacity:Rat.t -> int
(** FFD bin count; within 11/9 OPT + 6/9 of optimal. *)

val best_fit_decreasing : Size_set.t -> capacity:Rat.t -> int

val best : Size_set.t -> capacity:Rat.t -> int
(** Minimum of the heuristics — a valid upper bound on OPT. *)
