(** SplitMix64 pseudo-random number generator (Steele, Lea & Flood,
    OOPSLA 2014).

    Deterministic, splittable and fast; every workload generator in the
    repository draws from a SplitMix64 stream seeded explicitly, so all
    experiments are exactly reproducible from their printed seeds. *)

type t

val create : int64 -> t
(** [create seed]: independent generator from a 64-bit seed. *)

val copy : t -> t

val split : t -> t
(** Derives a statistically independent generator; the parent advances. *)

val next_int64 : t -> int64
(** Uniform over all 2{^64} values. *)

val next_float : t -> float
(** Uniform in [[0, 1)) with 53 bits of precision. *)

val next_int : t -> int -> int
(** [next_int t bound] is uniform in [[0, bound)) without modulo bias.
    @raise Invalid_argument if [bound <= 0]. *)

val next_bool : t -> bool

val state : t -> int64
(** The full generator state (checkpointing); feed back through
    {!set_state} to resume the stream bit-identically. *)

val set_state : t -> int64 -> unit
