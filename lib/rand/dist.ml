type rng = Splitmix64.t

let uniform rng ~lo ~hi = lo +. (Splitmix64.next_float rng *. (hi -. lo))

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate <= 0"
  else
    (* 1 - u in (0,1] avoids log 0. *)
    let u = 1.0 -. Splitmix64.next_float rng in
    -.log u /. rate

let pareto rng ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Dist.pareto: bad params"
  else
    let u = 1.0 -. Splitmix64.next_float rng in
    scale /. (u ** (1.0 /. shape))

let normal rng ~mean ~stddev =
  let u1 = 1.0 -. Splitmix64.next_float rng in
  let u2 = Splitmix64.next_float rng in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~stddev:sigma)
let bernoulli rng ~p = Splitmix64.next_float rng < p

let discrete rng ~weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Dist.discrete: empty weights";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Dist.discrete: all-zero weights";
  let target = Splitmix64.next_float rng *. total in
  let rec find i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else find (i + 1) acc
  in
  find 0 0.0

module Zipf = struct
  type t = { n : int; cumulative : float array; total : float }

  let create ~n ~s =
    if n <= 0 then invalid_arg "Zipf.create: n <= 0";
    let cumulative = Array.make n 0.0 in
    let acc = ref 0.0 in
    for r = 1 to n do
      acc := !acc +. (1.0 /. (float_of_int r ** s));
      cumulative.(r - 1) <- !acc
    done;
    { n; cumulative; total = !acc }

  let sample t rng =
    let target = Splitmix64.next_float rng *. t.total in
    (* Smallest index with cumulative weight > target. *)
    let rec search lo hi =
      if lo >= hi then lo + 1
      else
        let mid = (lo + hi) / 2 in
        if t.cumulative.(mid) > target then search lo mid
        else search (mid + 1) hi
    in
    search 0 (t.n - 1)

  let probability t r =
    if r < 1 || r > t.n then 0.0
    else
      let w = t.cumulative.(r - 1) -. (if r = 1 then 0.0 else t.cumulative.(r - 2)) in
      w /. t.total
end

let uniform_rat rng ~lo ~hi ?den () =
  Dbp_num.Rat.of_float ?den (uniform rng ~lo ~hi)

let exponential_rat rng ~rate ?den () =
  Dbp_num.Rat.of_float ?den (exponential rng ~rate)

let lognormal_rat rng ~mu ~sigma ?den () =
  Dbp_num.Rat.of_float ?den (lognormal rng ~mu ~sigma)
