type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  create (mix seed)

let next_float t =
  (* Top 53 bits scaled into [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let next_int t bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_int: bound <= 0"
  else
    (* Rejection sampling on the top bits to avoid modulo bias. *)
    let b = Int64.of_int bound in
    let rec draw () =
      let raw = Int64.shift_right_logical (next_int64 t) 1 in
      let v = Int64.rem raw b in
      if Int64.(sub raw v) > Int64.(sub (sub max_int b) 1L) then draw ()
      else Int64.to_int v
    in
    draw ()

let next_bool t = Int64.logand (next_int64 t) 1L = 1L

(* Checkpoint support: the whole generator is its 64-bit state, so a
   snapshot is one int64 and restore is one store. *)
let state t = t.state
let set_state t s = t.state <- s
