(** PCG32 (O'Neill 2014): permuted congruential generator, 32-bit
    output, 64-bit state with a selectable stream.

    Second PRNG family alongside {!Splitmix64}: property tests that
    should be independent of generator structure run against both, and
    the stream parameter gives cheap independent substreams keyed by
    (experiment, seed) pairs. *)

type t

val create : ?stream:int64 -> int64 -> t
(** [create ~stream seed].  Different streams are statistically
    independent even under the same seed. *)

val next_int32 : t -> int32
val next_int : t -> int -> int
(** Uniform in [[0, bound)) without modulo bias.
    @raise Invalid_argument if [bound <= 0] or [bound > 2^30]. *)

val next_float : t -> float
(** Uniform in [[0, 1)) with 32 bits of precision. *)

val next_bool : t -> bool

val dump : t -> int64 * int64
(** [(state, increment)] — the full generator state, for
    checkpointing. *)

val of_dump : state:int64 -> increment:int64 -> t
(** Rebuilds a generator that continues the dumped stream
    bit-identically.
    @raise Invalid_argument if the increment is even (no PCG32 stream
    has an even increment). *)
