type t = { mutable state : int64; increment : int64 }

let multiplier = 6364136223846793005L

let create ?(stream = 721347520444481703L) seed =
  (* increment must be odd *)
  let increment = Int64.logor (Int64.shift_left stream 1) 1L in
  let t = { state = 0L; increment } in
  t.state <- Int64.add (Int64.mul t.state multiplier) t.increment;
  t.state <- Int64.add t.state seed;
  t.state <- Int64.add (Int64.mul t.state multiplier) t.increment;
  t

let next_int32 t =
  let old = t.state in
  t.state <- Int64.add (Int64.mul old multiplier) t.increment;
  (* output permutation: xorshift high bits, then random rotate *)
  let xorshifted =
    Int64.to_int32
      (Int64.shift_right_logical
         (Int64.logxor (Int64.shift_right_logical old 18) old)
         27)
  in
  let rot = Int64.to_int (Int64.shift_right_logical old 59) in
  if rot = 0 then xorshifted
  else
    Int32.logor
      (Int32.shift_right_logical xorshifted rot)
      (Int32.shift_left xorshifted (32 - rot))

let next_uint_as_int t =
  (* the 32-bit output as a non-negative OCaml int *)
  Int32.to_int (next_int32 t) land 0xFFFFFFFF

let next_int t bound =
  if bound <= 0 then invalid_arg "Pcg32.next_int: bound <= 0";
  if bound > 1 lsl 30 then invalid_arg "Pcg32.next_int: bound too large";
  (* rejection sampling to remove modulo bias *)
  let limit = 0x100000000 - (0x100000000 mod bound) in
  let rec draw () =
    let v = next_uint_as_int t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let next_float t = float_of_int (next_uint_as_int t) *. (1.0 /. 4294967296.0)
let next_bool t = next_uint_as_int t land 1 = 1

(* Checkpoint support: state advances per draw, the increment selects
   the stream and never changes after [create]. *)
let dump t = (t.state, t.increment)
let of_dump ~state ~increment =
  if Int64.logand increment 1L = 0L then
    invalid_arg "Pcg32.of_dump: increment must be odd";
  { state; increment }
