(** Distribution sampling over a {!Splitmix64} stream.

    Continuous samples are produced as floats and quantised onto a
    rational grid with {!Rat.of_float}, keeping all downstream
    arithmetic exact (see DESIGN.md, "Exact rationals everywhere"). *)

type rng = Splitmix64.t

val uniform : rng -> lo:float -> hi:float -> float
val exponential : rng -> rate:float -> float
(** Inverse-CDF sampling; [rate] is λ, mean [1/λ].
    @raise Invalid_argument if [rate <= 0]. *)

val pareto : rng -> shape:float -> scale:float -> float
(** Pareto type I: support [[scale, inf)), P(X > x) = (scale/x)^shape. *)

val normal : rng -> mean:float -> stddev:float -> float
(** Box–Muller transform. *)

val lognormal : rng -> mu:float -> sigma:float -> float
(** exp of a normal; the classic heavy-tailed session-length model. *)

val bernoulli : rng -> p:float -> bool

val discrete : rng -> weights:float array -> int
(** Index sampled proportionally to [weights] (not necessarily
    normalised).  @raise Invalid_argument on empty or all-zero
    weights. *)

(** Zipf-distributed ranks, the standard popularity model for game
    catalogs: rank [r] has probability proportional to [1/r^s]. *)
module Zipf : sig
  type t

  val create : n:int -> s:float -> t
  (** Supports ranks [1..n].  @raise Invalid_argument if [n <= 0]. *)

  val sample : t -> rng -> int
  (** A rank in [[1, n]], by binary search on the cumulative weights. *)

  val probability : t -> int -> float
end

(** {1 Rational-grid convenience wrappers} *)

val uniform_rat : rng -> lo:float -> hi:float -> ?den:int -> unit -> Dbp_num.Rat.t
val exponential_rat : rng -> rate:float -> ?den:int -> unit -> Dbp_num.Rat.t
val lognormal_rat : rng -> mu:float -> sigma:float -> ?den:int -> unit -> Dbp_num.Rat.t
