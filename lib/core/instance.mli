(** A MinTotal DBP problem instance: an item list plus the bin capacity.

    Carries the instance-level quantities the paper's bounds are stated
    in: the span, the total resource demand [u(R)], and the max/min
    item interval length ratio [mu]. *)

open Dbp_num

type t = private { items : Item.t array; capacity : Rat.t }

val create : capacity:Rat.t -> Item.t list -> t
(** Items are kept in the given order (the submission order used to
    break ties between simultaneous arrivals) and re-numbered with
    ids [0 .. n-1].
    @raise Invalid_argument if [capacity <= 0], the list is empty, or
    some item has [size > capacity] (it could never be packed). *)

val items : t -> Item.t array
val capacity : t -> Rat.t
val size : t -> int
val item : t -> int -> Item.t

val packing_period : t -> Interval.t
(** [[min arrival, max departure]]. *)

val span : t -> Rat.t
(** [span(R)]: measure of the union of the item intervals (Figure 1). *)

val total_demand : t -> Rat.t
(** [u(R) = sum of s(r) * len(I(r))]. *)

val min_interval_length : t -> Rat.t
val max_interval_length : t -> Rat.t

val mu : t -> Rat.t
(** The max/min item interval length ratio [mu >= 1]. *)

val max_size : t -> Rat.t
val min_size : t -> Rat.t

val active_at : t -> Rat.t -> Item.t list
(** Items whose half-open activity window contains the time. *)

val active_count : t -> Step_fn.t
(** The number of active items as a step function of time. *)

val sizes_below : t -> Rat.t -> bool
(** [sizes_below t threshold]: all item sizes are [< threshold] — the
    "small items" premise of Theorem 4. *)

val sizes_at_least : t -> Rat.t -> bool
(** All item sizes are [>= threshold] — the premise of Theorem 3. *)

val event_times : t -> Rat.t list
(** Sorted distinct arrival/departure times. *)

val restrict : t -> f:(Item.t -> bool) -> t option
(** Sub-instance of the items satisfying [f] (same capacity), or [None]
    if no item does.  Item ids are re-numbered. *)

val pp : Format.formatter -> t -> unit

(** {1 Transforms}

    The MinTotal cost model has two exact symmetries, used by the test
    suite as whole-pipeline invariants: scaling time scales every
    algorithm's cost by the same factor, and scaling sizes together
    with the capacity changes nothing. *)

val scale_time : t -> factor:Rat.t -> t
(** Multiplies every arrival and departure by [factor > 0].
    @raise Invalid_argument if [factor <= 0]. *)

val shift_time : t -> offset:Rat.t -> t
(** Adds [offset] to every arrival and departure. *)

val scale_sizes : t -> factor:Rat.t -> t
(** Multiplies every size and the capacity by [factor > 0].
    @raise Invalid_argument if [factor <= 0]. *)
