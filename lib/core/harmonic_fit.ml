open Dbp_num

let class_of ~capacity ~classes size =
  if Rat.sign size <= 0 || Rat.(size > capacity) then
    invalid_arg "Harmonic_fit.class_of: size out of (0, capacity]";
  (* smallest i in [1, classes-1] with size > W/(i+1); else the last
     catch-all class *)
  let rec find i =
    if i >= classes then classes
    else
      let threshold = Rat.div_int capacity (i + 1) in
      if Rat.(size > threshold) then i else find (i + 1)
  in
  find 1

let tag_of i = Printf.sprintf "h%d" i

let policy ~classes =
  if classes < 2 then invalid_arg "Harmonic_fit.policy: classes < 2";
  let name = Printf.sprintf "harmonic(%d)" classes in
  Policy.stateless ~name (fun ~capacity ~now:_ ~bins ~size ->
      let tag = tag_of (class_of ~capacity ~classes size) in
      let pool =
        List.filter (fun (v : Bin.view) -> String.equal v.bin_tag tag) bins
      in
      match Fit.first pool ~size with
      | Some v -> Policy.Existing v.bin_id
      | None -> Policy.New_bin tag)
