(** The event-driven MinTotal DBP simulator.

    {!run} replays a full instance through a policy.  {!Online} is the
    interactive stepping interface underneath it: callers inject
    arrivals and departures one at a time and can observe the resulting
    packing state between steps — exactly the power an adaptive
    adversary has in the competitive-analysis game (used by
    [Dbp_adversary] for the Theorem 1 and 2 constructions). *)

open Dbp_num

val log_src : Logs.src
(** Placement/departure events are logged here at debug level; enable
    with [Logs.Src.set_level Simulator.log_src (Some Logs.Debug)] or
    the CLI's [--verbose]. *)

exception Invalid_decision of string
(** A policy chose a closed bin, an unknown bin, or a bin where the
    item does not fit. *)

exception Invalid_step of string
(** An {!Online} caller broke the protocol: time went backwards, an
    unknown item departed, an item id was reused, an unknown or
    already-closed bin was failed, or [finish] was called with items
    still active. *)

module Online : sig
  type t

  val create :
    ?audit:bool ->
    ?sink:Dbp_obs.Sink.t ->
    ?metrics:Dbp_obs.Metrics.t ->
    ?profile:Dbp_obs.Profile.t ->
    ?grid:Fixed.scale ->
    ?tag_capacity:(string -> Rat.t) ->
    policy:Policy.t ->
    capacity:Rat.t ->
    unit ->
    t
  (** [capacity] is the base (the paper's uniform [W]); [tag_capacity]
      optionally gives bins opened under a tag their own capacity
      (heterogeneous server types).  Defaults to the base for every
      tag.  [audit] (default [false]) turns on the sanitizer: every
      event re-verifies the engine's memoised state and raises
      {!Audit.Audit_violation} on the first divergence (see
      {!Audit}).

      The three observability taps all default to off and are
      guaranteed not to change any packing decision: [sink] receives
      every engine event as a structured {!Dbp_obs.Trace_event.t}
      (arrive / pack / depart / bin_open / bin_close / fail_bin),
      [metrics] accumulates counters, gauges and histograms
      (arrivals, departures, bins opened/closed, open-bin counts,
      per-bin utilisation at pack time, item held times, exact
      bin-seconds), and [profile] accrues per-phase wall time
      ("views" — open-fleet view assembly, "policy" — the policy
      handler, "commit" — state mutation).

      [grid] (usually {!grid_of_instance}) opts the engine onto the
      fixed-point fast track: all sizes, times and levels become
      native ints scaled by the grid denominator, stored unboxed in
      struct-of-arrays form, and the commit path does no rational
      arithmetic at all.  Admission is exact-or-refuse — the track is
      taken only if [capacity] converts exactly, and any later input
      off the grid (a time, a tag capacity, an out-of-range id) makes
      the engine fall back to exact arithmetic by losslessly
      materialising its state, so results are bit-identical either
      way.  A [sink] or [metrics] tap forces the exact track. *)

  val arrive : t -> now:Rat.t -> size:Rat.t -> item_id:int -> int
  (** Feeds an arrival to the policy; returns the id of the bin the
      item was placed in.  Item ids must be fresh, and [now] must not
      precede any earlier step. *)

  val depart : t -> now:Rat.t -> item_id:int -> unit
  (** The item leaves; its bin closes if it empties. *)

  val fail_bin : t -> now:Rat.t -> bin_id:int -> (int * Rat.t) list
  (** Crashes an open bin at [now] (server failure / spot preemption):
      every active item inside is evicted and the bin closes, so it is
      charged exactly for [[opened, now]] — failed capacity still pays
      for its open interval.  Returns the evicted [(item_id, size)]
      pairs in packing order; evicted items are no longer active (a
      later {!depart} for one raises {!Invalid_step}) and their ids
      stay used.  Callers that re-dispatch evicted sessions must feed
      them back through {!arrive} under fresh item ids — that is what
      [Dbp_faults.Injector] does.
      @raise Invalid_step if the bin is unknown or already closed, or
      if [now] precedes an earlier step. *)

  val migrate :
    t -> now:Rat.t -> item_id:int -> to_bin:int -> new_item_id:int -> bool
  (** Live migration — the limited-recourse repacking primitive
      ([Dbp_repack]): atomically moves the active item [item_id] into
      the open bin [to_bin], where it continues as the fresh id
      [new_item_id].  The old id retires (stays used); exact
      accounting splits at [now]: the item's first segment ends here,
      and if the move emptied the source bin, the bin closes and is
      charged exactly for [[opened, now]].  Returns [true] iff the
      source closed.  O(1) per move; no policy handler runs —
      migration is the caller's (repacker's) decision, and the policy
      sees the new fleet through its next views.  Emits a [Migrate]
      trace event (plus [Bin_close] if the source closed) and accrues
      [migrations]/[migrated_volume] metrics.  Callers building an
      effective instance must end [item_id]'s segment and start
      [new_item_id]'s at [now] — that is what [Dbp_repack.Runner] and
      the fault injector's migration ladder do.
      @raise Invalid_step if the item is not active, the destination
      is unknown, closed or the item's own bin, the item does not fit,
      [new_item_id] was already used, or [now] precedes an earlier
      step. *)

  val now : t -> Rat.t option
  (** Time of the latest step. *)

  val open_bins : t -> Bin.view list
  (** Views of the open bins in opening order. *)

  val bin_of_item : t -> int -> int option
  (** Bin currently holding an active item. *)

  val active_items_in : t -> int -> (int * Rat.t) list
  (** [(item_id, size)] of active items in a bin, most recent first. *)

  val level_of : t -> int -> Rat.t option
  (** Current level of an open bin. *)

  val finish : t -> instance:Instance.t -> Packing.t
  (** Assembles the packing result.  The instance must contain exactly
      the items that were stepped through (same ids, sizes and times);
      all items must have departed.  In audit mode the assembled
      packing is additionally checked for cost conservation
      ({!Audit.check_packing}). *)

  val audit : t -> unit
  (** Runs the full invariant audit immediately, regardless of the
      [?audit] flag: open-index structure, store/index agreement,
      memoised per-bin state vs recompute, item-tracking consistency.
      @raise Audit.Audit_violation on the first divergence. *)

  val bin_handle : t -> int -> Bin.t option
  (** The underlying mutable bin record.  Exposed for the auditor's
      negative tests (corrupt a field, assert {!audit} catches it);
      mutating it from anywhere else breaks the engine's invariants
      for real. *)

  (** The checkpointable image of a running engine: exactly the
      non-derivable state.  Levels, the open index, item tracking and
      item-seen sets are re-derived on {!thaw}, so a frozen image (or
      a snapshot file decoded into one) can never rebuild an engine
      with an inconsistent cache. *)
  module Frozen : sig
    type bin = {
      b_id : int;
      b_tag : string;
      b_capacity : Rat.t;
      b_opened : Rat.t;
      b_closed : Rat.t option;
      b_max_level : Rat.t;
      b_placements : (Rat.t * int) list;
          (** Every placement ever, oldest first. *)
      b_active : (int * Rat.t) list;
          (** [(item_id, size)] still inside, oldest placement
              first.  An active item's arrival is its placement time,
              so it is not stored separately. *)
    }

    type t = {
      s_capacity : Rat.t;
      s_clock : Rat.t option;
      s_violations : int;
      s_bins : bin list;  (** In id order; ids are dense from 0. *)
      s_policy_state : string option;
          (** The policy's {!Policy.state_io} blob, if stateful. *)
    }
  end

  val freeze : t -> Frozen.t
  (** Captures the full engine state between events.
      @raise Invalid_step if the policy's state is
      {!Policy.Volatile} — such a run cannot checkpoint. *)

  val thaw :
    ?audit:bool ->
    ?sink:Dbp_obs.Sink.t ->
    ?metrics:Dbp_obs.Metrics.t ->
    ?profile:Dbp_obs.Profile.t ->
    ?tag_capacity:(string -> Rat.t) ->
    policy:Policy.t ->
    Frozen.t ->
    t
  (** Rebuilds an engine that continues the frozen run bit-identically:
      feeding it the remaining events yields the same packing, cost and
      trace events as the uninterrupted run.  The policy must be the
      same as the frozen run's (same name, same seed); its internal
      state is restored through {!Policy.state_io}.  The rebuilt state
      is always re-audited (the full {!audit} pass), regardless of
      [?audit].
      @raise Invalid_step on an inconsistent image (non-dense bin ids,
      active items without placements, over-capacity bins, policy
      state present/absent against the policy's declared persistence,
      or a volatile policy). *)

  val track_name : t -> string
  (** ["fixed"] while the engine runs on the scaled-integer fast
      track, ["exact"] otherwise (including after a fallback).  For
      benchmarks and tests; results never depend on it. *)
end

val max_fast_item : int
(** [2^23 - 1] — the largest item id the fixed-point fast track
    accepts.  The fast stores are dense in item id, and the packed
    replay key below reserves 24 bits for the id: keeping admissible
    ids strictly below the kind bit means an id can never carry into
    the kind or time fields.  Larger ids fall back to the exact
    track and the comparison-sorted event array. *)

val event_key_time_limit : int
(** [2^37] — exclusive bound on the scaled times a packed replay key
    can carry (37 time bits + 25 layout bits = 62, so keys stay
    positive OCaml ints for the radix sort). *)

val pack_event_key : time_s:int -> arrival:bool -> id:int -> int
(** The fast track's replay key, [(time_s << 25) | (kind << 24) | id]
    with departures' kind bit 0: integer order is exactly
    {!Event.compare}'s (time, departures first, then item id).
    Exposed so tests can pin the layout at its boundaries.
    @raise Invalid_argument if [id] is outside [0, max_fast_item] or
    [time_s] outside [0, event_key_time_limit). *)

val unpack_event_key : int -> int * bool * int
(** [(time_s, arrival, id)] — left inverse of {!pack_event_key}. *)

val grid_of_instance : Instance.t -> Fixed.scale option
(** The instance's common grid: the least denominator under which the
    capacity and every item size, arrival and departure are exactly
    representable scaled integers within {!Fixed.bound}.  [None] if no
    such affordable grid exists — the run then stays on exact
    arithmetic.  Pass the result to {!Online.create}'s [?grid]. *)

val grid_of_den : int -> Fixed.scale option
(** The grid with denominator [d], or [None] if [d] is outside the
    affordable range.  For streaming drivers that pick the grid up
    front (no instance to inspect) — the engine still degrades to
    exact arithmetic losslessly on any off-grid input. *)

val apply_event : Online.t -> Event.t -> unit
(** Feeds one instance event (arrival or departure) to the engine —
    the replay step {!run} is built from, exposed so checkpoint
    drivers can stop after, and resume from, an exact event index. *)

val run :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?metrics:Dbp_obs.Metrics.t ->
  ?profile:Dbp_obs.Profile.t ->
  ?grid:Fixed.scale option ->
  ?tag_capacity:(string -> Rat.t) ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(events_done:int -> Online.t -> unit) ->
  policy:Policy.t ->
  Instance.t ->
  Packing.t
(** Replays the instance's event stream (departures before arrivals at
    equal times, arrivals in submission order) and assembles the
    result.  [audit] defaults to {!Audit.enabled_from_env}, so setting
    [DBP_AUDIT=1] audits every run in the process.  [sink], [metrics]
    and [profile] are the observability taps of {!Online.create}; a
    traced or metered run produces a bit-identical packing to an
    untraced one.  [grid] overrides the numeric track choice
    ([Some None] forces exact arithmetic); by default the run computes
    {!grid_of_instance} itself and takes the fast track whenever the
    instance lies on a grid.

    [checkpoint_every] (with [on_checkpoint]) calls the hook after
    every [k]-th event with the engine mid-run — the periodic
    checkpoint tap; the hook typically calls {!Online.freeze} and
    hands the image to [Dbp_checkpoint].  Neither option changes any
    packing decision.
    @raise Invalid_argument if [checkpoint_every <= 0]. *)
