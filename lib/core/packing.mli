(** The complete result of packing an instance with an online policy.

    Carries everything the analysis layer needs: per-bin usage periods
    [I_i] (indexed in opening order, as in Section 4.3), the full
    placement history behind the reference points [t_{i,j}], the open
    bin count timeline [A(R,t)], and the exact total cost
    [A_total(R)] for cost rate [C = 1]. *)

open Dbp_num

type bin_record = {
  bin_id : int;  (** Opening-order index [i] of bin [b_i]. *)
  tag : string;
  capacity : Rat.t;  (** This bin's own capacity (uniform [W] in the
                         paper's model; per-type in the fleet layer). *)
  opened : Rat.t;  (** [I_i^-]. *)
  closed : Rat.t;  (** [I_i^+]. *)
  item_ids : int list;  (** Every item ever packed, in packing order. *)
  placements : (Rat.t * int) list;
      (** (time, item id) of each packing, in time order. *)
  max_level : Rat.t;
}

type t = {
  instance : Instance.t;
  policy_name : string;
  bins : bin_record array;  (** Indexed by [bin_id]. *)
  assignment : int array;  (** Item id to bin id. *)
  timeline : Step_fn.t;  (** [A(R,t)]: open bins over time. *)
  total_cost : Rat.t;  (** [A_total(R)] with [C = 1]. *)
  max_bins : int;  (** Classical DBP objective: max bins ever open. *)
  any_fit_violations : int;
      (** Times a new bin was opened although some open bin fitted.
          0 for every Any Fit algorithm; positive for e.g. MFF. *)
}

val bins_used : t -> int
val usage_period : bin_record -> Interval.t
val cost : t -> rate:Rat.t -> Rat.t
(** [A_total(R)] for bin cost rate [C = rate]. *)

val bin_of_item : t -> int -> bin_record
val is_any_fit : t -> bool

val validate : t -> (unit, string) result
(** Full independent replay check: every item is packed exactly once,
    within its bin's usage period; no bin ever exceeds capacity; the
    timeline matches the bins' usage periods; the total cost equals
    both the timeline integral and the sum of usage period lengths.
    Used by the test suite on every packing it produces. *)

val pp_summary : Format.formatter -> t -> unit
