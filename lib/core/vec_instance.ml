open Dbp_num

type item = { id : int; size : Vec.t; arrival : Rat.t; departure : Rat.t }

type t = { items : item array; capacity : Vec.t }

let create ~capacity items =
  let d = Vec.dim capacity in
  if not (Vec.is_nonneg capacity && Vec.has_positive capacity) then
    invalid_arg "Vec_instance.create: capacity must be positive";
  for j = 0 to d - 1 do
    if Rat.sign (Vec.get capacity j) <= 0 then
      invalid_arg
        (Printf.sprintf
           "Vec_instance.create: capacity component %d is not positive" j)
  done;
  if items = [] then invalid_arg "Vec_instance.create: empty item list";
  List.iter
    (fun r ->
      if Vec.dim r.size <> d then
        invalid_arg
          (Printf.sprintf
             "Vec_instance.create: item has %d dimensions, capacity has %d"
             (Vec.dim r.size) d);
      if not (Vec.is_nonneg r.size) then
        invalid_arg "Vec_instance.create: item size has a negative component";
      if not (Vec.has_positive r.size) then
        invalid_arg "Vec_instance.create: item size is all-zero";
      if not (Vec.le r.size capacity) then
        invalid_arg
          (Format.asprintf "Vec_instance.create: size %a exceeds capacity %a"
             Vec.pp r.size Vec.pp capacity);
      if Rat.(r.departure <= r.arrival) then
        invalid_arg "Vec_instance.create: departure must follow arrival")
    items;
  let items =
    Array.of_list
      (List.mapi
         (fun id r ->
           { id; size = r.size; arrival = r.arrival; departure = r.departure })
         items)
  in
  { items; capacity }

let of_scalar instance =
  let items =
    Instance.items instance |> Array.to_list
    |> List.map (fun (r : Item.t) ->
           {
             id = r.Item.id;
             size = Vec.scalar r.Item.size;
             arrival = r.Item.arrival;
             departure = r.Item.departure;
           })
  in
  create ~capacity:(Vec.scalar (Instance.capacity instance)) items

let to_scalar t =
  if Vec.dim t.capacity <> 1 then None
  else
    Some
      (Instance.create
         ~capacity:(Vec.get t.capacity 0)
         (Array.to_list t.items
         |> List.map (fun r ->
                Item.make ~id:r.id ~size:(Vec.get r.size 0) ~arrival:r.arrival
                  ~departure:r.departure)))

let dims t = Vec.dim t.capacity
let capacity t = t.capacity
let items t = t.items
let size t = Array.length t.items
let item t i = t.items.(i)

let length r = Rat.sub r.departure r.arrival

let span t =
  Interval.union_measure
    (Array.to_list
       (Array.map (fun r -> Interval.make r.arrival r.departure) t.items))

let demand_per_dim t =
  let d = dims t in
  let acc = Array.make d Rat.zero in
  Array.iter
    (fun r ->
      let len = length r in
      for j = 0 to d - 1 do
        acc.(j) <- Rat.add acc.(j) (Rat.mul (Vec.get r.size j) len)
      done)
    t.items;
  Vec.of_array acc

let max_interval_length t =
  Array.fold_left
    (fun acc r -> Rat.max acc (length r))
    (length t.items.(0))
    t.items

let min_interval_length t =
  Array.fold_left
    (fun acc r -> Rat.min acc (length r))
    (length t.items.(0))
    t.items

let mu t = Rat.div (max_interval_length t) (min_interval_length t)

type event_kind = Departure | Arrival

type event = { ev_time : Rat.t; ev_kind : event_kind; ev_item : item }

let kind_rank = function Departure -> 0 | Arrival -> 1

let compare_event a b =
  let c = Rat.compare a.ev_time b.ev_time in
  if c <> 0 then c
  else
    let c = Int.compare (kind_rank a.ev_kind) (kind_rank b.ev_kind) in
    if c <> 0 then c else Int.compare a.ev_item.id b.ev_item.id

let sorted_events t =
  let n = Array.length t.items in
  let seed =
    { ev_time = t.items.(0).arrival; ev_kind = Arrival; ev_item = t.items.(0) }
  in
  let evs = Array.make (2 * n) seed in
  Array.iteri
    (fun i r ->
      evs.(2 * i) <- { ev_time = r.arrival; ev_kind = Arrival; ev_item = r };
      evs.((2 * i) + 1) <-
        { ev_time = r.departure; ev_kind = Departure; ev_item = r })
    t.items;
  Array.sort compare_event evs;
  evs

let pp fmt t =
  Format.fprintf fmt "@[<v>vec instance: %d items, d=%d, W=%a, mu=%a@]"
    (size t) (dims t) Vec.pp t.capacity Rat.pp (mu t)
