(** Items of the MinTotal DBP problem.

    An item [r] is a triple [(a(r), d(r), s(r))]: arrival time,
    departure time and size (Section 3.1 of the paper).  The item is
    active on the closed interval [I(r) = [a(r), d(r)]]; its resource
    demand is [u(r) = s(r) * len(I(r))]. *)

open Dbp_num

type t = { id : int; size : Rat.t; arrival : Rat.t; departure : Rat.t }

val make : id:int -> size:Rat.t -> arrival:Rat.t -> departure:Rat.t -> t
(** @raise Invalid_argument unless [size > 0] and [departure > arrival]
    (the paper assumes [d(r) > a(r)] always holds). *)

val interval : t -> Interval.t
(** [I(r) = [a(r), d(r)]]. *)

val length : t -> Rat.t
(** [len(I(r)) = d(r) - a(r)]. *)

val demand : t -> Rat.t
(** [u(r) = s(r) * len(I(r))]. *)

val active_at : t -> Rat.t -> bool
(** Whether [t] lies in the half-open activity window [[a(r), d(r))].
    Half-open so that counting active items at any instant matches the
    right-continuous timeline [n(t)]. *)

val compare : t -> t -> int
(** Orders by arrival time, then id. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
