(** Event streams driving the online simulation.

    Ordering convention (DESIGN.md): events are sorted by time; at
    equal times all departures precede all arrivals, and simultaneous
    arrivals keep the instance's submission order.  A bin closes the
    instant its last item departs, so an arrival at the same timestamp
    can never reuse a just-emptied bin — matching the paper's model
    where a bin's usage period ends when all its items depart. *)

open Dbp_num

type kind = Departure | Arrival

type t = { time : Rat.t; kind : kind; item : Item.t }

val compare : t -> t -> int

val of_instance : Instance.t -> t list
(** The full sorted event stream of an instance. *)

val sorted_array_of_instance : Instance.t -> t array
(** Same stream, same order, as an array: [compare] is a total order,
    so sorting in place yields exactly [of_instance]'s sequence while
    sparing the hot replay loop the list sort's allocation.  Indices
    therefore agree with [of_instance] positions — checkpoint cut
    points carry over unchanged. *)

val pp : Format.formatter -> t -> unit
