(** Best Fit (BF), Section 3.2: put each arriving item into the open
    bin with the smallest residual capacity that can still accommodate
    it.  Theorem 2 shows BF has {e no bounded competitive ratio} for
    the MinTotal DBP problem, for any max/min interval length ratio
    [mu] — the construction is implemented in
    {!Dbp_adversary.Bestfit_unbounded}. *)

val policy : Policy.t
