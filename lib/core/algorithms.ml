open Dbp_num

let default_seed = 1L

let all ?(seed = default_seed) () =
  [
    First_fit.policy;
    Best_fit.policy;
    Worst_fit.policy;
    Last_fit.policy;
    Next_fit.policy;
    Random_fit.policy ~seed;
    Modified_first_fit.policy_mu_oblivious;
    Harmonic_fit.policy ~classes:4;
  ]

let any_fit_family () =
  [ First_fit.policy; Best_fit.policy; Worst_fit.policy; Last_fit.policy ]

let names =
  [
    "first-fit";
    "best-fit";
    "worst-fit";
    "last-fit";
    "next-fit";
    "random-fit";
    "mff";
    "mff-known-mu";
    "mff:<k>";
    "harmonic:<m>";
  ]

let find ?(seed = default_seed) ?mu name =
  match name with
  | "first-fit" | "ff" -> Some First_fit.policy
  | "best-fit" | "bf" -> Some Best_fit.policy
  | "worst-fit" | "wf" -> Some Worst_fit.policy
  | "last-fit" | "lf" -> Some Last_fit.policy
  | "next-fit" | "nf" -> Some Next_fit.policy
  | "random-fit" | "rf" -> Some (Random_fit.policy ~seed)
  | "mff" -> Some Modified_first_fit.policy_mu_oblivious
  | "mff-known-mu" ->
      Option.map (fun mu -> Modified_first_fit.policy_known_mu ~mu) mu
  | _ ->
      if String.length name > 4 && String.sub name 0 4 = "mff:" then
        match
          Rat.of_string (String.sub name 4 (String.length name - 4))
        with
        | k -> Some (Modified_first_fit.policy ~k)
        | exception _ -> None
      else if String.length name > 9 && String.sub name 0 9 = "harmonic:" then
        match int_of_string_opt (String.sub name 9 (String.length name - 9)) with
        | Some classes when classes >= 2 -> Some (Harmonic_fit.policy ~classes)
        | Some _ | None -> None
      else None
