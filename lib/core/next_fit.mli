(** Next Fit: keep a single "current" bin — the most recently opened
    one; if the arriving item fits there, place it, otherwise open a
    new bin (even if an older bin could fit, so Next Fit is {e not} an
    Any Fit algorithm).  Classical cheap baseline. *)

val policy : Policy.t
