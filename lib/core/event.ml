open Dbp_num

type kind = Departure | Arrival

type t = { time : Rat.t; kind : kind; item : Item.t }

let kind_rank = function Departure -> 0 | Arrival -> 1

let compare a b =
  let c = Rat.compare a.time b.time in
  if c <> 0 then c
  else
    let c = Int.compare (kind_rank a.kind) (kind_rank b.kind) in
    if c <> 0 then c else Int.compare a.item.Item.id b.item.Item.id

let of_instance instance =
  Instance.items instance |> Array.to_list
  |> List.concat_map (fun (r : Item.t) ->
         [
           { time = r.arrival; kind = Arrival; item = r };
           { time = r.departure; kind = Departure; item = r };
         ])
  |> List.sort compare

let pp fmt e =
  Format.fprintf fmt "%s@%a %a"
    (match e.kind with Arrival -> "arr" | Departure -> "dep")
    Rat.pp e.time Item.pp e.item
