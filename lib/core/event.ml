open Dbp_num

type kind = Departure | Arrival

type t = { time : Rat.t; kind : kind; item : Item.t }

let kind_rank = function Departure -> 0 | Arrival -> 1

let compare a b =
  let c = Rat.compare a.time b.time in
  if c <> 0 then c
  else
    let c = Int.compare (kind_rank a.kind) (kind_rank b.kind) in
    if c <> 0 then c else Int.compare a.item.Item.id b.item.Item.id

let sorted_array_of_instance instance =
  let items = Instance.items instance in
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let seed = { time = items.(0).Item.arrival; kind = Arrival; item = items.(0) } in
    let evs = Array.make (2 * n) seed in
    Array.iteri
      (fun i (r : Item.t) ->
        evs.(2 * i) <- { time = r.arrival; kind = Arrival; item = r };
        evs.((2 * i) + 1) <- { time = r.departure; kind = Departure; item = r })
      items;
    (* [compare] is a total order (time, kind, item id with ids
       unique), so the unstable array sort yields exactly the order
       the stable list sort used to — event indices, and with them
       checkpoint cut points, are preserved. *)
    Array.sort compare evs;
    evs
  end

let of_instance instance = Array.to_list (sorted_array_of_instance instance)

let pp fmt e =
  Format.fprintf fmt "%s@%a %a"
    (match e.kind with Arrival -> "arr" | Departure -> "dep")
    Rat.pp e.time Item.pp e.item
