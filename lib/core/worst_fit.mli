(** Worst Fit: choose the fitting open bin with the {e largest}
    residual capacity.  An Any Fit algorithm, so Theorem 1's lower
    bound of [mu] applies; included as a baseline in the experiments. *)

val policy : Policy.t
