(** Registry of all packing policies, for CLIs and experiment sweeps. *)

open Dbp_num

val default_seed : int64
(** The seed every [?seed] below defaults to (1); checkpoint metadata
    records it so a resume re-derives the same Random Fit stream. *)

val all : ?seed:int64 -> unit -> Policy.t list
(** Every built-in policy: first/best/worst/last/next/random fit, MFF
    with the paper's default [k = 8], and Harmonic with 4 classes.
    [seed] (default 1) parameterises Random Fit. *)

val any_fit_family : unit -> Policy.t list
(** The deterministic Any Fit members: first, best, worst, last fit. *)

val find : ?seed:int64 -> ?mu:Rat.t -> string -> Policy.t option
(** Looks a policy up by CLI name: ["first-fit"], ["best-fit"],
    ["worst-fit"], ["last-fit"], ["next-fit"], ["random-fit"], ["mff"]
    (k = 8), ["mff-known-mu"] (requires [mu]), ["mff:<k>"] with a
    rational [k] such as ["mff:9/2"], or ["harmonic:<m>"] with an
    integer class count [m >= 2]. *)

val names : string list
(** The recognised CLI names, for help text. *)
