let policy =
  Policy.stateless ~name:"last_fit" (fun ~capacity:_ ~now:_ ~bins ~size ->
      match Fit.last bins ~size with
      | Some v -> Policy.Existing v.Bin.bin_id
      | None -> Policy.New_bin "lf")
