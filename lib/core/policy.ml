open Dbp_num

type decision = Existing of int | New_bin of string

type state_io = { save : unit -> string; load : string -> unit }
type persistence = Stateless | Persistent of state_io | Volatile

type handlers = {
  on_arrival :
    now:Rat.t -> bins:Bin.view list -> size:Rat.t -> item_id:int -> decision;
  on_departure : now:Rat.t -> bins:Bin.view list -> item_id:int -> unit;
  persistence : persistence;
}

type t = { name : string; spawn : capacity:Rat.t -> handlers }

let make ~name spawn = { name; spawn }

let no_departure_handler ~now:_ ~bins:_ ~item_id:_ = ()

let stateless ~name choose =
  let spawn ~capacity =
    {
      on_arrival =
        (fun ~now ~bins ~size ~item_id:_ -> choose ~capacity ~now ~bins ~size);
      on_departure = no_departure_handler;
      persistence = Stateless;
    }
  in
  { name; spawn }
