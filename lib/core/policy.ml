open Dbp_num

type decision = Existing of int | New_bin of string

type handlers = {
  on_arrival :
    now:Rat.t -> bins:Bin.view list -> size:Rat.t -> item_id:int -> decision;
  on_departure : now:Rat.t -> bins:Bin.view list -> item_id:int -> unit;
}

type t = { name : string; spawn : capacity:Rat.t -> handlers }

let make ~name spawn = { name; spawn }

let no_departure_handler ~now:_ ~bins:_ ~item_id:_ = ()

let stateless ~name choose =
  let spawn ~capacity =
    {
      on_arrival =
        (fun ~now ~bins ~size ~item_id:_ -> choose ~capacity ~now ~bins ~size);
      on_departure = no_departure_handler;
    }
  in
  { name; spawn }
