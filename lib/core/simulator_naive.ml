(* The seed (pre-index) engine, retained verbatim in behaviour as the
   equivalence oracle and the "before" side of the scaling benchmark.

   It is deliberately naive: all bins ever opened live in one list that
   is re-scanned and re-viewed on every event, bin ids resolve by
   linear search, and the active items of a bin are a list.  Per-event
   cost is O(bins ever opened); [Simulator] replaces this with an
   O(open bins) engine and the property tests in [test_engine.ml]
   prove the two produce bit-identical packings. *)

open Dbp_num

exception Invalid_decision = Simulator.Invalid_decision
exception Invalid_step = Simulator.Invalid_step

let invalid_decision fmt =
  Format.kasprintf (fun s -> raise (Invalid_decision s)) fmt

let invalid_step fmt = Format.kasprintf (fun s -> raise (Invalid_step s)) fmt

(* The seed's list-based bin state.  [Bin] itself is now keyed and
   memoised, so the old representation lives here, private to the
   reference engine. *)
module Nbin = struct
  type t = {
    id : int;
    tag : string;
    capacity : Rat.t;
    opened : Rat.t;
    mutable closed : Rat.t option;
    mutable level : Rat.t;
    mutable active : Item.t list;
    mutable max_level : Rat.t;
    mutable all_items : int list;
    mutable placements : (Rat.t * int) list;
  }

  let open_bin ~id ~tag ~capacity ~now =
    if Rat.sign capacity <= 0 then invalid_arg "Nbin.open_bin: capacity <= 0";
    {
      id;
      tag;
      capacity;
      opened = now;
      closed = None;
      level = Rat.zero;
      active = [];
      max_level = Rat.zero;
      all_items = [];
      placements = [];
    }

  let is_open t = t.closed = None
  let residual t = Rat.sub t.capacity t.level
  let fits t ~size = Rat.(Rat.add t.level size <= t.capacity)

  let insert t ~now (r : Item.t) =
    t.level <- Rat.add t.level r.size;
    t.active <- r :: t.active;
    t.max_level <- Rat.max t.max_level t.level;
    t.all_items <- r.id :: t.all_items;
    t.placements <- (now, r.id) :: t.placements

  let remove t ~now (r : Item.t) =
    if not (List.exists (fun (x : Item.t) -> x.id = r.id) t.active) then
      invalid_arg "Nbin.remove: item not in bin";
    t.active <- List.filter (fun (x : Item.t) -> x.id <> r.id) t.active;
    t.level <- Rat.sub t.level r.size;
    if t.active = [] then begin
      t.level <- Rat.zero;
      t.closed <- Some now
    end

  let to_view t =
    {
      Bin.bin_id = t.id;
      bin_tag = t.tag;
      bin_capacity = t.capacity;
      bin_level = t.level;
      bin_residual = residual t;
      bin_opened = t.opened;
      bin_count = List.length t.active;
    }
end

module Online = struct
  type t = {
    capacity : Rat.t;
    tag_capacity : string -> Rat.t;
    handlers : Policy.handlers;
    mutable bins : Nbin.t list;  (* all bins ever, reverse opening order *)
    mutable next_bin_id : int;
    item_bin : (int, Nbin.t) Hashtbl.t;  (* active item -> its bin *)
    seen_items : (int, unit) Hashtbl.t;
    mutable clock : Rat.t option;
    mutable violations : int;
  }

  let create ?tag_capacity ~policy ~capacity () =
    if Rat.sign capacity <= 0 then
      invalid_arg "Online.create: capacity must be positive";
    let tag_capacity =
      match tag_capacity with Some f -> f | None -> fun _ -> capacity
    in
    {
      capacity;
      tag_capacity;
      handlers = policy.Policy.spawn ~capacity;
      bins = [];
      next_bin_id = 0;
      item_bin = Hashtbl.create 64;
      seen_items = Hashtbl.create 64;
      clock = None;
      violations = 0;
    }

  let advance_clock t now =
    (match t.clock with
    | Some prev when Rat.(now < prev) ->
        invalid_step "time went backwards: %a after %a" Rat.pp now Rat.pp prev
    | _ -> ());
    t.clock <- Some now

  let now t = t.clock

  let open_bin_views t =
    (* [t.bins] is in reverse opening order; present opening order. *)
    List.rev t.bins
    |> List.filter Nbin.is_open
    |> List.map Nbin.to_view

  let open_bins = open_bin_views

  let find_bin t id = List.find_opt (fun (b : Nbin.t) -> b.id = id) t.bins

  let arrive t ~now ~size ~item_id =
    advance_clock t now;
    if Rat.sign size <= 0 then invalid_step "item %d has size <= 0" item_id;
    if Hashtbl.mem t.seen_items item_id then
      invalid_step "item id %d reused" item_id;
    Hashtbl.add t.seen_items item_id ();
    let views = open_bin_views t in
    let decision = t.handlers.Policy.on_arrival ~now ~bins:views ~size ~item_id in
    let target =
      match decision with
      | Policy.Existing id -> (
          match find_bin t id with
          | None -> invalid_decision "policy chose unknown bin %d" id
          | Some b ->
              if not (Nbin.is_open b) then
                invalid_decision "policy chose closed bin %d" id
              else if not (Nbin.fits b ~size) then
                invalid_decision "item %d does not fit in bin %d" item_id id
              else b)
      | Policy.New_bin tag ->
          if
            List.exists
              (fun (v : Bin.view) -> Rat.(size <= v.bin_residual))
              views
          then t.violations <- t.violations + 1;
          let cap = t.tag_capacity tag in
          if Rat.(size > cap) then
            invalid_decision
              "item %d (size %s) exceeds the capacity %s of a new '%s' bin"
              item_id (Rat.to_string size) (Rat.to_string cap) tag;
          let b = Nbin.open_bin ~id:t.next_bin_id ~tag ~capacity:cap ~now in
          t.next_bin_id <- t.next_bin_id + 1;
          t.bins <- b :: t.bins;
          b
    in
    let stub =
      Item.make ~id:item_id ~size ~arrival:now
        ~departure:(Rat.add now Rat.one)
    in
    Nbin.insert target ~now stub;
    Hashtbl.replace t.item_bin item_id target;
    target.Nbin.id

  let depart t ~now ~item_id =
    advance_clock t now;
    match Hashtbl.find_opt t.item_bin item_id with
    | None -> invalid_step "departure of unknown/inactive item %d" item_id
    | Some b ->
        let stub =
          List.find (fun (r : Item.t) -> r.id = item_id) b.Nbin.active
        in
        Nbin.remove b ~now stub;
        Hashtbl.remove t.item_bin item_id;
        let views = open_bin_views t in
        t.handlers.Policy.on_departure ~now ~bins:views ~item_id

  let fail_bin t ~now ~bin_id =
    advance_clock t now;
    match find_bin t bin_id with
    | None -> invalid_step "fail_bin: unknown bin %d" bin_id
    | Some b ->
        if not (Nbin.is_open b) then
          invalid_step "fail_bin: bin %d is already closed" bin_id;
        let victims =
          List.rev_map (fun (r : Item.t) -> (r.Item.id, r.Item.size)) b.Nbin.active
        in
        List.iter
          (fun (item_id, _) ->
            let stub =
              List.find (fun (r : Item.t) -> r.Item.id = item_id) b.Nbin.active
            in
            Nbin.remove b ~now stub;
            Hashtbl.remove t.item_bin item_id)
          victims;
        assert (not (Nbin.is_open b));
        List.iter
          (fun (item_id, _) ->
            let views = open_bin_views t in
            t.handlers.Policy.on_departure ~now ~bins:views ~item_id)
          victims;
        victims

  let bin_of_item t item_id =
    Hashtbl.find_opt t.item_bin item_id
    |> Option.map (fun (b : Nbin.t) -> b.id)

  let active_items_in t bin_id =
    match find_bin t bin_id with
    | None -> []
    | Some b ->
        List.map (fun (r : Item.t) -> (r.id, r.size)) b.Nbin.active

  let level_of t bin_id =
    match find_bin t bin_id with
    | Some b when Nbin.is_open b -> Some b.Nbin.level
    | _ -> None

  let finish t ~instance =
    if Hashtbl.length t.item_bin <> 0 then
      invalid_step "finish with %d items still active"
        (Hashtbl.length t.item_bin);
    let n = Instance.size instance in
    if Hashtbl.length t.seen_items <> n then
      invalid_step "instance has %d items but %d were stepped" n
        (Hashtbl.length t.seen_items);
    let bins_in_order = List.rev t.bins in
    let records =
      List.map
        (fun (b : Nbin.t) ->
          let closed =
            match b.closed with
            | Some c -> c
            | None -> invalid_step "bin %d never closed" b.id
          in
          {
            Packing.bin_id = b.id;
            tag = b.tag;
            capacity = b.capacity;
            opened = b.opened;
            closed;
            item_ids = List.rev b.all_items;
            placements = List.rev b.placements;
            max_level = b.max_level;
          })
        bins_in_order
      |> Array.of_list
    in
    let assignment = Array.make n (-1) in
    Array.iter
      (fun (b : Packing.bin_record) ->
        List.iter
          (fun item_id ->
            if item_id < 0 || item_id >= n then
              invalid_step "item id %d outside instance" item_id;
            assignment.(item_id) <- b.bin_id)
          b.item_ids)
      records;
    Array.iteri
      (fun i bin_id ->
        if bin_id < 0 then invalid_step "item %d never packed" i)
      assignment;
    let timeline =
      Array.to_list records
      |> List.concat_map (fun (b : Packing.bin_record) ->
             [ (b.opened, 1); (b.closed, -1) ])
      |> Step_fn.of_deltas
    in
    let total_cost =
      Array.to_list records
      |> List.map (fun (b : Packing.bin_record) -> Rat.sub b.closed b.opened)
      |> Rat.sum
    in
    {
      Packing.instance;
      policy_name = "";
      bins = records;
      assignment;
      timeline;
      total_cost;
      max_bins = Step_fn.max_value timeline;
      any_fit_violations = t.violations;
    }
end

let run ?tag_capacity ~policy instance =
  let online =
    Online.create ?tag_capacity ~policy
      ~capacity:(Instance.capacity instance) ()
  in
  List.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Arrival ->
          ignore
            (Online.arrive online ~now:e.time ~size:e.item.Item.size
               ~item_id:e.item.Item.id)
      | Event.Departure -> Online.depart online ~now:e.time ~item_id:e.item.Item.id)
    (Event.of_instance instance);
  let packing = Online.finish online ~instance in
  { packing with Packing.policy_name = policy.Policy.name }
