(** Shared bin-selection helpers for the Any Fit family. *)

open Dbp_num

val fits : Bin.view -> size:Rat.t -> bool
(** The item fits in this bin's residual capacity. *)

val fitting : Bin.view list -> size:Rat.t -> Bin.view list
(** Open bins with enough residual capacity, opening order preserved. *)

val first : Bin.view list -> size:Rat.t -> Bin.view option
(** Earliest-opened fitting bin (First Fit's choice). *)

val best : Bin.view list -> size:Rat.t -> Bin.view option
(** Fitting bin with the smallest residual capacity after insertion;
    earliest-opened wins ties (Best Fit's choice). *)

val worst : Bin.view list -> size:Rat.t -> Bin.view option
(** Fitting bin with the largest residual capacity; earliest-opened
    wins ties. *)

val last : Bin.view list -> size:Rat.t -> Bin.view option
(** Latest-opened fitting bin. *)
