(** The online packing-algorithm interface.

    The simulator owns bins and cost accounting; an algorithm is a
    {e policy} that, for each arriving item, looks at the read-only
    views of the currently open bins (in opening order, the paper's
    [b_1, b_2, ...]) and either picks an existing bin or asks for a new
    one.  Policies may be stateful: {!t.spawn} builds a fresh handler
    pair per simulation run, so runs never leak state into each other.

    The simulator rejects a decision to place an item into a bin where
    it does not fit — a policy cannot cheat on capacity. *)

open Dbp_num

type decision =
  | Existing of int  (** Bin id of an open bin the item fits into. *)
  | New_bin of string  (** Open a fresh bin with this tag. *)

type state_io = { save : unit -> string; load : string -> unit }
(** Serialisation hooks over a spawned handler pair's internal state.
    [save] renders the state as an opaque string; [load] overwrites the
    state from a previously saved string (raising [Invalid_argument] on
    a corrupt blob).  The contract backing checkpoint/restore: after
    [load (save ())] the handlers behave bit-identically to the
    original. *)

type persistence =
  | Stateless  (** No internal state: a fresh spawn resumes exactly. *)
  | Persistent of state_io
      (** Internal state (e.g. an RNG) with full save/load support. *)
  | Volatile
      (** Internal state that cannot be serialised; such a policy
          refuses to checkpoint ([Simulator.Online.freeze] raises). *)

type handlers = {
  on_arrival :
    now:Rat.t -> bins:Bin.view list -> size:Rat.t -> item_id:int -> decision;
      (** [bins] lists all open bins in opening order. *)
  on_departure : now:Rat.t -> bins:Bin.view list -> item_id:int -> unit;
      (** Called after the item left (and its bin possibly closed). *)
  persistence : persistence;
      (** How this spawn's internal state checkpoints. *)
}

type t = { name : string; spawn : capacity:Rat.t -> handlers }

val make :
  name:string -> (capacity:Rat.t -> handlers) -> t

val stateless :
  name:string ->
  (capacity:Rat.t -> now:Rat.t -> bins:Bin.view list -> size:Rat.t -> decision) ->
  t
(** Builds a policy from a pure bin-choice function (no departures,
    no internal state) — enough for the whole Any Fit family. *)

val no_departure_handler :
  now:Rat.t -> bins:Bin.view list -> item_id:int -> unit
