open Dbp_num

let large_tag = "mff-large"
let small_tag = "mff-small"

let policy ~k =
  if Rat.(k <= Rat.one) then invalid_arg "Modified_first_fit: k must be > 1";
  let name = Format.asprintf "mff(k=%a)" Rat.pp k in
  Policy.stateless ~name (fun ~capacity ~now:_ ~bins ~size ->
      let threshold = Rat.div capacity k in
      let tag = if Rat.(size >= threshold) then large_tag else small_tag in
      let pool =
        List.filter (fun (v : Bin.view) -> String.equal v.bin_tag tag) bins
      in
      match Fit.first pool ~size with
      | Some v -> Policy.Existing v.bin_id
      | None -> Policy.New_bin tag)

let policy_mu_oblivious = policy ~k:(Rat.of_int 8)

let policy_known_mu ~mu =
  if Rat.(mu < Rat.one) then
    invalid_arg "Modified_first_fit.policy_known_mu: mu must be >= 1";
  policy ~k:(Rat.add mu (Rat.of_int 7))
