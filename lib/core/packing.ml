open Dbp_num

type bin_record = {
  bin_id : int;
  tag : string;
  capacity : Rat.t;
  opened : Rat.t;
  closed : Rat.t;
  item_ids : int list;
  placements : (Rat.t * int) list;
  max_level : Rat.t;
}

type t = {
  instance : Instance.t;
  policy_name : string;
  bins : bin_record array;
  assignment : int array;
  timeline : Step_fn.t;
  total_cost : Rat.t;
  max_bins : int;
  any_fit_violations : int;
}

let bins_used t = Array.length t.bins
let usage_period (b : bin_record) = Interval.make b.opened b.closed
let cost t ~rate = Rat.mul t.total_cost rate
let bin_of_item t item_id = t.bins.(t.assignment.(item_id))
let is_any_fit t = t.any_fit_violations = 0

let validate t =
  let ( let* ) = Result.bind in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let instance = t.instance in
  let n = Instance.size instance in
  (* 1. Assignment totality and containment of item intervals.  One
     hash set per bin replaces the seed's [List.mem] per item, which
     made this pass quadratic in the bin population. *)
  let* () =
    if Array.length t.assignment <> n then fail "assignment length mismatch"
    else Ok ()
  in
  let recorded =
    Array.map
      (fun b ->
        let set = Hashtbl.create (List.length b.item_ids) in
        List.iter (fun id -> Hashtbl.replace set id ()) b.item_ids;
        set)
      t.bins
  in
  let rec check_items i =
    if i >= n then Ok ()
    else
      let r = Instance.item instance i in
      let b = t.bins.(t.assignment.(i)) in
      if not (Hashtbl.mem recorded.(t.assignment.(i)) i) then
        fail "item %d not recorded in its bin %d" i b.bin_id
      else if not (Interval.contains_interval (usage_period b) (Item.interval r))
      then fail "item %d interval outside bin %d usage period" i b.bin_id
      else check_items (i + 1)
  in
  let* () = check_items 0 in
  (* 2. Replay every bin's level over its placements and departures. *)
  let exceeded = ref None in
  Array.iter
    (fun b ->
      let deltas =
        List.concat_map
          (fun item_id ->
            let r = Instance.item instance item_id in
            [ (r.Item.arrival, r.Item.size); (r.Item.departure, Rat.neg r.Item.size) ])
          b.item_ids
      in
      let sorted =
        List.sort
          (fun (t1, s1) (t2, s2) ->
            let c = Rat.compare t1 t2 in
            if c <> 0 then c
              (* departures (negative size deltas) first at equal times *)
            else Rat.compare s1 s2)
          deltas
      in
      let level = ref Rat.zero in
      List.iter
        (fun (_, s) ->
          level := Rat.add !level s;
          if Rat.(!level > b.capacity) then exceeded := Some b.bin_id)
        sorted)
    t.bins;
  let* () =
    match !exceeded with
    | Some id -> fail "bin %d exceeds capacity" id
    | None -> Ok ()
  in
  (* 3. Timeline consistency. *)
  let rebuilt =
    Array.to_list t.bins
    |> List.concat_map (fun b -> [ (b.opened, 1); (b.closed, -1) ])
    |> Step_fn.of_deltas
  in
  let* () =
    if Step_fn.equal rebuilt t.timeline then Ok ()
    else fail "timeline does not match bin usage periods"
  in
  (* 4. Cost consistency: integral of timeline = sum of period lengths. *)
  let by_periods =
    Array.fold_left
      (fun acc b -> Rat.add acc (Interval.length (usage_period b)))
      Rat.zero t.bins
  in
  let by_integral = Step_fn.integral t.timeline in
  if not (Rat.equal by_periods t.total_cost) then
    fail "total cost %a <> sum of usage periods %a" Rat.pp t.total_cost Rat.pp
      by_periods
  else if not (Rat.equal by_integral t.total_cost) then
    fail "total cost %a <> timeline integral %a" Rat.pp t.total_cost Rat.pp
      by_integral
  else if Step_fn.max_value t.timeline <> t.max_bins then
    fail "max_bins %d <> timeline max %d" t.max_bins
      (Step_fn.max_value t.timeline)
  else Ok ()

let pp_summary fmt t =
  Format.fprintf fmt
    "@[<v>%s: %d bins, cost=%a (%a), max open=%d, any-fit violations=%d@]"
    t.policy_name (bins_used t) Rat.pp t.total_cost Rat.pp_float t.total_cost
    t.max_bins t.any_fit_violations
