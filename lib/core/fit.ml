open Dbp_num

let fits (v : Bin.view) ~size = Rat.(size <= v.bin_residual)

let fitting bins ~size = List.filter (fun v -> fits v ~size) bins

(* Single pass, no intermediate list: stop at the first fitting bin. *)
let first bins ~size = List.find_opt (fun v -> fits v ~size) bins

(* Strict improvement only, so the earliest-opened bin wins ties.
   One fold over the raw views — the seed built the fitting sublist
   first, which allocated a cons per candidate on every arrival. *)
let select_by better bins ~size =
  List.fold_left
    (fun acc (cand : Bin.view) ->
      if not (fits cand ~size) then acc
      else
        match acc with
        | None -> Some cand
        | Some best -> if better cand best then Some cand else acc)
    None bins

let best bins ~size =
  select_by
    (fun (a : Bin.view) (b : Bin.view) -> Rat.(a.bin_residual < b.bin_residual))
    bins ~size

let worst bins ~size =
  select_by
    (fun (a : Bin.view) (b : Bin.view) -> Rat.(a.bin_residual > b.bin_residual))
    bins ~size

(* Last fitting bin = keep overwriting as the fold walks opening order. *)
let last bins ~size =
  List.fold_left
    (fun acc (v : Bin.view) -> if fits v ~size then Some v else acc)
    None bins
