open Dbp_num

let fitting bins ~size =
  List.filter (fun (v : Bin.view) -> Rat.(size <= v.bin_residual)) bins

let first bins ~size =
  match fitting bins ~size with [] -> None | v :: _ -> Some v

(* Strict improvement only, so the earliest-opened bin wins ties. *)
let select_by better bins ~size =
  match fitting bins ~size with
  | [] -> None
  | v :: rest ->
      Some
        (List.fold_left
           (fun acc cand -> if better cand acc then cand else acc)
           v rest)

let best bins ~size =
  select_by
    (fun (a : Bin.view) (b : Bin.view) -> Rat.(a.bin_residual < b.bin_residual))
    bins ~size

let worst bins ~size =
  select_by
    (fun (a : Bin.view) (b : Bin.view) -> Rat.(a.bin_residual > b.bin_residual))
    bins ~size

let last bins ~size =
  match List.rev (fitting bins ~size) with [] -> None | v :: _ -> Some v
