open Dbp_num

let policy =
  Policy.make ~name:"next_fit" (fun ~capacity:_ ->
      {
        Policy.on_arrival =
          (fun ~now:_ ~bins ~size ~item_id:_ ->
            (* The current bin is the latest-opened open bin; it may
               have closed since the last arrival, in which case the
               new latest takes its place. *)
            match List.rev bins with
            | (current : Bin.view) :: _ when Rat.(size <= current.bin_residual)
              ->
                Policy.Existing current.bin_id
            | _ -> Policy.New_bin "nf");
        on_departure = Policy.no_departure_handler;
        persistence = Policy.Stateless;
      })
