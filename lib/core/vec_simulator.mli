(** The event-driven DVBP simulator: the vector twin of {!Simulator}.

    Levels, capacities and item demands are {!Dbp_num.Vec.t}s; fit is
    component-wise.  The engine keeps the exact rational vectors
    authoritative and, when the workload lies on a per-dimension grid,
    maintains a {!Dbp_num.Vec.Scaled} integer mirror used for the hot
    fit checks — admission is exact-or-refuse, and the mirror is
    dropped (never approximated) on the first off-grid input, so
    results are bit-identical either way.

    At [d = 1] the engine replays the scalar event order, makes the
    scalar policies' decisions (via {!Vec_policy}'s [scalar] twins or
    {!Vec_policy.lift_scalar}) and emits the scalar trace kinds, so
    its packings, costs, traces and checkpoints are bit-identical to
    {!Simulator}'s — the property the QCheck embedding suite pins
    across all registry policies. *)

open Dbp_num

(** One bin of a finished vector packing. *)
type bin_record = {
  vr_id : int;
  vr_tag : string;
  vr_capacity : Vec.t;
  vr_opened : Rat.t;
  vr_closed : Rat.t;
  vr_item_ids : int list;  (** Every item ever packed, packing order. *)
  vr_placements : (Rat.t * int) list;
  vr_max_level : Vec.t;  (** Component-wise peak. *)
}

(** The vector analogue of {!Packing.t}. *)
type result = {
  r_instance : Vec_instance.t;
  r_policy_name : string;
  r_bins : bin_record array;  (** Indexed by [vr_id]. *)
  r_assignment : int array;  (** Item id to bin id. *)
  r_timeline : Step_fn.t;  (** Open bins over time. *)
  r_total_cost : Rat.t;  (** Exact MinTotal objective. *)
  r_max_bins : int;
  r_any_fit_violations : int;
}

val validate : result -> (unit, string) Stdlib.result
(** Independent replay check: every item packed exactly once inside
    its bin's usage period, no per-dimension capacity ever exceeded,
    timeline and total cost consistent with the bin records. *)

module Online : sig
  type t

  val create :
    ?audit:bool ->
    ?sink:Dbp_obs.Sink.t ->
    ?metrics:Dbp_obs.Metrics.t ->
    ?grid:Vec.Scaled.grid ->
    policy:Vec_policy.t ->
    capacity:Vec.t ->
    unit ->
    t
  (** [grid] (usually {!grid_of_instance}) activates the scaled
      integer mirror; omitted, the engine derives a grid from the
      capacity alone and refuses nothing — any later off-grid size
      simply drops the mirror.  [audit] re-verifies the memoised
      state after every event ({!Audit.Audit_violation} on
      divergence), including exact-vs-mirror agreement. *)

  val arrive : t -> now:Rat.t -> size:Vec.t -> item_id:int -> int
  (** @raise Simulator.Invalid_step on a protocol violation (reused
      id, time going backwards, dimension mismatch, non-positive
      demand), {!Simulator.Invalid_decision} on a bad policy choice. *)

  val depart : t -> now:Rat.t -> item_id:int -> unit

  val now : t -> Rat.t option
  val open_bins : t -> Vec_policy.view list
  val bin_of_item : t -> int -> int option
  val level_of : t -> int -> Vec.t option
  val track_name : t -> string
  (** ["mirrored"] while the scaled mirror is live, ["exact"] after a
      drop.  Results never depend on it. *)

  val finish : t -> instance:Vec_instance.t -> result

  val audit : t -> unit
  (** The full invariant pass, regardless of the [?audit] flag. *)

  (** The checkpointable image: exactly the non-derivable state, like
      the scalar {!Simulator.Online.Frozen}. *)
  module Frozen : sig
    type bin = {
      b_id : int;
      b_tag : string;
      b_capacity : Vec.t;
      b_opened : Rat.t;
      b_closed : Rat.t option;
      b_max_level : Vec.t;
      b_placements : (Rat.t * int) list;  (** Oldest first. *)
      b_active : (int * Vec.t) list;  (** Oldest placement first. *)
    }

    type t = {
      s_capacity : Vec.t;
      s_clock : Rat.t option;
      s_violations : int;
      s_bins : bin list;  (** Id order; ids dense from 0. *)
      s_policy_state : string option;
    }
  end

  val freeze : t -> Frozen.t
  (** @raise Simulator.Invalid_step if the policy is volatile. *)

  val thaw :
    ?audit:bool ->
    ?sink:Dbp_obs.Sink.t ->
    ?metrics:Dbp_obs.Metrics.t ->
    policy:Vec_policy.t ->
    Frozen.t ->
    t
  (** Rebuilds an engine continuing the frozen run bit-identically;
      the rebuilt state is always re-audited.
      @raise Simulator.Invalid_step on an inconsistent image. *)
end

val grid_of_instance : Vec_instance.t -> Vec.Scaled.grid option
(** Per-dimension grids admitting the capacity and every item demand;
    [None] when some dimension's lcm chase exceeds the affordable
    denominator — the run then stays purely exact. *)

val apply_event : Online.t -> Vec_instance.event -> unit

val run :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?metrics:Dbp_obs.Metrics.t ->
  ?grid:Vec.Scaled.grid option ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(events_done:int -> Online.t -> unit) ->
  policy:Vec_policy.t ->
  Vec_instance.t ->
  result
(** Replays {!Vec_instance.sorted_events} and assembles the result.
    [audit] defaults to {!Audit.enabled_from_env}; [grid] overrides
    the mirror choice ([Some None] forces pure exact arithmetic).
    [checkpoint_every]/[on_checkpoint] are the periodic checkpoint
    tap, as in {!Simulator.run}. *)
