(* Runtime invariant auditor for the O(open-bins) engine: the
   sanitizer-style half of the correctness tooling (the static half is
   [Dbp_lint]).  When a simulator runs with audit enabled, the engine
   re-verifies its memoised state against a recompute-from-scratch
   after every event and raises [Audit_violation] on the first
   divergence.  See DESIGN.md "Correctness tooling" for the invariant
   -> theorem mapping. *)

open Dbp_num

type violation = {
  check : string;
  time : Rat.t option;
  bin_id : int option;
  detail : string;
}

exception Audit_violation of violation

let violation_to_string v =
  Printf.sprintf "audit violation [%s]%s%s: %s" v.check
    (match v.time with
    | Some t -> Printf.sprintf " at t=%s" (Rat.to_string t)
    | None -> "")
    (match v.bin_id with
    | Some id -> Printf.sprintf " bin %d" id
    | None -> "")
    v.detail

let () =
  Printexc.register_printer (function
    | Audit_violation v -> Some (violation_to_string v)
    | _ -> None)

let fail ?time ?bin_id ~check fmt =
  Format.kasprintf
    (fun detail -> raise (Audit_violation { check; time; bin_id; detail }))
    fmt

let enabled_from_env () =
  match Sys.getenv_opt "DBP_AUDIT" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

(* ---- per-bin invariants --------------------------------------------- *)

(* The engine's memoised per-bin state (level, view cache, max level)
   must equal a recompute from the keyed active table.  Protects the
   cost bookkeeping every theorem ratio divides by. *)
let check_bin ?time (b : Bin.t) =
  let fail fmt = fail ?time ~bin_id:b.Bin.id ~check:"bin" fmt in
  let recomputed =
    Hashtbl.fold
      (fun _ (r : Item.t) acc -> Rat.add acc r.Item.size)
      b.Bin.active Rat.zero
  in
  if not (Rat.equal recomputed b.Bin.level) then
    fail "memoised level %s <> recomputed %s" (Rat.to_string b.Bin.level)
      (Rat.to_string recomputed);
  if Rat.(b.Bin.level > b.Bin.capacity) then
    fail "level %s exceeds capacity %s" (Rat.to_string b.Bin.level)
      (Rat.to_string b.Bin.capacity);
  if Rat.(b.Bin.max_level < b.Bin.level) then
    fail "max_level %s below current level %s" (Rat.to_string b.Bin.max_level)
      (Rat.to_string b.Bin.level);
  if Bin.is_open b && Hashtbl.length b.Bin.active = 0 then
    fail "open bin is empty (should have closed)";
  (* memoised view = recompute-from-scratch *)
  let v = Bin.view b and w = Bin.to_view b in
  if
    not
      (v.Bin.bin_id = w.Bin.bin_id
      && String.equal v.Bin.bin_tag w.Bin.bin_tag
      && Rat.equal v.Bin.bin_capacity w.Bin.bin_capacity
      && Rat.equal v.Bin.bin_level w.Bin.bin_level
      && Rat.equal v.Bin.bin_residual w.Bin.bin_residual
      && Rat.equal v.Bin.bin_opened w.Bin.bin_opened
      && v.Bin.bin_count = w.Bin.bin_count)
  then
    fail "memoised view diverges from recomputed view (level %s/%s, count %d/%d)"
      (Rat.to_string v.Bin.bin_level)
      (Rat.to_string w.Bin.bin_level)
      v.Bin.bin_count w.Bin.bin_count

(* ---- migration conservation ----------------------------------------- *)

(* A migration must conserve volume exactly: the source bin's level
   drops by precisely the moved size (to zero if the move emptied and
   closed it) and the destination's rises by precisely the moved size,
   staying within capacity.  The moved item must end up tracked in the
   destination and nowhere else — limited-recourse repacking moves
   items, it never duplicates or loses them. *)
let check_move ?time ~size ~(src : Bin.t) ~(dst : Bin.t) ~src_level_before
    ~dst_level_before ~item_id ~new_item_id () =
  let fail ?bin_id fmt = fail ?time ?bin_id ~check:"migration" fmt in
  if Rat.sign size <= 0 then
    fail "migrated item %d has size %s <= 0" item_id (Rat.to_string size);
  (if Bin.is_open src then begin
     let expected = Rat.sub src_level_before size in
     if not (Rat.equal src.Bin.level expected) then
       fail ~bin_id:src.Bin.id
         "source level %s after the move, expected %s (before %s - size %s)"
         (Rat.to_string src.Bin.level)
         (Rat.to_string expected)
         (Rat.to_string src_level_before)
         (Rat.to_string size)
   end
   else begin
     (* The move emptied the source: it closed holding exactly the
        moved item, and its level was zeroed. *)
     if not (Rat.equal src_level_before size) then
       fail ~bin_id:src.Bin.id
         "source closed on the move but held %s, not just the moved %s"
         (Rat.to_string src_level_before)
         (Rat.to_string size);
     if not (Rat.is_zero src.Bin.level) then
       fail ~bin_id:src.Bin.id "closed source retains level %s"
         (Rat.to_string src.Bin.level);
     if Bin.active_count src <> 0 then
       fail ~bin_id:src.Bin.id "closed source retains %d active items"
         (Bin.active_count src)
   end);
  let expected_dst = Rat.add dst_level_before size in
  if not (Rat.equal dst.Bin.level expected_dst) then
    fail ~bin_id:dst.Bin.id
      "destination level %s after the move, expected %s (before %s + size %s)"
      (Rat.to_string dst.Bin.level)
      (Rat.to_string expected_dst)
      (Rat.to_string dst_level_before)
      (Rat.to_string size);
  if Rat.(dst.Bin.level > dst.Bin.capacity) then
    fail ~bin_id:dst.Bin.id "destination over capacity after the move (%s > %s)"
      (Rat.to_string dst.Bin.level)
      (Rat.to_string dst.Bin.capacity);
  (match Bin.find_active dst new_item_id with
  | Some r ->
      if not (Rat.equal r.Item.size size) then
        fail ~bin_id:dst.Bin.id
          "migrated item %d re-entered with size %s, expected %s" new_item_id
          (Rat.to_string r.Item.size)
          (Rat.to_string size)
  | None ->
      fail ~bin_id:dst.Bin.id "migrated item %d not active in the destination"
        new_item_id);
  if Bin.find_active src item_id <> None then
    fail ~bin_id:src.Bin.id "migrated item %d still active in the source"
      item_id;
  if Bin.find_active src new_item_id <> None then
    fail ~bin_id:src.Bin.id "migrated item %d active in two bins" new_item_id

(* ---- packing-level conservation ------------------------------------- *)

(* Cost conservation: the accumulated total must equal both the sum of
   the bins' open intervals and the integral of the open-bin timeline
   (cost at rate C is total * C, so conserving the total conserves
   every reported cost). *)
let check_packing (p : Packing.t) =
  let fail fmt = fail ~check:"cost-conservation" fmt in
  let by_periods =
    Array.fold_left
      (fun acc (b : Packing.bin_record) ->
        if Rat.(b.Packing.closed < b.Packing.opened) then
          fail "bin %d closes at %s before opening at %s" b.Packing.bin_id
            (Rat.to_string b.Packing.closed)
            (Rat.to_string b.Packing.opened);
        Rat.add acc (Rat.sub b.Packing.closed b.Packing.opened))
      Rat.zero p.Packing.bins
  in
  if not (Rat.equal by_periods p.Packing.total_cost) then
    fail "total cost %s <> sum of bin open intervals %s"
      (Rat.to_string p.Packing.total_cost)
      (Rat.to_string by_periods);
  let by_integral = Step_fn.integral p.Packing.timeline in
  if not (Rat.equal by_integral p.Packing.total_cost) then
    fail "total cost %s <> timeline integral %s"
      (Rat.to_string p.Packing.total_cost)
      (Rat.to_string by_integral);
  (* Full structural re-validation (capacity replay, assignment
     totality, interval containment) in audit terms. *)
  match Packing.validate p with
  | Ok () -> ()
  | Error msg ->
      raise
        (Audit_violation
           { check = "packing"; time = None; bin_id = None; detail = msg })
