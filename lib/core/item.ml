open Dbp_num

type t = { id : int; size : Rat.t; arrival : Rat.t; departure : Rat.t }

let make ~id ~size ~arrival ~departure =
  if Rat.sign size <= 0 then invalid_arg "Item.make: size must be positive";
  if Rat.(departure <= arrival) then
    invalid_arg "Item.make: departure must be after arrival";
  { id; size; arrival; departure }

let interval r = Interval.make r.arrival r.departure
let length r = Rat.sub r.departure r.arrival
let demand r = Rat.mul r.size (length r)
let active_at r t = Rat.(r.arrival <= t) && Rat.(t < r.departure)

let compare a b =
  let c = Rat.compare a.arrival b.arrival in
  if c <> 0 then c else Int.compare a.id b.id

let equal a b =
  a.id = b.id && Rat.equal a.size b.size
  && Rat.equal a.arrival b.arrival
  && Rat.equal a.departure b.departure

let pp fmt r =
  Format.fprintf fmt "item#%d(s=%a, [%a,%a])" r.id Rat.pp r.size Rat.pp
    r.arrival Rat.pp r.departure
