(** Modified First Fit (MFF), Section 4.4.

    Fix a threshold parameter [k > 1].  Items of size [>= W/k] are
    {e large}, items of size [< W/k] are {e small}; MFF runs classical
    First Fit on the large items and on the small items {e separately}
    (a large item never shares a bin with a small item).

    With [k = 8] (no knowledge of [mu]) the competitive ratio is
    [8/7 mu + 55/7]; with [k = mu + 7] (semi-online, [mu] known) it is
    [mu + 8]. *)

open Dbp_num

val large_tag : string
val small_tag : string

val policy : k:Rat.t -> Policy.t
(** MFF with threshold [W/k].  @raise Invalid_argument if [k <= 1]. *)

val policy_mu_oblivious : Policy.t
(** The paper's [mu]-oblivious choice [k = 8]. *)

val policy_known_mu : mu:Rat.t -> Policy.t
(** The semi-online variant [k = mu + 7].
    @raise Invalid_argument if [mu < 1]. *)
