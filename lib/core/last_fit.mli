(** Last Fit: choose the most recently opened bin that fits.  An
    Any Fit baseline. *)

val policy : Policy.t
