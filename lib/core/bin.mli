(** Runtime bin state owned by the simulator.

    Each bin carries its own capacity: the paper's model uses one
    uniform capacity [W], but the application layer supports
    heterogeneous server types (bins opened under different tags get
    different capacities — see [Simulator.Online.create]'s
    [tag_capacity]).

    Policies never touch {!t} directly; they see the read-only
    {!view} projection, which deliberately omits departure times of the
    items inside — keeping algorithms honestly online. *)

open Dbp_num

type t = {
  id : int;  (** Opening-order index: bin [i] of the paper is id [i]. *)
  tag : string;  (** Policy-private label (e.g. MFF's ["large"]/["small"]). *)
  capacity : Rat.t;
  opened : Rat.t;
  mutable closed : Rat.t option;  (** Set when the last item departs. *)
  mutable level : Rat.t;  (** Total size of the items currently inside. *)
  mutable active : Item.t list;  (** Items currently inside. *)
  mutable max_level : Rat.t;
  mutable all_items : int list;  (** Ids ever packed, reverse order. *)
  mutable placements : (Rat.t * int) list;
      (** (time, item id) for every packing into this bin, reverse
          order — the raw data behind the reference points [t_{i,j}] of
          Section 4.3. *)
}

type view = {
  bin_id : int;
  bin_tag : string;
  bin_capacity : Rat.t;
  bin_level : Rat.t;
  bin_residual : Rat.t;
  bin_opened : Rat.t;
  bin_count : int;  (** Number of items currently inside. *)
}

val open_bin : id:int -> tag:string -> capacity:Rat.t -> now:Rat.t -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val is_open : t -> bool
val residual : t -> Rat.t
val fits : t -> size:Rat.t -> bool
val insert : t -> now:Rat.t -> Item.t -> unit
val remove : t -> now:Rat.t -> Item.t -> unit
(** Removes the item; closes the bin (sets [closed]) if it empties.
    @raise Invalid_argument if the item is not in the bin. *)

val to_view : t -> view
val usage_period : t -> Interval.t
(** [I_i]: opening time to closing time.
    @raise Invalid_argument if the bin is still open. *)
