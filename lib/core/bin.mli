(** Runtime bin state owned by the simulator.

    Each bin carries its own capacity: the paper's model uses one
    uniform capacity [W], but the application layer supports
    heterogeneous server types (bins opened under different tags get
    different capacities — see [Simulator.Online.create]'s
    [tag_capacity]).

    Policies never touch {!t} directly; they see the read-only
    {!view} projection, which deliberately omits departure times of the
    items inside — keeping algorithms honestly online.

    The active-item set is keyed by item id so that the simulator's
    hot path ({!find_active}, {!insert}, {!remove}) is O(1), and each
    bin memoises its {!view} ({!view_cache} is dropped on every
    mutation), so untouched bins never pay a view rebuild. *)

open Dbp_num

type t = {
  id : int;  (** Opening-order index: bin [i] of the paper is id [i]. *)
  tag : string;  (** Policy-private label (e.g. MFF's ["large"]/["small"]). *)
  capacity : Rat.t;
  opened : Rat.t;
  mutable closed : Rat.t option;  (** Set when the last item departs. *)
  mutable level : Rat.t;  (** Total size of the items currently inside. *)
  active : (int, Item.t) Hashtbl.t;  (** Items currently inside, by id. *)
  mutable max_level : Rat.t;
  mutable all_items : int list;  (** Ids ever packed, reverse order. *)
  mutable placements : (Rat.t * int) list;
      (** (time, item id) for every packing into this bin, reverse
          order — the raw data behind the reference points [t_{i,j}] of
          Section 4.3. *)
  mutable view_cache : view option;
      (** Memoised {!view}; invalidated by {!insert}/{!remove}. *)
}

and view = {
  bin_id : int;
  bin_tag : string;
  bin_capacity : Rat.t;
  bin_level : Rat.t;
  bin_residual : Rat.t;
  bin_opened : Rat.t;
  bin_count : int;  (** Number of items currently inside. *)
}

val open_bin : id:int -> tag:string -> capacity:Rat.t -> now:Rat.t -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val restore :
  id:int ->
  tag:string ->
  capacity:Rat.t ->
  opened:Rat.t ->
  closed:Rat.t option ->
  max_level:Rat.t ->
  placements:(Rat.t * int) list ->
  active_items:Item.t list ->
  t
(** Rebuilds a bin from its checkpointed image ([placements] and
    [active_items] both oldest placement first, the serialised order).
    [level] and [all_items] are re-derived rather than trusted, so the
    result is internally consistent by construction.
    @raise Invalid_argument on [capacity <= 0] or a duplicate active
    item. *)

val is_open : t -> bool
val residual : t -> Rat.t
val fits : t -> size:Rat.t -> bool

val active_count : t -> int
(** Number of active items; O(1). *)

val find_active : t -> int -> Item.t option
(** The active item with this id, if present; O(1). *)

val active_oldest_first : t -> Item.t list
(** Active items in placement order (oldest first).  O(ids ever packed
    into this bin) — used once per bin failure, so the total work over
    a run is bounded by the number of placements. *)

val active_newest_first : t -> Item.t list
(** Active items, most recent placement first.  Same cost caveat as
    {!active_oldest_first}. *)

val insert : t -> now:Rat.t -> Item.t -> unit
val remove : t -> now:Rat.t -> Item.t -> unit
(** Removes the item; closes the bin (sets [closed]) if it empties.
    @raise Invalid_argument if the item is not in the bin. *)

val to_view : t -> view
(** Always builds a fresh view; prefer {!view}. *)

val view : t -> view
(** Memoised {!to_view}: returns the physically same view until the
    next {!insert}/{!remove}. *)

val usage_period : t -> Interval.t
(** [I_i]: opening time to closing time.
    @raise Invalid_argument if the bin is still open. *)
