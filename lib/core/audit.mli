(** Runtime invariant auditor for the O(open-bins) engine.

    Enabling audit mode ({!Simulator.Online.create}'s [?audit], the
    [DBP_AUDIT] environment variable, or `dbp check --audit`) makes the
    engine re-verify its memoised state against a recompute-from-
    scratch after every event: capacity never exceeded, the open-index
    doubly-linked invariants, memoised views = recomputed views, and —
    at {!Simulator.Online.finish} — cost conservation (total cost =
    sum of bin open intervals = timeline integral).  The first
    divergence raises {!Audit_violation} with a structured payload.

    The auditor exists because the paper's Theorems 1–5 only hold
    under exact accounting: a silently corrupted level or cost would
    invalidate every reported ratio while still "looking plausible".
    Audit mode costs O(total state) per event and is for tests/CI, not
    production runs. *)

open Dbp_num

type violation = {
  check : string;
      (** Which invariant family: ["bin"], ["open-index"],
          ["item-bin"], ["store"], ["cost-conservation"],
          ["packing"]. *)
  time : Rat.t option;  (** Simulation clock when detected. *)
  bin_id : int option;
  detail : string;
}

exception Audit_violation of violation

val violation_to_string : violation -> string

val fail :
  ?time:Rat.t ->
  ?bin_id:int ->
  check:string ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** Raises {!Audit_violation} with a formatted detail message. *)

val enabled_from_env : unit -> bool
(** True iff [DBP_AUDIT] is set to [1]/[true]/[yes]/[on].
    {!Simulator.run} uses it as the default audit setting, so
    [DBP_AUDIT=1 dune runtest] audits the whole test suite. *)

val check_bin : ?time:Rat.t -> Bin.t -> unit
(** Memoised level/view/max-level vs a recompute from the active
    table; capacity; open-implies-nonempty.
    @raise Audit_violation on the first divergence. *)

val check_packing : Packing.t -> unit
(** Cost conservation plus full structural re-validation of a finished
    packing.  @raise Audit_violation on the first divergence. *)
