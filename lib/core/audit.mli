(** Runtime invariant auditor for the O(open-bins) engine.

    Enabling audit mode ({!Simulator.Online.create}'s [?audit], the
    [DBP_AUDIT] environment variable, or `dbp check --audit`) makes the
    engine re-verify its memoised state against a recompute-from-
    scratch after every event: capacity never exceeded, the open-index
    doubly-linked invariants, memoised views = recomputed views, and —
    at {!Simulator.Online.finish} — cost conservation (total cost =
    sum of bin open intervals = timeline integral).  The first
    divergence raises {!Audit_violation} with a structured payload.

    The auditor exists because the paper's Theorems 1–5 only hold
    under exact accounting: a silently corrupted level or cost would
    invalidate every reported ratio while still "looking plausible".
    Audit mode costs O(total state) per event and is for tests/CI, not
    production runs. *)

open Dbp_num

type violation = {
  check : string;
      (** Which invariant family: ["bin"], ["open-index"],
          ["item-bin"], ["store"], ["migration"],
          ["cost-conservation"], ["packing"]. *)
  time : Rat.t option;  (** Simulation clock when detected. *)
  bin_id : int option;
  detail : string;
}

exception Audit_violation of violation

val violation_to_string : violation -> string

val fail :
  ?time:Rat.t ->
  ?bin_id:int ->
  check:string ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** Raises {!Audit_violation} with a formatted detail message. *)

val enabled_from_env : unit -> bool
(** True iff [DBP_AUDIT] is set to [1]/[true]/[yes]/[on].
    {!Simulator.run} uses it as the default audit setting, so
    [DBP_AUDIT=1 dune runtest] audits the whole test suite. *)

val check_bin : ?time:Rat.t -> Bin.t -> unit
(** Memoised level/view/max-level vs a recompute from the active
    table; capacity; open-implies-nonempty.
    @raise Audit_violation on the first divergence. *)

val check_move :
  ?time:Rat.t ->
  size:Rat.t ->
  src:Bin.t ->
  dst:Bin.t ->
  src_level_before:Rat.t ->
  dst_level_before:Rat.t ->
  item_id:int ->
  new_item_id:int ->
  unit ->
  unit
(** Migration-conservation invariants, checked by the engine after
    every {!Simulator.Online.migrate} in audit mode: the moved volume
    left the source exactly (or the source closed holding exactly the
    moved item), entered the destination exactly, capacity still
    holds, and the item is tracked in exactly one bin — active in the
    destination under [new_item_id], absent from the source.
    [src_level_before]/[dst_level_before] are the levels immediately
    before the move.  @raise Audit_violation on the first
    divergence. *)

val check_packing : Packing.t -> unit
(** Cost conservation plus full structural re-validation of a finished
    packing.  @raise Audit_violation on the first divergence. *)
