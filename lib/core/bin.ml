open Dbp_num

type t = {
  id : int;
  tag : string;
  capacity : Rat.t;
  opened : Rat.t;
  mutable closed : Rat.t option;
  mutable level : Rat.t;
  mutable active : Item.t list;
  mutable max_level : Rat.t;
  mutable all_items : int list;
  mutable placements : (Rat.t * int) list;
}

type view = {
  bin_id : int;
  bin_tag : string;
  bin_capacity : Rat.t;
  bin_level : Rat.t;
  bin_residual : Rat.t;
  bin_opened : Rat.t;
  bin_count : int;
}

let open_bin ~id ~tag ~capacity ~now =
  if Rat.sign capacity <= 0 then invalid_arg "Bin.open_bin: capacity <= 0";
  {
    id;
    tag;
    capacity;
    opened = now;
    closed = None;
    level = Rat.zero;
    active = [];
    max_level = Rat.zero;
    all_items = [];
    placements = [];
  }

let is_open t = t.closed = None
let residual t = Rat.sub t.capacity t.level
let fits t ~size = Rat.(Rat.add t.level size <= t.capacity)

let insert t ~now (r : Item.t) =
  t.level <- Rat.add t.level r.size;
  t.active <- r :: t.active;
  t.max_level <- Rat.max t.max_level t.level;
  t.all_items <- r.id :: t.all_items;
  t.placements <- (now, r.id) :: t.placements

let remove t ~now (r : Item.t) =
  if not (List.exists (fun (x : Item.t) -> x.id = r.id) t.active) then
    invalid_arg "Bin.remove: item not in bin";
  t.active <- List.filter (fun (x : Item.t) -> x.id <> r.id) t.active;
  t.level <- Rat.sub t.level r.size;
  if t.active = [] then begin
    t.level <- Rat.zero;
    t.closed <- Some now
  end

let to_view t =
  {
    bin_id = t.id;
    bin_tag = t.tag;
    bin_capacity = t.capacity;
    bin_level = t.level;
    bin_residual = residual t;
    bin_opened = t.opened;
    bin_count = List.length t.active;
  }

let usage_period t =
  match t.closed with
  | None -> invalid_arg "Bin.usage_period: bin still open"
  | Some closed -> Interval.make t.opened closed
