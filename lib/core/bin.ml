open Dbp_num

type t = {
  id : int;
  tag : string;
  capacity : Rat.t;
  opened : Rat.t;
  mutable closed : Rat.t option;
  mutable level : Rat.t;
  active : (int, Item.t) Hashtbl.t;
  mutable max_level : Rat.t;
  mutable all_items : int list;
  mutable placements : (Rat.t * int) list;
  mutable view_cache : view option;
}

and view = {
  bin_id : int;
  bin_tag : string;
  bin_capacity : Rat.t;
  bin_level : Rat.t;
  bin_residual : Rat.t;
  bin_opened : Rat.t;
  bin_count : int;
}

let open_bin ~id ~tag ~capacity ~now =
  if Rat.sign capacity <= 0 then invalid_arg "Bin.open_bin: capacity <= 0";
  {
    id;
    tag;
    capacity;
    opened = now;
    closed = None;
    level = Rat.zero;
    active = Hashtbl.create 8;
    max_level = Rat.zero;
    all_items = [];
    placements = [];
    view_cache = None;
  }

(* Thaw path of checkpoint/restore: rebuild a bin from its frozen
   image.  [placements] oldest first (the serialised order);
   [active_items] are the stubs still inside, oldest placement first.
   [all_items] is re-derived from the placements, and [level] from the
   active stubs, so a corrupt snapshot cannot smuggle in an
   inconsistent cache. *)
let restore ~id ~tag ~capacity ~opened ~closed ~max_level ~placements
    ~active_items =
  if Rat.sign capacity <= 0 then invalid_arg "Bin.restore: capacity <= 0";
  let active = Hashtbl.create (max 8 (List.length active_items)) in
  List.iter
    (fun (r : Item.t) ->
      if Hashtbl.mem active r.id then
        invalid_arg "Bin.restore: duplicate active item";
      Hashtbl.replace active r.id r)
    active_items;
  let level =
    if closed <> None then Rat.zero
    else List.fold_left (fun acc (r : Item.t) -> Rat.add acc r.size) Rat.zero
        active_items
  in
  {
    id;
    tag;
    capacity;
    opened;
    closed;
    level;
    active;
    max_level;
    all_items = List.rev_map snd placements;
    placements = List.rev placements;
    view_cache = None;
  }

let is_open t = t.closed = None
let residual t = Rat.sub t.capacity t.level
let fits t ~size = Rat.(Rat.add t.level size <= t.capacity)
let active_count t = Hashtbl.length t.active
let find_active t item_id = Hashtbl.find_opt t.active item_id

(* Ids ever packed, oldest placement first / most recent first,
   filtered down to the still-active ones.  Each id enters a bin at
   most once, so membership in [active] identifies the live subset. *)
let active_oldest_first t =
  List.rev t.all_items
  |> List.filter_map (fun id -> Hashtbl.find_opt t.active id)

let active_newest_first t =
  t.all_items |> List.filter_map (fun id -> Hashtbl.find_opt t.active id)

let insert t ~now (r : Item.t) =
  t.level <- Rat.add t.level r.size;
  Hashtbl.replace t.active r.id r;
  t.max_level <- Rat.max t.max_level t.level;
  t.all_items <- r.id :: t.all_items;
  t.placements <- (now, r.id) :: t.placements;
  t.view_cache <- None

let remove t ~now (r : Item.t) =
  if not (Hashtbl.mem t.active r.id) then
    invalid_arg "Bin.remove: item not in bin";
  Hashtbl.remove t.active r.id;
  t.level <- Rat.sub t.level r.size;
  t.view_cache <- None;
  if Hashtbl.length t.active = 0 then begin
    t.level <- Rat.zero;
    t.closed <- Some now
  end

let to_view t =
  {
    bin_id = t.id;
    bin_tag = t.tag;
    bin_capacity = t.capacity;
    bin_level = t.level;
    bin_residual = residual t;
    bin_opened = t.opened;
    bin_count = Hashtbl.length t.active;
  }

let view t =
  match t.view_cache with
  | Some v -> v
  | None ->
      let v = to_view t in
      t.view_cache <- Some v;
      v

let usage_period t =
  match t.closed with
  | None -> invalid_arg "Bin.usage_period: bin still open"
  | Some closed -> Interval.make t.opened closed
