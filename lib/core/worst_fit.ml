let policy =
  Policy.stateless ~name:"worst_fit" (fun ~capacity:_ ~now:_ ~bins ~size ->
      match Fit.worst bins ~size with
      | Some v -> Policy.Existing v.Bin.bin_id
      | None -> Policy.New_bin "wf")
