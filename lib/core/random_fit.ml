open Dbp_rand

let policy ~seed =
  Policy.make ~name:"random_fit" (fun ~capacity:_ ->
      let rng = Splitmix64.create seed in
      {
        Policy.on_arrival =
          (fun ~now:_ ~bins ~size ~item_id:_ ->
            match Fit.fitting bins ~size with
            | [] -> Policy.New_bin "rf"
            | candidates ->
                let n = List.length candidates in
                let chosen = List.nth candidates (Splitmix64.next_int rng n) in
                Policy.Existing chosen.Bin.bin_id);
        on_departure = Policy.no_departure_handler;
      })
