open Dbp_rand

let policy ~seed =
  Policy.make ~name:"random_fit" (fun ~capacity:_ ->
      let rng = Splitmix64.create seed in
      {
        Policy.on_arrival =
          (fun ~now:_ ~bins ~size ~item_id:_ ->
            match Fit.fitting bins ~size with
            | [] -> Policy.New_bin "rf"
            | candidates ->
                (* One array build + O(1) index instead of List.nth's
                   second O(n) walk; exactly one RNG draw either way,
                   so packings are bit-identical to the old code. *)
                let arr = Array.of_list candidates in
                let chosen = arr.(Splitmix64.next_int rng (Array.length arr)) in
                Policy.Existing chosen.Bin.bin_id);
        on_departure = Policy.no_departure_handler;
        persistence =
          (* The run state is exactly the RNG stream position. *)
          Policy.Persistent
            {
              save = (fun () -> Int64.to_string (Splitmix64.state rng));
              load =
                (fun blob ->
                  match Int64.of_string_opt blob with
                  | Some s -> Splitmix64.set_state rng s
                  | None ->
                      invalid_arg "random_fit: corrupt RNG state blob");
            };
      })
