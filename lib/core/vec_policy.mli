(** Online policies for Dynamic Vector Bin Packing.

    Same shape as the scalar {!Policy}: a policy spawns per-run
    handlers; on each arrival the handler sees the open fleet (in
    opening order) and the item's demand vector, and answers with an
    existing bin or a new one.  Fitting is component-wise
    ({!Dbp_num.Vec.le} of demand vs residual); the Any Fit family
    ranks fitting bins by a {!norm} of the residual, normalised
    per-dimension by capacity — the max-component norm is the
    [_maxDims] idiom of multi-resource schedulers, the sum norm its
    L1 counterpart.  At [d = 1] both norms reduce to [residual / W],
    so Best/Worst Fit make exactly their scalar decisions; each
    native policy records its scalar twin in [scalar] and the QCheck
    suite holds the two engines bit-identical on embedded scalar
    instances. *)

open Dbp_num

type view = {
  vbin_id : int;
  vbin_tag : string;
  vbin_capacity : Vec.t;
  vbin_level : Vec.t;
  vbin_residual : Vec.t;
  vbin_opened : Rat.t;
  vbin_count : int;
}

type decision = Existing of int | New_bin of string

type handlers = {
  on_arrival :
    now:Rat.t -> bins:view list -> size:Vec.t -> item_id:int -> decision;
  on_departure : now:Rat.t -> bins:view list -> item_id:int -> unit;
  persistence : Policy.persistence;
}

type t = {
  name : string;
  scalar : Policy.t option;
      (** The policy this one reproduces decision-for-decision at
          [d = 1] (uniform capacity), when one exists. *)
  spawn : capacity:Vec.t -> handlers;
}

val fits : view -> size:Vec.t -> bool
(** Component-wise: the demand is [<=] the residual in every
    dimension. *)

val no_departure_handler : now:Rat.t -> bins:view list -> item_id:int -> unit
(** Shared no-op; the engine recognises it physically and skips view
    assembly on departures, like the scalar engine. *)

type norm = Max | Sum

val norm_name : norm -> string
(** ["max"] / ["sum"]. *)

val score : norm -> capacity:Vec.t -> Vec.t -> Rat.t
(** {!Vec.max_norm} or {!Vec.sum_norm} of a residual. *)

val first_fit : t
(** Earliest-opened fitting bin. *)

val best_fit : norm -> t
(** Fitting bin with the smallest residual under the norm (ties to
    the earliest opened). *)

val worst_fit : norm -> t
(** Fitting bin with the largest residual under the norm (ties to the
    earliest opened). *)

val next_fit : t
(** The latest-opened open bin if the item fits there, else a new
    bin — the scalar Next Fit rule verbatim. *)

val lift_scalar : Policy.t -> t
(** Wraps any scalar policy for [d = 1] vector runs: views are
    projected onto their single component and handed to the scalar
    handlers unchanged (state, persistence and decisions included).
    The spawned handlers
    @raise Invalid_argument when the capacity is not 1-dimensional. *)

val all : t list
(** The native vector family: first-fit, best-fit:max, best-fit:sum,
    worst-fit:max, worst-fit:sum, next-fit. *)

val names : string list

val find : ?seed:int64 -> string -> t option
(** ["best-fit:sum"], ["worst-fit"] (norm defaults to max),
    ["first-fit"], ["next-fit"], plus every scalar registry name via
    {!lift_scalar} (usable at [d = 1] only). *)
