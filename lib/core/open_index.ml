(* Incrementally maintained set of open bins in opening order.

   Bin ids are dense (the simulator allocates them sequentially), so
   the doubly-linked list lives in flat int arrays indexed by bin id:
   add/remove are O(1), and assembling the policy-facing view list is
   O(open bins) with each untouched bin contributing its memoised
   [Bin.view]. *)

type t = {
  mutable bins : Bin.t option array;  (* slot per id; Some iff member *)
  mutable prev : int array;  (* id of the previous open bin, or -1 *)
  mutable next : int array;  (* id of the next open bin, or -1 *)
  mutable head : int;  (* oldest open bin id, or -1 *)
  mutable tail : int;  (* newest open bin id, or -1 *)
  mutable count : int;
}

let create () =
  {
    bins = Array.make 16 None;
    prev = Array.make 16 (-1);
    next = Array.make 16 (-1);
    head = -1;
    tail = -1;
    count = 0;
  }

let ensure_capacity t id =
  let n = Array.length t.bins in
  if id >= n then begin
    let n' = max (2 * n) (id + 1) in
    let grow a fill =
      let a' = Array.make n' fill in
      Array.blit a 0 a' 0 n;
      a'
    in
    t.bins <- grow t.bins None;
    t.prev <- grow t.prev (-1);
    t.next <- grow t.next (-1)
  end

let mem t (b : Bin.t) =
  b.Bin.id < Array.length t.bins && Option.is_some t.bins.(b.Bin.id)

let cardinal t = t.count
let is_empty t = t.count = 0

let add t (b : Bin.t) =
  let id = b.Bin.id in
  ensure_capacity t id;
  if Option.is_some t.bins.(id) then
    invalid_arg "Open_index.add: bin already open";
  if t.tail >= 0 && t.tail >= id then
    invalid_arg "Open_index.add: bin ids must be appended in opening order";
  t.bins.(id) <- Some b;
  t.prev.(id) <- t.tail;
  t.next.(id) <- -1;
  if t.tail >= 0 then t.next.(t.tail) <- id else t.head <- id;
  t.tail <- id;
  t.count <- t.count + 1

let remove t (b : Bin.t) =
  let id = b.Bin.id in
  if not (mem t b) then invalid_arg "Open_index.remove: bin not in index";
  let p = t.prev.(id) and n = t.next.(id) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p;
  t.bins.(id) <- None;
  t.prev.(id) <- -1;
  t.next.(id) <- -1;
  t.count <- t.count - 1

let fold f init t =
  let rec go acc id =
    if id < 0 then acc
    else
      match t.bins.(id) with
      | None -> assert false
      | Some b -> go (f acc b) t.next.(id)
  in
  go init t.head

let iter f t = fold (fun () b -> f b) () t

let to_list t = List.rev (fold (fun acc b -> b :: acc) [] t)

(* Opening order, built back-to-front so no List.rev is needed. *)
let views t =
  let rec go acc id =
    if id < 0 then acc
    else
      match t.bins.(id) with
      | None -> assert false
      | Some b -> go (Bin.view b :: acc) t.prev.(id)
  in
  go [] t.tail

let newest t = if t.tail < 0 then None else t.bins.(t.tail)
let oldest t = if t.head < 0 then None else t.bins.(t.head)

(* Full structural re-verification of the doubly-linked list, for the
   runtime auditor: every memoised invariant the O(1) add/remove paths
   rely on is re-derived from scratch.  O(capacity of the arrays). *)
let validate t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let n = Array.length t.bins in
  if Array.length t.prev <> n || Array.length t.next <> n then
    fail "array lengths diverge (%d bins, %d prev, %d next)" n
      (Array.length t.prev) (Array.length t.next)
  else if t.count < 0 then fail "negative count %d" t.count
  else if (t.head < 0) <> (t.tail < 0) then
    fail "head %d and tail %d disagree about emptiness" t.head t.tail
  else if t.head >= 0 && t.prev.(t.head) >= 0 then
    fail "head %d has a predecessor" t.head
  else if t.tail >= 0 && t.next.(t.tail) >= 0 then
    fail "tail %d has a successor" t.tail
  else begin
    (* Walk head -> tail checking link symmetry, membership, id and
       opening-order monotonicity; bound the walk by [n] so a cycle
       cannot hang the auditor. *)
    let rec walk seen prev_id id =
      if id < 0 then
        if prev_id <> t.tail then
          fail "walk ended at %d but tail is %d" prev_id t.tail
        else Ok seen
      else if seen > n then fail "cycle detected in the open list"
      else if id >= n then fail "link to out-of-range id %d" id
      else
        match t.bins.(id) with
        | None -> fail "linked bin %d has no slot entry" id
        | Some b ->
            if b.Bin.id <> id then
              fail "slot %d holds bin with id %d" id b.Bin.id
            else if not (Bin.is_open b) then
              fail "closed bin %d still in the open index" id
            else if t.prev.(id) <> prev_id then
              fail "bin %d: prev link %d, expected %d" id t.prev.(id) prev_id
            else if prev_id >= 0 && prev_id >= id then
              fail "opening order violated: %d before %d" prev_id id
            else walk (seen + 1) id t.next.(id)
    in
    match walk 0 (-1) t.head with
    | Error _ as e -> e
    | Ok reachable ->
        if reachable <> t.count then
          fail "count %d but %d bins reachable from head" t.count reachable
        else
          let members = ref 0 in
          Array.iter
            (fun slot -> if Option.is_some slot then incr members)
            t.bins;
          if !members <> t.count then
            fail "count %d but %d occupied slots" t.count !members
          else Ok ()
  end
