(** The seed (pre-index) simulator engine, retained as an oracle.

    Behaviourally identical to {!Simulator} — same packings, same
    costs, same any-fit violation counts, same protocol exceptions —
    but with the original O(bins-ever-opened) per-event cost: one list
    of all bins ever, rescanned and re-viewed on every arrival and
    departure.  It exists so that

    - the equivalence property tests ([test_engine.ml]) can prove the
      fast engine bit-identical against it, and
    - the scaling benchmark ([Dbp_experiments.Scaling_bench], [dbp
      bench]) can keep reporting before/after numbers as the fast
      engine evolves.

    Raises the exceptions of {!Simulator} ([Simulator.Invalid_decision],
    [Simulator.Invalid_step]). *)

open Dbp_num

module Online : sig
  type t

  val create :
    ?tag_capacity:(string -> Rat.t) ->
    policy:Policy.t ->
    capacity:Rat.t ->
    unit ->
    t

  val arrive : t -> now:Rat.t -> size:Rat.t -> item_id:int -> int
  val depart : t -> now:Rat.t -> item_id:int -> unit
  val fail_bin : t -> now:Rat.t -> bin_id:int -> (int * Rat.t) list
  val now : t -> Rat.t option
  val open_bins : t -> Bin.view list
  val bin_of_item : t -> int -> int option
  val active_items_in : t -> int -> (int * Rat.t) list
  val level_of : t -> int -> Rat.t option
  val finish : t -> instance:Instance.t -> Packing.t
end

val run :
  ?tag_capacity:(string -> Rat.t) -> policy:Policy.t -> Instance.t -> Packing.t
