let policy =
  Policy.stateless ~name:"best_fit" (fun ~capacity:_ ~now:_ ~bins ~size ->
      match Fit.best bins ~size with
      | Some v -> Policy.Existing v.Bin.bin_id
      | None -> Policy.New_bin "bf")
