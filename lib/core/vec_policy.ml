open Dbp_num

type view = {
  vbin_id : int;
  vbin_tag : string;
  vbin_capacity : Vec.t;
  vbin_level : Vec.t;
  vbin_residual : Vec.t;
  vbin_opened : Rat.t;
  vbin_count : int;
}

type decision = Existing of int | New_bin of string

type handlers = {
  on_arrival :
    now:Rat.t -> bins:view list -> size:Vec.t -> item_id:int -> decision;
  on_departure : now:Rat.t -> bins:view list -> item_id:int -> unit;
  persistence : Policy.persistence;
}

type t = {
  name : string;
  scalar : Policy.t option;
  spawn : capacity:Vec.t -> handlers;
}

let fits v ~size = Vec.le size v.vbin_residual

let no_departure_handler ~now:_ ~bins:_ ~item_id:_ = ()

type norm = Max | Sum

let norm_name = function Max -> "max" | Sum -> "sum"

let score norm ~capacity residual =
  match norm with
  | Max -> Vec.max_norm ~capacity residual
  | Sum -> Vec.sum_norm ~capacity residual

(* Strict-improvement fold, like the scalar [Fit.select_by]: the
   earliest-opened bin wins ties, because a later bin only displaces
   the incumbent when strictly better. *)
let select_by ~better views ~size =
  List.fold_left
    (fun best v ->
      if not (fits v ~size) then best
      else
        match best with
        | None -> Some v
        | Some b -> if better v b then Some v else best)
    None views

let stateless ~name ?scalar choose =
  {
    name;
    scalar;
    spawn =
      (fun ~capacity ->
        {
          on_arrival =
            (fun ~now ~bins ~size ~item_id:_ ->
              choose ~capacity ~now ~bins ~size);
          on_departure = no_departure_handler;
          persistence = Policy.Stateless;
        });
  }

let first_fit =
  stateless ~name:"first_fit" ~scalar:First_fit.policy
    (fun ~capacity:_ ~now:_ ~bins ~size ->
      (* [better] never displaces the incumbent, so the fold keeps the
         earliest-opened fitting bin. *)
      match select_by ~better:(fun _ _ -> false) bins ~size with
      | Some v -> Existing v.vbin_id
      | None -> New_bin "ff")

let best_fit norm =
  stateless
    ~name:("best_fit:" ^ norm_name norm)
    ~scalar:Best_fit.policy
    (fun ~capacity:_ ~now:_ ~bins ~size ->
      let better v b =
        Rat.(
          score norm ~capacity:v.vbin_capacity v.vbin_residual
          < score norm ~capacity:b.vbin_capacity b.vbin_residual)
      in
      match select_by ~better bins ~size with
      | Some v -> Existing v.vbin_id
      | None -> New_bin "bf")

let worst_fit norm =
  stateless
    ~name:("worst_fit:" ^ norm_name norm)
    ~scalar:Worst_fit.policy
    (fun ~capacity:_ ~now:_ ~bins ~size ->
      let better v b =
        Rat.(
          score norm ~capacity:v.vbin_capacity v.vbin_residual
          > score norm ~capacity:b.vbin_capacity b.vbin_residual)
      in
      match select_by ~better bins ~size with
      | Some v -> Existing v.vbin_id
      | None -> New_bin "wf")

let next_fit =
  {
    name = "next_fit";
    scalar = Some Next_fit.policy;
    spawn =
      (fun ~capacity:_ ->
        {
          on_arrival =
            (fun ~now:_ ~bins ~size ~item_id:_ ->
              (* The current bin is the latest-opened open bin, exactly
                 as in the scalar Next Fit. *)
              match List.rev bins with
              | current :: _ when fits current ~size ->
                  Existing current.vbin_id
              | _ -> New_bin "nf");
          on_departure = no_departure_handler;
          persistence = Policy.Stateless;
        });
  }

(* ---- the d=1 bridge -------------------------------------------------- *)

let scalar_view_of (v : view) : Bin.view =
  {
    Bin.bin_id = v.vbin_id;
    bin_tag = v.vbin_tag;
    bin_capacity = Vec.get v.vbin_capacity 0;
    bin_level = Vec.get v.vbin_level 0;
    bin_residual = Vec.get v.vbin_residual 0;
    bin_opened = v.vbin_opened;
    bin_count = v.vbin_count;
  }

let lift_scalar (p : Policy.t) =
  {
    name = p.Policy.name;
    scalar = Some p;
    spawn =
      (fun ~capacity ->
        if Vec.dim capacity <> 1 then
          invalid_arg
            (Printf.sprintf
               "Vec_policy.lift_scalar: %s is a scalar policy, capacity has \
                %d dimensions"
               p.Policy.name (Vec.dim capacity));
        let h = p.Policy.spawn ~capacity:(Vec.get capacity 0) in
        {
          on_arrival =
            (fun ~now ~bins ~size ~item_id ->
              let bins = List.map scalar_view_of bins in
              match
                h.Policy.on_arrival ~now ~bins ~size:(Vec.get size 0) ~item_id
              with
              | Policy.Existing id -> Existing id
              | Policy.New_bin tag -> New_bin tag);
          on_departure =
            (if h.Policy.on_departure == Policy.no_departure_handler then
               no_departure_handler
             else
               fun ~now ~bins ~item_id ->
                 h.Policy.on_departure ~now
                   ~bins:(List.map scalar_view_of bins)
                   ~item_id);
          persistence = h.Policy.persistence;
        });
  }

let all =
  [
    first_fit;
    best_fit Max;
    best_fit Sum;
    worst_fit Max;
    worst_fit Sum;
    next_fit;
  ]

let names =
  [
    "first-fit";
    "best-fit:max";
    "best-fit:sum";
    "worst-fit:max";
    "worst-fit:sum";
    "next-fit";
  ]

let find ?(seed = 1L) name =
  match name with
  | "first-fit" | "ff" -> Some first_fit
  | "best-fit" | "bf" | "best-fit:max" -> Some (best_fit Max)
  | "best-fit:sum" -> Some (best_fit Sum)
  | "worst-fit" | "wf" | "worst-fit:max" -> Some (worst_fit Max)
  | "worst-fit:sum" -> Some (worst_fit Sum)
  | "next-fit" | "nf" -> Some next_fit
  | other -> Option.map lift_scalar (Algorithms.find ~seed other)
