let default_tag = "ff"

let policy =
  Policy.stateless ~name:"first_fit" (fun ~capacity:_ ~now:_ ~bins ~size ->
      match Fit.first bins ~size with
      | Some v -> Policy.Existing v.Bin.bin_id
      | None -> Policy.New_bin default_tag)
