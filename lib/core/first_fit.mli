(** First Fit (FF), Section 3.2: put each arriving item into the
    earliest opened bin that can accommodate it; open a new bin only
    when none fits.  Theorems 4 and 5 bound its competitive ratio by
    [k/(k-1) mu + 6k/(k-1) + 1] (all sizes < W/k) and [2 mu + 13]
    (general case). *)

val policy : Policy.t
