(** Incrementally maintained set of open bins, in opening order.

    The simulator opens bins with sequential ids, so opening order is
    id order; the index keeps the open subset as a doubly-linked list
    threaded through flat arrays indexed by bin id.  {!add} and
    {!remove} are O(1); {!views} is O(open bins) and reuses each bin's
    memoised {!Bin.view} (see [Bin.view_cache]) so untouched bins cost
    one pointer chase, not a record rebuild. *)

type t

val create : unit -> t

val add : t -> Bin.t -> unit
(** Appends a freshly opened bin.
    @raise Invalid_argument if the bin is already present or its id
    does not exceed every id added before (opening order violated). *)

val remove : t -> Bin.t -> unit
(** Drops a bin that closed.
    @raise Invalid_argument if the bin is not present. *)

val mem : t -> Bin.t -> bool
val cardinal : t -> int
val is_empty : t -> bool

val views : t -> Bin.view list
(** Views of the member bins in opening order. *)

val to_list : t -> Bin.t list
(** Member bins in opening order. *)

val fold : ('a -> Bin.t -> 'a) -> 'a -> t -> 'a
(** Folds over members in opening order. *)

val iter : (Bin.t -> unit) -> t -> unit

val oldest : t -> Bin.t option
(** Earliest-opened member. *)

val newest : t -> Bin.t option
(** Latest-opened member. *)

val validate : t -> (unit, string) result
(** Re-derives every linked-list invariant from scratch (link
    symmetry, membership vs slots, opening order, count, cycle
    freedom), for the runtime auditor ({!Audit}). *)
