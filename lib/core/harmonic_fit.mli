(** Harmonic packing adapted to the dynamic setting: a natural
    generalisation of Modified First Fit's two-pool split (and the
    classical HARMONIC family the paper's related-work section cites).

    With [classes = m], sizes in [(W/2, W]] form class 1, sizes in
    [(W/3, W/2]] class 2, ..., and sizes in [(0, W/m]] the final class;
    First Fit runs within each class separately.  A class-[i] bin
    ([i < m]) never holds more than [i] items, which caps wasted
    capacity per class — the same intuition as MFF's large/small
    separation, refined. *)

val class_of : capacity:Dbp_num.Rat.t -> classes:int -> Dbp_num.Rat.t -> int
(** The 1-based class index of a size.
    @raise Invalid_argument unless [0 < size <= capacity]. *)

val policy : classes:int -> Policy.t
(** @raise Invalid_argument if [classes < 2]. *)
