open Dbp_num

let log_src = Logs.Src.create "dbp.simulator" ~doc:"MinTotal DBP simulator"

module Log = (val Logs.src_log log_src : Logs.LOG)

exception Invalid_decision of string
exception Invalid_step of string

let invalid_decision fmt = Format.kasprintf (fun s -> raise (Invalid_decision s)) fmt
let invalid_step fmt = Format.kasprintf (fun s -> raise (Invalid_step s)) fmt

(* Item ids above this stay on the exact track: the fast store is
   dense in item id, so a huge id would force a huge allocation. *)
let max_fast_item = (1 lsl 23) - 1

(* Fast-track replay packs each event into one int:
   [(time_s << 25) | (kind << 24) | id].  The id field is 24 bits
   wide; [max_fast_item] (2^23 - 1) keeps every admissible id strictly
   below the kind bit, so an id can never carry into — and silently
   flip — the kind or time fields.  Ids above the bound (and off-grid
   or out-of-range times) must take the comparison-sorted event-array
   path instead; [pack_event_key] enforces both bounds so the
   invariant is checked at the packing site, not trusted from afar. *)
let event_key_id_bits = 24
let event_key_id_mask = (1 lsl event_key_id_bits) - 1
let event_key_kind_bit = 1 lsl event_key_id_bits
let event_key_time_shift = event_key_id_bits + 1

(* Scaled times must stay under 2^37 so the key (37 + 25 = 62 bits)
   remains a positive OCaml int for the radix sort. *)
let event_key_time_limit = 1 lsl 37

let () = assert (max_fast_item < event_key_id_mask)

let pack_event_key ~time_s ~arrival ~id =
  if id < 0 || id > max_fast_item then
    invalid_arg "Simulator.pack_event_key: id outside [0, max_fast_item]";
  if time_s < 0 || time_s >= event_key_time_limit then
    invalid_arg "Simulator.pack_event_key: scaled time out of range";
  (time_s lsl event_key_time_shift)
  lor (if arrival then event_key_kind_bit else 0)
  lor id

let unpack_event_key k =
  ( k lsr event_key_time_shift,
    k land event_key_kind_bit <> 0,
    k land event_key_id_mask )

(* LSD radix sort of non-negative keys, 16-bit digits.  Linear in the
   input against the comparison sort's n log n closure calls — the
   event stream and the finish-time timeline both sort scaled-integer
   keys this way on the fast track.  Passes whose digit is constant
   across the input (the common case for high digits) are skipped.
   Returns a sorted array that may or may not be the input array;
   the input is clobbered either way. *)
let radix_sort_pos a =
  let n = Array.length a in
  if n <= 4096 then begin
    (* Below this the per-pass digit histograms dominate; a comparison
       sort on immediate ints is faster and equally correct. *)
    Array.sort (fun (x : int) (y : int) -> Int.compare x y) a;
    a
  end
  else begin
    let tmp = Array.make n 0 in
    let count = Array.make 65536 0 in
    let src = ref a and dst = ref tmp in
    for pass = 0 to 3 do
      let shift = 16 * pass in
      let s = !src in
      Array.fill count 0 65536 0;
      for i = 0 to n - 1 do
        let d = (s.(i) lsr shift) land 0xffff in
        count.(d) <- count.(d) + 1
      done;
      if count.((s.(0) lsr shift) land 0xffff) <> n then begin
        let acc = ref 0 in
        for d = 0 to 65535 do
          let c = count.(d) in
          count.(d) <- !acc;
          acc := !acc + c
        done;
        let t = !dst in
        for i = 0 to n - 1 do
          let v = s.(i) in
          let d = (v lsr shift) land 0xffff in
          t.(count.(d)) <- v;
          count.(d) <- count.(d) + 1
        done;
        src := t;
        dst := s
      end
    done;
    !src
  end

module Online = struct
  (* Engine invariants (see DESIGN.md "Simulator engine" and "Numeric
     fast path"):

     - [store.(id)] holds every bin ever opened, densely indexed by id,
       so resolving a policy's [Existing id] is an array read.
     - [open_index] tracks exactly the open subset in opening order;
       the view list handed to policies is assembled from it in
       O(open bins), with per-bin views memoised inside [Bin].
     - [item_bin] maps each *active* item id to its bin; the item's
       stub is recovered from the bin's keyed active table, so
       [depart] does no list scan at all.

     Per-event cost is therefore O(open bins) — independent of how
     many bins the run has ever opened.

     The engine runs on one of two numeric tracks.  The [Exact] track
     is the seed implementation above: boxed [Bin.t] records and
     gcd-normalised [Rat.t] arithmetic on every level update.  The
     [Fast] track keeps the same state as unboxed struct-of-arrays
     over scaled integers ([Fixed]): every size, time and level is a
     native int over the run's common grid denominator, so the commit
     path is pure int array arithmetic — no allocation, no gcd.
     Admission is exact-or-refuse: the track is only entered when the
     whole instance lies on the grid ([grid_of_instance]), and any
     mid-run input that does not convert (an off-grid time from a
     fault injector, a tag capacity off the grid, an oversized id)
     triggers [degrade], which materialises the equivalent exact state
     and continues on the [Exact] track.  Conversions both ways are
     exact and [Rat.make] always normalises, so the two tracks produce
     bit-identical packings, traces and snapshots. *)

  type fast = {
    g : Fixed.scale;
    (* Bins, struct-of-arrays, dense by id; parallel arrays so the hot
       fields (level, capacity, max) are unboxed int reads.  The Rat
       columns cache the exact boxes handed in at open time — stored
       pointers, never recomputed. *)
    mutable fb_len : int;  (* bins ever opened *)
    mutable fb_tag : string array;
    mutable fb_cap_s : int array;
    mutable fb_cap : Rat.t array;
    mutable fb_level : int array;
    mutable fb_max : int array;
    mutable fb_active : int array;  (* active item count per bin *)
    mutable fb_opened : Rat.t array;
    mutable fb_closed : Rat.t option array;  (* None = open *)
    (* The same lifecycle instants as scaled ints, so [finish] can
       build the timeline and total cost without rational sorts. *)
    mutable fb_opened_s : int array;
    mutable fb_closed_s : int array;  (* valid iff fb_closed is Some *)
    mutable fb_items_rev : int list array;  (* ids ever placed, newest first *)
    (* The open subset, materialised: [fo_views.(0 .. fo_len-1)] are
       policy views in opening (= ascending id) order, and
       [fb_slot.(id)] is a bin's slot (-1 once closed).  Assembling the
       policy's view list is a sequential walk of a dense array, not a
       pointer chase over per-bin records.  Invalidation is batched:
       commits only push the touched bin onto [fd_stack] and the stale
       slots are re-projected once, at the next view read — so events
       nobody observes (a departure under a no-op handler) never pay
       the two gcd-normalising conversions a view costs. *)
    mutable fo_views : Bin.view array;
    mutable fo_len : int;
    mutable fb_slot : int array;
    mutable fb_dirty : bool array;  (* gates [fd_stack] pushes *)
    mutable fd_stack : int array;
    mutable fd_len : int;
    (* Items, dense by id.  [fi_bin] doubles as the seen-set:
       -2 = never seen, -1 = seen but inactive, >= 0 = active in that
       bin. *)
    mutable fi_bin : int array;
    mutable fi_size_s : int array;
    mutable fi_size : Rat.t array;
    mutable fi_arrival : Rat.t array;
    mutable fi_max_seen : int;
    mutable fi_seen : int;
    mutable fi_active : int;
    (* Clock, scaled; [min_int] = no event yet.  [f_now] caches the
       exact rational of the same instant, materialised lazily
       ([f_now_ok]) so scaled-entry events that never need the boxed
       time (a departure that closes nothing, under a no-op handler)
       never convert. *)
    mutable f_clock : int;
    mutable f_now : Rat.t;
    mutable f_now_ok : bool;
  }

  type track = Exact | Fast of fast

  type t = {
    capacity : Rat.t;
    tag_capacity : string -> Rat.t;
    handlers : Policy.handlers;
    mutable store : Bin.t array;  (* all bins ever, dense by id *)
    mutable bin_count : int;
    open_index : Open_index.t;
    item_bin : (int, Bin.t) Hashtbl.t;  (* active item -> its bin *)
    seen_items : (int, unit) Hashtbl.t;
    mutable clock : Rat.t option;
    mutable violations : int;
    audit : bool;  (* re-verify every invariant after every event *)
    (* Observability taps (lib/obs).  All three default to [None]; the
       disabled cost is one pattern match per event, so production
       runs pay nothing measurable (the acceptance bound is <= 5% on
       events/second, see test/test_obs.ml and the bench).  A sink or
       metrics registry forces the exact track: emission wants the
       boxed values the fast store deliberately avoids materialising. *)
    sink : Dbp_obs.Sink.t option;
    metrics : Dbp_obs.Metrics.t option;
    profile : Dbp_obs.Profile.t option;
    mutable track : track;
  }

  (* Sanitizer pass (audit mode): re-derive the memoised engine state
     from scratch after an event and compare.  O(total bins + active
     items) per call, so audit runs cost O(n) per event where the
     production path is O(open bins) — acceptable for tests/CI, which
     is what the mode is for. *)
  let audit_state t =
    let time = t.clock in
    let fail ?bin_id ~check fmt = Audit.fail ?time ?bin_id ~check fmt in
    (* 1. Open-index doubly-linked invariants. *)
    (match Open_index.validate t.open_index with
    | Ok () -> ()
    | Error msg -> fail ~check:"open-index" "%s" msg);
    (* 2. Store vs index agreement: the index holds exactly the open
       subset of the store, and slots alias the stored bins. *)
    for id = 0 to t.bin_count - 1 do
      let b = t.store.(id) in
      if b.Bin.id <> id then
        fail ~check:"store" ~bin_id:id "store slot %d holds bin id %d" id
          b.Bin.id;
      if Bin.is_open b && not (Open_index.mem t.open_index b) then
        fail ~check:"store" ~bin_id:id "open bin missing from the open index";
      if (not (Bin.is_open b)) && Open_index.mem t.open_index b then
        fail ~check:"store" ~bin_id:id "closed bin still in the open index";
      (* A closed bin holds nothing: a migration or eviction that
         closed it must have drained its active table and level. *)
      if not (Bin.is_open b) then begin
        if Bin.active_count b <> 0 then
          fail ~check:"item-bin" ~bin_id:id
            "closed bin still holds %d active items" (Bin.active_count b);
        if not (Rat.is_zero b.Bin.level) then
          fail ~check:"item-bin" ~bin_id:id "closed bin retains level %s"
            (Rat.to_string b.Bin.level)
      end
    done;
    (* 3. Per-bin memoised state (level, view cache, capacity). *)
    Open_index.iter
      (fun b ->
        if not (b == t.store.(b.Bin.id)) then
          fail ~check:"store" ~bin_id:b.Bin.id
            "index member is not the stored bin";
        Audit.check_bin ?time b)
      t.open_index;
    (* 4. item_bin consistency: active items and bins agree both ways. *)
    let active_total = ref 0 in
    Open_index.iter
      (fun b -> active_total := !active_total + Bin.active_count b)
      t.open_index;
    if Hashtbl.length t.item_bin <> !active_total then
      fail ~check:"item-bin" "%d tracked items but %d active across open bins"
        (Hashtbl.length t.item_bin) !active_total;
    Hashtbl.iter
      (fun item_id (b : Bin.t) ->
        if not (Bin.is_open b) then
          fail ~check:"item-bin" ~bin_id:b.Bin.id
            "item %d tracked in a closed bin" item_id;
        match Bin.find_active b item_id with
        | Some _ -> ()
        | None ->
            fail ~check:"item-bin" ~bin_id:b.Bin.id
              "item %d tracked but not active in its bin" item_id)
      t.item_bin;
    (* Reverse direction: every active item is tracked, and tracked in
       the bin that holds it — together with the count equality above
       this pins each item to exactly one bin (the migration-
       conservation invariant: a move re-points, never duplicates). *)
    Open_index.iter
      (fun b ->
        Hashtbl.iter
          (fun item_id _ ->
            match Hashtbl.find_opt t.item_bin item_id with
            | Some owner when owner == b -> ()
            | Some (owner : Bin.t) ->
                fail ~check:"item-bin" ~bin_id:b.Bin.id
                  "item %d active here but tracked in bin %d" item_id
                  owner.Bin.id
            | None ->
                fail ~check:"item-bin" ~bin_id:b.Bin.id
                  "item %d active but untracked" item_id)
          b.Bin.active)
      t.open_index

  let after_event t = if t.audit then audit_state t

  (* ---- fast-track state ---------------------------------------------- *)

  let fast_create g =
    {
      g;
      fb_len = 0;
      fb_tag = [||];
      fb_cap_s = [||];
      fb_cap = [||];
      fb_level = [||];
      fb_max = [||];
      fb_active = [||];
      fb_opened = [||];
      fb_closed = [||];
      fb_opened_s = [||];
      fb_closed_s = [||];
      fb_items_rev = [||];
      fo_views = [||];
      fo_len = 0;
      fb_slot = [||];
      fb_dirty = [||];
      fd_stack = [||];
      fd_len = 0;
      fi_bin = [||];
      fi_size_s = [||];
      fi_size = [||];
      fi_arrival = [||];
      fi_max_seen = -1;
      fi_seen = 0;
      fi_active = 0;
      f_clock = min_int;
      f_now = Rat.zero;
      f_now_ok = false;
    }

  let grow_bin_arrays f =
    let n = Array.length f.fb_tag in
    let m = max 64 (2 * n) in
    let g a fill =
      let a' = Array.make m fill in
      Array.blit a 0 a' 0 n;
      a'
    in
    f.fb_tag <- g f.fb_tag "";
    f.fb_cap_s <- g f.fb_cap_s 0;
    f.fb_cap <- g f.fb_cap Rat.zero;
    f.fb_level <- g f.fb_level 0;
    f.fb_max <- g f.fb_max 0;
    f.fb_active <- g f.fb_active 0;
    f.fb_opened <- g f.fb_opened Rat.zero;
    f.fb_closed <- g f.fb_closed None;
    f.fb_opened_s <- g f.fb_opened_s 0;
    f.fb_closed_s <- g f.fb_closed_s 0;
    f.fb_items_rev <- g f.fb_items_rev [];
    f.fb_slot <- g f.fb_slot (-1);
    f.fb_dirty <- g f.fb_dirty false

  let grow_item_arrays f item_id =
    let n = Array.length f.fi_bin in
    let m = max (max 1024 (2 * n)) (item_id + 1) in
    let g a fill =
      let a' = Array.make m fill in
      Array.blit a 0 a' 0 n;
      a'
    in
    f.fi_bin <- g f.fi_bin (-2);
    f.fi_size_s <- g f.fi_size_s 0;
    f.fi_size <- g f.fi_size Rat.zero;
    f.fi_arrival <- g f.fi_arrival Rat.zero

  (* A fresh view of bin [id] from its scaled state: the only place
     that pays the two gcd-normalising conversions. *)
  let fast_view f id =
    {
      Bin.bin_id = id;
      bin_tag = f.fb_tag.(id);
      bin_capacity = f.fb_cap.(id);
      bin_level = Fixed.to_rat f.g f.fb_level.(id);
      bin_residual = Fixed.to_rat f.g (f.fb_cap_s.(id) - f.fb_level.(id));
      bin_opened = f.fb_opened.(id);
      bin_count = f.fb_active.(id);
    }

  (* Refresh the touched bin's slot after a level/count change. *)
  let refresh_slot f id = f.fo_views.(f.fb_slot.(id)) <- fast_view f id

  (* Batched invalidation: a commit records which bin changed; the
     stale slots are re-projected together at the next view read. *)
  let mark_dirty f id =
    if not f.fb_dirty.(id) then begin
      f.fb_dirty.(id) <- true;
      let n = Array.length f.fd_stack in
      if f.fd_len >= n then begin
        let a = Array.make (max 64 (2 * n)) 0 in
        Array.blit f.fd_stack 0 a 0 n;
        f.fd_stack <- a
      end;
      f.fd_stack.(f.fd_len) <- id;
      f.fd_len <- f.fd_len + 1
    end

  let flush_views f =
    if f.fd_len > 0 then begin
      for i = 0 to f.fd_len - 1 do
        let id = f.fd_stack.(i) in
        f.fb_dirty.(id) <- false;
        (* A dirty bin may have closed before the flush; its slot is
           gone and there is nothing to refresh. *)
        if f.fb_slot.(id) >= 0 then refresh_slot f id
      done;
      f.fd_len <- 0
    end

  let open_slot_append f id =
    let v = fast_view f id in
    let n = Array.length f.fo_views in
    if f.fo_len >= n then begin
      let a = Array.make (max 64 (2 * n)) v in
      Array.blit f.fo_views 0 a 0 n;
      f.fo_views <- a
    end;
    f.fo_views.(f.fo_len) <- v;
    f.fb_slot.(id) <- f.fo_len;
    f.fo_len <- f.fo_len + 1

  let open_slot_remove f id =
    let slot = f.fb_slot.(id) in
    for s = slot to f.fo_len - 2 do
      let v = f.fo_views.(s + 1) in
      f.fo_views.(s) <- v;
      f.fb_slot.(v.Bin.bin_id) <- s
    done;
    f.fb_slot.(id) <- -1;
    f.fo_len <- f.fo_len - 1

  (* The policy-facing view list in opening order: a sequential walk
     of the dense slot array. *)
  let fast_views f =
    flush_views f;
    let rec go acc s = if s < 0 then acc else go (f.fo_views.(s) :: acc) (s - 1) in
    go [] (f.fo_len - 1)

  (* The current clock as an exact rational, converted at most once
     per tick.  The conversion is exact and [Rat.make]-normalised, so
     it is the very value the caller handed in. *)
  let fast_now_rat f =
    if f.f_now_ok then f.f_now
    else begin
      let r = Fixed.to_rat f.g f.f_clock in
      f.f_now <- r;
      f.f_now_ok <- true;
      r
    end

  let fast_now f = if f.f_clock = min_int then None else Some (fast_now_rat f)

  (* Scaled-entry clock advance: the boxed time, if ever needed this
     tick, comes from [fast_now_rat]. *)
  let fast_advance_clock_s f ~now_s =
    if f.f_clock <> min_int && now_s < f.f_clock then
      invalid_step "time went backwards: %a after %a" Rat.pp
        (Fixed.to_rat f.g now_s) Rat.pp (fast_now_rat f);
    if now_s <> f.f_clock then begin
      f.f_clock <- now_s;
      f.f_now_ok <- false
    end

  let fast_advance_clock f ~now ~now_s =
    fast_advance_clock_s f ~now_s;
    f.f_now <- now;
    f.f_now_ok <- true

  (* Fast-track sanitizer: re-derive every memoised scaled quantity
     from the placement lists and compare, mirroring [audit_state] on
     the struct-of-arrays store. *)
  let audit_fast _t f =
    flush_views f;
    let time = fast_now f in
    let fail ?bin_id ~check fmt = Audit.fail ?time ?bin_id ~check fmt in
    (* 1. Slot-array structure: slots hold distinct open bins in
       ascending id (= opening) order and agree with the back map. *)
    let in_list = Array.make (max 1 f.fb_len) false in
    if f.fo_len < 0 || f.fo_len > f.fb_len then
      fail ~check:"fast-open" "slot count %d out of range" f.fo_len;
    let last = ref (-1) in
    for s = 0 to f.fo_len - 1 do
      let id = f.fo_views.(s).Bin.bin_id in
      if id < 0 || id >= f.fb_len then
        fail ~check:"fast-open" "slot %d points at unopened bin %d" s id;
      if id <= !last then
        fail ~check:"fast-open" ~bin_id:id "slots not in opening order";
      last := id;
      in_list.(id) <- true;
      if f.fb_slot.(id) <> s then
        fail ~check:"fast-open" ~bin_id:id "slot back-pointer broken"
    done;
    (* 2. Per-bin memoised state from first principles. *)
    let active_total = ref 0 in
    for id = 0 to f.fb_len - 1 do
      let is_open = Option.is_none f.fb_closed.(id) in
      if is_open && not in_list.(id) then
        fail ~check:"fast-open" ~bin_id:id "open bin missing from the slot array";
      if (not is_open) && in_list.(id) then
        fail ~check:"fast-open" ~bin_id:id "closed bin still in the slot array";
      if (not is_open) && f.fb_slot.(id) >= 0 then
        fail ~check:"fast-open" ~bin_id:id "closed bin keeps a slot";
      let level = ref 0 and active = ref 0 in
      List.iter
        (fun i ->
          if f.fi_bin.(i) = id then begin
            level := !level + f.fi_size_s.(i);
            incr active
          end)
        f.fb_items_rev.(id);
      if (not is_open) && !active <> 0 then
        fail ~check:"fast-item" ~bin_id:id
          "closed bin still holds %d active items" !active;
      let expected_level = if is_open then !level else 0 in
      if f.fb_level.(id) <> expected_level then
        fail ~check:"fast-level" ~bin_id:id
          "memoised level %d but active items sum to %d" f.fb_level.(id)
          expected_level;
      if f.fb_active.(id) <> (if is_open then !active else 0) then
        fail ~check:"fast-level" ~bin_id:id
          "memoised active count %d but %d items are active" f.fb_active.(id)
          !active;
      if f.fb_level.(id) > f.fb_cap_s.(id) then
        fail ~check:"fast-level" ~bin_id:id "level above capacity";
      if f.fb_max.(id) < f.fb_level.(id) || f.fb_max.(id) > f.fb_cap_s.(id) then
        fail ~check:"fast-level" ~bin_id:id "max level out of range";
      if not (Rat.equal (Fixed.to_rat f.g f.fb_opened_s.(id)) f.fb_opened.(id))
      then fail ~check:"fast-time" ~bin_id:id "scaled open time diverges";
      (match f.fb_closed.(id) with
      | Some c when not (Rat.equal (Fixed.to_rat f.g f.fb_closed_s.(id)) c) ->
          fail ~check:"fast-time" ~bin_id:id "scaled close time diverges"
      | _ -> ());
      active_total := !active_total + (if is_open then !active else 0);
      (* The materialised slot view must agree with a fresh projection. *)
      if is_open then begin
        let v = f.fo_views.(f.fb_slot.(id)) in
        if
          v.Bin.bin_id <> id
          || v.Bin.bin_count <> f.fb_active.(id)
          || not (Rat.equal v.Bin.bin_level (Fixed.to_rat f.g f.fb_level.(id)))
          || not
               (Rat.equal v.Bin.bin_residual
                  (Fixed.to_rat f.g (f.fb_cap_s.(id) - f.fb_level.(id))))
          || not (Rat.equal v.Bin.bin_capacity f.fb_cap.(id))
        then fail ~check:"fast-view" ~bin_id:id "stale slot view"
      end
    done;
    if !active_total <> f.fi_active then
      fail ~check:"fast-item" "%d items active across bins but counter says %d"
        !active_total f.fi_active;
    (* 3. Item table: seen/active counters and bin back-pointers. *)
    let seen = ref 0 and active = ref 0 in
    for i = 0 to f.fi_max_seen do
      match f.fi_bin.(i) with
      | -2 -> ()
      | -1 -> incr seen
      | b ->
          incr seen;
          incr active;
          if b < 0 || b >= f.fb_len then
            fail ~check:"fast-item" "item %d points at unknown bin %d" i b;
          if Option.is_some f.fb_closed.(b) then
            fail ~check:"fast-item" ~bin_id:b "item %d active in a closed bin" i
    done;
    if !seen <> f.fi_seen then
      fail ~check:"fast-item" "%d items seen but counter says %d" !seen
        f.fi_seen;
    if !active <> f.fi_active then
      fail ~check:"fast-item" "%d items active but counter says %d" !active
        f.fi_active

  let audit t = match t.track with Exact -> audit_state t | Fast f -> audit_fast t f

  let create ?(audit = false) ?sink ?metrics ?profile ?grid ?tag_capacity
      ~policy ~capacity () =
    if Rat.sign capacity <= 0 then
      invalid_arg "Online.create: capacity must be positive";
    let tag_capacity =
      match tag_capacity with Some f -> f | None -> fun _ -> capacity
    in
    let track =
      match grid with
      | Some g when Option.is_none sink && Option.is_none metrics -> (
          match Fixed.of_rat g capacity with
          | Some _ -> Fast (fast_create g)
          | None -> Exact)
      | _ -> Exact
    in
    {
      capacity;
      tag_capacity;
      handlers = policy.Policy.spawn ~capacity;
      store = [||];
      bin_count = 0;
      open_index = Open_index.create ();
      item_bin = Hashtbl.create 64;
      seen_items = Hashtbl.create 64;
      clock = None;
      violations = 0;
      audit;
      sink;
      metrics;
      profile;
      track;
    }

  let advance_clock t now =
    (match t.clock with
    | Some prev when Rat.(now < prev) ->
        invalid_step "time went backwards: %a after %a" Rat.pp now Rat.pp prev
    | _ -> ());
    t.clock <- Some now

  let now t =
    match t.track with Exact -> t.clock | Fast f -> fast_now f

  let open_bins t =
    match t.track with
    | Exact -> Open_index.views t.open_index
    | Fast f -> fast_views f

  let find_bin t id =
    if id >= 0 && id < t.bin_count then Some t.store.(id) else None

  let register_bin t b =
    let n = Array.length t.store in
    if t.bin_count >= n then begin
      let store = Array.make (max 16 (2 * n)) b in
      Array.blit t.store 0 store 0 n;
      t.store <- store
    end;
    t.store.(t.bin_count) <- b;
    t.bin_count <- t.bin_count + 1;
    Open_index.add t.open_index b

  (* Degrade: materialise the exact engine state from the scaled
     store and continue on the [Exact] track.  Every conversion is an
     exact [to_rat] of an on-grid value (and the cached Rat columns
     are the very boxes the caller handed in), so the switch is
     invisible: packings, traces and snapshots are bit-identical to a
     run that was exact from the start. *)
  let degrade t f =
    for id = 0 to f.fb_len - 1 do
      (* [fb_items_rev] is newest first; both folds re-reverse, so
         placements and actives come out oldest first as [Bin.restore]
         expects. *)
      let placements =
        List.fold_left
          (fun acc i -> (f.fi_arrival.(i), i) :: acc)
          [] f.fb_items_rev.(id)
      in
      let active_items =
        List.fold_left
          (fun acc i ->
            if f.fi_bin.(i) = id then
              Item.make ~id:i ~size:f.fi_size.(i) ~arrival:f.fi_arrival.(i)
                ~departure:(Rat.add f.fi_arrival.(i) Rat.one)
              :: acc
            else acc)
          [] f.fb_items_rev.(id)
      in
      let b =
        Bin.restore ~id ~tag:f.fb_tag.(id) ~capacity:f.fb_cap.(id)
          ~opened:f.fb_opened.(id) ~closed:f.fb_closed.(id)
          ~max_level:(Fixed.to_rat f.g f.fb_max.(id))
          ~placements ~active_items
      in
      register_bin t b;
      if not (Bin.is_open b) then Open_index.remove t.open_index b;
      List.iter
        (fun (r : Item.t) -> Hashtbl.replace t.item_bin r.Item.id b)
        active_items
    done;
    for i = 0 to f.fi_max_seen do
      if f.fi_bin.(i) <> -2 then Hashtbl.add t.seen_items i ()
    done;
    t.clock <- fast_now f;
    t.track <- Exact;
    if t.audit then audit_state t

  (* Observability emission helpers.  Each is one pattern match when
     the corresponding tap is off; event construction happens only
     inside the [Some] branch. *)
  module Obs = struct
    module E = Dbp_obs.Trace_event

    let emit t ~now kind_of =
      match t.sink with
      | None -> ()
      | Some s -> Dbp_obs.Sink.emit s ~time:now (kind_of ())

    let with_metrics t f =
      match t.metrics with None -> () | Some m -> f m

    (* Common to every event: the open-fleet gauge and its
       distribution over events (the "open-bin count" histogram). *)
    let fleet_metrics t m =
      let open_now = Open_index.cardinal t.open_index in
      Dbp_obs.Metrics.set_gauge m "open_bins" open_now;
      Dbp_obs.Metrics.observe_int m "open_bins" open_now

    (* A bin's usage period just ended (departure-close or failure):
       account its exact MinTotal contribution. *)
    let close_metrics m ~cost =
      Dbp_obs.Metrics.incr m "bins_closed";
      Dbp_obs.Metrics.add_rat m "bin_seconds" cost;
      Dbp_obs.Metrics.observe_rat m "bin_lifetime" cost
  end

  (* The arrival commit phase, shared between the exact track and the
     fast track's rare capacity-off-grid degrade: validates the
     already-made policy decision and mutates the exact store.  The
     decision must NOT be re-derived here — the policy already ran
     (and possibly advanced its internal state). *)
  let commit_arrival_exact t ~now ~size ~item_id ~views ~decision =
    let tok = Dbp_obs.Profile.enter t.profile in
    let opened_new =
      match decision with Policy.New_bin _ -> true | Policy.Existing _ -> false
    in
    let target =
      match decision with
      | Policy.Existing id -> (
          match find_bin t id with
          | None -> invalid_decision "policy chose unknown bin %d" id
          | Some b ->
              if not (Bin.is_open b) then
                invalid_decision "policy chose closed bin %d" id
              else if not (Bin.fits b ~size) then
                invalid_decision "item %d does not fit in bin %d" item_id id
              else b)
      | Policy.New_bin tag ->
          if
            List.exists
              (fun (v : Bin.view) -> Rat.(size <= v.bin_residual))
              views
          then t.violations <- t.violations + 1;
          let cap = t.tag_capacity tag in
          if Rat.(size > cap) then
            invalid_decision
              "item %d (size %s) exceeds the capacity %s of a new '%s' bin"
              item_id (Rat.to_string size) (Rat.to_string cap) tag;
          let b = Bin.open_bin ~id:t.bin_count ~tag ~capacity:cap ~now in
          register_bin t b;
          b
    in
    (* The item's true departure time is not known yet; record a
       placeholder item and fix sizes/times from the instance at
       [finish].  Only id and size matter to the bin state. *)
    let stub =
      Item.make ~id:item_id ~size ~arrival:now
        ~departure:(Rat.add now Rat.one)
    in
    Bin.insert target ~now stub;
    Hashtbl.replace t.item_bin item_id target;
    Dbp_obs.Profile.leave t.profile "commit" tok;
    Obs.emit t ~now (fun () -> Obs.E.Arrive { item = item_id; size });
    if opened_new then
      Obs.emit t ~now (fun () ->
          Obs.E.Bin_open
            {
              bin = target.Bin.id;
              tag = target.Bin.tag;
              capacity = target.Bin.capacity;
            });
    Obs.emit t ~now (fun () ->
        Obs.E.Pack
          {
            item = item_id;
            bin = target.Bin.id;
            level = target.Bin.level;
            residual = Bin.residual target;
          });
    Obs.with_metrics t (fun m ->
        Dbp_obs.Metrics.incr m "arrivals";
        if opened_new then Dbp_obs.Metrics.incr m "bins_opened";
        Dbp_obs.Metrics.observe_rat m "utilisation_at_pack"
          (Rat.div target.Bin.level target.Bin.capacity);
        Obs.fleet_metrics t m);
    Log.debug (fun m ->
        m "t=%a item %d (size %a) -> bin %d [%s] level %a/%a" Rat.pp now
          item_id Rat.pp size target.Bin.id target.Bin.tag Rat.pp
          target.Bin.level Rat.pp target.Bin.capacity);
    after_event t;
    target.Bin.id

  let arrive_exact t ~now ~size ~item_id =
    advance_clock t now;
    if Rat.sign size <= 0 then invalid_step "item %d has size <= 0" item_id;
    if Hashtbl.mem t.seen_items item_id then
      invalid_step "item id %d reused" item_id;
    Hashtbl.add t.seen_items item_id ();
    let tok = Dbp_obs.Profile.enter t.profile in
    let views = open_bins t in
    Dbp_obs.Profile.leave t.profile "views" tok;
    let tok = Dbp_obs.Profile.enter t.profile in
    let decision = t.handlers.Policy.on_arrival ~now ~bins:views ~size ~item_id in
    Dbp_obs.Profile.leave t.profile "policy" tok;
    commit_arrival_exact t ~now ~size ~item_id ~views ~decision

  let arrive_fast t f ~now ~size ~item_id ~now_s ~size_s =
    fast_advance_clock f ~now ~now_s;
    if size_s <= 0 then invalid_step "item %d has size <= 0" item_id;
    if item_id >= Array.length f.fi_bin then grow_item_arrays f item_id;
    if f.fi_bin.(item_id) <> -2 then invalid_step "item id %d reused" item_id;
    (* Mark seen before the policy runs, like the exact track: an id
       consumed by a rejected decision stays consumed. *)
    f.fi_bin.(item_id) <- -1;
    f.fi_seen <- f.fi_seen + 1;
    if item_id > f.fi_max_seen then f.fi_max_seen <- item_id;
    let tok = Dbp_obs.Profile.enter t.profile in
    let views = fast_views f in
    Dbp_obs.Profile.leave t.profile "views" tok;
    let tok = Dbp_obs.Profile.enter t.profile in
    let decision = t.handlers.Policy.on_arrival ~now ~bins:views ~size ~item_id in
    Dbp_obs.Profile.leave t.profile "policy" tok;
    let tok = Dbp_obs.Profile.enter t.profile in
    (* The commit itself: raw int arithmetic on the dense store.
       [of_rat] bounds every admitted value by max_int/4, so the sums
       below cannot wrap. *)
    let commit_fast target =
      f.fb_level.(target) <- f.fb_level.(target) + size_s;
      if f.fb_level.(target) > f.fb_max.(target) then
        f.fb_max.(target) <- f.fb_level.(target);
      f.fb_active.(target) <- f.fb_active.(target) + 1;
      f.fb_items_rev.(target) <- item_id :: f.fb_items_rev.(target);
      mark_dirty f target;
      f.fi_bin.(item_id) <- target;
      f.fi_size_s.(item_id) <- size_s;
      f.fi_size.(item_id) <- size;
      f.fi_arrival.(item_id) <- now;
      f.fi_active <- f.fi_active + 1;
      Dbp_obs.Profile.leave t.profile "commit" tok;
      if t.audit then audit_fast t f;
      target
    in
    match decision with
    | Policy.Existing id ->
        if id < 0 || id >= f.fb_len then
          invalid_decision "policy chose unknown bin %d" id;
        if Option.is_some f.fb_closed.(id) then
          invalid_decision "policy chose closed bin %d" id;
        if f.fb_level.(id) + size_s > f.fb_cap_s.(id) then
          invalid_decision "item %d does not fit in bin %d" item_id id;
        commit_fast id
    | Policy.New_bin tag -> (
        let cap = t.tag_capacity tag in
        match Fixed.of_rat f.g cap with
        | None ->
            (* The tag's capacity is off-grid: hand the already-made
               decision to the exact engine.  The policy must not run
               again. *)
            Dbp_obs.Profile.leave t.profile "commit" tok;
            degrade t f;
            commit_arrival_exact t ~now ~size ~item_id ~views ~decision
        | Some cap_s ->
            if
              List.exists
                (fun (v : Bin.view) -> Rat.(size <= v.bin_residual))
                views
            then t.violations <- t.violations + 1;
            if size_s > cap_s then
              invalid_decision
                "item %d (size %s) exceeds the capacity %s of a new '%s' bin"
                item_id (Rat.to_string size) (Rat.to_string cap) tag;
            let id = f.fb_len in
            if id >= Array.length f.fb_tag then grow_bin_arrays f;
            f.fb_tag.(id) <- tag;
            f.fb_cap_s.(id) <- cap_s;
            f.fb_cap.(id) <- cap;
            f.fb_level.(id) <- 0;
            f.fb_max.(id) <- 0;
            f.fb_active.(id) <- 0;
            f.fb_opened.(id) <- now;
            f.fb_closed.(id) <- None;
            f.fb_opened_s.(id) <- now_s;
            f.fb_items_rev.(id) <- [];
            f.fb_len <- id + 1;
            open_slot_append f id;
            commit_fast id)

  let arrive t ~now ~size ~item_id =
    match t.track with
    | Exact -> arrive_exact t ~now ~size ~item_id
    | Fast f -> (
        match (Fixed.of_rat f.g now, Fixed.of_rat f.g size) with
        | Some now_s, Some size_s when item_id >= 0 && item_id <= max_fast_item
          ->
            arrive_fast t f ~now ~size ~item_id ~now_s ~size_s
        | _ ->
            degrade t f;
            arrive_exact t ~now ~size ~item_id)

  let depart_exact t ~now ~item_id =
    advance_clock t now;
    match Hashtbl.find_opt t.item_bin item_id with
    | None -> invalid_step "departure of unknown/inactive item %d" item_id
    | Some b ->
        let tok = Dbp_obs.Profile.enter t.profile in
        let stub =
          match Bin.find_active b item_id with
          | Some stub -> stub
          | None -> invalid_step "item %d not active in its bin %d" item_id b.Bin.id
        in
        Bin.remove b ~now stub;
        let bin_closed = not (Bin.is_open b) in
        if bin_closed then Open_index.remove t.open_index b;
        Hashtbl.remove t.item_bin item_id;
        Dbp_obs.Profile.leave t.profile "commit" tok;
        Log.debug (fun m ->
            m "t=%a item %d departs bin %d%s" Rat.pp now item_id b.Bin.id
              (if bin_closed then " (bin closes)" else ""));
        (* A no-op departure handler needs no views: skip both phases
           entirely (the shared [Policy.no_departure_handler] is
           physically recognisable). *)
        (if t.handlers.Policy.on_departure != Policy.no_departure_handler
         then begin
           let tok = Dbp_obs.Profile.enter t.profile in
           let views = open_bins t in
           Dbp_obs.Profile.leave t.profile "views" tok;
           let tok = Dbp_obs.Profile.enter t.profile in
           t.handlers.Policy.on_departure ~now ~bins:views ~item_id;
           Dbp_obs.Profile.leave t.profile "policy" tok
         end);
        Obs.emit t ~now (fun () ->
            Obs.E.Depart
              {
                item = item_id;
                bin = b.Bin.id;
                held = Rat.sub now stub.Item.arrival;
              });
        if bin_closed then
          Obs.emit t ~now (fun () ->
              Obs.E.Bin_close
                {
                  bin = b.Bin.id;
                  opened = b.Bin.opened;
                  cost = Rat.sub now b.Bin.opened;
                });
        Obs.with_metrics t (fun m ->
            Dbp_obs.Metrics.incr m "departures";
            Dbp_obs.Metrics.observe_rat m "item_held"
              (Rat.sub now stub.Item.arrival);
            if bin_closed then
              Obs.close_metrics m ~cost:(Rat.sub now b.Bin.opened);
            Obs.fleet_metrics t m);
        after_event t

  (* The clock is already advanced when this runs; the boxed time is
     materialised only if a bin closes or a real handler wants it. *)
  let depart_fast t f ~item_id ~now_s =
    let b =
      if item_id >= 0 && item_id < Array.length f.fi_bin then
        f.fi_bin.(item_id)
      else -2
    in
    if b < 0 then invalid_step "departure of unknown/inactive item %d" item_id;
    let tok = Dbp_obs.Profile.enter t.profile in
    f.fi_bin.(item_id) <- -1;
    f.fi_active <- f.fi_active - 1;
    let remaining = f.fb_active.(b) - 1 in
    f.fb_active.(b) <- remaining;
    (if remaining = 0 then begin
       f.fb_level.(b) <- 0;
       f.fb_closed.(b) <- Some (fast_now_rat f);
       f.fb_closed_s.(b) <- now_s;
       open_slot_remove f b
     end
     else begin
       f.fb_level.(b) <- f.fb_level.(b) - f.fi_size_s.(item_id);
       mark_dirty f b
     end);
    Dbp_obs.Profile.leave t.profile "commit" tok;
    (if t.handlers.Policy.on_departure != Policy.no_departure_handler
     then begin
       let tok = Dbp_obs.Profile.enter t.profile in
       let views = fast_views f in
       Dbp_obs.Profile.leave t.profile "views" tok;
       let tok = Dbp_obs.Profile.enter t.profile in
       t.handlers.Policy.on_departure ~now:(fast_now_rat f) ~bins:views ~item_id;
       Dbp_obs.Profile.leave t.profile "policy" tok
     end);
    if t.audit then audit_fast t f

  let depart t ~now ~item_id =
    match t.track with
    | Exact -> depart_exact t ~now ~item_id
    | Fast f -> (
        match Fixed.of_rat f.g now with
        | Some now_s ->
            fast_advance_clock f ~now ~now_s;
            depart_fast t f ~item_id ~now_s
        | None ->
            degrade t f;
            depart_exact t ~now ~item_id)

  (* Scaled-entry departure for the replay loop: the caller already
     knows the on-grid time, so the item record is never touched and
     no rational is built unless the event closes a bin.  [g] is the
     run's grid, needed only if the track degraded mid-run. *)
  let depart_scaled t g ~now_s ~item_id =
    match t.track with
    | Exact -> depart_exact t ~now:(Fixed.to_rat g now_s) ~item_id
    | Fast f ->
        fast_advance_clock_s f ~now_s;
        depart_fast t f ~item_id ~now_s

  let fail_bin_exact t ~now ~bin_id =
    advance_clock t now;
    match find_bin t bin_id with
    | None -> invalid_step "fail_bin: unknown bin %d" bin_id
    | Some b ->
        if not (Bin.is_open b) then
          invalid_step "fail_bin: bin %d is already closed" bin_id;
        (* Oldest-placement-first, so re-dispatch order is deterministic
           and independent of table internals. *)
        let stubs = Bin.active_oldest_first b in
        let victims =
          List.map (fun (r : Item.t) -> (r.Item.id, r.Item.size)) stubs
        in
        List.iter
          (fun (stub : Item.t) ->
            Bin.remove b ~now stub;
            Hashtbl.remove t.item_bin stub.Item.id)
          stubs;
        (* An open bin always holds at least one item, so the eviction
           loop emptied it and [Bin.remove] closed it at [now]: the bin
           is charged exactly for [opened, now]. *)
        assert (not (Bin.is_open b));
        Open_index.remove t.open_index b;
        (* Departure handlers only observe the fleet, they cannot mutate
           it, so every eviction notification sees the same post-crash
           views: compute them once per fault, not once per victim. *)
        (if t.handlers.Policy.on_departure != Policy.no_departure_handler
         then
           let views = open_bins t in
           List.iter
             (fun (item_id, _) ->
               t.handlers.Policy.on_departure ~now ~bins:views ~item_id)
             victims);
        Obs.emit t ~now (fun () ->
            Obs.E.Fail_bin
              {
                bin = bin_id;
                victims = List.length victims;
                lost_level =
                  List.fold_left
                    (fun acc (_, size) -> Rat.add acc size)
                    Rat.zero victims;
              });
        Obs.emit t ~now (fun () ->
            Obs.E.Bin_close
              {
                bin = bin_id;
                opened = b.Bin.opened;
                cost = Rat.sub now b.Bin.opened;
              });
        Obs.with_metrics t (fun m ->
            Dbp_obs.Metrics.incr m "bin_failures";
            Dbp_obs.Metrics.add m "items_evicted" (List.length victims);
            Obs.close_metrics m ~cost:(Rat.sub now b.Bin.opened);
            Obs.fleet_metrics t m);
        Log.debug (fun m ->
            m "t=%a bin %d FAILS, %d items evicted" Rat.pp now bin_id
              (List.length victims));
        after_event t;
        victims

  let fail_bin_fast t f ~now ~bin_id ~now_s =
    fast_advance_clock f ~now ~now_s;
    if bin_id < 0 || bin_id >= f.fb_len then
      invalid_step "fail_bin: unknown bin %d" bin_id;
    if Option.is_some f.fb_closed.(bin_id) then
      invalid_step "fail_bin: bin %d is already closed" bin_id;
    (* [fb_items_rev] is newest first; the fold re-reverses, so victims
       come out oldest placement first like the exact track. *)
    let victims =
      List.fold_left
        (fun acc i ->
          if f.fi_bin.(i) = bin_id then (i, f.fi_size.(i)) :: acc else acc)
        [] f.fb_items_rev.(bin_id)
    in
    List.iter
      (fun (i, _) ->
        f.fi_bin.(i) <- -1;
        f.fi_active <- f.fi_active - 1)
      victims;
    f.fb_active.(bin_id) <- 0;
    f.fb_level.(bin_id) <- 0;
    f.fb_closed.(bin_id) <- Some now;
    f.fb_closed_s.(bin_id) <- now_s;
    open_slot_remove f bin_id;
    (if t.handlers.Policy.on_departure != Policy.no_departure_handler
     then
       let views = fast_views f in
       List.iter
         (fun (item_id, _) ->
           t.handlers.Policy.on_departure ~now ~bins:views ~item_id)
         victims);
    if t.audit then audit_fast t f;
    victims

  let fail_bin t ~now ~bin_id =
    match t.track with
    | Exact -> fail_bin_exact t ~now ~bin_id
    | Fast f -> (
        match Fixed.of_rat f.g now with
        | Some now_s -> fail_bin_fast t f ~now ~bin_id ~now_s
        | None ->
            degrade t f;
            fail_bin_exact t ~now ~bin_id)

  (* Live migration: the limited-recourse repacking primitive
     (lib/repack).  The active item leaves its bin and re-enters
     [to_bin] at the same instant under a fresh id, so the effective
     instance stays segment-shaped (each id occupies exactly one bin
     over one interval) and [finish]/[Packing.validate] need no new
     cases.  Accounting splits exactly at [now]: if the move empties
     the source it closes and is charged for [opened, now] — precisely
     the bin-seconds a consolidation reclaims.  O(1): two hashtable
     updates, one doubly-linked unlink, no policy callback (migration
     is the repacker's decision, not the packing policy's; the policy
     observes the new fleet through its next views). *)
  let migrate_exact t ~now ~item_id ~to_bin ~new_item_id =
    advance_clock t now;
    let src =
      match Hashtbl.find_opt t.item_bin item_id with
      | Some b -> b
      | None -> invalid_step "migrate: unknown/inactive item %d" item_id
    in
    let dst =
      match find_bin t to_bin with
      | Some b -> b
      | None -> invalid_step "migrate: unknown destination bin %d" to_bin
    in
    if dst.Bin.id = src.Bin.id then
      invalid_step "migrate: item %d already lives in bin %d" item_id to_bin;
    if not (Bin.is_open dst) then
      invalid_step "migrate: destination bin %d is closed" to_bin;
    let stub =
      match Bin.find_active src item_id with
      | Some stub -> stub
      | None ->
          invalid_step "migrate: item %d not active in its bin %d" item_id
            src.Bin.id
    in
    let size = stub.Item.size in
    if not (Bin.fits dst ~size) then
      invalid_step "migrate: item %d (size %a) does not fit bin %d (residual %a)"
        item_id Rat.pp size to_bin Rat.pp (Bin.residual dst);
    if Hashtbl.mem t.seen_items new_item_id then
      invalid_step "migrate: item id %d reused" new_item_id;
    Hashtbl.add t.seen_items new_item_id ();
    let src_level_before = src.Bin.level
    and dst_level_before = dst.Bin.level in
    let tok = Dbp_obs.Profile.enter t.profile in
    Bin.remove src ~now stub;
    let src_closed = not (Bin.is_open src) in
    if src_closed then Open_index.remove t.open_index src;
    Hashtbl.remove t.item_bin item_id;
    let stub' =
      Item.make ~id:new_item_id ~size ~arrival:now
        ~departure:(Rat.add now Rat.one)
    in
    Bin.insert dst ~now stub';
    Hashtbl.replace t.item_bin new_item_id dst;
    Dbp_obs.Profile.leave t.profile "commit" tok;
    Obs.emit t ~now (fun () ->
        Obs.E.Migrate
          {
            item = item_id;
            new_item = new_item_id;
            from_bin = src.Bin.id;
            to_bin = dst.Bin.id;
            size;
          });
    if src_closed then
      Obs.emit t ~now (fun () ->
          Obs.E.Bin_close
            {
              bin = src.Bin.id;
              opened = src.Bin.opened;
              cost = Rat.sub now src.Bin.opened;
            });
    Obs.with_metrics t (fun m ->
        Dbp_obs.Metrics.incr m "migrations";
        Dbp_obs.Metrics.add_rat m "migrated_volume" size;
        if src_closed then
          Obs.close_metrics m ~cost:(Rat.sub now src.Bin.opened);
        Obs.fleet_metrics t m);
    Log.debug (fun m ->
        m "t=%a item %d (size %a) migrates bin %d -> bin %d as item %d%s"
          Rat.pp now item_id Rat.pp size src.Bin.id dst.Bin.id new_item_id
          (if src_closed then " (source closes)" else ""));
    if t.audit then
      Audit.check_move ~time:now ~size ~src ~dst ~src_level_before
        ~dst_level_before ~item_id ~new_item_id ();
    after_event t;
    src_closed

  let migrate_fast t f ~now ~item_id ~to_bin ~new_item_id ~now_s =
    fast_advance_clock f ~now ~now_s;
    let src =
      if item_id >= 0 && item_id < Array.length f.fi_bin then
        f.fi_bin.(item_id)
      else -2
    in
    if src < 0 then invalid_step "migrate: unknown/inactive item %d" item_id;
    if to_bin < 0 || to_bin >= f.fb_len then
      invalid_step "migrate: unknown destination bin %d" to_bin;
    if to_bin = src then
      invalid_step "migrate: item %d already lives in bin %d" item_id to_bin;
    if Option.is_some f.fb_closed.(to_bin) then
      invalid_step "migrate: destination bin %d is closed" to_bin;
    let size_s = f.fi_size_s.(item_id) in
    let size = f.fi_size.(item_id) in
    if f.fb_level.(to_bin) + size_s > f.fb_cap_s.(to_bin) then
      invalid_step "migrate: item %d (size %a) does not fit bin %d (residual %a)"
        item_id Rat.pp size to_bin Rat.pp
        (Fixed.to_rat f.g (f.fb_cap_s.(to_bin) - f.fb_level.(to_bin)));
    if new_item_id >= Array.length f.fi_bin then grow_item_arrays f new_item_id;
    if f.fi_bin.(new_item_id) <> -2 then
      invalid_step "migrate: item id %d reused" new_item_id;
    let tok = Dbp_obs.Profile.enter t.profile in
    (* Source side. *)
    f.fi_bin.(item_id) <- -1;
    let remaining = f.fb_active.(src) - 1 in
    f.fb_active.(src) <- remaining;
    let src_closed = remaining = 0 in
    (if src_closed then begin
       f.fb_level.(src) <- 0;
       f.fb_closed.(src) <- Some now;
       f.fb_closed_s.(src) <- now_s;
       open_slot_remove f src
     end
     else begin
       f.fb_level.(src) <- f.fb_level.(src) - size_s;
       mark_dirty f src
     end);
    (* Destination side, under the fresh id. *)
    f.fi_bin.(new_item_id) <- to_bin;
    f.fi_size_s.(new_item_id) <- size_s;
    f.fi_size.(new_item_id) <- size;
    f.fi_arrival.(new_item_id) <- now;
    f.fi_seen <- f.fi_seen + 1;
    if new_item_id > f.fi_max_seen then f.fi_max_seen <- new_item_id;
    f.fb_level.(to_bin) <- f.fb_level.(to_bin) + size_s;
    if f.fb_level.(to_bin) > f.fb_max.(to_bin) then
      f.fb_max.(to_bin) <- f.fb_level.(to_bin);
    f.fb_active.(to_bin) <- f.fb_active.(to_bin) + 1;
    f.fb_items_rev.(to_bin) <- new_item_id :: f.fb_items_rev.(to_bin);
    mark_dirty f to_bin;
    Dbp_obs.Profile.leave t.profile "commit" tok;
    if t.audit then audit_fast t f;
    src_closed

  let migrate t ~now ~item_id ~to_bin ~new_item_id =
    match t.track with
    | Exact -> migrate_exact t ~now ~item_id ~to_bin ~new_item_id
    | Fast f -> (
        match Fixed.of_rat f.g now with
        | Some now_s when new_item_id >= 0 && new_item_id <= max_fast_item ->
            migrate_fast t f ~now ~item_id ~to_bin ~new_item_id ~now_s
        | _ ->
            degrade t f;
            migrate_exact t ~now ~item_id ~to_bin ~new_item_id)

  let bin_of_item t item_id =
    match t.track with
    | Exact ->
        Hashtbl.find_opt t.item_bin item_id
        |> Option.map (fun (b : Bin.t) -> b.Bin.id)
    | Fast f ->
        if
          item_id >= 0
          && item_id < Array.length f.fi_bin
          && f.fi_bin.(item_id) >= 0
        then Some f.fi_bin.(item_id)
        else None

  let active_items_in t bin_id =
    match t.track with
    | Exact -> (
        match find_bin t bin_id with
        | None -> []
        | Some b ->
            List.map
              (fun (r : Item.t) -> (r.id, r.size))
              (Bin.active_newest_first b))
    | Fast f ->
        if bin_id < 0 || bin_id >= f.fb_len then []
        else
          List.filter_map
            (fun i ->
              if f.fi_bin.(i) = bin_id then Some (i, f.fi_size.(i)) else None)
            f.fb_items_rev.(bin_id)

  let level_of t bin_id =
    match t.track with
    | Exact -> (
        match find_bin t bin_id with
        | Some b when Bin.is_open b -> Some b.Bin.level
        | _ -> None)
    | Fast f ->
        if bin_id >= 0 && bin_id < f.fb_len && Option.is_none f.fb_closed.(bin_id)
        then Some (Fixed.to_rat f.g f.fb_level.(bin_id))
        else None

  (* Timeline and exact total cost from the per-bin records — the
     exact track's (and the fallback's) way. *)
  let timeline_and_cost_of_records records =
    let timeline =
      Array.to_list records
      |> List.concat_map (fun (b : Packing.bin_record) ->
             [ (b.opened, 1); (b.closed, -1) ])
      |> Step_fn.of_deltas
    in
    let total_cost =
      Array.fold_left
        (fun acc (b : Packing.bin_record) ->
          Rat.add acc (Rat.sub b.closed b.opened))
        Rat.zero records
    in
    (timeline, total_cost)

  (* The same two results straight off the scaled lifecycle times:
     usage periods sum as plain ints, and the timeline's breakpoints
     come from a radix sort of [(time_s << 1) | close-bit] keys
     instead of a rational comparison sort.  Every value converts
     exactly, so the results are bit-identical to
     [timeline_and_cost_of_records]; [None] (negative times or an
     overflowing sum) sends the caller there. *)
  let fast_timeline_and_cost f =
    let m = f.fb_len in
    if m = 0 then Some (Step_fn.empty, Rat.zero)
    else begin
      let keys = Array.make (2 * m) 0 in
      let total = ref 0 in
      match
        for id = 0 to m - 1 do
          let o = f.fb_opened_s.(id) and c = f.fb_closed_s.(id) in
          if o < 0 || c < 0 then raise Exit;
          keys.(2 * id) <- o lsl 1;
          keys.((2 * id) + 1) <- (c lsl 1) lor 1;
          total := Fixed.add !total (c - o)
        done
      with
      | exception Exit -> None
      | exception Fixed.Overflow -> None
      | () ->
          let keys = radix_sort_pos keys in
          let n2 = Array.length keys in
          let points = ref [] in
          let v = ref 0 in
          let i = ref 0 in
          while !i < n2 do
            let time = keys.(!i) lsr 1 in
            let d = ref 0 in
            while !i < n2 && keys.(!i) lsr 1 = time do
              d := !d + (if keys.(!i) land 1 = 0 then 1 else -1);
              incr i
            done;
            v := !v + !d;
            points := (Fixed.to_rat f.g time, !v) :: !points
          done;
          Some
            ( Step_fn.of_breakpoints (List.rev !points),
              Fixed.to_rat f.g !total )
    end

  (* The shared [finish] tail: assignment and result assembly from the
     per-bin records, identical for both tracks. *)
  let finish_tail t ~instance ~records ~timeline ~total_cost =
    let n = Instance.size instance in
    let assignment = Array.make n (-1) in
    Array.iter
      (fun (b : Packing.bin_record) ->
        List.iter
          (fun item_id ->
            if item_id < 0 || item_id >= n then
              invalid_step "item id %d outside instance" item_id;
            assignment.(item_id) <- b.bin_id)
          b.item_ids)
      records;
    Array.iteri
      (fun i bin_id ->
        if bin_id < 0 then invalid_step "item %d never packed" i)
      assignment;
    let packing =
      {
        Packing.instance;
        policy_name = "";
        bins = records;
        assignment;
        timeline;
        total_cost;
        max_bins = Step_fn.max_value timeline;
        any_fit_violations = t.violations;
      }
    in
    if t.audit then Audit.check_packing packing;
    packing

  let finish t ~instance =
    match t.track with
    | Exact ->
        if Hashtbl.length t.item_bin <> 0 then
          invalid_step "finish with %d items still active"
            (Hashtbl.length t.item_bin);
        let n = Instance.size instance in
        if Hashtbl.length t.seen_items <> n then
          invalid_step "instance has %d items but %d were stepped" n
            (Hashtbl.length t.seen_items);
        let records =
          Array.init t.bin_count (fun i ->
              let b = t.store.(i) in
              let closed =
                match b.Bin.closed with
                | Some c -> c
                | None -> invalid_step "bin %d never closed" b.Bin.id
              in
              {
                Packing.bin_id = b.Bin.id;
                tag = b.Bin.tag;
                capacity = b.Bin.capacity;
                opened = b.Bin.opened;
                closed;
                item_ids = List.rev b.Bin.all_items;
                placements = List.rev b.Bin.placements;
                max_level = b.Bin.max_level;
              })
        in
        let timeline, total_cost = timeline_and_cost_of_records records in
        finish_tail t ~instance ~records ~timeline ~total_cost
    | Fast f ->
        if f.fi_active <> 0 then
          invalid_step "finish with %d items still active" f.fi_active;
        let n = Instance.size instance in
        if f.fi_seen <> n then
          invalid_step "instance has %d items but %d were stepped" n f.fi_seen;
        let records =
          Array.init f.fb_len (fun id ->
              let closed =
                match f.fb_closed.(id) with
                | Some c -> c
                | None -> invalid_step "bin %d never closed" id
              in
              let item_ids = List.rev f.fb_items_rev.(id) in
              {
                Packing.bin_id = id;
                tag = f.fb_tag.(id);
                capacity = f.fb_cap.(id);
                opened = f.fb_opened.(id);
                closed;
                item_ids;
                placements =
                  List.map (fun i -> (f.fi_arrival.(i), i)) item_ids;
                max_level = Fixed.to_rat f.g f.fb_max.(id);
              })
        in
        let timeline, total_cost =
          match fast_timeline_and_cost f with
          | Some tc -> tc
          | None -> timeline_and_cost_of_records records
        in
        finish_tail t ~instance ~records ~timeline ~total_cost

  let bin_handle t bin_id =
    (* A live [Bin.t] alias only exists on the exact track; hand the
       caller one by leaving the fast track first.  Cold path (tests
       and post-mortems), so the one-off materialisation is fine. *)
    (match t.track with Fast f -> degrade t f | Exact -> ());
    find_bin t bin_id

  (* ---- checkpoint/restore ------------------------------------------- *)

  (* The frozen image keeps only the non-derivable engine state.  Per
     bin that is the identity, the lifecycle times and the placement
     history; [level], [all_items], the open index, [item_bin] and
     [seen_items] are all re-derived on thaw, so a snapshot cannot
     carry an internally inconsistent cache.  Active stubs are stored
     as (item id, size): the stub's arrival is its placement time by
     construction (see [arrive]), so it comes back from the placement
     list. *)
  module Frozen = struct
    type bin = {
      b_id : int;
      b_tag : string;
      b_capacity : Rat.t;
      b_opened : Rat.t;
      b_closed : Rat.t option;
      b_max_level : Rat.t;
      b_placements : (Rat.t * int) list;  (* oldest placement first *)
      b_active : (int * Rat.t) list;  (* (item, size), oldest first *)
    }

    type t = {
      s_capacity : Rat.t;
      s_clock : Rat.t option;
      s_violations : int;
      s_bins : bin list;  (* id order *)
      s_policy_state : string option;
    }
  end

  let freeze t : Frozen.t =
    let policy_state =
      match t.handlers.Policy.persistence with
      | Policy.Stateless -> None
      | Policy.Persistent io -> Some (io.Policy.save ())
      | Policy.Volatile ->
          invalid_step
            "freeze: the policy's internal state is volatile (no \
             save/load support), this run cannot checkpoint"
    in
    let bins =
      match t.track with
      | Exact ->
          List.init t.bin_count (fun id ->
              let b = t.store.(id) in
              {
                Frozen.b_id = b.Bin.id;
                b_tag = b.Bin.tag;
                b_capacity = b.Bin.capacity;
                b_opened = b.Bin.opened;
                b_closed = b.Bin.closed;
                b_max_level = b.Bin.max_level;
                b_placements = List.rev b.Bin.placements;
                b_active =
                  Bin.active_oldest_first b
                  |> List.map (fun (r : Item.t) -> (r.Item.id, r.Item.size));
              })
      | Fast f ->
          (* Straight off the scaled store: every field either is the
             cached exact box or converts exactly, so the snapshot
             bytes match an exact-track freeze bit for bit. *)
          List.init f.fb_len (fun id ->
              let items = List.rev f.fb_items_rev.(id) in
              {
                Frozen.b_id = id;
                b_tag = f.fb_tag.(id);
                b_capacity = f.fb_cap.(id);
                b_opened = f.fb_opened.(id);
                b_closed = f.fb_closed.(id);
                b_max_level = Fixed.to_rat f.g f.fb_max.(id);
                b_placements = List.map (fun i -> (f.fi_arrival.(i), i)) items;
                b_active =
                  List.filter_map
                    (fun i ->
                      if f.fi_bin.(i) = id then Some (i, f.fi_size.(i))
                      else None)
                    items;
              })
    in
    {
      Frozen.s_capacity = t.capacity;
      s_clock = now t;
      s_violations = t.violations;
      s_bins = bins;
      s_policy_state = policy_state;
    }

  let thaw ?(audit = false) ?sink ?metrics ?profile ?tag_capacity ~policy
      (frozen : Frozen.t) =
    let t =
      create ~audit ?sink ?metrics ?profile ?tag_capacity ~policy
        ~capacity:frozen.Frozen.s_capacity ()
    in
    (match (t.handlers.Policy.persistence, frozen.Frozen.s_policy_state) with
    | Policy.Stateless, None -> ()
    | Policy.Persistent io, Some blob -> io.Policy.load blob
    | Policy.Persistent _, None ->
        invalid_step
          "thaw: snapshot carries no state for stateful policy %s"
          policy.Policy.name
    | Policy.Stateless, Some _ ->
        invalid_step "thaw: snapshot carries state but policy %s is stateless"
          policy.Policy.name
    | Policy.Volatile, _ ->
        invalid_step "thaw: policy %s has volatile (unrestorable) state"
          policy.Policy.name);
    List.iteri
      (fun expected_id (fb : Frozen.bin) ->
        if fb.Frozen.b_id <> expected_id then
          invalid_step "thaw: bin ids not dense (found %d, expected %d)"
            fb.Frozen.b_id expected_id;
        let placed_at = Hashtbl.create 16 in
        List.iter
          (fun (time, item_id) -> Hashtbl.replace placed_at item_id time)
          fb.Frozen.b_placements;
        let active_items =
          List.map
            (fun (item_id, size) ->
              if Rat.sign size <= 0 then
                invalid_step "thaw: active item %d has size <= 0" item_id;
              match Hashtbl.find_opt placed_at item_id with
              | None ->
                  invalid_step
                    "thaw: active item %d has no placement in bin %d"
                    item_id fb.Frozen.b_id
              | Some arrival ->
                  (* Same placeholder departure as [arrive]'s stub. *)
                  Item.make ~id:item_id ~size ~arrival
                    ~departure:(Rat.add arrival Rat.one))
            fb.Frozen.b_active
        in
        (if fb.Frozen.b_closed = None && active_items = [] then
           invalid_step "thaw: open bin %d has no active items"
             fb.Frozen.b_id);
        (if fb.Frozen.b_closed <> None && active_items <> [] then
           invalid_step "thaw: closed bin %d still has active items"
             fb.Frozen.b_id);
        let b =
          Bin.restore ~id:fb.Frozen.b_id ~tag:fb.Frozen.b_tag
            ~capacity:fb.Frozen.b_capacity ~opened:fb.Frozen.b_opened
            ~closed:fb.Frozen.b_closed ~max_level:fb.Frozen.b_max_level
            ~placements:fb.Frozen.b_placements ~active_items
        in
        if Rat.(b.Bin.level > b.Bin.capacity) then
          invalid_step "thaw: bin %d over capacity" fb.Frozen.b_id;
        register_bin t b;
        if not (Bin.is_open b) then Open_index.remove t.open_index b;
        List.iter
          (fun (r : Item.t) -> Hashtbl.replace t.item_bin r.Item.id b)
          active_items;
        List.iter
          (fun (_, item_id) ->
            if Hashtbl.mem t.seen_items item_id then
              invalid_step "thaw: item id %d placed in two bins" item_id;
            Hashtbl.add t.seen_items item_id ())
          fb.Frozen.b_placements)
      frozen.Frozen.s_bins;
    t.clock <- frozen.Frozen.s_clock;
    t.violations <- frozen.Frozen.s_violations;
    (* Always re-audit the rebuilt state: thaw is rare, corruption
       expensive. *)
    audit_state t;
    t

  let track_name t = match t.track with Exact -> "exact" | Fast _ -> "fixed"
end

(* The run's common grid denominator: the lcm of every size/time
   denominator in the instance (capacity included), verified to admit
   every value within [Fixed.bound].  [None] means some value is off
   any affordable grid and the run must stay exact. *)
let grid_of_instance instance =
  let items = Instance.items instance in
  let add acc r = match acc with None -> None | Some s -> Fixed.including s r in
  let scale =
    Array.fold_left
      (fun acc (r : Item.t) ->
        add (add (add acc r.Item.size) r.Item.arrival) r.Item.departure)
      (add (Some Fixed.unit) (Instance.capacity instance))
      items
  in
  match scale with
  | None -> None
  | Some s ->
      let ok =
        Fixed.fits s (Instance.capacity instance)
        && Array.for_all
             (fun (r : Item.t) ->
               Fixed.fits s r.Item.size && Fixed.fits s r.Item.arrival
               && Fixed.fits s r.Item.departure)
             items
      in
      if ok then Some s else None

(* Streaming drivers (lib/serve) pick a grid by denominator up front;
   keeping the constructor here keeps Fixed confined (lint R7). *)
let grid_of_den = Fixed.scale_of_den

let apply_event online (e : Event.t) =
  match e.kind with
  | Event.Arrival ->
      ignore
        (Online.arrive online ~now:e.time ~size:e.item.Item.size
           ~item_id:e.item.Item.id)
  | Event.Departure -> Online.depart online ~now:e.time ~item_id:e.item.Item.id

let run ?audit ?sink ?metrics ?profile ?grid ?tag_capacity ?checkpoint_every
    ?on_checkpoint ~policy instance =
  let audit =
    (* Default from the environment so [DBP_AUDIT=1 dune runtest]
       audits the whole suite without touching any call site. *)
    match audit with Some b -> b | None -> Audit.enabled_from_env ()
  in
  (match checkpoint_every with
  | Some k when k <= 0 -> invalid_arg "Simulator.run: checkpoint_every <= 0"
  | _ -> ());
  let grid = match grid with Some g -> g | None -> grid_of_instance instance in
  let online =
    Online.create ~audit ?sink ?metrics ?profile ?grid ?tag_capacity ~policy
      ~capacity:(Instance.capacity instance) ()
  in
  let hook_after i =
    match (checkpoint_every, on_checkpoint) with
    | Some k, Some hook when (i + 1) mod k = 0 -> hook ~events_done:(i + 1) online
    | _ -> ()
  in
  (* Replay order as integer keys: [(time_s << 25) | (kind << 24) | id]
     with departures' kind bit 0 — integer order is exactly
     [Event.compare]'s (time, departures first, then item id; ids are
     unique), so the radix sort replaces both the event-record
     allocation and the comparison sort.  Only valid when every id can
     index a dense array and every time is an on-grid scaled integer
     small enough to keep the key positive; anything else replays the
     classic event array. *)
  let fast_keys () =
    match grid with
    | None -> None
    | Some g ->
        let items = Instance.items instance in
        let n = Array.length items in
        if n = 0 then None
        else
          let max_id =
            Array.fold_left (fun m (r : Item.t) -> max m r.Item.id) (-1) items
          in
          if max_id > max_fast_item || max_id >= (2 * n) + 1024 then None
          else begin
            let by_id = Array.make (max_id + 1) items.(0) in
            let seen = Array.make (max_id + 1) false in
            let keys = Array.make (2 * n) 0 in
            let lim = event_key_time_limit in
            match
              Array.iteri
                (fun i (r : Item.t) ->
                  if r.Item.id < 0 || seen.(r.Item.id) then raise Exit;
                  match
                    (Fixed.of_rat g r.Item.arrival, Fixed.of_rat g r.Item.departure)
                  with
                  | Some a, Some d when a >= 0 && d >= 0 && a < lim && d < lim ->
                      seen.(r.Item.id) <- true;
                      by_id.(r.Item.id) <- r;
                      keys.(2 * i) <-
                        pack_event_key ~time_s:a ~arrival:true ~id:r.Item.id;
                      keys.((2 * i) + 1) <-
                        pack_event_key ~time_s:d ~arrival:false ~id:r.Item.id
                  | _ -> raise Exit)
                items
            with
            | () -> Some (g, radix_sort_pos keys, by_id)
            | exception Exit -> None
          end
  in
  (match fast_keys () with
  | Some (g, keys, by_id) ->
      Array.iteri
        (fun i k ->
          let id = k land event_key_id_mask in
          (if k land event_key_kind_bit <> 0 then
             let r = by_id.(id) in
             ignore
               (Online.arrive online ~now:r.Item.arrival ~size:r.Item.size
                  ~item_id:id)
           else
             (* The key already encodes the on-grid departure time, so
                skip the [by_id] load entirely. *)
             Online.depart_scaled online g
               ~now_s:(k lsr event_key_time_shift) ~item_id:id);
          hook_after i)
        keys
  | None ->
      Array.iteri
        (fun i e ->
          apply_event online e;
          hook_after i)
        (Event.sorted_array_of_instance instance));
  let packing = Online.finish online ~instance in
  { packing with Packing.policy_name = policy.Policy.name }
