open Dbp_num

let log_src = Logs.Src.create "dbp.simulator" ~doc:"MinTotal DBP simulator"

module Log = (val Logs.src_log log_src : Logs.LOG)

exception Invalid_decision of string
exception Invalid_step of string

let invalid_decision fmt = Format.kasprintf (fun s -> raise (Invalid_decision s)) fmt
let invalid_step fmt = Format.kasprintf (fun s -> raise (Invalid_step s)) fmt

module Online = struct
  (* Engine invariants (see DESIGN.md "Simulator engine"):

     - [store.(id)] holds every bin ever opened, densely indexed by id,
       so resolving a policy's [Existing id] is an array read.
     - [open_index] tracks exactly the open subset in opening order;
       the view list handed to policies is assembled from it in
       O(open bins), with per-bin views memoised inside [Bin].
     - [item_bin] maps each *active* item id to its bin; the item's
       stub is recovered from the bin's keyed active table, so
       [depart] does no list scan at all.

     Per-event cost is therefore O(open bins) — independent of how
     many bins the run has ever opened. *)
  type t = {
    capacity : Rat.t;
    tag_capacity : string -> Rat.t;
    handlers : Policy.handlers;
    mutable store : Bin.t array;  (* all bins ever, dense by id *)
    mutable bin_count : int;
    open_index : Open_index.t;
    item_bin : (int, Bin.t) Hashtbl.t;  (* active item -> its bin *)
    seen_items : (int, unit) Hashtbl.t;
    mutable clock : Rat.t option;
    mutable violations : int;
    audit : bool;  (* re-verify every invariant after every event *)
    (* Observability taps (lib/obs).  All three default to [None]; the
       disabled cost is one pattern match per event, so production
       runs pay nothing measurable (the acceptance bound is <= 5% on
       events/second, see test/test_obs.ml and the bench). *)
    sink : Dbp_obs.Sink.t option;
    metrics : Dbp_obs.Metrics.t option;
    profile : Dbp_obs.Profile.t option;
  }

  (* Sanitizer pass (audit mode): re-derive the memoised engine state
     from scratch after an event and compare.  O(total bins + active
     items) per call, so audit runs cost O(n) per event where the
     production path is O(open bins) — acceptable for tests/CI, which
     is what the mode is for. *)
  let audit_state t =
    let time = t.clock in
    let fail ?bin_id ~check fmt = Audit.fail ?time ?bin_id ~check fmt in
    (* 1. Open-index doubly-linked invariants. *)
    (match Open_index.validate t.open_index with
    | Ok () -> ()
    | Error msg -> fail ~check:"open-index" "%s" msg);
    (* 2. Store vs index agreement: the index holds exactly the open
       subset of the store, and slots alias the stored bins. *)
    for id = 0 to t.bin_count - 1 do
      let b = t.store.(id) in
      if b.Bin.id <> id then
        fail ~check:"store" ~bin_id:id "store slot %d holds bin id %d" id
          b.Bin.id;
      if Bin.is_open b && not (Open_index.mem t.open_index b) then
        fail ~check:"store" ~bin_id:id "open bin missing from the open index";
      if (not (Bin.is_open b)) && Open_index.mem t.open_index b then
        fail ~check:"store" ~bin_id:id "closed bin still in the open index";
      (* A closed bin holds nothing: a migration or eviction that
         closed it must have drained its active table and level. *)
      if not (Bin.is_open b) then begin
        if Bin.active_count b <> 0 then
          fail ~check:"item-bin" ~bin_id:id
            "closed bin still holds %d active items" (Bin.active_count b);
        if not (Rat.is_zero b.Bin.level) then
          fail ~check:"item-bin" ~bin_id:id "closed bin retains level %s"
            (Rat.to_string b.Bin.level)
      end
    done;
    (* 3. Per-bin memoised state (level, view cache, capacity). *)
    Open_index.iter
      (fun b ->
        if not (b == t.store.(b.Bin.id)) then
          fail ~check:"store" ~bin_id:b.Bin.id
            "index member is not the stored bin";
        Audit.check_bin ?time b)
      t.open_index;
    (* 4. item_bin consistency: active items and bins agree both ways. *)
    let active_total = ref 0 in
    Open_index.iter
      (fun b -> active_total := !active_total + Bin.active_count b)
      t.open_index;
    if Hashtbl.length t.item_bin <> !active_total then
      fail ~check:"item-bin" "%d tracked items but %d active across open bins"
        (Hashtbl.length t.item_bin) !active_total;
    Hashtbl.iter
      (fun item_id (b : Bin.t) ->
        if not (Bin.is_open b) then
          fail ~check:"item-bin" ~bin_id:b.Bin.id
            "item %d tracked in a closed bin" item_id;
        match Bin.find_active b item_id with
        | Some _ -> ()
        | None ->
            fail ~check:"item-bin" ~bin_id:b.Bin.id
              "item %d tracked but not active in its bin" item_id)
      t.item_bin;
    (* Reverse direction: every active item is tracked, and tracked in
       the bin that holds it — together with the count equality above
       this pins each item to exactly one bin (the migration-
       conservation invariant: a move re-points, never duplicates). *)
    Open_index.iter
      (fun b ->
        Hashtbl.iter
          (fun item_id _ ->
            match Hashtbl.find_opt t.item_bin item_id with
            | Some owner when owner == b -> ()
            | Some (owner : Bin.t) ->
                fail ~check:"item-bin" ~bin_id:b.Bin.id
                  "item %d active here but tracked in bin %d" item_id
                  owner.Bin.id
            | None ->
                fail ~check:"item-bin" ~bin_id:b.Bin.id
                  "item %d active but untracked" item_id)
          b.Bin.active)
      t.open_index

  let audit = audit_state
  let after_event t = if t.audit then audit_state t

  let create ?(audit = false) ?sink ?metrics ?profile ?tag_capacity ~policy
      ~capacity () =
    if Rat.sign capacity <= 0 then
      invalid_arg "Online.create: capacity must be positive";
    let tag_capacity =
      match tag_capacity with Some f -> f | None -> fun _ -> capacity
    in
    {
      capacity;
      tag_capacity;
      handlers = policy.Policy.spawn ~capacity;
      store = [||];
      bin_count = 0;
      open_index = Open_index.create ();
      item_bin = Hashtbl.create 64;
      seen_items = Hashtbl.create 64;
      clock = None;
      violations = 0;
      audit;
      sink;
      metrics;
      profile;
    }

  let advance_clock t now =
    (match t.clock with
    | Some prev when Rat.(now < prev) ->
        invalid_step "time went backwards: %a after %a" Rat.pp now Rat.pp prev
    | _ -> ());
    t.clock <- Some now

  let now t = t.clock

  let open_bins t = Open_index.views t.open_index

  let find_bin t id =
    if id >= 0 && id < t.bin_count then Some t.store.(id) else None

  let register_bin t b =
    let n = Array.length t.store in
    if t.bin_count >= n then begin
      let store = Array.make (max 16 (2 * n)) b in
      Array.blit t.store 0 store 0 n;
      t.store <- store
    end;
    t.store.(t.bin_count) <- b;
    t.bin_count <- t.bin_count + 1;
    Open_index.add t.open_index b

  (* Observability emission helpers.  Each is one pattern match when
     the corresponding tap is off; event construction happens only
     inside the [Some] branch. *)
  module Obs = struct
    module E = Dbp_obs.Trace_event

    let emit t ~now kind_of =
      match t.sink with
      | None -> ()
      | Some s -> Dbp_obs.Sink.emit s ~time:now (kind_of ())

    let with_metrics t f =
      match t.metrics with None -> () | Some m -> f m

    (* Common to every event: the open-fleet gauge and its
       distribution over events (the "open-bin count" histogram). *)
    let fleet_metrics t m =
      let open_now = Open_index.cardinal t.open_index in
      Dbp_obs.Metrics.set_gauge m "open_bins" open_now;
      Dbp_obs.Metrics.observe_int m "open_bins" open_now

    (* A bin's usage period just ended (departure-close or failure):
       account its exact MinTotal contribution. *)
    let close_metrics m ~cost =
      Dbp_obs.Metrics.incr m "bins_closed";
      Dbp_obs.Metrics.add_rat m "bin_seconds" cost;
      Dbp_obs.Metrics.observe_rat m "bin_lifetime" cost
  end

  let arrive t ~now ~size ~item_id =
    advance_clock t now;
    if Rat.sign size <= 0 then invalid_step "item %d has size <= 0" item_id;
    if Hashtbl.mem t.seen_items item_id then
      invalid_step "item id %d reused" item_id;
    Hashtbl.add t.seen_items item_id ();
    let tok = Dbp_obs.Profile.enter t.profile in
    let views = open_bins t in
    Dbp_obs.Profile.leave t.profile "views" tok;
    let tok = Dbp_obs.Profile.enter t.profile in
    let decision = t.handlers.Policy.on_arrival ~now ~bins:views ~size ~item_id in
    Dbp_obs.Profile.leave t.profile "policy" tok;
    let tok = Dbp_obs.Profile.enter t.profile in
    let opened_new =
      match decision with Policy.New_bin _ -> true | Policy.Existing _ -> false
    in
    let target =
      match decision with
      | Policy.Existing id -> (
          match find_bin t id with
          | None -> invalid_decision "policy chose unknown bin %d" id
          | Some b ->
              if not (Bin.is_open b) then
                invalid_decision "policy chose closed bin %d" id
              else if not (Bin.fits b ~size) then
                invalid_decision "item %d does not fit in bin %d" item_id id
              else b)
      | Policy.New_bin tag ->
          if
            List.exists
              (fun (v : Bin.view) -> Rat.(size <= v.bin_residual))
              views
          then t.violations <- t.violations + 1;
          let cap = t.tag_capacity tag in
          if Rat.(size > cap) then
            invalid_decision
              "item %d (size %s) exceeds the capacity %s of a new '%s' bin"
              item_id (Rat.to_string size) (Rat.to_string cap) tag;
          let b = Bin.open_bin ~id:t.bin_count ~tag ~capacity:cap ~now in
          register_bin t b;
          b
    in
    (* The item's true departure time is not known yet; record a
       placeholder item and fix sizes/times from the instance at
       [finish].  Only id and size matter to the bin state. *)
    let stub =
      Item.make ~id:item_id ~size ~arrival:now
        ~departure:(Rat.add now Rat.one)
    in
    Bin.insert target ~now stub;
    Hashtbl.replace t.item_bin item_id target;
    Dbp_obs.Profile.leave t.profile "commit" tok;
    Obs.emit t ~now (fun () -> Obs.E.Arrive { item = item_id; size });
    if opened_new then
      Obs.emit t ~now (fun () ->
          Obs.E.Bin_open
            {
              bin = target.Bin.id;
              tag = target.Bin.tag;
              capacity = target.Bin.capacity;
            });
    Obs.emit t ~now (fun () ->
        Obs.E.Pack
          {
            item = item_id;
            bin = target.Bin.id;
            level = target.Bin.level;
            residual = Bin.residual target;
          });
    Obs.with_metrics t (fun m ->
        Dbp_obs.Metrics.incr m "arrivals";
        if opened_new then Dbp_obs.Metrics.incr m "bins_opened";
        Dbp_obs.Metrics.observe_rat m "utilisation_at_pack"
          (Rat.div target.Bin.level target.Bin.capacity);
        Obs.fleet_metrics t m);
    Log.debug (fun m ->
        m "t=%a item %d (size %a) -> bin %d [%s] level %a/%a" Rat.pp now
          item_id Rat.pp size target.Bin.id target.Bin.tag Rat.pp
          target.Bin.level Rat.pp target.Bin.capacity);
    after_event t;
    target.Bin.id

  let depart t ~now ~item_id =
    advance_clock t now;
    match Hashtbl.find_opt t.item_bin item_id with
    | None -> invalid_step "departure of unknown/inactive item %d" item_id
    | Some b ->
        let tok = Dbp_obs.Profile.enter t.profile in
        let stub =
          match Bin.find_active b item_id with
          | Some stub -> stub
          | None -> invalid_step "item %d not active in its bin %d" item_id b.Bin.id
        in
        Bin.remove b ~now stub;
        let bin_closed = not (Bin.is_open b) in
        if bin_closed then Open_index.remove t.open_index b;
        Hashtbl.remove t.item_bin item_id;
        Dbp_obs.Profile.leave t.profile "commit" tok;
        Log.debug (fun m ->
            m "t=%a item %d departs bin %d%s" Rat.pp now item_id b.Bin.id
              (if bin_closed then " (bin closes)" else ""));
        let tok = Dbp_obs.Profile.enter t.profile in
        let views = open_bins t in
        Dbp_obs.Profile.leave t.profile "views" tok;
        let tok = Dbp_obs.Profile.enter t.profile in
        t.handlers.Policy.on_departure ~now ~bins:views ~item_id;
        Dbp_obs.Profile.leave t.profile "policy" tok;
        Obs.emit t ~now (fun () ->
            Obs.E.Depart
              {
                item = item_id;
                bin = b.Bin.id;
                held = Rat.sub now stub.Item.arrival;
              });
        if bin_closed then
          Obs.emit t ~now (fun () ->
              Obs.E.Bin_close
                {
                  bin = b.Bin.id;
                  opened = b.Bin.opened;
                  cost = Rat.sub now b.Bin.opened;
                });
        Obs.with_metrics t (fun m ->
            Dbp_obs.Metrics.incr m "departures";
            Dbp_obs.Metrics.observe_rat m "item_held"
              (Rat.sub now stub.Item.arrival);
            if bin_closed then
              Obs.close_metrics m ~cost:(Rat.sub now b.Bin.opened);
            Obs.fleet_metrics t m);
        after_event t

  let fail_bin t ~now ~bin_id =
    advance_clock t now;
    match find_bin t bin_id with
    | None -> invalid_step "fail_bin: unknown bin %d" bin_id
    | Some b ->
        if not (Bin.is_open b) then
          invalid_step "fail_bin: bin %d is already closed" bin_id;
        (* Oldest-placement-first, so re-dispatch order is deterministic
           and independent of table internals. *)
        let stubs = Bin.active_oldest_first b in
        let victims =
          List.map (fun (r : Item.t) -> (r.Item.id, r.Item.size)) stubs
        in
        List.iter
          (fun (stub : Item.t) ->
            Bin.remove b ~now stub;
            Hashtbl.remove t.item_bin stub.Item.id)
          stubs;
        (* An open bin always holds at least one item, so the eviction
           loop emptied it and [Bin.remove] closed it at [now]: the bin
           is charged exactly for [opened, now]. *)
        assert (not (Bin.is_open b));
        Open_index.remove t.open_index b;
        (* Departure handlers only observe the fleet, they cannot mutate
           it, so every eviction notification sees the same post-crash
           views: compute them once per fault, not once per victim. *)
        let views = open_bins t in
        List.iter
          (fun (item_id, _) ->
            t.handlers.Policy.on_departure ~now ~bins:views ~item_id)
          victims;
        Obs.emit t ~now (fun () ->
            Obs.E.Fail_bin
              {
                bin = bin_id;
                victims = List.length victims;
                lost_level = Rat.sum (List.map snd victims);
              });
        Obs.emit t ~now (fun () ->
            Obs.E.Bin_close
              {
                bin = bin_id;
                opened = b.Bin.opened;
                cost = Rat.sub now b.Bin.opened;
              });
        Obs.with_metrics t (fun m ->
            Dbp_obs.Metrics.incr m "bin_failures";
            Dbp_obs.Metrics.add m "items_evicted" (List.length victims);
            Obs.close_metrics m ~cost:(Rat.sub now b.Bin.opened);
            Obs.fleet_metrics t m);
        Log.debug (fun m ->
            m "t=%a bin %d FAILS, %d items evicted" Rat.pp now bin_id
              (List.length victims));
        after_event t;
        victims

  (* Live migration: the limited-recourse repacking primitive
     (lib/repack).  The active item leaves its bin and re-enters
     [to_bin] at the same instant under a fresh id, so the effective
     instance stays segment-shaped (each id occupies exactly one bin
     over one interval) and [finish]/[Packing.validate] need no new
     cases.  Accounting splits exactly at [now]: if the move empties
     the source it closes and is charged for [opened, now] — precisely
     the bin-seconds a consolidation reclaims.  O(1): two hashtable
     updates, one doubly-linked unlink, no policy callback (migration
     is the repacker's decision, not the packing policy's; the policy
     observes the new fleet through its next views). *)
  let migrate t ~now ~item_id ~to_bin ~new_item_id =
    advance_clock t now;
    let src =
      match Hashtbl.find_opt t.item_bin item_id with
      | Some b -> b
      | None -> invalid_step "migrate: unknown/inactive item %d" item_id
    in
    let dst =
      match find_bin t to_bin with
      | Some b -> b
      | None -> invalid_step "migrate: unknown destination bin %d" to_bin
    in
    if dst.Bin.id = src.Bin.id then
      invalid_step "migrate: item %d already lives in bin %d" item_id to_bin;
    if not (Bin.is_open dst) then
      invalid_step "migrate: destination bin %d is closed" to_bin;
    let stub =
      match Bin.find_active src item_id with
      | Some stub -> stub
      | None ->
          invalid_step "migrate: item %d not active in its bin %d" item_id
            src.Bin.id
    in
    let size = stub.Item.size in
    if not (Bin.fits dst ~size) then
      invalid_step "migrate: item %d (size %a) does not fit bin %d (residual %a)"
        item_id Rat.pp size to_bin Rat.pp (Bin.residual dst);
    if Hashtbl.mem t.seen_items new_item_id then
      invalid_step "migrate: item id %d reused" new_item_id;
    Hashtbl.add t.seen_items new_item_id ();
    let src_level_before = src.Bin.level
    and dst_level_before = dst.Bin.level in
    let tok = Dbp_obs.Profile.enter t.profile in
    Bin.remove src ~now stub;
    let src_closed = not (Bin.is_open src) in
    if src_closed then Open_index.remove t.open_index src;
    Hashtbl.remove t.item_bin item_id;
    let stub' =
      Item.make ~id:new_item_id ~size ~arrival:now
        ~departure:(Rat.add now Rat.one)
    in
    Bin.insert dst ~now stub';
    Hashtbl.replace t.item_bin new_item_id dst;
    Dbp_obs.Profile.leave t.profile "commit" tok;
    Obs.emit t ~now (fun () ->
        Obs.E.Migrate
          {
            item = item_id;
            new_item = new_item_id;
            from_bin = src.Bin.id;
            to_bin = dst.Bin.id;
            size;
          });
    if src_closed then
      Obs.emit t ~now (fun () ->
          Obs.E.Bin_close
            {
              bin = src.Bin.id;
              opened = src.Bin.opened;
              cost = Rat.sub now src.Bin.opened;
            });
    Obs.with_metrics t (fun m ->
        Dbp_obs.Metrics.incr m "migrations";
        Dbp_obs.Metrics.add_rat m "migrated_volume" size;
        if src_closed then
          Obs.close_metrics m ~cost:(Rat.sub now src.Bin.opened);
        Obs.fleet_metrics t m);
    Log.debug (fun m ->
        m "t=%a item %d (size %a) migrates bin %d -> bin %d as item %d%s"
          Rat.pp now item_id Rat.pp size src.Bin.id dst.Bin.id new_item_id
          (if src_closed then " (source closes)" else ""));
    if t.audit then
      Audit.check_move ~time:now ~size ~src ~dst ~src_level_before
        ~dst_level_before ~item_id ~new_item_id ();
    after_event t;
    src_closed

  let bin_of_item t item_id =
    Hashtbl.find_opt t.item_bin item_id
    |> Option.map (fun (b : Bin.t) -> b.id)

  let active_items_in t bin_id =
    match find_bin t bin_id with
    | None -> []
    | Some b ->
        List.map
          (fun (r : Item.t) -> (r.id, r.size))
          (Bin.active_newest_first b)

  let level_of t bin_id =
    match find_bin t bin_id with
    | Some b when Bin.is_open b -> Some b.Bin.level
    | _ -> None

  let finish t ~instance =
    if Hashtbl.length t.item_bin <> 0 then
      invalid_step "finish with %d items still active"
        (Hashtbl.length t.item_bin);
    let n = Instance.size instance in
    if Hashtbl.length t.seen_items <> n then
      invalid_step "instance has %d items but %d were stepped" n
        (Hashtbl.length t.seen_items);
    let records =
      Array.init t.bin_count (fun i ->
          let b = t.store.(i) in
          let closed =
            match b.Bin.closed with
            | Some c -> c
            | None -> invalid_step "bin %d never closed" b.Bin.id
          in
          {
            Packing.bin_id = b.Bin.id;
            tag = b.Bin.tag;
            capacity = b.Bin.capacity;
            opened = b.Bin.opened;
            closed;
            item_ids = List.rev b.Bin.all_items;
            placements = List.rev b.Bin.placements;
            max_level = b.Bin.max_level;
          })
    in
    let assignment = Array.make n (-1) in
    Array.iter
      (fun (b : Packing.bin_record) ->
        List.iter
          (fun item_id ->
            if item_id < 0 || item_id >= n then
              invalid_step "item id %d outside instance" item_id;
            assignment.(item_id) <- b.bin_id)
          b.item_ids)
      records;
    Array.iteri
      (fun i bin_id ->
        if bin_id < 0 then invalid_step "item %d never packed" i)
      assignment;
    let timeline =
      Array.to_list records
      |> List.concat_map (fun (b : Packing.bin_record) ->
             [ (b.opened, 1); (b.closed, -1) ])
      |> Step_fn.of_deltas
    in
    let total_cost =
      Array.fold_left
        (fun acc (b : Packing.bin_record) ->
          Rat.add acc (Rat.sub b.closed b.opened))
        Rat.zero records
    in
    let packing =
      {
        Packing.instance;
        policy_name = "";
        bins = records;
        assignment;
        timeline;
        total_cost;
        max_bins = Step_fn.max_value timeline;
        any_fit_violations = t.violations;
      }
    in
    if t.audit then Audit.check_packing packing;
    packing

  let bin_handle t bin_id = find_bin t bin_id

  (* ---- checkpoint/restore ------------------------------------------- *)

  (* The frozen image keeps only the non-derivable engine state.  Per
     bin that is the identity, the lifecycle times and the placement
     history; [level], [all_items], the open index, [item_bin] and
     [seen_items] are all re-derived on thaw, so a snapshot cannot
     carry an internally inconsistent cache.  Active stubs are stored
     as (item id, size): the stub's arrival is its placement time by
     construction (see [arrive]), so it comes back from the placement
     list. *)
  module Frozen = struct
    type bin = {
      b_id : int;
      b_tag : string;
      b_capacity : Rat.t;
      b_opened : Rat.t;
      b_closed : Rat.t option;
      b_max_level : Rat.t;
      b_placements : (Rat.t * int) list;  (* oldest placement first *)
      b_active : (int * Rat.t) list;  (* (item, size), oldest first *)
    }

    type t = {
      s_capacity : Rat.t;
      s_clock : Rat.t option;
      s_violations : int;
      s_bins : bin list;  (* id order *)
      s_policy_state : string option;
    }
  end

  let freeze t : Frozen.t =
    let policy_state =
      match t.handlers.Policy.persistence with
      | Policy.Stateless -> None
      | Policy.Persistent io -> Some (io.Policy.save ())
      | Policy.Volatile ->
          invalid_step
            "freeze: the policy's internal state is volatile (no \
             save/load support), this run cannot checkpoint"
    in
    let bins =
      List.init t.bin_count (fun id ->
          let b = t.store.(id) in
          {
            Frozen.b_id = b.Bin.id;
            b_tag = b.Bin.tag;
            b_capacity = b.Bin.capacity;
            b_opened = b.Bin.opened;
            b_closed = b.Bin.closed;
            b_max_level = b.Bin.max_level;
            b_placements = List.rev b.Bin.placements;
            b_active =
              Bin.active_oldest_first b
              |> List.map (fun (r : Item.t) -> (r.Item.id, r.Item.size));
          })
    in
    {
      Frozen.s_capacity = t.capacity;
      s_clock = t.clock;
      s_violations = t.violations;
      s_bins = bins;
      s_policy_state = policy_state;
    }

  let thaw ?(audit = false) ?sink ?metrics ?profile ?tag_capacity ~policy
      (frozen : Frozen.t) =
    let t =
      create ~audit ?sink ?metrics ?profile ?tag_capacity ~policy
        ~capacity:frozen.Frozen.s_capacity ()
    in
    (match (t.handlers.Policy.persistence, frozen.Frozen.s_policy_state) with
    | Policy.Stateless, None -> ()
    | Policy.Persistent io, Some blob -> io.Policy.load blob
    | Policy.Persistent _, None ->
        invalid_step
          "thaw: snapshot carries no state for stateful policy %s"
          policy.Policy.name
    | Policy.Stateless, Some _ ->
        invalid_step "thaw: snapshot carries state but policy %s is stateless"
          policy.Policy.name
    | Policy.Volatile, _ ->
        invalid_step "thaw: policy %s has volatile (unrestorable) state"
          policy.Policy.name);
    List.iteri
      (fun expected_id (fb : Frozen.bin) ->
        if fb.Frozen.b_id <> expected_id then
          invalid_step "thaw: bin ids not dense (found %d, expected %d)"
            fb.Frozen.b_id expected_id;
        let placed_at = Hashtbl.create 16 in
        List.iter
          (fun (time, item_id) -> Hashtbl.replace placed_at item_id time)
          fb.Frozen.b_placements;
        let active_items =
          List.map
            (fun (item_id, size) ->
              if Rat.sign size <= 0 then
                invalid_step "thaw: active item %d has size <= 0" item_id;
              match Hashtbl.find_opt placed_at item_id with
              | None ->
                  invalid_step
                    "thaw: active item %d has no placement in bin %d"
                    item_id fb.Frozen.b_id
              | Some arrival ->
                  (* Same placeholder departure as [arrive]'s stub. *)
                  Item.make ~id:item_id ~size ~arrival
                    ~departure:(Rat.add arrival Rat.one))
            fb.Frozen.b_active
        in
        (if fb.Frozen.b_closed = None && active_items = [] then
           invalid_step "thaw: open bin %d has no active items"
             fb.Frozen.b_id);
        (if fb.Frozen.b_closed <> None && active_items <> [] then
           invalid_step "thaw: closed bin %d still has active items"
             fb.Frozen.b_id);
        let b =
          Bin.restore ~id:fb.Frozen.b_id ~tag:fb.Frozen.b_tag
            ~capacity:fb.Frozen.b_capacity ~opened:fb.Frozen.b_opened
            ~closed:fb.Frozen.b_closed ~max_level:fb.Frozen.b_max_level
            ~placements:fb.Frozen.b_placements ~active_items
        in
        if Rat.(b.Bin.level > b.Bin.capacity) then
          invalid_step "thaw: bin %d over capacity" fb.Frozen.b_id;
        register_bin t b;
        if not (Bin.is_open b) then Open_index.remove t.open_index b;
        List.iter
          (fun (r : Item.t) -> Hashtbl.replace t.item_bin r.Item.id b)
          active_items;
        List.iter
          (fun (_, item_id) ->
            if Hashtbl.mem t.seen_items item_id then
              invalid_step "thaw: item id %d placed in two bins" item_id;
            Hashtbl.add t.seen_items item_id ())
          fb.Frozen.b_placements)
      frozen.Frozen.s_bins;
    t.clock <- frozen.Frozen.s_clock;
    t.violations <- frozen.Frozen.s_violations;
    (* Always re-audit the rebuilt state: thaw is rare, corruption
       expensive. *)
    audit_state t;
    t
end

let apply_event online (e : Event.t) =
  match e.kind with
  | Event.Arrival ->
      ignore
        (Online.arrive online ~now:e.time ~size:e.item.Item.size
           ~item_id:e.item.Item.id)
  | Event.Departure -> Online.depart online ~now:e.time ~item_id:e.item.Item.id

let run ?audit ?sink ?metrics ?profile ?tag_capacity ?checkpoint_every
    ?on_checkpoint ~policy instance =
  let audit =
    (* Default from the environment so [DBP_AUDIT=1 dune runtest]
       audits the whole suite without touching any call site. *)
    match audit with Some b -> b | None -> Audit.enabled_from_env ()
  in
  (match checkpoint_every with
  | Some k when k <= 0 -> invalid_arg "Simulator.run: checkpoint_every <= 0"
  | _ -> ());
  let online =
    Online.create ~audit ?sink ?metrics ?profile ?tag_capacity ~policy
      ~capacity:(Instance.capacity instance) ()
  in
  List.iteri
    (fun i e ->
      apply_event online e;
      match (checkpoint_every, on_checkpoint) with
      | Some k, Some hook when (i + 1) mod k = 0 ->
          hook ~events_done:(i + 1) online
      | _ -> ())
    (Event.of_instance instance);
  let packing = Online.finish online ~instance in
  { packing with Packing.policy_name = policy.Policy.name }
