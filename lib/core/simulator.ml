open Dbp_num

let log_src = Logs.Src.create "dbp.simulator" ~doc:"MinTotal DBP simulator"

module Log = (val Logs.src_log log_src : Logs.LOG)

exception Invalid_decision of string
exception Invalid_step of string

let invalid_decision fmt = Format.kasprintf (fun s -> raise (Invalid_decision s)) fmt
let invalid_step fmt = Format.kasprintf (fun s -> raise (Invalid_step s)) fmt

module Online = struct
  type t = {
    capacity : Rat.t;
    tag_capacity : string -> Rat.t;
    handlers : Policy.handlers;
    mutable bins : Bin.t list;  (* all bins ever, reverse opening order *)
    mutable next_bin_id : int;
    item_bin : (int, Bin.t) Hashtbl.t;  (* active item -> its bin *)
    seen_items : (int, unit) Hashtbl.t;
    mutable clock : Rat.t option;
    mutable violations : int;
  }

  let create ?tag_capacity ~policy ~capacity () =
    if Rat.sign capacity <= 0 then
      invalid_arg "Online.create: capacity must be positive";
    let tag_capacity =
      match tag_capacity with Some f -> f | None -> fun _ -> capacity
    in
    {
      capacity;
      tag_capacity;
      handlers = policy.Policy.spawn ~capacity;
      bins = [];
      next_bin_id = 0;
      item_bin = Hashtbl.create 64;
      seen_items = Hashtbl.create 64;
      clock = None;
      violations = 0;
    }

  let advance_clock t now =
    (match t.clock with
    | Some prev when Rat.(now < prev) ->
        invalid_step "time went backwards: %a after %a" Rat.pp now Rat.pp prev
    | _ -> ());
    t.clock <- Some now

  let now t = t.clock

  let open_bin_views t =
    (* [t.bins] is in reverse opening order; present opening order. *)
    List.rev t.bins
    |> List.filter Bin.is_open
    |> List.map Bin.to_view

  let open_bins = open_bin_views

  let find_bin t id = List.find_opt (fun (b : Bin.t) -> b.id = id) t.bins

  let arrive t ~now ~size ~item_id =
    advance_clock t now;
    if Rat.sign size <= 0 then invalid_step "item %d has size <= 0" item_id;
    if Hashtbl.mem t.seen_items item_id then
      invalid_step "item id %d reused" item_id;
    Hashtbl.add t.seen_items item_id ();
    let views = open_bin_views t in
    let decision = t.handlers.Policy.on_arrival ~now ~bins:views ~size ~item_id in
    let target =
      match decision with
      | Policy.Existing id -> (
          match find_bin t id with
          | None -> invalid_decision "policy chose unknown bin %d" id
          | Some b ->
              if not (Bin.is_open b) then
                invalid_decision "policy chose closed bin %d" id
              else if not (Bin.fits b ~size) then
                invalid_decision "item %d does not fit in bin %d" item_id id
              else b)
      | Policy.New_bin tag ->
          if
            List.exists
              (fun (v : Bin.view) -> Rat.(size <= v.bin_residual))
              views
          then t.violations <- t.violations + 1;
          let cap = t.tag_capacity tag in
          if Rat.(size > cap) then
            invalid_decision
              "item %d (size %s) exceeds the capacity %s of a new '%s' bin"
              item_id (Rat.to_string size) (Rat.to_string cap) tag;
          let b = Bin.open_bin ~id:t.next_bin_id ~tag ~capacity:cap ~now in
          t.next_bin_id <- t.next_bin_id + 1;
          t.bins <- b :: t.bins;
          b
    in
    (* The item's true departure time is not known yet; record a
       placeholder item and fix sizes/times from the instance at
       [finish].  Only id and size matter to the bin state. *)
    let stub =
      Item.make ~id:item_id ~size ~arrival:now
        ~departure:(Rat.add now Rat.one)
    in
    Bin.insert target ~now stub;
    Hashtbl.replace t.item_bin item_id target;
    Log.debug (fun m ->
        m "t=%a item %d (size %a) -> bin %d [%s] level %a/%a" Rat.pp now
          item_id Rat.pp size target.Bin.id target.Bin.tag Rat.pp
          target.Bin.level Rat.pp target.Bin.capacity);
    target.Bin.id

  let depart t ~now ~item_id =
    advance_clock t now;
    match Hashtbl.find_opt t.item_bin item_id with
    | None -> invalid_step "departure of unknown/inactive item %d" item_id
    | Some b ->
        let stub =
          List.find (fun (r : Item.t) -> r.id = item_id) b.Bin.active
        in
        Bin.remove b ~now stub;
        Hashtbl.remove t.item_bin item_id;
        Log.debug (fun m ->
            m "t=%a item %d departs bin %d%s" Rat.pp now item_id b.Bin.id
              (if Bin.is_open b then "" else " (bin closes)"));
        let views = open_bin_views t in
        t.handlers.Policy.on_departure ~now ~bins:views ~item_id

  let fail_bin t ~now ~bin_id =
    advance_clock t now;
    match find_bin t bin_id with
    | None -> invalid_step "fail_bin: unknown bin %d" bin_id
    | Some b ->
        if not (Bin.is_open b) then
          invalid_step "fail_bin: bin %d is already closed" bin_id;
        (* Oldest-placement-first, so re-dispatch order is deterministic
           and independent of list internals. *)
        let victims =
          List.rev_map (fun (r : Item.t) -> (r.Item.id, r.Item.size)) b.Bin.active
        in
        List.iter
          (fun (item_id, _) ->
            let stub =
              List.find (fun (r : Item.t) -> r.Item.id = item_id) b.Bin.active
            in
            Bin.remove b ~now stub;
            Hashtbl.remove t.item_bin item_id)
          victims;
        (* An open bin always holds at least one item, so the eviction
           loop emptied it and [Bin.remove] closed it at [now]: the bin
           is charged exactly for [opened, now]. *)
        assert (not (Bin.is_open b));
        List.iter
          (fun (item_id, _) ->
            let views = open_bin_views t in
            t.handlers.Policy.on_departure ~now ~bins:views ~item_id)
          victims;
        Log.debug (fun m ->
            m "t=%a bin %d FAILS, %d items evicted" Rat.pp now bin_id
              (List.length victims));
        victims

  let bin_of_item t item_id =
    Hashtbl.find_opt t.item_bin item_id
    |> Option.map (fun (b : Bin.t) -> b.id)

  let active_items_in t bin_id =
    match find_bin t bin_id with
    | None -> []
    | Some b ->
        List.map (fun (r : Item.t) -> (r.id, r.size)) b.Bin.active

  let level_of t bin_id =
    match find_bin t bin_id with
    | Some b when Bin.is_open b -> Some b.Bin.level
    | _ -> None

  let finish t ~instance =
    if Hashtbl.length t.item_bin <> 0 then
      invalid_step "finish with %d items still active"
        (Hashtbl.length t.item_bin);
    let n = Instance.size instance in
    if Hashtbl.length t.seen_items <> n then
      invalid_step "instance has %d items but %d were stepped" n
        (Hashtbl.length t.seen_items);
    let bins_in_order = List.rev t.bins in
    let records =
      List.map
        (fun (b : Bin.t) ->
          let closed =
            match b.closed with
            | Some c -> c
            | None -> invalid_step "bin %d never closed" b.id
          in
          {
            Packing.bin_id = b.id;
            tag = b.tag;
            capacity = b.capacity;
            opened = b.opened;
            closed;
            item_ids = List.rev b.all_items;
            placements = List.rev b.placements;
            max_level = b.max_level;
          })
        bins_in_order
      |> Array.of_list
    in
    let assignment = Array.make n (-1) in
    Array.iter
      (fun (b : Packing.bin_record) ->
        List.iter
          (fun item_id ->
            if item_id < 0 || item_id >= n then
              invalid_step "item id %d outside instance" item_id;
            assignment.(item_id) <- b.bin_id)
          b.item_ids)
      records;
    Array.iteri
      (fun i bin_id ->
        if bin_id < 0 then invalid_step "item %d never packed" i)
      assignment;
    let timeline =
      Array.to_list records
      |> List.concat_map (fun (b : Packing.bin_record) ->
             [ (b.opened, 1); (b.closed, -1) ])
      |> Step_fn.of_deltas
    in
    let total_cost =
      Array.to_list records
      |> List.map (fun (b : Packing.bin_record) -> Rat.sub b.closed b.opened)
      |> Rat.sum
    in
    {
      Packing.instance;
      policy_name = "";
      bins = records;
      assignment;
      timeline;
      total_cost;
      max_bins = Step_fn.max_value timeline;
      any_fit_violations = t.violations;
    }
end

let run ?tag_capacity ~policy instance =
  let online =
    Online.create ?tag_capacity ~policy
      ~capacity:(Instance.capacity instance) ()
  in
  List.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Arrival ->
          ignore
            (Online.arrive online ~now:e.time ~size:e.item.Item.size
               ~item_id:e.item.Item.id)
      | Event.Departure -> Online.depart online ~now:e.time ~item_id:e.item.Item.id)
    (Event.of_instance instance);
  let packing = Online.finish online ~instance in
  { packing with Packing.policy_name = policy.Policy.name }
