(** Random Fit: place each arriving item into a fitting open bin chosen
    uniformly at random; open a new bin only when none fits.  A
    randomised member of the Any Fit family, so Theorem 1's lower bound
    applies to it in expectation.  Deterministic given the seed; each
    simulation run re-derives its stream from the seed, so repeated
    runs of the same policy value coincide. *)

val policy : seed:int64 -> Policy.t
