open Dbp_num

type t = { items : Item.t array; capacity : Rat.t }

let create ~capacity items =
  if Rat.sign capacity <= 0 then
    invalid_arg "Instance.create: capacity must be positive";
  if items = [] then invalid_arg "Instance.create: empty item list";
  List.iter
    (fun (r : Item.t) ->
      if Rat.(r.size > capacity) then
        invalid_arg
          (Format.asprintf "Instance.create: %a exceeds capacity %a" Item.pp r
             Rat.pp capacity))
    items;
  let items =
    Array.of_list
      (List.mapi
         (fun id (r : Item.t) ->
           Item.make ~id ~size:r.size ~arrival:r.arrival
             ~departure:r.departure)
         items)
  in
  { items; capacity }

let items t = t.items
let capacity t = t.capacity
let size t = Array.length t.items
let item t i = t.items.(i)

let fold_items f init t = Array.fold_left f init t.items

let packing_period t =
  let first =
    fold_items (fun acc (r : Item.t) -> Rat.min acc r.arrival)
      (t.items.(0)).Item.arrival t
  in
  let last =
    fold_items (fun acc (r : Item.t) -> Rat.max acc r.departure)
      (t.items.(0)).Item.departure t
  in
  Interval.make first last

let span t =
  Interval.union_measure (Array.to_list (Array.map Item.interval t.items))

let total_demand t =
  fold_items (fun acc r -> Rat.add acc (Item.demand r)) Rat.zero t

let min_interval_length t =
  fold_items (fun acc r -> Rat.min acc (Item.length r))
    (Item.length t.items.(0)) t

let max_interval_length t =
  fold_items (fun acc r -> Rat.max acc (Item.length r))
    (Item.length t.items.(0)) t

let mu t = Rat.div (max_interval_length t) (min_interval_length t)

let max_size t =
  fold_items (fun acc (r : Item.t) -> Rat.max acc r.size)
    (t.items.(0)).Item.size t

let min_size t =
  fold_items (fun acc (r : Item.t) -> Rat.min acc r.size)
    (t.items.(0)).Item.size t

let active_at t time =
  Array.to_list t.items |> List.filter (fun r -> Item.active_at r time)

let active_count t =
  Array.to_list t.items
  |> List.concat_map (fun (r : Item.t) ->
         [ (r.arrival, 1); (r.departure, -1) ])
  |> Step_fn.of_deltas

let sizes_below t threshold =
  Array.for_all (fun (r : Item.t) -> Rat.(r.size < threshold)) t.items

let sizes_at_least t threshold =
  Array.for_all (fun (r : Item.t) -> Rat.(r.size >= threshold)) t.items

let event_times t =
  Array.to_list t.items
  |> List.concat_map (fun (r : Item.t) -> [ r.arrival; r.departure ])
  |> List.sort_uniq Rat.compare

let restrict t ~f =
  match Array.to_list t.items |> List.filter f with
  | [] -> None
  | kept -> Some (create ~capacity:t.capacity kept)

let pp fmt t =
  Format.fprintf fmt "@[<v>instance: %d items, W=%a, mu=%a, span=%a, u(R)=%a@]"
    (size t) Rat.pp t.capacity Rat.pp (mu t) Rat.pp (span t) Rat.pp
    (total_demand t)

let map_items t ~capacity ~f =
  create ~capacity (List.map f (Array.to_list t.items))

let scale_time t ~factor =
  if Rat.sign factor <= 0 then invalid_arg "Instance.scale_time: factor <= 0";
  map_items t ~capacity:t.capacity ~f:(fun (r : Item.t) ->
      Item.make ~id:r.id ~size:r.size
        ~arrival:(Rat.mul factor r.arrival)
        ~departure:(Rat.mul factor r.departure))

let shift_time t ~offset =
  map_items t ~capacity:t.capacity ~f:(fun (r : Item.t) ->
      Item.make ~id:r.id ~size:r.size
        ~arrival:(Rat.add offset r.arrival)
        ~departure:(Rat.add offset r.departure))

let scale_sizes t ~factor =
  if Rat.sign factor <= 0 then invalid_arg "Instance.scale_sizes: factor <= 0";
  map_items t
    ~capacity:(Rat.mul factor t.capacity)
    ~f:(fun (r : Item.t) ->
      Item.make ~id:r.id ~size:(Rat.mul factor r.size) ~arrival:r.arrival
        ~departure:r.departure)
