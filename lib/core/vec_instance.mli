(** A DVBP instance: items demanding a {!Dbp_num.Vec.t} in each
    resource dimension over an active interval, packed into bins with
    per-dimension capacity.

    The scalar model is exactly the [d = 1] slice: {!of_scalar} and
    {!to_scalar} convert without loss, and the vector engine
    ({!Vec_simulator}) reproduces {!Simulator}'s packings bit for bit
    on embedded scalar instances. *)

open Dbp_num

type item = { id : int; size : Vec.t; arrival : Rat.t; departure : Rat.t }

type t
(** Immutable; items are re-numbered densely from 0 on creation. *)

val create : capacity:Vec.t -> item list -> t
(** @raise Invalid_argument on an empty item list, a non-positive
    capacity component, a dimension mismatch, a size with a negative
    component or no positive component, a size exceeding capacity in
    some dimension, or a departure not after its arrival. *)

val of_scalar : Instance.t -> t
(** The [d = 1] embedding (sizes and capacity become 1-vectors). *)

val to_scalar : t -> Instance.t option
(** The inverse projection; [None] unless [dims t = 1]. *)

val dims : t -> int
val capacity : t -> Vec.t
val items : t -> item array
val size : t -> int
val item : t -> int -> item

val length : item -> Rat.t
(** The active interval's length. *)

val span : t -> Rat.t
(** Measure of the union of active intervals — the span lower bound's
    numerator, identical to the scalar {!Instance.span} notion. *)

val demand_per_dim : t -> Vec.t
(** Component [j] is [sum_r size_j(r) * len(r)]: the dimension's total
    resource-time demand. *)

val mu : t -> Rat.t
(** Max over min active-interval length. *)

val max_interval_length : t -> Rat.t
val min_interval_length : t -> Rat.t

type event_kind = Departure | Arrival

type event = { ev_time : Rat.t; ev_kind : event_kind; ev_item : item }

val sorted_events : t -> event array
(** The replay order: by time, departures before arrivals at equal
    times, then item id — exactly the scalar {!Event.compare} order,
    so [d = 1] replays are event-for-event identical. *)

val pp : Format.formatter -> t -> unit
