open Dbp_num

(* The DVBP engine (see vec_simulator.mli).  Exact Vec.t levels are
   the authoritative state; a Vec.Scaled integer mirror accelerates
   the commit-phase fit checks whenever the workload lies on a
   per-dimension grid.  The mirror is dropped wholesale on the first
   off-grid input — the exact state never depends on it, so the drop
   is invisible to results. *)

let invalid_step fmt =
  Printf.ksprintf (fun m -> raise (Simulator.Invalid_step m)) fmt

let invalid_decision fmt =
  Printf.ksprintf (fun m -> raise (Simulator.Invalid_decision m)) fmt

type bin_record = {
  vr_id : int;
  vr_tag : string;
  vr_capacity : Vec.t;
  vr_opened : Rat.t;
  vr_closed : Rat.t;
  vr_item_ids : int list;
  vr_placements : (Rat.t * int) list;
  vr_max_level : Vec.t;
}

type result = {
  r_instance : Vec_instance.t;
  r_policy_name : string;
  r_bins : bin_record array;
  r_assignment : int array;
  r_timeline : Step_fn.t;
  r_total_cost : Rat.t;
  r_max_bins : int;
  r_any_fit_violations : int;
}

let validate (r : result) =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let instance = r.r_instance in
  let n = Vec_instance.size instance in
  let exception Bad of string in
  try
    if Array.length r.r_assignment <> n then
      raise (Bad "assignment length mismatch");
    Array.iteri
      (fun item_id bin_id ->
        if bin_id < 0 || bin_id >= Array.length r.r_bins then
          raise (Bad (Printf.sprintf "item %d in unknown bin %d" item_id bin_id));
        let b = r.r_bins.(bin_id) in
        let it = Vec_instance.item instance item_id in
        if Rat.(it.Vec_instance.arrival < b.vr_opened) then
          raise (Bad (Printf.sprintf "item %d placed before bin %d opened"
                        item_id bin_id));
        if Rat.(it.Vec_instance.departure > b.vr_closed) then
          raise (Bad (Printf.sprintf "item %d outlives bin %d" item_id bin_id)))
      r.r_assignment;
    (* Per-bin: replay levels over the bin's own event sequence and
       check the per-dimension capacity at every instant. *)
    Array.iter
      (fun b ->
        let deltas = ref [] in
        List.iter
          (fun item_id ->
            if r.r_assignment.(item_id) <> b.vr_id then
              raise (Bad (Printf.sprintf
                            "bin %d lists item %d assigned elsewhere" b.vr_id
                            item_id));
            let it = Vec_instance.item instance item_id in
            deltas :=
              (it.Vec_instance.arrival, it.Vec_instance.size, true)
              :: (it.Vec_instance.departure, it.Vec_instance.size, false)
              :: !deltas)
          b.vr_item_ids;
        let events =
          List.sort
            (fun (t1, _, a1) (t2, _, a2) ->
              let c = Rat.compare t1 t2 in
              if c <> 0 then c else Bool.compare a1 a2)
            !deltas
        in
        let level = ref (Vec.zero ~dims:(Vec.dim b.vr_capacity)) in
        List.iter
          (fun (_, size, is_arrival) ->
            level :=
              (if is_arrival then Vec.add !level size else Vec.sub !level size);
            if not (Vec.le !level b.vr_capacity) then
              raise (Bad (Printf.sprintf "bin %d exceeds capacity" b.vr_id)))
          events)
      r.r_bins;
    let cost_of_bins =
      Array.fold_left
        (fun acc b -> Rat.add acc (Rat.sub b.vr_closed b.vr_opened))
        Rat.zero r.r_bins
    in
    if not (Rat.equal cost_of_bins r.r_total_cost) then
      raise (Bad "total cost does not match bin usage periods");
    if not (Rat.equal (Step_fn.integral r.r_timeline) r.r_total_cost) then
      raise (Bad "timeline integral does not match total cost");
    if Step_fn.max_value r.r_timeline <> r.r_max_bins then
      raise (Bad "max_bins does not match timeline");
    Ok ()
  with Bad m -> err "%s" m

module Online = struct
  type vbin = {
    vb_id : int;
    vb_tag : string;
    vb_capacity : Vec.t;
    vb_opened : Rat.t;
    mutable vb_closed : Rat.t option;
    mutable vb_level : Vec.t;
    mutable vb_level_s : Vec.Scaled.sv;
        (* Meaningful only while the engine's mirror is live. *)
    mutable vb_max_level : Vec.t;
    vb_active : (int, Rat.t * Vec.t) Hashtbl.t;
        (* item id -> (placement time, size) *)
    mutable vb_count : int;
    mutable vb_items_rev : int list;
    mutable vb_placements_rev : (Rat.t * int) list;
    mutable vb_view : Vec_policy.view option;
  }

  type t = {
    dims : int;
    capacity : Vec.t;
    handlers : Vec_policy.handlers;
    mutable store : vbin array;
    mutable bin_count : int;
    (* Open set as a doubly-linked list threaded through flat arrays
       indexed by bin id (opening order = id order). *)
    mutable oi_prev : int array;
    mutable oi_next : int array;
    mutable oi_head : int;
    mutable oi_tail : int;
    mutable oi_count : int;
    item_bin : (int, int) Hashtbl.t;
    seen_items : (int, unit) Hashtbl.t;
    mutable clock : Rat.t option;
    mutable violations : int;
    mutable grid : Vec.Scaled.grid option;
    mutable cap_s : Vec.Scaled.sv;
    audit_on : bool;
    sink : Dbp_obs.Sink.t option;
    metrics : Dbp_obs.Metrics.t option;
  }

  (* ---- open index ---------------------------------------------------- *)

  let oi_grow t needed =
    let cap = Array.length t.oi_prev in
    if needed >= cap then begin
      let ncap = max (needed + 1) (2 * max cap 8) in
      let grow a = Array.append a (Array.make (ncap - cap) (-1)) in
      t.oi_prev <- grow t.oi_prev;
      t.oi_next <- grow t.oi_next
    end

  let oi_append t id =
    oi_grow t id;
    t.oi_prev.(id) <- t.oi_tail;
    t.oi_next.(id) <- -1;
    (if t.oi_tail >= 0 then t.oi_next.(t.oi_tail) <- id else t.oi_head <- id);
    t.oi_tail <- id;
    t.oi_count <- t.oi_count + 1

  let oi_remove t id =
    let p = t.oi_prev.(id) and n = t.oi_next.(id) in
    (if p >= 0 then t.oi_next.(p) <- n else t.oi_head <- n);
    (if n >= 0 then t.oi_prev.(n) <- p else t.oi_tail <- p);
    t.oi_prev.(id) <- -1;
    t.oi_next.(id) <- -1;
    t.oi_count <- t.oi_count - 1

  let oi_fold_right f t acc =
    let rec go id acc = if id < 0 then acc else go t.oi_prev.(id) (f id acc) in
    go t.oi_tail acc

  (* ---- views --------------------------------------------------------- *)

  let view_of (b : vbin) =
    match b.vb_view with
    | Some v -> v
    | None ->
        let v =
          {
            Vec_policy.vbin_id = b.vb_id;
            vbin_tag = b.vb_tag;
            vbin_capacity = b.vb_capacity;
            vbin_level = b.vb_level;
            vbin_residual = Vec.sub b.vb_capacity b.vb_level;
            vbin_opened = b.vb_opened;
            vbin_count = b.vb_count;
          }
        in
        b.vb_view <- Some v;
        v

  let open_bins t = oi_fold_right (fun id acc -> view_of t.store.(id) :: acc) t []

  (* ---- audit --------------------------------------------------------- *)

  let audit_state t =
    (* Open-index structure. *)
    let walked = ref 0 in
    let id = ref t.oi_head in
    let last = ref (-1) in
    while !id >= 0 do
      if t.oi_prev.(!id) <> !last then
        Audit.fail ~bin_id:!id ~check:"open-index" "broken prev link at %d" !id;
      if !last >= 0 && !id <= !last then
        Audit.fail ~bin_id:!id ~check:"open-index"
          "opening order violated (%d after %d)" !id !last;
      incr walked;
      if !walked > t.bin_count then
        Audit.fail ~check:"open-index" "cycle in the open list";
      last := !id;
      id := t.oi_next.(!id)
    done;
    if !last <> t.oi_tail then
      Audit.fail ~check:"open-index" "tail does not terminate the walk";
    if !walked <> t.oi_count then
      Audit.fail ~check:"open-index" "count %d but walked %d" t.oi_count !walked;
    (* Per-bin memoised state vs recompute. *)
    for id = 0 to t.bin_count - 1 do
      let b = t.store.(id) in
      let level =
        Hashtbl.fold
          (fun _ (_, size) acc -> Vec.add acc size)
          b.vb_active
          (Vec.zero ~dims:t.dims)
      in
      if not (Vec.equal level b.vb_level) then
        Audit.fail ~bin_id:id ~check:"bin" "memoised level %a <> recompute %a"
          Vec.pp b.vb_level Vec.pp level;
      if Hashtbl.length b.vb_active <> b.vb_count then
        Audit.fail ~bin_id:id ~check:"bin" "memoised count %d <> recompute %d"
          b.vb_count (Hashtbl.length b.vb_active);
      if not (Vec.le b.vb_level b.vb_capacity) then
        Audit.fail ~bin_id:id ~check:"bin" "over capacity";
      if not (Vec.le b.vb_level b.vb_max_level) then
        Audit.fail ~bin_id:id ~check:"bin" "level above recorded peak";
      (match b.vb_closed with
      | None ->
          if b.vb_count = 0 then
            Audit.fail ~bin_id:id ~check:"bin" "open bin is empty";
          if not (t.oi_prev.(id) >= 0 || t.oi_head = id) then
            Audit.fail ~bin_id:id ~check:"open-index" "open bin not indexed"
      | Some _ ->
          if b.vb_count <> 0 then
            Audit.fail ~bin_id:id ~check:"bin" "closed bin still holds items");
      (match b.vb_view with
      | None -> ()
      | Some v ->
          if
            not
              (Vec.equal v.Vec_policy.vbin_level b.vb_level
              && Vec.equal v.Vec_policy.vbin_residual
                   (Vec.sub b.vb_capacity b.vb_level)
              && v.Vec_policy.vbin_count = b.vb_count)
          then Audit.fail ~bin_id:id ~check:"bin" "stale memoised view");
      (* Mirror agreement: the scaled ints must decode to the exact
         vectors bit for bit. *)
      match t.grid with
      | None -> ()
      | Some g ->
          if b.vb_closed = None then begin
            if not (Vec.equal (Vec.Scaled.to_vec g b.vb_level_s) b.vb_level)
            then
              Audit.fail ~bin_id:id ~check:"bin"
                "scaled mirror disagrees with the exact level"
          end
    done;
    (* Item tracking. *)
    Hashtbl.iter
      (fun item_id bin_id ->
        if bin_id < 0 || bin_id >= t.bin_count then
          Audit.fail ~check:"item-bin" "item %d tracked in unknown bin %d"
            item_id bin_id;
        let b = t.store.(bin_id) in
        if not (Hashtbl.mem b.vb_active item_id) then
          Audit.fail ~bin_id ~check:"item-bin"
            "item %d tracked in bin %d but not active there" item_id bin_id)
      t.item_bin

  let audit t = audit_state t

  let after_event t = if t.audit_on then audit_state t

  (* ---- construction -------------------------------------------------- *)

  let create ?(audit = false) ?sink ?metrics ?grid ~(policy : Vec_policy.t)
      ~capacity () =
    let dims = Vec.dim capacity in
    for j = 0 to dims - 1 do
      if Rat.sign (Vec.get capacity j) <= 0 then
        invalid_arg "Vec_simulator.create: capacity component not positive"
    done;
    let grid =
      match grid with
      | Some g -> if Vec.Scaled.dims g = dims then Some g else None
      | None -> Vec.Scaled.including (Vec.Scaled.base ~dims) capacity
    in
    let grid, cap_s =
      match grid with
      | None -> (None, [||])
      | Some g -> (
          match Vec.Scaled.of_vec g capacity with
          | Some cs -> (Some g, cs)
          | None -> (None, [||]))
    in
    {
      dims;
      capacity;
      handlers = policy.Vec_policy.spawn ~capacity;
      store = [||];
      bin_count = 0;
      oi_prev = [||];
      oi_next = [||];
      oi_head = -1;
      oi_tail = -1;
      oi_count = 0;
      item_bin = Hashtbl.create 64;
      seen_items = Hashtbl.create 64;
      clock = None;
      violations = 0;
      grid;
      cap_s;
      audit_on = audit;
      sink;
      metrics;
    }

  let now t = t.clock

  let advance_clock t now =
    (match t.clock with
    | Some c when Rat.(now < c) ->
        invalid_step "time went backwards (%s before %s)" (Rat.to_string now)
          (Rat.to_string c)
    | _ -> ());
    t.clock <- Some now

  let drop_mirror t = t.grid <- None

  let track_name t = match t.grid with Some _ -> "mirrored" | None -> "exact"

  (* ---- observability ------------------------------------------------- *)

  module Obs = struct
    module E = Dbp_obs.Trace_event

    let emit t ~now kind_of =
      match t.sink with
      | None -> ()
      | Some s -> Dbp_obs.Sink.emit s ~time:now (kind_of ())

    let with_metrics t f =
      match t.metrics with None -> () | Some m -> f m

    let fleet_metrics t m =
      Dbp_obs.Metrics.set_gauge m "open_bins" t.oi_count;
      Dbp_obs.Metrics.observe_int m "open_bins" t.oi_count

    let close_metrics m ~cost =
      Dbp_obs.Metrics.incr m "bins_closed";
      Dbp_obs.Metrics.add_rat m "bin_seconds" cost;
      Dbp_obs.Metrics.observe_rat m "bin_lifetime" cost
  end

  (* ---- arrivals ------------------------------------------------------ *)

  let grow_store t =
    let cap = Array.length t.store in
    if t.bin_count >= cap then begin
      let dummy = t.store.(0) in
      t.store <- Array.append t.store (Array.make (max 8 cap) dummy)
    end

  let open_new_bin t ~tag ~now =
    let id = t.bin_count in
    let b =
      {
        vb_id = id;
        vb_tag = tag;
        vb_capacity = t.capacity;
        vb_opened = now;
        vb_closed = None;
        vb_level = Vec.zero ~dims:t.dims;
        vb_level_s =
          (match t.grid with
          | None -> [||]
          | Some _ -> Array.make t.dims 0);
        vb_max_level = Vec.zero ~dims:t.dims;
        vb_active = Hashtbl.create 8;
        vb_count = 0;
        vb_items_rev = [];
        vb_placements_rev = [];
        vb_view = None;
      }
    in
    if t.bin_count = 0 then t.store <- Array.make 8 b else grow_store t;
    t.store.(id) <- b;
    t.bin_count <- id + 1;
    oi_append t id;
    b

  let arrive t ~now ~size ~item_id =
    advance_clock t now;
    if Vec.dim size <> t.dims then
      invalid_step "item %d has %d dimensions, the engine has %d" item_id
        (Vec.dim size) t.dims;
    if not (Vec.is_nonneg size && Vec.has_positive size) then
      invalid_step "item %d has size <= 0" item_id;
    if Hashtbl.mem t.seen_items item_id then
      invalid_step "item id %d reused" item_id;
    Hashtbl.add t.seen_items item_id ();
    let views = open_bins t in
    let decision =
      t.handlers.Vec_policy.on_arrival ~now ~bins:views ~size ~item_id
    in
    (* One scaled conversion per event; a refusal drops the mirror for
       the rest of the run (exact state is authoritative throughout). *)
    let size_s =
      match t.grid with
      | None -> None
      | Some g -> (
          match Vec.Scaled.of_vec g size with
          | Some s -> Some s
          | None ->
              drop_mirror t;
              None)
    in
    let opened_new =
      match decision with
      | Vec_policy.New_bin _ -> true
      | Vec_policy.Existing _ -> false
    in
    let target =
      match decision with
      | Vec_policy.Existing id ->
          if id < 0 || id >= t.bin_count then
            invalid_decision "policy chose unknown bin %d" id;
          let b = t.store.(id) in
          if b.vb_closed <> None then
            invalid_decision "policy chose closed bin %d" id;
          let fits =
            match (size_s, t.grid) with
            | Some s, Some _ ->
                (* Admitted values are bounded by Fixed.bound, so the
                   per-component sub cannot wrap. *)
                Vec.Scaled.le s (Vec.Scaled.sub t.cap_s b.vb_level_s)
            | _ -> Vec.le size (Vec.sub b.vb_capacity b.vb_level)
          in
          if not fits then
            invalid_decision "item %d does not fit in bin %d" item_id id;
          b
      | Vec_policy.New_bin tag ->
          if
            List.exists
              (fun (v : Vec_policy.view) -> Vec_policy.fits v ~size)
              views
          then t.violations <- t.violations + 1;
          if not (Vec.le size t.capacity) then
            invalid_decision
              "item %d (size %s) exceeds the capacity %s of a new '%s' bin"
              item_id (Vec.to_string size)
              (Vec.to_string t.capacity)
              tag;
          open_new_bin t ~tag ~now
    in
    target.vb_level <- Vec.add target.vb_level size;
    (match (size_s, t.grid) with
    | Some s, Some _ -> target.vb_level_s <- Vec.Scaled.add target.vb_level_s s
    | _ -> ());
    target.vb_max_level <- Vec.cmax target.vb_max_level target.vb_level;
    target.vb_count <- target.vb_count + 1;
    target.vb_items_rev <- item_id :: target.vb_items_rev;
    target.vb_placements_rev <- (now, item_id) :: target.vb_placements_rev;
    Hashtbl.replace target.vb_active item_id (now, size);
    target.vb_view <- None;
    Hashtbl.replace t.item_bin item_id target.vb_id;
    (* Trace: scalar kinds at d=1 (bit-identical to the scalar
       engine), vector kinds otherwise. *)
    (if t.dims = 1 then begin
       Obs.emit t ~now (fun () ->
           Obs.E.Arrive { item = item_id; size = Vec.get size 0 });
       if opened_new then
         Obs.emit t ~now (fun () ->
             Obs.E.Bin_open
               {
                 bin = target.vb_id;
                 tag = target.vb_tag;
                 capacity = Vec.get target.vb_capacity 0;
               });
       Obs.emit t ~now (fun () ->
           Obs.E.Pack
             {
               item = item_id;
               bin = target.vb_id;
               level = Vec.get target.vb_level 0;
               residual = Vec.get (Vec.sub target.vb_capacity target.vb_level) 0;
             })
     end
     else begin
       Obs.emit t ~now (fun () -> Obs.E.Varrive { item = item_id; sizes = size });
       if opened_new then
         Obs.emit t ~now (fun () ->
             Obs.E.Vbin_open
               {
                 bin = target.vb_id;
                 tag = target.vb_tag;
                 capacities = target.vb_capacity;
               });
       Obs.emit t ~now (fun () ->
           Obs.E.Vpack
             {
               item = item_id;
               bin = target.vb_id;
               levels = target.vb_level;
               residuals = Vec.sub target.vb_capacity target.vb_level;
             })
     end);
    Obs.with_metrics t (fun m ->
        Dbp_obs.Metrics.incr m "arrivals";
        if opened_new then Dbp_obs.Metrics.incr m "bins_opened";
        Dbp_obs.Metrics.observe_rat m "utilisation_at_pack"
          (Vec.max_norm ~capacity:target.vb_capacity target.vb_level);
        Obs.fleet_metrics t m);
    after_event t;
    target.vb_id

  (* ---- departures ---------------------------------------------------- *)

  let depart t ~now ~item_id =
    advance_clock t now;
    match Hashtbl.find_opt t.item_bin item_id with
    | None -> invalid_step "departure of unknown/inactive item %d" item_id
    | Some bin_id ->
        let b = t.store.(bin_id) in
        let placed_at, size =
          match Hashtbl.find_opt b.vb_active item_id with
          | Some ps -> ps
          | None ->
              invalid_step "item %d not active in its bin %d" item_id bin_id
        in
        Hashtbl.remove b.vb_active item_id;
        b.vb_count <- b.vb_count - 1;
        let bin_closed = b.vb_count = 0 in
        (if bin_closed then begin
           b.vb_level <- Vec.zero ~dims:t.dims;
           (match t.grid with
           | Some _ -> b.vb_level_s <- Array.make t.dims 0
           | None -> ());
           b.vb_closed <- Some now;
           oi_remove t bin_id
         end
         else begin
           b.vb_level <- Vec.sub b.vb_level size;
           match t.grid with
           | Some g -> (
               match Vec.Scaled.of_vec g size with
               | Some s -> b.vb_level_s <- Vec.Scaled.sub b.vb_level_s s
               | None -> drop_mirror t)
           | None -> ()
         end);
        b.vb_view <- None;
        Hashtbl.remove t.item_bin item_id;
        (if t.handlers.Vec_policy.on_departure
            != Vec_policy.no_departure_handler
         then
           let views = open_bins t in
           t.handlers.Vec_policy.on_departure ~now ~bins:views ~item_id);
        Obs.emit t ~now (fun () ->
            Obs.E.Depart
              { item = item_id; bin = bin_id; held = Rat.sub now placed_at });
        if bin_closed then
          Obs.emit t ~now (fun () ->
              Obs.E.Bin_close
                {
                  bin = bin_id;
                  opened = b.vb_opened;
                  cost = Rat.sub now b.vb_opened;
                });
        Obs.with_metrics t (fun m ->
            Dbp_obs.Metrics.incr m "departures";
            Dbp_obs.Metrics.observe_rat m "item_held" (Rat.sub now placed_at);
            if bin_closed then
              Obs.close_metrics m ~cost:(Rat.sub now b.vb_opened);
            Obs.fleet_metrics t m);
        after_event t

  (* ---- inspection ---------------------------------------------------- *)

  let bin_of_item t item_id = Hashtbl.find_opt t.item_bin item_id

  let level_of t bin_id =
    if bin_id < 0 || bin_id >= t.bin_count then None
    else
      let b = t.store.(bin_id) in
      if b.vb_closed = None then Some b.vb_level else None

  (* ---- finish -------------------------------------------------------- *)

  let finish t ~instance =
    if Hashtbl.length t.item_bin <> 0 then
      invalid_step "finish with %d items still active"
        (Hashtbl.length t.item_bin);
    let n = Vec_instance.size instance in
    if Hashtbl.length t.seen_items <> n then
      invalid_step "instance has %d items but %d were stepped" n
        (Hashtbl.length t.seen_items);
    let records =
      Array.init t.bin_count (fun id ->
          let b = t.store.(id) in
          let closed =
            match b.vb_closed with
            | Some c -> c
            | None -> invalid_step "bin %d never closed" id
          in
          {
            vr_id = id;
            vr_tag = b.vb_tag;
            vr_capacity = b.vb_capacity;
            vr_opened = b.vb_opened;
            vr_closed = closed;
            vr_item_ids = List.rev b.vb_items_rev;
            vr_placements = List.rev b.vb_placements_rev;
            vr_max_level = b.vb_max_level;
          })
    in
    let timeline =
      Array.to_list records
      |> List.concat_map (fun b -> [ (b.vr_opened, 1); (b.vr_closed, -1) ])
      |> Step_fn.of_deltas
    in
    let total_cost =
      Array.fold_left
        (fun acc b -> Rat.add acc (Rat.sub b.vr_closed b.vr_opened))
        Rat.zero records
    in
    let assignment = Array.make n (-1) in
    Array.iter
      (fun b ->
        List.iter
          (fun item_id ->
            if item_id < 0 || item_id >= n then
              invalid_step "item id %d outside instance" item_id;
            assignment.(item_id) <- b.vr_id)
          b.vr_item_ids)
      records;
    Array.iteri
      (fun i bin_id -> if bin_id < 0 then invalid_step "item %d never packed" i)
      assignment;
    let result =
      {
        r_instance = instance;
        r_policy_name = "";
        r_bins = records;
        r_assignment = assignment;
        r_timeline = timeline;
        r_total_cost = total_cost;
        r_max_bins = Step_fn.max_value timeline;
        r_any_fit_violations = t.violations;
      }
    in
    (if t.audit_on then
       match validate result with
       | Ok () -> ()
       | Error m -> Audit.fail ~check:"packing" "%s" m);
    result

  (* ---- checkpoint/restore -------------------------------------------- *)

  module Frozen = struct
    type bin = {
      b_id : int;
      b_tag : string;
      b_capacity : Vec.t;
      b_opened : Rat.t;
      b_closed : Rat.t option;
      b_max_level : Vec.t;
      b_placements : (Rat.t * int) list;
      b_active : (int * Vec.t) list;
    }

    type t = {
      s_capacity : Vec.t;
      s_clock : Rat.t option;
      s_violations : int;
      s_bins : bin list;
      s_policy_state : string option;
    }
  end

  let freeze t : Frozen.t =
    let policy_state =
      match t.handlers.Vec_policy.persistence with
      | Policy.Stateless -> None
      | Policy.Persistent io -> Some (io.Policy.save ())
      | Policy.Volatile ->
          invalid_step
            "freeze: the policy's internal state is volatile (no save/load \
             support), this run cannot checkpoint"
    in
    let bins =
      List.init t.bin_count (fun id ->
          let b = t.store.(id) in
          (* Packing order (oldest first) restricted to the still-
             active set, so the image is deterministic regardless of
             hashtable internals. *)
          let active =
            List.fold_left
              (fun acc item_id ->
                match Hashtbl.find_opt b.vb_active item_id with
                | Some (_, size) -> (item_id, size) :: acc
                | None -> acc)
              [] b.vb_items_rev
          in
          {
            Frozen.b_id = id;
            b_tag = b.vb_tag;
            b_capacity = b.vb_capacity;
            b_opened = b.vb_opened;
            b_closed = b.vb_closed;
            b_max_level = b.vb_max_level;
            b_placements = List.rev b.vb_placements_rev;
            b_active = active;
          })
    in
    {
      Frozen.s_capacity = t.capacity;
      s_clock = t.clock;
      s_violations = t.violations;
      s_bins = bins;
      s_policy_state = policy_state;
    }

  let thaw ?(audit = false) ?sink ?metrics ~(policy : Vec_policy.t)
      (frozen : Frozen.t) =
    let t =
      create ~audit ?sink ?metrics ~policy ~capacity:frozen.Frozen.s_capacity
        ()
    in
    (match (t.handlers.Vec_policy.persistence, frozen.Frozen.s_policy_state)
     with
    | Policy.Stateless, None -> ()
    | Policy.Persistent io, Some blob -> io.Policy.load blob
    | Policy.Persistent _, None ->
        invalid_step "thaw: snapshot carries no state for stateful policy %s"
          policy.Vec_policy.name
    | Policy.Stateless, Some _ ->
        invalid_step "thaw: snapshot carries state but policy %s is stateless"
          policy.Vec_policy.name
    | Policy.Volatile, _ ->
        invalid_step "thaw: policy %s has volatile (unrestorable) state"
          policy.Vec_policy.name);
    List.iteri
      (fun expected_id (fb : Frozen.bin) ->
        if fb.Frozen.b_id <> expected_id then
          invalid_step "thaw: bin ids not dense (found %d, expected %d)"
            fb.Frozen.b_id expected_id;
        if Vec.dim fb.Frozen.b_capacity <> t.dims then
          invalid_step "thaw: bin %d has the wrong dimension" fb.Frozen.b_id;
        let placed_at = Hashtbl.create 16 in
        List.iter
          (fun (time, item_id) -> Hashtbl.replace placed_at item_id time)
          fb.Frozen.b_placements;
        (if fb.Frozen.b_closed = None && fb.Frozen.b_active = [] then
           invalid_step "thaw: open bin %d has no active items" fb.Frozen.b_id);
        (if fb.Frozen.b_closed <> None && fb.Frozen.b_active <> [] then
           invalid_step "thaw: closed bin %d still has active items"
             fb.Frozen.b_id);
        let b =
          {
            vb_id = fb.Frozen.b_id;
            vb_tag = fb.Frozen.b_tag;
            vb_capacity = fb.Frozen.b_capacity;
            vb_opened = fb.Frozen.b_opened;
            vb_closed = fb.Frozen.b_closed;
            vb_level = Vec.zero ~dims:t.dims;
            vb_level_s =
              (match t.grid with
              | None -> [||]
              | Some _ -> Array.make t.dims 0);
            vb_max_level = fb.Frozen.b_max_level;
            vb_active = Hashtbl.create 8;
            vb_count = 0;
            vb_items_rev =
              List.rev_map (fun (_, item_id) -> item_id) fb.Frozen.b_placements;
            vb_placements_rev = List.rev fb.Frozen.b_placements;
            vb_view = None;
          }
        in
        List.iter
          (fun (item_id, size) ->
            if not (Vec.is_nonneg size && Vec.has_positive size) then
              invalid_step "thaw: active item %d has size <= 0" item_id;
            if Vec.dim size <> t.dims then
              invalid_step "thaw: active item %d has the wrong dimension"
                item_id;
            let arrival =
              match Hashtbl.find_opt placed_at item_id with
              | Some a -> a
              | None ->
                  invalid_step
                    "thaw: active item %d has no placement in bin %d" item_id
                    fb.Frozen.b_id
            in
            Hashtbl.replace b.vb_active item_id (arrival, size);
            b.vb_count <- b.vb_count + 1;
            b.vb_level <- Vec.add b.vb_level size;
            (match t.grid with
            | Some g -> (
                match Vec.Scaled.of_vec g size with
                | Some s -> b.vb_level_s <- Vec.Scaled.add b.vb_level_s s
                | None -> drop_mirror t)
            | None -> ());
            if Hashtbl.mem t.item_bin item_id then
              invalid_step "thaw: item %d active in two bins" item_id;
            Hashtbl.replace t.item_bin item_id b.vb_id)
          fb.Frozen.b_active;
        if not (Vec.le b.vb_level b.vb_capacity) then
          invalid_step "thaw: bin %d over capacity" fb.Frozen.b_id;
        if t.bin_count = 0 then t.store <- Array.make 8 b else grow_store t;
        t.store.(fb.Frozen.b_id) <- b;
        t.bin_count <- fb.Frozen.b_id + 1;
        if b.vb_closed = None then oi_append t b.vb_id;
        List.iter
          (fun (_, item_id) ->
            if Hashtbl.mem t.seen_items item_id then
              invalid_step "thaw: item id %d placed in two bins" item_id;
            Hashtbl.add t.seen_items item_id ())
          fb.Frozen.b_placements)
      frozen.Frozen.s_bins;
    t.clock <- frozen.Frozen.s_clock;
    t.violations <- frozen.Frozen.s_violations;
    audit_state t;
    t
end

let grid_of_instance instance =
  let dims = Vec_instance.dims instance in
  let add acc v =
    match acc with None -> None | Some g -> Vec.Scaled.including g v
  in
  let grid =
    Array.fold_left
      (fun acc (r : Vec_instance.item) -> add acc r.Vec_instance.size)
      (add (Some (Vec.Scaled.base ~dims)) (Vec_instance.capacity instance))
      (Vec_instance.items instance)
  in
  match grid with
  | None -> None
  | Some g ->
      let admits v = Vec.Scaled.of_vec g v <> None in
      if
        admits (Vec_instance.capacity instance)
        && Array.for_all
             (fun (r : Vec_instance.item) -> admits r.Vec_instance.size)
             (Vec_instance.items instance)
      then Some g
      else None

let apply_event online (e : Vec_instance.event) =
  match e.Vec_instance.ev_kind with
  | Vec_instance.Arrival ->
      ignore
        (Online.arrive online ~now:e.Vec_instance.ev_time
           ~size:e.Vec_instance.ev_item.Vec_instance.size
           ~item_id:e.Vec_instance.ev_item.Vec_instance.id)
  | Vec_instance.Departure ->
      Online.depart online ~now:e.Vec_instance.ev_time
        ~item_id:e.Vec_instance.ev_item.Vec_instance.id

let run ?audit ?sink ?metrics ?grid ?checkpoint_every ?on_checkpoint
    ~(policy : Vec_policy.t) instance =
  let audit =
    match audit with Some b -> b | None -> Audit.enabled_from_env ()
  in
  (match checkpoint_every with
  | Some k when k <= 0 -> invalid_arg "Vec_simulator.run: checkpoint_every <= 0"
  | _ -> ());
  let grid =
    match grid with Some g -> g | None -> grid_of_instance instance
  in
  let online =
    Online.create ~audit ?sink ?metrics ?grid ~policy
      ~capacity:(Vec_instance.capacity instance)
      ()
  in
  let hook_after i =
    match (checkpoint_every, on_checkpoint) with
    | Some k, Some hook when (i + 1) mod k = 0 -> hook ~events_done:(i + 1) online
    | _ -> ()
  in
  Array.iteri
    (fun i e ->
      apply_event online e;
      hook_after i)
    (Vec_instance.sorted_events instance);
  let result = Online.finish online ~instance in
  { result with r_policy_name = policy.Vec_policy.name }
