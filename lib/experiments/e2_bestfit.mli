(** E2 — Theorem 2 / Figure 3: Best Fit is unbounded.

    Regenerates the forced-ratio growth: on the adaptive construction
    the measured [BF_total/OPT_total] exceeds [k/2] once the iteration
    count passes the paper's threshold, and grows without bound in [k]
    while First Fit, replaying the very same instance, stays cheap. *)

val run : unit -> Exp_common.outcome
