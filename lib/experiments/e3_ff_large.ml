open Dbp_num
open Dbp_core
open Dbp_workload
open Dbp_analysis
open Exp_common

let ks = [ 2; 3; 4; 8 ]
let seeds = [ 11L; 12L; 13L ]

let run () =
  let c = counter () in
  let table =
    Table.create ~title:"E3: First Fit, all sizes >= W/k (Theorem 3 bound k)"
      ~columns:[ "k"; "seed"; "mu"; "FF ratio"; "bound k"; "verdict" ]
  in
  List.iter
    (fun k ->
      List.iter
        (fun seed ->
          let spec =
            Spec.large_items
              (Spec.with_target_mu { Spec.default with Spec.count = 120 } ~mu:6.0)
              ~k
          in
          let instance = Generator.generate ~seed spec in
          check c (Instance.sizes_at_least instance
                     (Rat.div (Instance.capacity instance) (Rat.of_int k)));
          let ratio = measure_policy ~policy:First_fit.policy instance in
          let bound = Theorem_bounds.ff_large ~k:(Rat.of_int k) in
          let verdict = Ratio.check_bound ratio ~bound in
          check c (verdict <> Ratio.Violated);
          Table.add_row table
            [
              string_of_int k;
              Int64.to_string seed;
              fmt_rat (Instance.mu instance);
              fmt_rat ratio.Ratio.ratio_upper;
              string_of_int k;
              Ratio.verdict_to_string verdict;
            ])
        seeds)
    ks;
  let total, failed = totals c in
  {
    experiment = "E3";
    artefact = "Theorem 3 (FF <= k OPT on large items)";
    tables = [ table ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
