(** E9 — extension: the constrained DBP problem of Section 5 (future
    work in the paper).

    Sweeps the latency budget on a gaming-style workload dispatched
    across four datacenter regions: tighter constraints shrink the
    allowed sets, fragment the load and raise cost relative to the
    unconstrained dispatcher, while the single-region lower bound
    certifies how much of that is inherent. *)

val run : unit -> Exp_common.outcome
