open Dbp_num
open Dbp_core
open Dbp_clairvoyant
open Dbp_analysis
open Exp_common

let seeds = [ 131L; 132L; 133L ]

let models =
  [
    ("exact", Predictor.Exact);
    ("noisy s=0.3", Predictor.Noisy { sigma = 0.3 });
    ("noisy s=1.0", Predictor.Noisy { sigma = 1.0 });
    ("oblivious", Predictor.Oblivious);
  ]

let run () =
  let c = counter () in
  let table =
    Table.create
      ~title:"E14: lifetime-aware packing under prediction noise (cost vs FF)"
      ~columns:
        [ "seed"; "predictor"; "MAE"; "aligned/FF"; "least-ext/FF";
          "dur-class/FF"; "FF cost" ]
  in
  let exact_wins = ref 0 in
  List.iter
    (fun seed ->
      let spec =
        Dbp_workload.Spec.with_target_mu
          { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 250 }
          ~mu:12.0
      in
      let instance = Dbp_workload.Generator.generate ~seed spec in
      let ff = Simulator.run ~policy:First_fit.policy instance in
      check c Rat.(ff.Packing.total_cost > Rat.zero);
      List.iter
        (fun (label, model) ->
          let predictor = Predictor.build ~seed model instance in
          let aligned =
            Simulator.run ~policy:(Duration_fit.aligned_fit predictor) instance
          in
          let extension =
            Simulator.run
              ~policy:(Duration_fit.least_extension_fit predictor)
              instance
          in
          let dur_class =
            Simulator.run ~policy:(Duration_class_fit.policy predictor) instance
          in
          check c (Packing.validate aligned = Ok ());
          check c (Packing.validate extension = Ok ());
          check c (Packing.validate dur_class = Ok ());
          check c
            Rat.(
              extension.Packing.total_cost
              >= Dbp_opt.Bounds.opt_lower_bound instance);
          if
            model = Predictor.Exact
            && Rat.(extension.Packing.total_cost < ff.Packing.total_cost)
          then incr exact_wins;
          Table.add_row table
            [
              Int64.to_string seed;
              label;
              fmt_rat (Predictor.mean_absolute_error predictor instance);
              fmt_rat
                (Rat.div aligned.Packing.total_cost ff.Packing.total_cost);
              fmt_rat
                (Rat.div extension.Packing.total_cost ff.Packing.total_cost);
              fmt_rat
                (Rat.div dur_class.Packing.total_cost ff.Packing.total_cost);
              fmt_rat ff.Packing.total_cost;
            ])
        models)
    seeds;
  (* With perfect predictions, lifetime-aware packing beats FF on every
     one of these (fixed) dense traces. *)
  check c (!exact_wins = List.length seeds);
  (* Where duration classification earns its keep: the Theorem 1
     adversarial instance.  FF is forced towards mu; duration-class FF
     isolates the long stragglers from the start and is OPTIMAL. *)
  let adversarial =
    Table.create
      ~title:
        "E14b: clairvoyant duration classes defeat the Figure 2 adversary"
      ~columns:[ "k"; "mu"; "FF ratio"; "dur-class ratio" ]
  in
  List.iter
    (fun (k, mu_i) ->
      let mu = Rat.of_int mu_i in
      let instance = Dbp_workload.Patterns.fragmentation ~k ~mu in
      let predictor = Predictor.build Predictor.Exact instance in
      let ff_r = measure_policy ~policy:First_fit.policy instance in
      let dc_r =
        measure_policy ~policy:(Duration_class_fit.policy predictor) instance
      in
      check c (Rat.equal dc_r.Ratio.ratio_upper Rat.one);
      check c Rat.(ff_r.Ratio.ratio_upper > Rat.two);
      Table.add_row adversarial
        [
          string_of_int k;
          string_of_int mu_i;
          fmt_rat ff_r.Ratio.ratio_upper;
          fmt_rat dc_r.Ratio.ratio_upper;
        ])
    [ (4, 8); (8, 8); (8, 16) ];
  let total, failed = totals c in
  {
    experiment = "E14";
    artefact = "Semi-online foresight: duration predictions (extension)";
    tables = [ table; adversarial ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
