open Dbp_num
open Dbp_core
open Dbp_workload
open Dbp_analysis
open Exp_common

let ks = [ 2; 4; 8 ]
let mus = [ 2.0; 4.0; 8.0 ]
let seeds = [ 21L; 22L ]

let run () =
  let c = counter () in
  let table =
    Table.create
      ~title:"E4: First Fit, all sizes < W/k (Theorem 4) + Section 4.3 checks"
      ~columns:
        [ "k"; "target mu"; "seed"; "FF ratio"; "T4 bound"; "verdict";
          "sub-periods"; "charges"; "lemma violations" ]
  in
  List.iter
    (fun k ->
      List.iter
        (fun mu_f ->
          List.iter
            (fun seed ->
              let spec =
                Spec.small_items
                  (Spec.with_target_mu
                     { Spec.default with
                       Spec.count = 150;
                       (* denser arrivals for smaller items, so bins
                          actually fill and the decomposition is
                          non-trivial *)
                       arrivals = Spec.Poisson { rate = 2.0 *. float_of_int k } }
                     ~mu:mu_f)
                  ~k
              in
              let instance = Generator.generate ~seed spec in
              let k_rat = Rat.of_int k in
              check c
                (Instance.sizes_below instance
                   (Rat.div (Instance.capacity instance) k_rat));
              let packing = Simulator.run ~policy:First_fit.policy instance in
              let ratio = Ratio.measure packing in
              let mu = Instance.mu instance in
              let bound = Theorem_bounds.ff_small ~k:k_rat ~mu in
              let verdict = Ratio.check_bound ratio ~bound in
              check c (verdict <> Ratio.Violated);
              let report = Ff_decomposition.analyse ~k:k_rat packing in
              check c (report.Ff_decomposition.violations = []);
              Table.add_row table
                [
                  string_of_int k;
                  Printf.sprintf "%.0f" mu_f;
                  Int64.to_string seed;
                  fmt_rat ratio.Ratio.ratio_upper;
                  fmt_rat bound;
                  Ratio.verdict_to_string verdict;
                  string_of_int
                    (List.length report.Ff_decomposition.sub_periods);
                  string_of_int report.Ff_decomposition.charge_count;
                  string_of_int
                    (List.length report.Ff_decomposition.violations);
                ])
            seeds)
        mus)
    ks;
  (* The adversarial small-item workload: FF is forced to
     bins*mu/(bins+mu-1), approaching the Theorem 1 lower bound mu while
     staying under the Theorem 4 bound. *)
  let adversarial =
    Table.create
      ~title:"E4b: small-item fragmentation adversary (sizes 1/per_bin < W/k)"
      ~columns:
        [ "k"; "bins"; "per_bin"; "mu"; "FF ratio"; "eq(1)-style forced";
          "T4 bound"; "verdict" ]
  in
  List.iter
    (fun (k, bins, per_bin, mu_i) ->
      let mu = Rat.of_int mu_i in
      let instance = Patterns.fragmentation_fine ~bins ~per_bin ~mu in
      let k_rat = Rat.of_int k in
      check c
        (Instance.sizes_below instance
           (Rat.div (Instance.capacity instance) k_rat));
      let packing = Simulator.run ~policy:First_fit.policy instance in
      let ratio = Ratio.measure packing in
      let bound = Theorem_bounds.ff_small ~k:k_rat ~mu in
      let verdict = Ratio.check_bound ratio ~bound in
      check c (verdict <> Ratio.Violated);
      let forced = Theorem_bounds.anyfit_construction_ratio ~k:bins ~mu in
      check c (Rat.equal ratio.Ratio.ratio_upper forced);
      let report = Ff_decomposition.analyse ~k:k_rat packing in
      check c (report.Ff_decomposition.violations = []);
      Table.add_row adversarial
        [
          string_of_int k;
          string_of_int bins;
          string_of_int per_bin;
          string_of_int mu_i;
          fmt_rat ratio.Ratio.ratio_upper;
          fmt_rat forced;
          fmt_rat bound;
          Ratio.verdict_to_string verdict;
        ])
    [ (2, 4, 4, 4); (4, 6, 8, 6); (8, 8, 16, 8); (8, 12, 12, 12) ];
  let total, failed = totals c in
  {
    experiment = "E4";
    artefact = "Theorem 4 / Figures 4-8 / Table 2 (FF on small items)";
    tables = [ table; adversarial ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
