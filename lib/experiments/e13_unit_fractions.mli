(** E13 — extension: unit-fraction items (related work, Chan–Lam–Wong).

    The paper's related-work section cites the classical-DBP result
    that Any Fit packing is 3-competitive (tight) for the max-bins
    objective when every size is a unit fraction [1/w].  This
    experiment runs the Any Fit family on unit-fraction workloads and
    reports both objectives side by side: max-bins ratios stay under 3
    as that theory predicts, while the MinTotal ratio is governed by
    [mu], not by the size structure. *)

val run : unit -> Exp_common.outcome
