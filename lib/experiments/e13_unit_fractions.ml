open Dbp_num
open Dbp_core
open Dbp_analysis
open Exp_common

let seeds = [ 121L; 122L; 123L ]

let unit_fraction_spec ~mu =
  let sizes =
    Dbp_workload.Spec.Discrete_sizes
      (List.map (fun w -> (Rat.make 1 w, 1.0 /. float_of_int w)) [ 1; 2; 3; 4; 5; 8 ])
  in
  {
    (Dbp_workload.Spec.with_target_mu
       { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 120 }
       ~mu)
    with
    Dbp_workload.Spec.sizes;
  }

let run () =
  let c = counter () in
  let table =
    Table.create
      ~title:"E13: unit-fraction items (sizes 1/w): both objectives, Any Fit family"
      ~columns:
        [ "policy"; "seed"; "MinTotal ratio"; "max-bins ratio";
          "classical AF bound" ]
  in
  List.iter
    (fun policy ->
      List.iter
        (fun seed ->
          let instance =
            Dbp_workload.Generator.generate ~seed (unit_fraction_spec ~mu:6.0)
          in
          let packing = Simulator.run ~policy instance in
          let ratio = Ratio.measure packing in
          let classic = Classic_dbp.measure packing ~opt:ratio.Ratio.opt in
          (* Chan et al.: Any Fit is 3-competitive for max-bins on unit
             fractions. *)
          check c Rat.(classic.Classic_dbp.ratio <= Rat.of_int 3);
          check c
            (Ratio.check_bound ratio
               ~bound:(Theorem_bounds.ff_general ~mu:(Instance.mu instance))
             <> Ratio.Violated);
          Table.add_row table
            [
              policy.Policy.name;
              Int64.to_string seed;
              fmt_rat ratio.Ratio.ratio_upper;
              fmt_rat classic.Classic_dbp.ratio;
              "3";
            ])
        seeds)
    (Algorithms.any_fit_family ());
  let total, failed = totals c in
  {
    experiment = "E13";
    artefact = "Related work: unit-fraction DBP (Chan et al.) (extension)";
    tables = [ table ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
