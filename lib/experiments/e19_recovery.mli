(** E19 (extension): checkpoint/restore with deterministic resume.

    (a) Cuts every registry policy's run at 1/4, 1/2 and 3/4 of the
    event trace, round-trips the snapshot through the wire format and
    asserts the resumed run bit-identical to an uninterrupted one
    ([Checkpoint.verify]: packing, exact cost and trace suffix), while
    reporting snapshot size and resume-vs-full-replay wall time.
    (b) Freezes a fault-injected run mid-drain, thaws the crash-recovery
    image and checks packing and every resilience counter match the
    never-stopped run exactly. *)

val run : unit -> Exp_common.outcome
