(** Simulator scaling benchmark: 5k/50k-item traces per policy, fast
    engine vs the retained seed engine, emitted as the
    [BENCH_simulator.json] perf-trajectory artefact.

    The seed engine is measured at the smallest size only and
    extrapolated quadratically to the largest (its per-event cost is
    linear in bins ever opened, and bins grow linearly with items);
    the fast engine is measured everywhere.  Each naive run is also an
    equivalence check: the two engines must produce bit-identical
    packings. *)

type row = {
  policy : string;
  engine : string;  (** ["fast"] or ["naive"] *)
  items : int;
  bins : int;
  max_open : int;
  wall_seconds : float;
  events_per_second : float;
  total_cost : float;
  cost_exact : string;
  phases : (string * float * int) list;
      (** Per-phase [(name, seconds, calls)] breakdown — policy /
          commit / views — from a second, profiled run of the same
          policy and size; empty for naive rows.  The wall-clock
          figures above come from the unprofiled run. *)
}

type equivalence = {
  eq_policy : string;
  eq_items : int;
  speedup : float;  (** naive wall / fast wall at [eq_items] *)
  identical : bool;
}

type segmented = {
  sg_policy : string;
  sg_items : int;
  sg_cut : int;  (** Event index the run was checkpointed at. *)
  sg_snapshot_bytes : int;
  sg_identical : bool;
      (** Straight run vs [Checkpoint.save_at]-then-[resume] through
          the serialised wire format. *)
}

type report = {
  quick : bool;
  seed : int64;
  sizes : int list;
  naive_size : int;
  rows : row list;
  equivalences : equivalence list;
  segmented : segmented list;
      (** Per-policy proof that a run cut at its event midpoint and
          resumed from the snapshot file format is bit-identical to
          the uninterrupted run. *)
  extrapolated : (string * float) list;
  profiles : (string * (string * float * int) list) list;
      (** Per-policy {!Dbp_obs.Profile.spans} — [(phase, seconds,
          calls)] — from a separately profiled fast-engine run at the
          largest size.  The timed {!field:rows} are measured with the
          hooks off so profiling overhead never skews them. *)
}

val default_sizes : quick:bool -> int list
(** [quick] gives [500; 2000] (CI smoke), full gives [5000; 50000]. *)

val run : ?quick:bool -> ?seed:int64 -> unit -> report
(** Runs sequentially on purpose: wall-clock measurements must not
    fight sibling domains for cores. *)

val to_json : report -> string
(** The [BENCH_simulator.json] document (schema
    ["dbp-bench-simulator/4"], which added per-row ["phases"]
    breakdowns for the fast engine; ["/3"] added the per-policy
    ["segmented"] checkpoint-identity section; ["/2"] added
    ["profiles"]). *)

val tables : report -> Dbp_analysis.Table.t list
val render : report -> string

val all_identical : report -> bool
(** Every naive-vs-fast pair AND every segmented checkpoint resume
    produced identical packings. *)

val min_fast_throughput : report -> float
(** Events/second of the slowest fast-engine policy at the largest
    trace size — the quantity the CI perf gate compares against the
    checked-in [bench-floor.txt]. *)
