open Dbp_num
open Dbp_core
open Dbp_cloudgaming
open Dbp_faults
open Dbp_analysis
open Exp_common

let seed = 20260805L

(* A 6 h evening of traffic: enough concurrent sessions that killing a
   server displaces real load, small enough to replay per policy and
   per fault plan. *)
let profile =
  { Gaming_workload.default_profile with
    Gaming_workload.duration_hours = 6.0;
    base_rate = 40.0 }

let policy_set =
  [
    ("first_fit", First_fit.policy);
    ("best_fit", Best_fit.policy);
    ("worst_fit", Worst_fit.policy);
    ("mff(8)", Modified_first_fit.policy_mu_oblivious);
  ]

(* Kill the fullest server once an hour through the busy period. *)
let targeted_times = List.map Rat.of_int [ 1; 2; 3; 4; 5; 6 ]

let crash_rates = [ 0.25; 0.5; 1.0 ]

let fmt_pct x = Printf.sprintf "%.2f%%" (100.0 *. Rat.to_float x)

let run () =
  let c = counter () in
  let requests = Gaming_workload.generate ~seed profile in
  check c (requests <> []);
  let instance = Gaming_workload.to_instance requests in
  (* -- (0) the empty plan is a bit-for-bit fault-free replay --------- *)
  List.iter
    (fun (_, policy) ->
      let r = Injector.run ~plan:Fault_plan.empty ~policy instance in
      let base = Simulator.run ~policy instance in
      check c
        (Rat.equal r.Injector.packing.Packing.total_cost
           base.Packing.total_cost);
      check c
        (Packing.bins_used r.Injector.packing = Packing.bins_used base);
      check c
        (Rat.equal (Resilience.cost_overhead r.Injector.resilience) Rat.one);
      check c (r.Injector.resilience.Resilience.interrupted_sessions = 0);
      check c
        (Rat.equal
           (Resilience.availability r.Injector.resilience)
           Rat.one))
    policy_set;
  (* -- (1) adversarial targeted faults: blast radius per policy ------ *)
  let targeted = Fault_plan.targeted_fullest ~times:targeted_times in
  let blast =
    List.map
      (fun (name, policy) ->
        let r = Injector.run ~plan:targeted ~policy instance in
        check c (Packing.validate r.Injector.packing = Ok ());
        (name, r.Injector.resilience))
      policy_set
  in
  let t1 =
    Table.create
      ~title:
        (Printf.sprintf
           "E18a: kill-the-fullest-server once an hour (%d faults), %d \
            requests over %.0f h"
           (Fault_plan.count targeted) (List.length requests)
           profile.Gaming_workload.duration_hours)
      ~columns:
        [
          "policy";
          "interrupted";
          "sess-h displaced";
          "resumed";
          "lost";
          "p95 recovery";
          "cost overhead";
          "availability";
        ]
  in
  List.iter
    (fun (name, (rz : Resilience.t)) ->
      Table.add_row t1
        [
          name;
          string_of_int rz.Resilience.interrupted_sessions;
          fmt_rat rz.Resilience.interrupted_session_seconds;
          string_of_int rz.Resilience.resumed_sessions;
          string_of_int rz.Resilience.lost_sessions;
          (match Resilience.quantile_recovery_latency rz ~q:0.95 with
          | None -> "-"
          | Some l -> fmt_rat l);
          fmt_rat (Resilience.cost_overhead rz);
          fmt_pct (Resilience.availability rz);
        ])
    blast;
  let displaced name =
    (List.assoc name blast).Resilience.interrupted_session_seconds
  in
  (* The consolidation trade-off: Best Fit packs sessions densest, so
     the adversary's fullest-server kill displaces at least as much
     session time as under spreading Worst Fit. *)
  check c Rat.(displaced "best_fit" >= displaced "worst_fit");
  check c Rat.(displaced "first_fit" >= displaced "worst_fit");
  List.iter
    (fun (_, (rz : Resilience.t)) ->
      check c Rat.(Resilience.availability rz <= Rat.one);
      check c
        (rz.Resilience.resumed_sessions + rz.Resilience.lost_sessions
         <= rz.Resilience.interrupted_sessions);
      check c
        (List.for_all
           (fun l -> Rat.sign l >= 0)
           rz.Resilience.recovery_latencies))
    blast;
  (* -- (2) Poisson crash-rate sweep ---------------------------------- *)
  let horizon =
    Interval.hi (Instance.packing_period instance)
  in
  let t2 =
    Table.create
      ~title:
        "E18b: random crashes, rate sweep (crashes/h over the whole \
         horizon, availability | interrupted sessions)"
      ~columns:
        ("rate" :: List.map (fun (name, _) -> name) policy_set)
  in
  List.iter
    (fun rate ->
      let plan =
        Fault_plan.poisson_crashes ~seed:(Int64.add seed 7L) ~rate ~horizon
      in
      let row =
        List.map
          (fun (_, policy) ->
            let r = Injector.run ~plan ~policy instance in
            let rz = r.Injector.resilience in
            check c (Packing.validate r.Injector.packing = Ok ());
            check c Rat.(Resilience.availability rz <= Rat.one);
            if rate >= 1.0 then
              check c (rz.Resilience.interrupted_sessions > 0);
            Printf.sprintf "%s | %d"
              (fmt_pct (Resilience.availability rz))
              rz.Resilience.interrupted_sessions)
          policy_set
      in
      Table.add_row t2 (Printf.sprintf "%.2f" rate :: row))
    crash_rates;
  let total, failed = totals c in
  {
    experiment = "E18";
    artefact =
      "Fault injection: blast radius and recovery cost per policy \
       (extension)";
    tables = [ t1; t2 ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
