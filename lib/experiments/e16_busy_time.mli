(** E16 — extension: the busy-time scheduling connection.

    The related-work section cites Flammini et al.: minimising total
    machine busy time with bounded parallelism [g] — which is exactly
    offline MinTotal DBP with equal sizes [1/g] (and known intervals).
    This experiment runs our offline heuristics on unit-size workloads:
    the duration-sorted first fit ({!Dbp_offline.Offline_heuristic.longest_first},
    the Flammini-style greedy) against the paper-style lower bounds,
    checking it stays within the literature's constant factor 4. *)

val run : unit -> Exp_common.outcome
