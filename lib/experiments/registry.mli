(** Experiment registry: run E1–E18 by name or all at once. *)

val all_names : string list

val run : string -> Exp_common.outcome option
(** Case-insensitive lookup by "E1".."E18". *)

val run_all : unit -> Exp_common.outcome list
(** In order E1..E18. *)
