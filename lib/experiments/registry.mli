(** Experiment registry: run E1–E19 by name or all at once. *)

val all_names : string list

val run : string -> Exp_common.outcome option
(** Case-insensitive lookup by "E1".."E18". *)

val run_all : ?domains:int -> unit -> Exp_common.outcome list
(** In order E1..E18.  [domains] (default 1) is the number of OCaml 5
    domains the experiments are spread over; results are collected into
    E1..E18 order whatever the completion order, so the output is
    bit-identical to a sequential run.  Values above
    {!default_domains} [()] rarely help. *)

val default_domains : unit -> int
(** [min 8 (Domain.recommended_domain_count ())], at least 1 — the
    parallelism used by [dune runtest], [bench] and the CLI's
    [--jobs 0]. *)

val run_list : domains:int -> (unit -> 'a) list -> 'a list
(** Generic deterministic fan-out underneath {!run_all}: runs the
    thunks on [domains] domains (clamped to the list length; [<= 1]
    means in this domain) and returns the results in input order.
    Thunks must not share mutable state.

    If a thunk raises, the remaining unstarted thunks are abandoned,
    every spawned domain is joined, and the {e first} failure (in
    claim order) is re-raised with its original backtrace — promptly,
    not after all other work completes. *)
