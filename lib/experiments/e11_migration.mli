(** E11 — extension: the price of forbidding migration.

    The introduction motivates the no-migration model by the overhead
    of moving live game instances.  This experiment quantifies both
    sides on a gaming trace: how much cheaper an FFD-repack-at-every-
    event dispatcher would be, and how many live-session migrations
    (and how much state volume) it would take to get there. *)

val run : unit -> Exp_common.outcome
