open Dbp_num
open Dbp_core
open Dbp_cloudgaming
open Dbp_analysis
open Exp_common

let seed = 51L

let policies mu =
  [
    First_fit.policy;
    Best_fit.policy;
    Worst_fit.policy;
    Next_fit.policy;
    Modified_first_fit.policy_mu_oblivious;
    Modified_first_fit.policy_known_mu ~mu;
  ]

let run () =
  let c = counter () in
  let requests = Gaming_workload.generate ~seed Gaming_workload.default_profile in
  let mu = Gaming_workload.mu_of requests in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E7: 24h cloud gaming trace (%d requests, mu = %s): renting cost \
            by dispatch policy"
           (List.length requests) (fmt_rat mu))
      ~columns:
        [ "policy"; "servers"; "peak"; "server-hours"; "vs offline LB";
          "mean GPU util" ]
  in
  let reports = Dispatcher.compare_policies ~policies:(policies mu) requests in
  List.iter
    (fun (report : Dispatcher.report) ->
      check c
        Rat.(report.Dispatcher.server_hours >= report.Dispatcher.offline_lower_bound);
      check c Rat.(report.Dispatcher.mean_utilisation <= Rat.one);
      Table.add_row table
        [
          report.Dispatcher.policy_name;
          string_of_int report.Dispatcher.servers_used;
          string_of_int report.Dispatcher.peak_servers;
          fmt_rat report.Dispatcher.server_hours;
          fmt_rat
            (Rat.div report.Dispatcher.server_hours
               report.Dispatcher.offline_lower_bound);
          Printf.sprintf "%.1f%%"
            (100.0 *. Rat.to_float report.Dispatcher.mean_utilisation);
        ])
    reports;
  (* Qualitative shape check: the dedicated-bin-per-request strawman is
     much worse than any packing policy. *)
  let naive =
    Rat.sum (List.map Request.session_length requests)
  in
  List.iter
    (fun (report : Dispatcher.report) ->
      check c Rat.(report.Dispatcher.server_hours <= naive))
    reports;
  let total, failed = totals c in
  {
    experiment = "E7";
    artefact = "Section 1 (cloud gaming request dispatching)";
    tables = [ table ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
