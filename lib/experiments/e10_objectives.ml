open Dbp_num
open Dbp_core
open Dbp_analysis
open Exp_common

let run () =
  let c = counter () in
  let table =
    Table.create
      ~title:"E10: MinTotal cost ratio vs classical max-bins ratio (First Fit)"
      ~columns:
        [ "workload"; "MinTotal ratio"; "max-bins ratio";
          "FF peak"; "OPT peak" ]
  in
  let row name instance =
    let packing = Simulator.run ~policy:First_fit.policy instance in
    let ratio = Ratio.measure packing in
    let classic = Classic_dbp.measure packing ~opt:ratio.Ratio.opt in
    check c
      Rat.(
        of_int classic.Classic_dbp.algorithm_max_bins
        <= (Classic_dbp.coffman_ff_upper_bound
            * of_int classic.Classic_dbp.opt_max_bins)
           + one);
    Table.add_row table
      [
        name;
        fmt_rat ratio.Ratio.ratio_upper;
        fmt_rat classic.Classic_dbp.ratio;
        string_of_int classic.Classic_dbp.algorithm_max_bins;
        string_of_int classic.Classic_dbp.opt_max_bins;
      ];
    (ratio, classic)
  in
  (* Figure 2 instance: classical objective is blind to the waste. *)
  let frag_ratio, frag_classic =
    row "fragmentation k=8 mu=8"
      (Dbp_workload.Patterns.fragmentation ~k:8 ~mu:(Rat.of_int 8))
  in
  check c (Rat.equal frag_classic.Classic_dbp.ratio Rat.one);
  check c Rat.(frag_ratio.Ratio.ratio_upper > Rat.of_int 4);
  (* Random loads: both ratios stay modest. *)
  List.iter
    (fun seed ->
      let spec =
        Dbp_workload.Spec.with_target_mu
          { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 120 }
          ~mu:8.0
      in
      let name = Printf.sprintf "random seed %Ld" seed in
      let ratio, classic = row name (Dbp_workload.Generator.generate ~seed spec) in
      check c Rat.(ratio.Ratio.ratio_upper < Rat.of_int 3);
      check c Rat.(classic.Classic_dbp.ratio < Rat.of_int 3))
    [ 81L; 82L; 83L ];
  (* Sawtooth: the long tails hurt MinTotal more than the peak count. *)
  ignore
    (row "sawtooth teeth=6 mu=6"
       (Dbp_workload.Patterns.sawtooth ~teeth:6 ~per_tooth:8 ~mu:(Rat.of_int 6)));
  let total, failed = totals c in
  {
    experiment = "E10";
    artefact = "Objective contrast: MinTotal vs classical DBP (extension)";
    tables = [ table ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
