open Dbp_num
open Dbp_core
open Dbp_constrained
open Dbp_analysis
open Exp_common

let budgets = [ 0.3; 0.6; 0.9; 1.2; 1.5 ]
let seed = 71L

let run () =
  let c = counter () in
  let spec =
    Dbp_workload.Spec.with_target_mu
      { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 200 }
      ~mu:8.0
  in
  let instance = Dbp_workload.Generator.generate ~seed spec in
  let unconstrained_ff =
    Simulator.run ~policy:First_fit.policy instance
  in
  let table =
    Table.create
      ~title:
        "E9: constrained DBP (Section 5 future work): latency budget vs cost"
      ~columns:
        [ "latency budget"; "mean |allowed|"; "cFF cost"; "cFF balanced";
          "cBF cost"; "unconstrained FF"; "constrained LB" ]
  in
  List.iter
    (fun budget ->
      let ci = Geo.constrain ~seed ~latency_budget:budget instance in
      let ff = Constrained_policy.run ~policy:Constrained_policy.first_fit ci in
      let ff_balanced =
        Constrained_policy.run
          ~policy:
            (Constrained_policy.first_fit
               ~rule:Constrained_policy.Fewest_open_bins)
          ci
      in
      let bf = Constrained_policy.run ~policy:Constrained_policy.best_fit ci in
      let lb = Constrained_instance.lower_bound ci in
      check c (Constrained_policy.validate_regions ci ff = Ok ());
      check c (Constrained_policy.validate_regions ci ff_balanced = Ok ());
      check c (Constrained_policy.validate_regions ci bf = Ok ());
      check c Rat.(ff.Packing.total_cost >= lb);
      check c Rat.(bf.Packing.total_cost >= lb);
      Table.add_row table
        [
          Printf.sprintf "%.1f" budget;
          Printf.sprintf "%.2f" (Geo.mean_allowed ci);
          fmt_rat ff.Packing.total_cost;
          fmt_rat ff_balanced.Packing.total_cost;
          fmt_rat bf.Packing.total_cost;
          fmt_rat unconstrained_ff.Packing.total_cost;
          fmt_rat lb;
        ])
    budgets;
  (* With the budget covering the whole square, constraints vanish and
     constrained FF makes exactly the unconstrained FF's choices up to
     region splitting; at budget >= sqrt 2 every region is allowed. *)
  let free = Geo.constrain ~seed ~latency_budget:2.0 instance in
  check c (Float.equal (Geo.mean_allowed free) 4.0);
  let total, failed = totals c in
  {
    experiment = "E9";
    artefact = "Section 5 future work (constrained DBP, extension)";
    tables = [ table ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
