(** E4 — Theorem 4 / Figures 4–8 / Table 2: First Fit on all-small
    items, with the full decomposition machinery executed and checked
    on every run.

    For each (k, mu) cell: the measured FF ratio against the
    [k/(k-1) mu + 6k/(k-1) + 1] bound, plus the decomposition
    statistics (sub-periods, joint/single/non-intersecting charges) and
    the count of feature/lemma/inequality violations — expected 0. *)

val run : unit -> Exp_common.outcome
