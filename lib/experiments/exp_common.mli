(** Shared infrastructure for the E1–E19 experiments (see DESIGN.md's
    per-experiment index).  Each experiment module exposes a [run]
    returning {!outcome}: the tables/charts that regenerate the
    corresponding paper artefact, plus a pass/fail verdict aggregate
    that the benchmark harness and CI assert on. *)

open Dbp_num
open Dbp_core

type outcome = {
  experiment : string;  (** e.g. ["E1"]. *)
  artefact : string;  (** The paper artefact it reproduces. *)
  tables : Dbp_analysis.Table.t list;
  charts : string list;  (** Pre-rendered ASCII charts. *)
  checks_total : int;
  checks_failed : int;  (** 0 on a healthy run. *)
}

val fmt_rat : Rat.t -> string
(** 4-significant-digit decimal rendering for table cells. *)

val fmt_exact : Rat.t -> string
(** Exact rational rendering. *)

val measure_policy :
  ?node_budget:int -> policy:Policy.t -> Instance.t -> Dbp_analysis.Ratio.t
(** Run the policy and measure its competitive ratio against OPT. *)

type check_counter

val counter : unit -> check_counter
val check : check_counter -> bool -> unit
val totals : check_counter -> int * int
(** (total, failed). *)

val render_outcome : outcome -> string
(** Human-readable block: tables, charts and the verdict line. *)

val profile_table :
  ?title:string -> (string * float * int) list -> Dbp_analysis.Table.t
(** Renders {!Dbp_obs.Profile.spans} output — [(phase, seconds,
    calls)] rows with a derived microseconds-per-call column. *)

val metrics_tables : Dbp_obs.Metrics.t -> Dbp_analysis.Table.t list
(** A scalar table (counters, gauges, exact rational sums) plus, when
    any histogram has observations, a histogram summary table produced
    through the single-sort {!Dbp_analysis.Stats.summarise_sorted}
    path (n, mean, p50, p95, min, max). *)
