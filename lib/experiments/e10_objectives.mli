(** E10 — extension: MinTotal vs the classical max-bins objective.

    The paper's introduction distinguishes its total-cost objective
    from classical DBP's peak-bins objective.  This experiment makes
    the distinction quantitative: on the Figure 2 instance First Fit is
    {e optimal} for peak bins yet pays nearly [mu] times OPT in total
    cost, while on random loads the two objectives track each other. *)

val run : unit -> Exp_common.outcome
