(** E12 — extension: what the paper's OPT definition is worth.

    [OPT_total] lets the optimum repack (migrate) at every instant.  A
    cloud provider planning offline still cannot migrate, so the
    natural offline reference is the non-migratory optimum.  This
    experiment measures both gaps on small instances
    ([OPT_repack <= OPT_offline <= FF]) and the value of offline
    knowledge for the heuristics on realistic sizes. *)

val run : unit -> Exp_common.outcome
