open Dbp_num
open Dbp_core
open Dbp_analysis

type outcome = {
  experiment : string;
  artefact : string;
  tables : Table.t list;
  charts : string list;
  checks_total : int;
  checks_failed : int;
}

let fmt_rat x = Printf.sprintf "%.4g" (Rat.to_float x)
let fmt_exact = Rat.to_string

let measure_policy ?node_budget ~policy instance =
  Ratio.measure ?node_budget (Simulator.run ~policy instance)

type check_counter = { mutable total : int; mutable failed : int }

let counter () = { total = 0; failed = 0 }

let check c ok =
  c.total <- c.total + 1;
  if not ok then c.failed <- c.failed + 1

let totals c = (c.total, c.failed)

(* ---- observability rendering ---------------------------------------- *)

let profile_table ?(title = "profile (per-phase wall time)") spans =
  let t =
    Table.create ~title ~columns:[ "phase"; "seconds"; "calls"; "us/call" ]
  in
  List.iter
    (fun (phase, seconds, calls) ->
      Table.add_row t
        [
          phase;
          Printf.sprintf "%.6f" seconds;
          string_of_int calls;
          (if calls = 0 then "-"
           else Printf.sprintf "%.3f" (seconds *. 1e6 /. float_of_int calls));
        ])
    spans;
  t

let metrics_tables (m : Dbp_obs.Metrics.t) =
  let scalars =
    Table.create ~title:"metrics (counters, gauges, exact sums)"
      ~columns:[ "metric"; "kind"; "value" ]
  in
  List.iter
    (fun (name, v) ->
      Table.add_row scalars [ name; "counter"; string_of_int v ])
    (Dbp_obs.Metrics.counters m);
  List.iter
    (fun (name, v) -> Table.add_row scalars [ name; "gauge"; string_of_int v ])
    (Dbp_obs.Metrics.gauges m);
  List.iter
    (fun (name, v) ->
      Table.add_row scalars
        [ name; "rat sum"; Printf.sprintf "%s (%s)" (fmt_rat v) (fmt_exact v) ])
    (Dbp_obs.Metrics.rat_sums m);
  let hists =
    Table.create ~title:"metrics (histograms)"
      ~columns:[ "histogram"; "n"; "mean"; "p50"; "p95"; "min"; "max" ]
  in
  List.iter
    (fun (name, data) ->
      (* single-sort summary path: sort once, every statistic from the
         same sorted snapshot. *)
      let sorted = Array.copy data in
      Array.sort Float.compare sorted;
      let s = Stats.summarise_sorted sorted in
      Table.add_row hists
        [
          name;
          string_of_int s.Stats.count;
          Printf.sprintf "%.4g" s.Stats.mean;
          Printf.sprintf "%.4g" s.Stats.median;
          Printf.sprintf "%.4g" (Stats.quantile_sorted sorted ~q:0.95);
          Printf.sprintf "%.4g" s.Stats.minimum;
          Printf.sprintf "%.4g" s.Stats.maximum;
        ])
    (Dbp_obs.Metrics.histograms m);
  let tables = if Dbp_obs.Metrics.histograms m = [] then [] else [ hists ] in
  scalars :: tables

let render_outcome o =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "==== %s: %s ====\n" o.experiment o.artefact);
  List.iter (fun t -> Buffer.add_string buf (Table.render t ^ "\n")) o.tables;
  List.iter (fun c -> Buffer.add_string buf (c ^ "\n")) o.charts;
  Buffer.add_string buf
    (Printf.sprintf "%s verdict: %d/%d checks passed%s\n" o.experiment
       (o.checks_total - o.checks_failed)
       o.checks_total
       (if o.checks_failed = 0 then "" else "  <-- FAILURES"));
  Buffer.contents buf
