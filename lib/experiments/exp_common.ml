open Dbp_num
open Dbp_core
open Dbp_analysis

type outcome = {
  experiment : string;
  artefact : string;
  tables : Table.t list;
  charts : string list;
  checks_total : int;
  checks_failed : int;
}

let fmt_rat x = Printf.sprintf "%.4g" (Rat.to_float x)
let fmt_exact = Rat.to_string

let measure_policy ?node_budget ~policy instance =
  Ratio.measure ?node_budget (Simulator.run ~policy instance)

type check_counter = { mutable total : int; mutable failed : int }

let counter () = { total = 0; failed = 0 }

let check c ok =
  c.total <- c.total + 1;
  if not ok then c.failed <- c.failed + 1

let totals c = (c.total, c.failed)

let render_outcome o =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "==== %s: %s ====\n" o.experiment o.artefact);
  List.iter (fun t -> Buffer.add_string buf (Table.render t ^ "\n")) o.tables;
  List.iter (fun c -> Buffer.add_string buf (c ^ "\n")) o.charts;
  Buffer.add_string buf
    (Printf.sprintf "%s verdict: %d/%d checks passed%s\n" o.experiment
       (o.checks_total - o.checks_failed)
       o.checks_total
       (if o.checks_failed = 0 then "" else "  <-- FAILURES"));
  Buffer.contents buf
