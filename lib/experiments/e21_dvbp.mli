(** E21: Dynamic Vector Bin Packing on the cloud-gaming workload.

    Packs the same request trace at d = 1 (GPU only — the paper's
    scalar model), d = 2 (GPU + CPU) and d = 4 (+ RAM, network) with
    the native vector Any Fit family, and reports each cost against
    the per-dimension segment lower bound.  Asserts that every packing
    validates, that the lower bound tightens monotonically with d, and
    that the d = 1 run of first-fit is bit-identical to the scalar
    engine. *)

val run : unit -> Exp_common.outcome
