(** E8 — Ablations.

    (a) MFF threshold sweep: cost of MFF(k) for k in 2..16 on gaming
    traces, situating the paper's mu-oblivious choice k = 8.
    (b) Billing granularity: exact (the paper's model) vs per-started-
    hour pricing for every policy, quantifying how much the simplified
    cost model understates a real bill. *)

val run : unit -> Exp_common.outcome
