open Dbp_num
open Dbp_cloudgaming
open Dbp_analysis
open Exp_common

let seeds = [ 141L; 142L; 143L ]

let profile =
  { Gaming_workload.default_profile with
    Gaming_workload.duration_hours = 12.0;
    base_rate = 40.0 }

(* Realistic catalog: ~5-10% per-GPU bulk discount. *)
let shallow_discount = Fleet.default_types

(* Hypothetical deep discount: 30% off per GPU on the big box. *)
let deep_discount =
  [
    Fleet.vm_type ~name:"g.small" ~gpu:Rat.one ~hourly_price:Rat.one;
    Fleet.vm_type ~name:"g.large" ~gpu:Rat.two ~hourly_price:(Rat.make 17 10);
    Fleet.vm_type ~name:"g.xlarge" ~gpu:(Rat.of_int 4) ~hourly_price:(Rat.make 14 5);
  ]

let strategies =
  [
    Fleet.Single "g.small";
    Fleet.Single "g.large";
    Fleet.Single "g.xlarge";
    Fleet.Smallest_fitting;
    Fleet.Largest;
  ]

let run () =
  let c = counter () in
  let table =
    Table.create
      ~title:
        "E15: fleet strategies on a 12h gaming trace, shallow (~10%) vs deep \
         (30%) bulk discount"
      ~columns:
        [ "seed"; "strategy"; "$ shallow"; "$ deep"; "servers"; "peak" ]
  in
  List.iter
    (fun seed ->
      let requests = Gaming_workload.generate ~seed profile in
      let run_catalog types strategy =
        Fleet.dispatch ~types ~strategy requests
      in
      let rows =
        List.map
          (fun strategy ->
            (run_catalog shallow_discount strategy,
             run_catalog deep_discount strategy))
          strategies
      in
      List.iter
        (fun ((shallow : Fleet.report), (deep : Fleet.report)) ->
          check c (Dbp_core.Packing.validate shallow.Fleet.packing = Ok ());
          check c
            (Array.for_all
               (fun (b : Dbp_core.Packing.bin_record) ->
                 Rat.(b.Dbp_core.Packing.max_level <= b.Dbp_core.Packing.capacity))
               shallow.Fleet.packing.Dbp_core.Packing.bins);
          Table.add_row table
            [
              Int64.to_string seed;
              shallow.Fleet.strategy_label;
              fmt_rat shallow.Fleet.dollar_cost;
              fmt_rat deep.Fleet.dollar_cost;
              string_of_int (Dbp_core.Packing.bins_used shallow.Fleet.packing);
              string_of_int shallow.Fleet.packing.Dbp_core.Packing.max_bins;
            ])
        rows;
      match rows with
      | (small_s, small_d) :: _ :: (xl_s, xl_d) :: _ ->
          (* shallow discount: fine-grained scale-down beats the bulk
             discount - small fleets win ... *)
          check c Rat.(small_s.Fleet.dollar_cost < xl_s.Fleet.dollar_cost);
          (* ... while a 30% discount flips the ordering: consolidation
             onto big boxes wins despite the coarser granularity *)
          check c Rat.(xl_d.Fleet.dollar_cost < small_d.Fleet.dollar_cost)
      | _ -> check c false)
    seeds;
  let total, failed = totals c in
  {
    experiment = "E15";
    artefact = "Heterogeneous fleets: granularity vs bulk discount (extension)";
    tables = [ table ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
