(** E7 — Section 1: the cloud gaming cost study.

    The paper's motivating scenario end-to-end: a synthetic 24 h
    OnLive/Gaikai-style request trace dispatched by each policy onto
    rented game servers, reporting dollar cost, fleet sizes and GPU
    utilisation against the offline lower bound. *)

val run : unit -> Exp_common.outcome
