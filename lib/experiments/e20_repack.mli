(** E20: the cost/recourse trade-off of budget-constrained repacking
    (extension; see DESIGN.md "Repacking").

    Sweeps the migration budget 0 [->] [inf] for each
    {!Dbp_repack.Repack_policy} over a seeded workload under first-fit
    and tabulates exact cost against migrations spent — asserting the
    budget=0 bit-identity, cost monotonicity in the budget, and that
    repacking never exceeds the plain first-fit cost.  A second table
    walks the fault injector's degradation ladder (migrate ->
    restart/backoff -> shed) at budgets 0, 4 and [inf]; a final check
    round-trips a mid-run repack checkpoint through the wire format
    and {!Dbp_checkpoint.Checkpoint.verify}. *)

val run : unit -> Exp_common.outcome
