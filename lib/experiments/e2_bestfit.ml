open Dbp_num
open Dbp_core
open Dbp_adversary
open Dbp_analysis
open Exp_common

let ks = [ 2; 4; 6; 8; 10 ]
let mu = Rat.two

let run () =
  let c = counter () in
  let table =
    Table.create ~title:"E2: Best Fit on the Figure 3 adversary (mu = 2)"
      ~columns:
        [ "k"; "iterations"; "items"; "BF cost"; "OPT upper"; "BF ratio >="
        ; "k/2"; "FF cost on same instance" ]
  in
  let points = ref [] and half_points = ref [] in
  List.iter
    (fun k ->
      let iterations = Bestfit_unbounded.paper_iterations ~k ~mu + 1 in
      let result = Bestfit_unbounded.run ~k ~mu ~iterations () in
      let ratio = result.Bestfit_unbounded.ratio_lower in
      check c Rat.(ratio >= Rat.make k 2);
      check c
        (Rat.equal result.Bestfit_unbounded.mu_realised mu);
      (* First Fit replays the recorded instance obliviously: the trap
         is Best Fit specific, FF stays near OPT. *)
      let ff =
        Simulator.run ~policy:First_fit.policy result.Bestfit_unbounded.instance
      in
      check c Rat.(ff.Packing.total_cost < result.Bestfit_unbounded.algorithm_cost);
      Table.add_row table
        [
          string_of_int k;
          string_of_int iterations;
          string_of_int result.Bestfit_unbounded.items_total;
          fmt_rat result.Bestfit_unbounded.algorithm_cost;
          fmt_rat result.Bestfit_unbounded.opt_upper;
          fmt_rat ratio;
          fmt_rat (Rat.make k 2);
          fmt_rat ff.Packing.total_cost;
        ];
      points := (float_of_int k, Rat.to_float ratio) :: !points;
      half_points := (float_of_int k, float_of_int k /. 2.0) :: !half_points)
    ks;
  let chart =
    Chart.render ~title:"E2: BF forced ratio grows linearly in k (mu fixed)"
      ~series:
        [ ("BF ratio", List.rev !points); ("k/2", List.rev !half_points) ]
      ()
  in
  let total, failed = totals c in
  {
    experiment = "E2";
    artefact = "Theorem 2 / Figure 3 (Best Fit unbounded)";
    tables = [ table ];
    charts = [ chart ];
    checks_total = total;
    checks_failed = failed;
  }
