(** E5 — Theorem 5: First Fit in the general (mixed-size) case.

    Sweeps the target [mu] and plots the measured First Fit ratio
    between the paper's two envelopes: the Theorem 1 lower bound [mu]
    (worst-case, adversarial — random loads sit well below it) and the
    Theorem 5 upper bound [2 mu + 13]. *)

val run : unit -> Exp_common.outcome
