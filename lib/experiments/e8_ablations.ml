open Dbp_num
open Dbp_core
open Dbp_cloudgaming
open Dbp_analysis
open Exp_common

let seed = 61L

let profile =
  { Gaming_workload.default_profile with
    Gaming_workload.duration_hours = 12.0;
    base_rate = 40.0 }

let run () =
  let c = counter () in
  let requests = Gaming_workload.generate ~seed profile in
  (* (a) threshold sweep *)
  let sweep =
    Table.create ~title:"E8a: MFF threshold sweep (gaming trace)"
      ~columns:[ "k"; "server-hours"; "vs FF" ]
  in
  let ff = Dispatcher.dispatch ~policy:First_fit.policy requests in
  let ff_hours = ff.Dispatcher.server_hours in
  let points = ref [] in
  List.iter
    (fun k ->
      let report =
        Dispatcher.dispatch
          ~policy:(Modified_first_fit.policy ~k:(Rat.of_int k))
          requests
      in
      let hours = report.Dispatcher.server_hours in
      check c Rat.(hours >= report.Dispatcher.offline_lower_bound);
      Table.add_row sweep
        [
          string_of_int k;
          fmt_rat hours;
          fmt_rat (Rat.div hours ff_hours);
        ];
      points := (float_of_int k, Rat.to_float hours) :: !points)
    [ 2; 3; 4; 6; 8; 10; 12; 16 ];
  let chart =
    Chart.render ~title:"E8a: MFF cost vs threshold k (gaming trace)"
      ~series:[ ("server-hours", List.rev !points) ]
      ()
  in
  (* (b) billing granularity *)
  let billing =
    Table.create ~title:"E8b: exact vs per-started-hour billing"
      ~columns:[ "policy"; "exact cost"; "hourly cost"; "overhead" ]
  in
  List.iter
    (fun policy ->
      let exact =
        Dispatcher.dispatch ~billing:(Billing.exact ~rate:Rat.one) ~policy
          requests
      in
      let hourly =
        Dispatcher.dispatch ~billing:(Billing.hourly ~rate_per_hour:Rat.one)
          ~policy requests
      in
      check c
        Rat.(hourly.Dispatcher.dollar_cost >= exact.Dispatcher.dollar_cost);
      Table.add_row billing
        [
          policy.Policy.name;
          fmt_rat exact.Dispatcher.dollar_cost;
          fmt_rat hourly.Dispatcher.dollar_cost;
          Printf.sprintf "+%.1f%%"
            (100.0
            *. (Rat.to_float
                  (Rat.div hourly.Dispatcher.dollar_cost
                     exact.Dispatcher.dollar_cost)
               -. 1.0));
        ])
    [ First_fit.policy; Best_fit.policy; Modified_first_fit.policy_mu_oblivious ];
  let total, failed = totals c in
  {
    experiment = "E8";
    artefact = "Ablations (MFF threshold, billing granularity)";
    tables = [ sweep; billing ];
    charts = [ chart ];
    checks_total = total;
    checks_failed = failed;
  }
