(** E14 — extension: packing with departure-time predictions.

    The paper's semi-online MFF uses one scalar of foresight (μ).  This
    experiment measures how much {e per-session} duration predictions
    are worth, sweeping prediction quality from perfect clairvoyance
    through noisy estimates down to no information, for the
    lifetime-aware policies of [Dbp_clairvoyant]. *)

val run : unit -> Exp_common.outcome
