(** E3 — Theorem 3: First Fit on all-large items.

    On workloads whose sizes are all [>= W/k], the measured First Fit
    ratio never exceeds [k] (and is usually far below it — the [k]
    bound is worst-case). *)

val run : unit -> Exp_common.outcome
