(** E17 — extension: statistical robustness of the cost comparison.

    E7 reports one 24 h trace.  This experiment repeats the dispatch
    comparison over 20 independent seeds and reports mean cost
    overheads (vs the per-trace offline lower bound) with 95%
    confidence intervals, confirming the E7 ordering — FF ≈ BF ≈
    known-μ MFF < MFF(8) < WF < NF — is not a single-seed artefact. *)

val run : unit -> Exp_common.outcome
