open Dbp_num
open Dbp_core
open Dbp_cloudgaming
open Dbp_analysis
open Exp_common

let seeds = [ 91L; 92L; 93L ]

let profile =
  { Gaming_workload.default_profile with
    Gaming_workload.duration_hours = 12.0;
    base_rate = 30.0 }

let run () =
  let c = counter () in
  let table =
    Table.create
      ~title:"E11: no-migration online policies vs an FFD repacking dispatcher"
      ~columns:
        [ "seed"; "requests"; "FF cost"; "MFF cost"; "repack cost";
          "FF overhead"; "migrations"; "migrations/request"; "moved volume" ]
  in
  let overheads = ref [] in
  List.iter
    (fun seed ->
      let requests = Gaming_workload.generate ~seed profile in
      let instance = Gaming_workload.to_instance requests in
      let ff = Simulator.run ~policy:First_fit.policy instance in
      let mff =
        Simulator.run ~policy:Modified_first_fit.policy_mu_oblivious instance
      in
      let repack = Dbp_opt.Repack_baseline.compute instance in
      (* Repacking every instant can only help the bin count. *)
      check c Rat.(repack.Dbp_opt.Repack_baseline.cost <= ff.Packing.total_cost);
      check c
        Rat.(
          repack.Dbp_opt.Repack_baseline.cost
          >= Dbp_opt.Bounds.opt_lower_bound instance);
      (* Cross-check against the online budget-constrained repacker: at
         budget=inf it drains bins whenever doing so closes one early,
         so it lands between the every-instant FFD baseline (which also
         repacks mid-life) and plain first-fit. *)
      let online =
        Dbp_repack.Runner.run ~budget:Dbp_repack.Budget.unlimited
          ~repack:Dbp_repack.Repack_policy.Consolidate_sparsest
          ~policy:First_fit.policy instance
      in
      let online_cost = online.Dbp_repack.Runner.packing.Packing.total_cost in
      check c Rat.(repack.Dbp_opt.Repack_baseline.cost <= online_cost);
      check c Rat.(online_cost <= ff.Packing.total_cost);
      let overhead =
        Rat.div ff.Packing.total_cost repack.Dbp_opt.Repack_baseline.cost
      in
      overheads := Rat.to_float overhead :: !overheads;
      let n = List.length requests in
      Table.add_row table
        [
          Int64.to_string seed;
          string_of_int n;
          fmt_rat ff.Packing.total_cost;
          fmt_rat mff.Packing.total_cost;
          fmt_rat repack.Dbp_opt.Repack_baseline.cost;
          fmt_rat overhead;
          string_of_int repack.Dbp_opt.Repack_baseline.migrations;
          Printf.sprintf "%.2f"
            (float_of_int repack.Dbp_opt.Repack_baseline.migrations
            /. float_of_int n);
          fmt_rat repack.Dbp_opt.Repack_baseline.migrated_demand;
        ])
    seeds;
  let s = Stats.summarise !overheads in
  let summary =
    Table.create ~title:"E11 summary: FF cost / repacking cost"
      ~columns:[ "mean"; "min"; "max" ]
  in
  Table.add_row summary
    [
      Printf.sprintf "%.3f" s.Stats.mean;
      Printf.sprintf "%.3f" s.Stats.minimum;
      Printf.sprintf "%.3f" s.Stats.maximum;
    ];
  let total, failed = totals c in
  {
    experiment = "E11";
    artefact = "Intro motivation: migration overhead tradeoff (extension)";
    tables = [ table; summary ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
