open Dbp_num
open Dbp_core
open Dbp_workload
open Dbp_analysis
open Exp_common

let mus = [ 1.0; 2.0; 4.0; 8.0; 16.0 ]
let seeds = [ 31L; 32L; 33L ]

let run () =
  let c = counter () in
  let table =
    Table.create ~title:"E5: First Fit general case (Theorem 5 bound 2mu+13)"
      ~columns:
        [ "target mu"; "seed"; "realised mu"; "FF ratio"; "bound 2mu+13";
          "verdict"; "ineq (14)/(15) violations" ]
  in
  let measured = ref [] and bounds = ref [] in
  List.iter
    (fun mu_f ->
      let per_seed =
        List.map
          (fun seed ->
            let spec =
              Spec.with_target_mu { Spec.default with Spec.count = 120 } ~mu:mu_f
            in
            let instance = Generator.generate ~seed spec in
            let packing = Simulator.run ~policy:First_fit.policy instance in
            let ratio = Ratio.measure packing in
            let mu = Instance.mu instance in
            let bound = Theorem_bounds.ff_general ~mu in
            let verdict = Ratio.check_bound ratio ~bound in
            check c (verdict <> Ratio.Violated);
            let report = Ff_decomposition.analyse packing in
            check c (report.Ff_decomposition.violations = []);
            Table.add_row table
              [
                Printf.sprintf "%.0f" mu_f;
                Int64.to_string seed;
                fmt_rat mu;
                fmt_rat ratio.Ratio.ratio_upper;
                fmt_rat bound;
                Ratio.verdict_to_string verdict;
                string_of_int (List.length report.Ff_decomposition.violations);
              ];
            Rat.to_float ratio.Ratio.ratio_upper)
          seeds
      in
      let avg =
        List.fold_left ( +. ) 0.0 per_seed /. float_of_int (List.length per_seed)
      in
      measured := (mu_f, avg) :: !measured;
      bounds := (mu_f, (2.0 *. mu_f) +. 13.0) :: !bounds)
    mus;
  let chart =
    Chart.render
      ~title:"E5: FF measured ratio (avg) vs Theorem 5 bound (x = mu)"
      ~series:
        [ ("measured", List.rev !measured); ("2mu+13", List.rev !bounds) ]
      ()
  in
  let total, failed = totals c in
  {
    experiment = "E5";
    artefact = "Theorem 5 (FF <= 2mu+13 in general)";
    tables = [ table ];
    charts = [ chart ];
    checks_total = total;
    checks_failed = failed;
  }
