open Dbp_num
open Dbp_core
open Dbp_cloudgaming
open Dbp_analysis
open Exp_common

let seeds = List.init 20 (fun i -> Int64.of_int (1000 + i))

let profile =
  { Gaming_workload.default_profile with
    Gaming_workload.duration_hours = 8.0;
    base_rate = 30.0 }

let policy_set =
  [
    ("first_fit", First_fit.policy);
    ("best_fit", Best_fit.policy);
    ("worst_fit", Worst_fit.policy);
    ("next_fit", Next_fit.policy);
    ("mff(8)", Modified_first_fit.policy_mu_oblivious);
  ]

let run () =
  let c = counter () in
  (* overhead vs the offline lower bound, per policy, across seeds *)
  let samples = Hashtbl.create 8 in
  List.iter
    (fun seed ->
      let requests = Gaming_workload.generate ~seed profile in
      if requests <> [] then
        List.iter
          (fun (name, policy) ->
            let report = Dispatcher.dispatch ~policy requests in
            let overhead =
              Rat.to_float
                (Rat.div report.Dispatcher.server_hours
                   report.Dispatcher.offline_lower_bound)
            in
            check c (overhead >= 1.0);
            let prev = Option.value ~default:[] (Hashtbl.find_opt samples name) in
            Hashtbl.replace samples name (overhead :: prev))
          policy_set)
    seeds;
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E17: cost overhead vs offline LB, %d seeds x 8h gaming traces \
            (mean +- 95%% CI)"
           (List.length seeds))
      ~columns:[ "policy"; "mean overhead"; "95% CI"; "min"; "max" ]
  in
  let summary name =
    Stats.summarise (Hashtbl.find samples name)
  in
  List.iter
    (fun (name, _) ->
      let s = summary name in
      check c (s.Stats.count = List.length seeds);
      Table.add_row table
        [
          name;
          Printf.sprintf "%.3f" s.Stats.mean;
          Printf.sprintf "+-%.3f" s.Stats.ci95_half_width;
          Printf.sprintf "%.3f" s.Stats.minimum;
          Printf.sprintf "%.3f" s.Stats.maximum;
        ])
    policy_set;
  (* The E7 ordering must hold in the means with CI separation for the
     clear-cut gaps. *)
  let mean name = (summary name).Stats.mean in
  let ci name = (summary name).Stats.ci95_half_width in
  check c (mean "first_fit" +. ci "first_fit" < mean "worst_fit" -. ci "worst_fit");
  check c (mean "best_fit" +. ci "best_fit" < mean "next_fit" -. ci "next_fit");
  check c (mean "mff(8)" < mean "worst_fit");
  let total, failed = totals c in
  {
    experiment = "E17";
    artefact = "Statistical robustness of the dispatch comparison (extension)";
    tables = [ table ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
