let experiments : (string * (unit -> Exp_common.outcome)) list =
  [
    ("e1", E1_anyfit.run);
    ("e2", E2_bestfit.run);
    ("e3", E3_ff_large.run);
    ("e4", E4_ff_small.run);
    ("e5", E5_ff_general.run);
    ("e6", E6_mff.run);
    ("e7", E7_cloud_gaming.run);
    ("e8", E8_ablations.run);
    ("e9", E9_constrained.run);
    ("e10", E10_objectives.run);
    ("e11", E11_migration.run);
    ("e12", E12_offline.run);
    ("e13", E13_unit_fractions.run);
    ("e14", E14_predictions.run);
    ("e15", E15_fleet.run);
    ("e16", E16_busy_time.run);
    ("e17", E17_seed_sweep.run);
    ("e18", E18_faults.run);
    ("e19", E19_recovery.run);
    ("e20", E20_repack.run);
    ("e21", E21_dvbp.run);
  ]

let all_names = List.map (fun (n, _) -> String.uppercase_ascii n) experiments

let run name =
  List.assoc_opt (String.lowercase_ascii name) experiments
  |> Option.map (fun f -> f ())

let default_domains () = max 1 (min 8 (Domain.recommended_domain_count ()))

(* Work-stealing over a shared atomic cursor: each domain claims the
   next unclaimed experiment index until the list drains.  Results land
   in a slot array indexed by experiment, so the output order is E1..E21
   regardless of which domain finished when.  Experiments are pure
   (local PRNGs, local tables, sprintf only), so they need no locking;
   distinct array slots are data-race-free under the OCaml 5 memory
   model. *)
let run_list ~domains jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let results = Array.make n None in
  let domains = max 1 (min domains n) in
  if domains = 1 then
    Array.iteri (fun i f -> results.(i) <- Some (f ())) jobs
  else begin
    let cursor = Atomic.make 0 in
    (* First failure wins: a raising worker parks the exception with
       its backtrace and stomps the cursor past [n], so every domain —
       including the caller's own — stops claiming work at its next
       steal instead of burning through the rest of the list before
       the error surfaces at [Domain.join].  The spawned domains are
       always joined (no leak even when the caller's own worker is
       the one that failed), then the parked exception is re-raised
       with its original backtrace. *)
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (match jobs.(i) () with
          | r ->
              results.(i) <- Some r;
              loop ()
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (e, bt)));
              Atomic.set cursor n)
        end
      in
      loop ()
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    (match worker () with
    | () -> ()
    | exception e ->
        (* Defensive: worker itself never raises, but never leak a
           spawned domain if that changes. *)
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failure None (Some (e, bt)));
        Atomic.set cursor n);
    List.iter Domain.join spawned;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end;
  Array.to_list results
  |> List.map (function
       | Some r -> r
       | None -> assert false (* every slot was claimed exactly once *))

let run_all ?(domains = 1) () = run_list ~domains (List.map snd experiments)
