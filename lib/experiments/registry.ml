let experiments : (string * (unit -> Exp_common.outcome)) list =
  [
    ("e1", E1_anyfit.run);
    ("e2", E2_bestfit.run);
    ("e3", E3_ff_large.run);
    ("e4", E4_ff_small.run);
    ("e5", E5_ff_general.run);
    ("e6", E6_mff.run);
    ("e7", E7_cloud_gaming.run);
    ("e8", E8_ablations.run);
    ("e9", E9_constrained.run);
    ("e10", E10_objectives.run);
    ("e11", E11_migration.run);
    ("e12", E12_offline.run);
    ("e13", E13_unit_fractions.run);
    ("e14", E14_predictions.run);
    ("e15", E15_fleet.run);
    ("e16", E16_busy_time.run);
    ("e17", E17_seed_sweep.run);
    ("e18", E18_faults.run);
  ]

let all_names = List.map (fun (n, _) -> String.uppercase_ascii n) experiments

let run name =
  List.assoc_opt (String.lowercase_ascii name) experiments
  |> Option.map (fun f -> f ())

let run_all () = List.map (fun (_, f) -> f ()) experiments
