(** E15 — extension: heterogeneous server fleets.

    The paper assumes one server type; real catalogs price bigger GPUs
    sub-linearly.  This experiment dispatches the same gaming trace
    onto single-type fleets of each size and onto mixed fleets
    (smallest-fitting / always-largest launch strategies) and compares
    dollar cost — quantifying when consolidation onto big boxes beats
    a fleet of small ones. *)

val run : unit -> Exp_common.outcome
