open Dbp_num
open Dbp_core
open Dbp_cloudgaming
open Dbp_analysis
open Exp_common

let dims_list = [ 1; 2; 4 ]
let seed = 2101L

let policies () =
  [
    Vec_policy.first_fit;
    Vec_policy.best_fit Vec_policy.Max;
    Vec_policy.best_fit Vec_policy.Sum;
    Vec_policy.worst_fit Vec_policy.Max;
    Vec_policy.next_fit;
  ]

(* A shorter, denser trace than E7's: the vector engine runs once per
   (dims, policy) pair, and the interesting regime is the one where
   secondary resources actually bind (open-world / aaa-rpg sessions
   are RAM-heavy relative to their GPU share). *)
let profile =
  {
    Gaming_workload.default_profile with
    Gaming_workload.duration_hours = 8.0;
    base_rate = 25.0;
  }

let run () =
  let c = counter () in
  let requests = Gaming_workload.generate ~seed profile in
  let scalar_instance = Gaming_workload.to_instance requests in
  let scalar_ff = Simulator.run ~policy:First_fit.policy scalar_instance in
  let table =
    Table.create
      ~title:
        "E21: dynamic vector bin packing (cloud gaming profiles, d \
         resources per server)"
      ~columns:
        [ "d"; "policy"; "cost"; "max bins"; "lower bound"; "cost / LB" ]
  in
  let prev_lb = ref Rat.zero in
  List.iter
    (fun dims ->
      let vinstance = Gaming_workload.to_vec_instance ~dims requests in
      let lb = Dbp_opt.Bounds.vec_segment_lower_bound vinstance in
      (* The segment bound dominates the (b.1)/(b.2) combination, and
         adding resource dimensions can only tighten it. *)
      check c Rat.(lb >= Dbp_opt.Bounds.vec_opt_lower_bound vinstance);
      check c Rat.(lb >= !prev_lb);
      prev_lb := lb;
      List.iter
        (fun policy ->
          let result = Vec_simulator.run ~policy vinstance in
          check c (Vec_simulator.validate result = Ok ());
          (* Next Fit only ever looks at the latest bin, so it is the
             one policy here allowed to violate the Any Fit rule. *)
          if policy.Vec_policy.name <> "next_fit" then
            check c (result.Vec_simulator.r_any_fit_violations = 0);
          check c Rat.(result.Vec_simulator.r_total_cost >= lb);
          (* d = 1 is the paper's scalar GPU-only model: the native
             first-fit must reproduce the scalar engine bit for bit. *)
          if dims = 1 && policy.Vec_policy.name = "first_fit" then begin
            check c
              (Rat.equal result.Vec_simulator.r_total_cost
                 scalar_ff.Packing.total_cost);
            check c
              (result.Vec_simulator.r_assignment
              = scalar_ff.Packing.assignment)
          end;
          Table.add_row table
            [
              string_of_int dims;
              policy.Vec_policy.name;
              fmt_rat result.Vec_simulator.r_total_cost;
              string_of_int result.Vec_simulator.r_max_bins;
              fmt_rat lb;
              fmt_rat (Rat.div result.Vec_simulator.r_total_cost lb);
            ])
        (policies ()))
    dims_list;
  let total, failed = totals c in
  {
    experiment = "E21";
    artefact = "DVBP extension: multi-resource game servers (Section 1 setting)";
    tables = [ table ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
