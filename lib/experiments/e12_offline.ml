open Dbp_num
open Dbp_core
open Dbp_offline
open Dbp_analysis
open Exp_common

let small_seeds = [ 101L; 102L; 103L; 104L; 105L; 106L ]
let big_seeds = [ 111L; 112L; 113L ]

let run () =
  let c = counter () in
  (* (a) exact three-way comparison on small instances *)
  let exact_table =
    Table.create
      ~title:"E12a: repacking OPT vs non-migratory offline OPT vs online FF"
      ~columns:
        [ "seed"; "items"; "OPT_repack"; "OPT_offline"; "FF online";
          "migration gap"; "online gap" ]
  in
  List.iter
    (fun seed ->
      let spec =
        Dbp_workload.Spec.with_target_mu
          { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 12 }
          ~mu:6.0
      in
      let instance = Dbp_workload.Generator.generate ~seed spec in
      let repack = Dbp_opt.Opt_total.compute instance in
      let offline = Offline_exact.solve instance in
      let ff = Simulator.run ~policy:First_fit.policy instance in
      check c repack.Dbp_opt.Opt_total.exact;
      check c offline.Offline_exact.exact;
      (* the defining chain *)
      check c
        Rat.(Dbp_opt.Opt_total.value_exn repack <= offline.Offline_exact.upper);
      check c Rat.(offline.Offline_exact.upper <= ff.Packing.total_cost);
      Table.add_row exact_table
        [
          Int64.to_string seed;
          string_of_int (Instance.size instance);
          fmt_rat (Dbp_opt.Opt_total.value_exn repack);
          fmt_rat offline.Offline_exact.upper;
          fmt_rat ff.Packing.total_cost;
          fmt_rat
            (Rat.div offline.Offline_exact.upper
               (Dbp_opt.Opt_total.value_exn repack));
          fmt_rat
            (Rat.div ff.Packing.total_cost offline.Offline_exact.upper);
        ])
    small_seeds;
  (* (b) offline heuristics on realistic sizes *)
  let heur_table =
    Table.create
      ~title:"E12b: offline heuristics vs online FF (200 items)"
      ~columns:
        [ "seed"; "FF online"; "offline FF-arrival"; "least-span-increase";
          "longest-first"; "best vs FF" ]
  in
  List.iter
    (fun seed ->
      let spec =
        Dbp_workload.Spec.with_target_mu
          { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 200 }
          ~mu:8.0
      in
      let instance = Dbp_workload.Generator.generate ~seed spec in
      let ff = Simulator.run ~policy:First_fit.policy instance in
      let ffa = Offline_heuristic.first_fit_by_arrival instance in
      let lsi = Offline_heuristic.least_span_increase instance in
      let lf = Offline_heuristic.longest_first instance in
      check c (Offline_heuristic.validate instance ffa = Ok ());
      check c (Offline_heuristic.validate instance lsi = Ok ());
      check c (Offline_heuristic.validate instance lf = Ok ());
      let best = Offline_heuristic.best instance in
      (* [best] takes the minimum of the three by construction *)
      check c
        (List.for_all
           (fun (s : Offline_heuristic.solution) ->
             Rat.(best.Offline_heuristic.cost <= s.Offline_heuristic.cost))
           [ ffa; lsi; lf ]);
      check c
        Rat.(
          best.Offline_heuristic.cost
          >= Dbp_opt.Bounds.opt_lower_bound instance);
      Table.add_row heur_table
        [
          Int64.to_string seed;
          fmt_rat ff.Packing.total_cost;
          fmt_rat ffa.Offline_heuristic.cost;
          fmt_rat lsi.Offline_heuristic.cost;
          fmt_rat lf.Offline_heuristic.cost;
          fmt_rat (Rat.div best.Offline_heuristic.cost ff.Packing.total_cost);
        ])
    big_seeds;
  let total, failed = totals c in
  {
    experiment = "E12";
    artefact = "OPT definition gap: repacking vs non-migratory (extension)";
    tables = [ exact_table; heur_table ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
