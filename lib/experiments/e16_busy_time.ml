open Dbp_num
open Dbp_core
open Dbp_offline
open Dbp_analysis
open Exp_common

let gs = [ 2; 4; 10 ]
let seeds = [ 151L; 152L ]

let unit_size_spec ~g ~mu =
  {
    (Dbp_workload.Spec.with_target_mu
       { Dbp_workload.Spec.default with
         Dbp_workload.Spec.count = 150;
         arrivals = Dbp_workload.Spec.Poisson { rate = float_of_int g } }
       ~mu)
    with
    Dbp_workload.Spec.sizes = Dbp_workload.Spec.Constant_size (Rat.make 1 g);
  }

let run () =
  let c = counter () in
  let table =
    Table.create
      ~title:
        "E16: busy-time scheduling (unit sizes 1/g): Flammini-style greedy vs \
         bounds"
      ~columns:
        [ "g"; "seed"; "longest-first"; "least-span"; "online FF";
          "lower bound"; "greedy / LB" ]
  in
  List.iter
    (fun g ->
      List.iter
        (fun seed ->
          let instance =
            Dbp_workload.Generator.generate ~seed (unit_size_spec ~g ~mu:8.0)
          in
          let lf = Offline_heuristic.longest_first instance in
          let lsi = Offline_heuristic.least_span_increase instance in
          let ff = Simulator.run ~policy:First_fit.policy instance in
          let lb = Dbp_opt.Bounds.opt_lower_bound instance in
          check c (Offline_heuristic.validate instance lf = Ok ());
          let vs_lb = Rat.div lf.Offline_heuristic.cost lb in
          (* the literature's factor-4 guarantee holds comfortably *)
          check c Rat.(vs_lb <= Rat.of_int 4);
          Table.add_row table
            [
              string_of_int g;
              Int64.to_string seed;
              fmt_rat lf.Offline_heuristic.cost;
              fmt_rat lsi.Offline_heuristic.cost;
              fmt_rat ff.Packing.total_cost;
              fmt_rat lb;
              fmt_rat vs_lb;
            ])
        seeds)
    gs;
  let total, failed = totals c in
  {
    experiment = "E16";
    artefact = "Related work: bounded-parallelism busy time (extension)";
    tables = [ table ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
