(** E18 (extension): fault injection and recovery.

    Blast radius and recovery cost of FF / BF / WF / MFF on the same
    cloud-gaming trace under (a) an adversarial "kill the fullest
    server" plan and (b) a Poisson crash-rate sweep.  Checks that the
    empty plan reproduces the fault-free packing exactly and that the
    consolidation/blast-radius trade-off shows: Best Fit loses at least
    as many interrupted session-seconds as Worst Fit under the
    targeted plan. *)

val run : unit -> Exp_common.outcome
