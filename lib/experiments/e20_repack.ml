open Dbp_num
open Dbp_core
open Dbp_repack
open Dbp_faults
open Exp_common

let seed = 20260808L

(* Large enough for a real fleet (tens of open bins) so the sparsest-bin
   drains have somewhere to go; small enough that the whole 2-policy ×
   7-budget sweep replays in seconds. *)
let spec = { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 300 }

let total_budget n =
  { Budget.kind = Budget.Items; mode = Budget.Total (Rat.of_int n) }

(* The recourse axis: no budget, geometric token steps, free repacking. *)
let budgets =
  [
    ("0", Budget.zero);
    ("1", total_budget 1);
    ("2", total_budget 2);
    ("4", total_budget 4);
    ("8", total_budget 8);
    ("16", total_budget 16);
    ("inf", Budget.unlimited);
  ]

let repack_policies = [ Repack_policy.Consolidate_sparsest; Repack_policy.Ffd_sparsest ]

let run () =
  let c = counter () in
  let instance = Dbp_workload.Generator.generate ~seed spec in
  let policy = First_fit.policy in
  let plain = Simulator.run ~policy instance in
  (* -- (a) cost vs recourse: sweep the budget 0 -> inf per policy ----- *)
  let t1 =
    Dbp_analysis.Table.create
      ~title:
        (Printf.sprintf
           "E20a: limited-recourse repacking under first-fit (%d items; \
            plain FF cost %s)"
           spec.Dbp_workload.Spec.count
           (fmt_rat plain.Packing.total_cost))
      ~columns:
        [
          "repack";
          "budget";
          "cost";
          "vs FF";
          "migrations";
          "moved volume";
          "bins drained";
          "reclaimed bin-s";
          "denied";
        ]
  in
  List.iter
    (fun rp ->
      let costs = ref [] in
      List.iter
        (fun (label, budget) ->
          let r = Runner.run ~budget ~repack:rp ~policy instance in
          check c (Packing.validate r.Runner.packing = Ok ());
          let cost = r.Runner.packing.Packing.total_cost in
          (* Budget 0 is the bit-identical fast path. *)
          if Budget.never_affords budget then begin
            check c (Rat.equal cost plain.Packing.total_cost);
            check c (r.Runner.stats.Runner.migrations = 0);
            check c
              (r.Runner.packing.Packing.assignment
              = plain.Packing.assignment)
          end;
          costs := cost :: !costs;
          (* Conservation: what the odometers metered is what moved. *)
          check c
            (r.Runner.stats.Runner.migrations = 0
            || Rat.(r.Runner.stats.Runner.migrated_volume > Rat.zero));
          Dbp_analysis.Table.add_row t1
            [
              Repack_policy.name rp;
              label;
              fmt_rat cost;
              Printf.sprintf "%.4f"
                (Rat.to_float (Rat.div cost plain.Packing.total_cost));
              string_of_int r.Runner.stats.Runner.migrations;
              fmt_rat r.Runner.stats.Runner.migrated_volume;
              string_of_int r.Runner.stats.Runner.bins_closed_by_repack;
              fmt_rat r.Runner.stats.Runner.reclaimed_bin_seconds;
              string_of_int r.Runner.stats.Runner.denied_triggers;
            ])
        budgets;
      (* Limited greedy recourse is NOT per-step monotone: a sliver of
         budget drains one bin, which perturbs every later first-fit
         placement and can cost slightly more than no recourse at all
         (visible in the budget-1/2 rows).  What does hold, and what we
         assert: free repacking is the column minimum and beats plain
         first-fit. *)
      match !costs with
      | [] -> check c false
      | inf_cost :: rest ->
          check c Rat.(inf_cost <= plain.Packing.total_cost);
          List.iter (fun cost -> check c Rat.(inf_cost <= cost)) rest)
    repack_policies;
  (* -- (b) graceful degradation: the injector's migration rung -------- *)
  let horizon = Interval.hi (Instance.packing_period instance) in
  let plan =
    Fault_plan.poisson_crashes ~seed:(Int64.add seed 7L) ~rate:2.0 ~horizon
  in
  let t2 =
    Dbp_analysis.Table.create
      ~title:
        (Printf.sprintf
           "E20b: degradation ladder under %d planned crashes (migrate -> \
            restart/backoff -> shed)"
           (Fault_plan.count plan))
      ~columns:
        [
          "budget";
          "migrated";
          "interrupted";
          "resumed";
          "lost";
          "shed";
          "cost";
        ]
  in
  let no_repack = Injector.run ~plan ~policy instance in
  List.iter
    (fun (label, budget) ->
      let r =
        Injector.run ~repack:(budget, Repack_policy.Consolidate_sparsest)
          ~plan ~policy instance
      in
      check c (Packing.validate r.Injector.packing = Ok ());
      let z = r.Injector.resilience in
      (* Budget 0 never arms the rung: bit-identical to the evict-only
         injector, counters included. *)
      if Budget.never_affords budget then begin
        check c
          (Rat.equal r.Injector.packing.Packing.total_cost
             no_repack.Injector.packing.Packing.total_cost);
        check c (z.Resilience.migrated_sessions = 0);
        check c
          (z.Resilience.interrupted_sessions
          = no_repack.Injector.resilience.Resilience.interrupted_sessions)
      end;
      (* Every session the rung saves is one the ladder never has to
         restart or shed. *)
      check c
        (z.Resilience.migrated_sessions = 0
        || z.Resilience.interrupted_sessions
           <= no_repack.Injector.resilience.Resilience.interrupted_sessions);
      Dbp_analysis.Table.add_row t2
        [
          label;
          string_of_int z.Resilience.migrated_sessions;
          string_of_int z.Resilience.interrupted_sessions;
          string_of_int z.Resilience.resumed_sessions;
          string_of_int z.Resilience.lost_sessions;
          string_of_int z.Resilience.shed_requests;
          fmt_rat r.Injector.packing.Packing.total_cost;
        ])
    [ ("0", Budget.zero); ("4", total_budget 4); ("inf", Budget.unlimited) ];
  (* -- (c) checkpoint fidelity under recourse ------------------------- *)
  let total_events = 2 * spec.Dbp_workload.Spec.count in
  let at = total_events / 2 in
  let snap =
    Dbp_checkpoint.Checkpoint.save_repack_at ~policy_name:"first-fit" ~at
      ~budget:(total_budget 8) ~repack:Repack_policy.Consolidate_sparsest
      instance
  in
  let snap =
    match
      Dbp_checkpoint.Snapshot.of_string
        (Dbp_checkpoint.Snapshot.to_string snap)
    with
    | Ok s -> s
    | Result.Error m -> invalid_arg ("E20: round trip failed: " ^ m)
  in
  let verdict = Dbp_checkpoint.Checkpoint.verify instance snap in
  check c verdict.Dbp_checkpoint.Checkpoint.ok;
  let total, failed = totals c in
  {
    experiment = "E20";
    artefact =
      "Budget-aware repacking: cost/recourse trade-off and graceful \
       degradation (extension)";
    tables = [ t1; t2 ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
