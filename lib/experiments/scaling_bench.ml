(* Simulator scaling benchmark: the perf trajectory's data source.

   Runs every registered policy through the fast engine ([Simulator])
   at each trace size, and through the retained seed engine
   ([Simulator_naive]) at the smallest size, asserting bit-identical
   packings as it goes.  The seed engine is quadratic in bins ever
   opened (per-event rescan of the full bin list), so its cost at the
   largest size is extrapolated with the (max/naive)^2 law instead of
   measured — at 50k items a single naive run is minutes, which is the
   very reason the fast engine exists.

   [to_json] emits the BENCH_simulator.json artefact; CI uploads it
   from the quick profile and the committed copy at the repo root holds
   full-profile numbers (see EXPERIMENTS.md "Engine scaling"). *)

open Dbp_num
open Dbp_core

type row = {
  policy : string;
  engine : string;  (* "fast" | "naive" *)
  items : int;
  bins : int;
  max_open : int;
  wall_seconds : float;
  events_per_second : float;
  total_cost : float;
  cost_exact : string;
  phases : (string * float * int) list;
      (* per-phase (name, seconds, calls) from a second, profiled run
         of the same policy/size; empty for naive rows.  The timed
         wall/events figures above come from the unprofiled run, so
         the hooks never skew them. *)
}

type equivalence = {
  eq_policy : string;
  eq_items : int;
  speedup : float;  (* naive wall / fast wall at eq_items *)
  identical : bool;  (* same cost, assignment, bins, violations *)
}

type segmented = {
  sg_policy : string;
  sg_items : int;
  sg_cut : int;  (* event index the run was checkpointed at *)
  sg_snapshot_bytes : int;
  sg_identical : bool;
      (* straight run vs save_at-then-resume through the wire format *)
}

type report = {
  quick : bool;
  seed : int64;
  sizes : int list;  (* fast-engine trace sizes, ascending *)
  naive_size : int;  (* the size the naive engine is measured at *)
  rows : row list;
  equivalences : equivalence list;
  segmented : segmented list;
      (* per-policy segmented-identity proof at [naive_size]: the run
         is cut in half with [Dbp_checkpoint.Checkpoint.save_at], the
         snapshot round-trips through its NDJSON wire format, and the
         resumed packing must be bit-identical to the straight run *)
  extrapolated : (string * float) list;
      (* policy -> naive cost extrapolated to [max sizes] over measured
         fast wall there *)
  profiles : (string * (string * float * int) list) list;
      (* policy -> per-phase (name, seconds, calls) from a separately
         profiled fast-engine run at [max sizes]; the timed rows above
         stay unprofiled so the hooks cannot skew them *)
}

let default_sizes ~quick = if quick then [ 500; 2_000 ] else [ 5_000; 50_000 ]

let instance_of ~seed n =
  Dbp_workload.Generator.generate ~seed
    { Dbp_workload.Spec.default with Dbp_workload.Spec.count = n }

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let row_of ?(phases = []) ~engine ~items (p : Packing.t) wall =
  {
    policy = p.Packing.policy_name;
    engine;
    items;
    bins = Packing.bins_used p;
    max_open = p.Packing.max_bins;
    wall_seconds = wall;
    events_per_second = float_of_int (2 * items) /. Float.max wall 1e-9;
    total_cost = Rat.to_float p.Packing.total_cost;
    cost_exact = Rat.to_string p.Packing.total_cost;
    phases;
  }

let packings_identical (a : Packing.t) (b : Packing.t) =
  Rat.equal a.Packing.total_cost b.Packing.total_cost
  && a.Packing.assignment = b.Packing.assignment
  && a.Packing.max_bins = b.Packing.max_bins
  && a.Packing.any_fit_violations = b.Packing.any_fit_violations
  && Array.length a.Packing.bins = Array.length b.Packing.bins

(* CLI registry names in [Algorithms.all] order, so the segmented
   checkpoint leg can rebuild each policy by name through
   [Checkpoint.save_at]. *)
let cli_names =
  [
    "first-fit";
    "best-fit";
    "worst-fit";
    "last-fit";
    "next-fit";
    "random-fit";
    "mff";
    "harmonic:4";
  ]

let run ?(quick = false) ?(seed = 77L) () =
  (* A roomy minor heap keeps the measurements about the engine, not
     about minor-collection cadence; restored on the way out. *)
  let gc0 = Gc.get () in
  Fun.protect ~finally:(fun () -> Gc.set gc0) @@ fun () ->
  Gc.set { gc0 with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let sizes = default_sizes ~quick in
  let naive_size = List.hd sizes in
  let max_size = List.fold_left max naive_size sizes in
  let policies = Algorithms.all () in
  assert (List.length policies = List.length cli_names);
  let instances = List.map (fun n -> (n, instance_of ~seed n)) sizes in
  let rows = ref [] in
  let equivalences = ref [] in
  let segmented = ref [] in
  let extrapolated = ref [] in
  let profiles = ref [] in
  List.iter
    (fun (cli_name, (policy : Policy.t)) ->
      let fast_walls =
        List.map
          (fun (n, instance) ->
            let p, wall = time (fun () -> Simulator.run ~policy instance) in
            let profile = Dbp_obs.Profile.create () in
            ignore (Simulator.run ~profile ~policy instance);
            let phases = Dbp_obs.Profile.spans profile in
            rows := row_of ~phases ~engine:"fast" ~items:n p wall :: !rows;
            (n, p, wall, phases))
          instances
      in
      let phases_at_max =
        let _, _, _, phases =
          List.find (fun (n, _, _, _) -> n = max_size) fast_walls
        in
        phases
      in
      let _, fast_small, fast_small_wall, _ =
        List.find (fun (n, _, _, _) -> n = naive_size) fast_walls
      in
      let naive, naive_wall =
        time (fun () ->
            Simulator_naive.run ~policy (List.assoc naive_size instances))
      in
      rows := row_of ~engine:"naive" ~items:naive_size naive naive_wall :: !rows;
      equivalences :=
        {
          eq_policy = policy.Policy.name;
          eq_items = naive_size;
          speedup = naive_wall /. Float.max fast_small_wall 1e-9;
          identical = packings_identical fast_small naive;
        }
        :: !equivalences;
      (* Segmented identity: cut the smallest run at its event-stream
         midpoint, push the snapshot through the wire format, resume,
         and demand the same packing the straight run produced.  The
         random-fit leg proves the RNG state itself round-trips. *)
      let cut = naive_size in
      let snap =
        Dbp_checkpoint.Checkpoint.save_at ~seed:Algorithms.default_seed
          ~policy_name:cli_name ~at:cut
          (List.assoc naive_size instances)
      in
      let text = Dbp_checkpoint.Snapshot.to_string snap in
      let resumed =
        match Dbp_checkpoint.Snapshot.of_string text with
        | Ok snap ->
            (Dbp_checkpoint.Checkpoint.resume (List.assoc naive_size instances)
               snap)
              .Dbp_checkpoint.Checkpoint.packing
        | Result.Error m -> failwith ("scaling bench: corrupt snapshot: " ^ m)
      in
      segmented :=
        {
          sg_policy = policy.Policy.name;
          sg_items = naive_size;
          sg_cut = cut;
          sg_snapshot_bytes = String.length text;
          sg_identical = packings_identical fast_small resumed;
        }
        :: !segmented;
      let _, _, fast_max_wall, _ =
        List.find (fun (n, _, _, _) -> n = max_size) fast_walls
      in
      let scale = float_of_int max_size /. float_of_int naive_size in
      let naive_max_extrapolated = naive_wall *. scale *. scale in
      extrapolated :=
        (policy.Policy.name, naive_max_extrapolated /. Float.max fast_max_wall 1e-9)
        :: !extrapolated;
      profiles := (policy.Policy.name, phases_at_max) :: !profiles)
    (List.combine cli_names policies);
  {
    quick;
    seed;
    sizes;
    naive_size;
    rows = List.rev !rows;
    equivalences = List.rev !equivalences;
    segmented = List.rev !segmented;
    extrapolated = List.rev !extrapolated;
    profiles = List.rev !profiles;
  }

(* ---- rendering ----------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"dbp-bench-simulator/4\",\n";
  add "  \"quick\": %b,\n" r.quick;
  add "  \"seed\": %Ld,\n" r.seed;
  add "  \"sizes\": [%s],\n"
    (String.concat ", " (List.map string_of_int r.sizes));
  add "  \"naive_size\": %d,\n" r.naive_size;
  add "  \"rows\": [\n";
  let n_rows = List.length r.rows in
  List.iteri
    (fun i row ->
      let phases_json =
        String.concat ", "
          (List.map
             (fun (phase, seconds, calls) ->
               Printf.sprintf
                 "{\"phase\": \"%s\", \"seconds\": %.6f, \"calls\": %d}"
                 (json_escape phase) seconds calls)
             row.phases)
      in
      add
        "    {\"policy\": \"%s\", \"engine\": \"%s\", \"items\": %d, \
         \"bins\": %d, \"max_open\": %d, \"wall_seconds\": %.6f, \
         \"events_per_second\": %.1f, \"total_cost\": %.4f, \
         \"cost_exact\": \"%s\", \"phases\": [%s]}%s\n"
        (json_escape row.policy) row.engine row.items row.bins row.max_open
        row.wall_seconds row.events_per_second row.total_cost
        (json_escape row.cost_exact) phases_json
        (if i = n_rows - 1 then "" else ","))
    r.rows;
  add "  ],\n";
  add "  \"equivalence\": [\n";
  let n_eq = List.length r.equivalences in
  List.iteri
    (fun i e ->
      add
        "    {\"policy\": \"%s\", \"items\": %d, \"speedup\": %.2f, \
         \"identical\": %b}%s\n"
        (json_escape e.eq_policy) e.eq_items e.speedup e.identical
        (if i = n_eq - 1 then "" else ","))
    r.equivalences;
  add "  ],\n";
  add "  \"segmented\": [\n";
  let n_sg = List.length r.segmented in
  List.iteri
    (fun i s ->
      add
        "    {\"policy\": \"%s\", \"items\": %d, \"cut\": %d, \
         \"snapshot_bytes\": %d, \"identical\": %b}%s\n"
        (json_escape s.sg_policy) s.sg_items s.sg_cut s.sg_snapshot_bytes
        s.sg_identical
        (if i = n_sg - 1 then "" else ","))
    r.segmented;
  add "  ],\n";
  add "  \"extrapolated_speedup_at_max\": [\n";
  let n_ex = List.length r.extrapolated in
  List.iteri
    (fun i (p, s) ->
      add "    {\"policy\": \"%s\", \"speedup\": %.1f}%s\n" (json_escape p) s
        (if i = n_ex - 1 then "" else ","))
    r.extrapolated;
  add "  ],\n";
  add "  \"profiles\": [\n";
  let n_pr = List.length r.profiles in
  List.iteri
    (fun i (p, spans) ->
      let span_json =
        String.concat ", "
          (List.map
             (fun (phase, seconds, calls) ->
               Printf.sprintf
                 "{\"phase\": \"%s\", \"seconds\": %.6f, \"calls\": %d}"
                 (json_escape phase) seconds calls)
             spans)
      in
      add "    {\"policy\": \"%s\", \"spans\": [%s]}%s\n" (json_escape p)
        span_json
        (if i = n_pr - 1 then "" else ","))
    r.profiles;
  add "  ]\n";
  add "}\n";
  Buffer.contents buf

let tables r =
  let scaling =
    Dbp_analysis.Table.create ~title:"simulator scaling (wall-clock)"
      ~columns:
        [ "policy"; "engine"; "items"; "bins"; "max open"; "wall s"; "events/s" ]
  in
  List.iter
    (fun row ->
      Dbp_analysis.Table.add_row scaling
        [
          row.policy;
          row.engine;
          string_of_int row.items;
          string_of_int row.bins;
          string_of_int row.max_open;
          Printf.sprintf "%.4f" row.wall_seconds;
          Printf.sprintf "%.0f" row.events_per_second;
        ])
    r.rows;
  let speedups =
    Dbp_analysis.Table.create
      ~title:
        (Printf.sprintf
           "fast vs seed engine (measured at %d items; extrapolated at %d)"
           r.naive_size
           (List.fold_left max r.naive_size r.sizes))
      ~columns:[ "policy"; "speedup"; "identical"; "extrapolated speedup" ]
  in
  List.iter
    (fun e ->
      Dbp_analysis.Table.add_row speedups
        [
          e.eq_policy;
          Printf.sprintf "%.1fx" e.speedup;
          (if e.identical then "yes" else "NO");
          (match List.assoc_opt e.eq_policy r.extrapolated with
          | Some s -> Printf.sprintf "%.0fx" s
          | None -> "-");
        ])
    r.equivalences;
  let seg =
    Dbp_analysis.Table.create
      ~title:
        (Printf.sprintf
           "segmented checkpoint identity at %d items (cut at the event \
            midpoint, resumed through the wire format)"
           r.naive_size)
      ~columns:[ "policy"; "cut"; "snapshot bytes"; "identical" ]
  in
  List.iter
    (fun s ->
      Dbp_analysis.Table.add_row seg
        [
          s.sg_policy;
          string_of_int s.sg_cut;
          string_of_int s.sg_snapshot_bytes;
          (if s.sg_identical then "yes" else "NO");
        ])
    r.segmented;
  let profile =
    Dbp_analysis.Table.create
      ~title:
        (Printf.sprintf "per-phase engine profile at %d items"
           (List.fold_left max r.naive_size r.sizes))
      ~columns:[ "policy"; "phase"; "seconds"; "calls"; "us/call" ]
  in
  List.iter
    (fun (p, spans) ->
      List.iter
        (fun (phase, seconds, calls) ->
          Dbp_analysis.Table.add_row profile
            [
              p;
              phase;
              Printf.sprintf "%.4f" seconds;
              string_of_int calls;
              (if calls = 0 then "-"
               else
                 Printf.sprintf "%.2f" (seconds *. 1e6 /. float_of_int calls));
            ])
        spans)
    r.profiles;
  [ scaling; speedups; seg; profile ]

let render r =
  String.concat "\n" (List.map Dbp_analysis.Table.render (tables r))

let all_identical r =
  List.for_all (fun e -> e.identical) r.equivalences
  && List.for_all (fun s -> s.sg_identical) r.segmented

(* The CI perf-regression gate: the slowest fast-engine policy at the
   largest trace size, in events/second. *)
let min_fast_throughput r =
  let max_size = List.fold_left max r.naive_size r.sizes in
  List.fold_left
    (fun acc row ->
      if row.engine = "fast" && row.items = max_size then
        Float.min acc row.events_per_second
      else acc)
    infinity r.rows
