(** E1 — Theorem 1 / Figure 2: the Any Fit lower bound construction.

    Regenerates the ratio curve of the adversarial construction: the
    measured [AF_total/OPT_total] equals [k mu / (k + mu - 1)] exactly
    and climbs to [mu] as [k] grows, for every deterministic Any Fit
    policy. *)

val run : unit -> Exp_common.outcome
