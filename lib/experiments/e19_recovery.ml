open Dbp_num
open Dbp_core
open Dbp_faults
open Dbp_checkpoint
open Exp_common

let seed = 20260806L

(* Big enough that a mid-run checkpoint carries real state (tens of
   open bins, hundreds of live sessions), small enough that every
   (policy, cut) pair affords a full uninterrupted replay for the
   bit-identity verdict. *)
let spec = { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 400 }

(* Cut points as fractions of the 2n-event trace. *)
let cuts = [ (1, 4); (1, 2); (3, 4) ]

let policy_names =
  [
    "first-fit";
    "best-fit";
    "worst-fit";
    "last-fit";
    "next-fit";
    "random-fit";
    "mff";
    "harmonic:4";
  ]

let fault_policy_names = [ "first-fit"; "random-fit" ]

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let fmt_s = Printf.sprintf "%.4f"

let policy_of name =
  match Algorithms.find name with
  | Some p -> p
  | None -> invalid_arg ("E19: unknown policy " ^ name)

let packings_identical (a : Packing.t) (b : Packing.t) =
  Rat.equal a.Packing.total_cost b.Packing.total_cost
  && a.Packing.assignment = b.Packing.assignment
  && a.Packing.max_bins = b.Packing.max_bins
  && a.Packing.any_fit_violations = b.Packing.any_fit_violations
  && Array.length a.Packing.bins = Array.length b.Packing.bins

let run () =
  let c = counter () in
  let instance = Dbp_workload.Generator.generate ~seed spec in
  let total_events = List.length (Event.of_instance instance) in
  check c (total_events = 2 * spec.Dbp_workload.Spec.count);
  (* -- (a) engine checkpoints: cut every policy at 1/4, 1/2, 3/4 ----- *)
  let t1 =
    Dbp_analysis.Table.create
      ~title:
        (Printf.sprintf
           "E19a: checkpoint/resume fidelity and cost (%d items, %d \
            events; resume wall vs full-replay wall)"
           spec.Dbp_workload.Spec.count total_events)
      ~columns:
        [
          "policy";
          "cut";
          "snapshot B";
          "save s";
          "resume s";
          "full s";
          "resume/full";
          "identical";
        ]
  in
  List.iter
    (fun name ->
      let policy = policy_of name in
      let _, full_wall = time (fun () -> Simulator.run ~policy instance) in
      List.iter
        (fun (num, den) ->
          let at = total_events * num / den in
          let snap, save_wall =
            time (fun () ->
                Checkpoint.save_at ~policy_name:name ~at instance)
          in
          (* Round-trip through the wire format so the verdict covers
             the serialiser and parser, not just the in-memory image. *)
          let text = Snapshot.to_string snap in
          let snap =
            match Snapshot.of_string text with
            | Ok s -> s
            | Result.Error m -> invalid_arg ("E19: round trip failed: " ^ m)
          in
          check c (snap.Snapshot.meta.Snapshot.events_applied = at);
          let _, resume_wall =
            time (fun () -> Checkpoint.resume instance snap)
          in
          let verdict = Checkpoint.verify instance snap in
          check c verdict.Checkpoint.ok;
          Dbp_analysis.Table.add_row t1
            [
              name;
              Printf.sprintf "%d/%d" num den;
              string_of_int (String.length text);
              fmt_s save_wall;
              fmt_s resume_wall;
              fmt_s full_wall;
              Printf.sprintf "%.2f" (resume_wall /. Float.max full_wall 1e-9);
              (if verdict.Checkpoint.ok then "yes" else "NO");
            ])
        cuts)
    policy_names;
  (* -- (b) crash-recovery images: freeze a fault-injected run -------- *)
  let horizon = Interval.hi (Instance.packing_period instance) in
  let plan =
    Fault_plan.poisson_crashes ~seed:(Int64.add seed 11L) ~rate:2.0 ~horizon
  in
  let t2 =
    Dbp_analysis.Table.create
      ~title:
        (Printf.sprintf
           "E19b: mid-drain injector freeze/thaw under %d planned crashes \
            (resume vs uninterrupted)"
           (Fault_plan.count plan))
      ~columns:
        [
          "policy";
          "cut events";
          "interrupted";
          "resumed";
          "lost";
          "cost";
          "identical";
        ]
  in
  List.iter
    (fun name ->
      let policy = policy_of name in
      let straight = Injector.run ~plan ~policy instance in
      let st = Injector.create ~plan ~policy instance in
      let target = total_events / 2 in
      let rec advance n = if n > 0 && Injector.step st then advance (n - 1) in
      advance target;
      let frozen = Injector.freeze st in
      let snap =
        {
          Snapshot.meta =
            {
              Snapshot.policy = name;
              seed = Algorithms.default_seed;
              events_applied = Injector.events_done st;
              trace_seq = 0;
            };
          metrics = None;
          payload = Snapshot.Faults frozen;
        }
      in
      let snap =
        match Snapshot.of_string (Snapshot.to_string snap) with
        | Ok s -> s
        | Result.Error m -> invalid_arg ("E19: round trip failed: " ^ m)
      in
      let { Checkpoint.fresult = resumed; _ } =
        Checkpoint.resume_faults instance snap
      in
      check c (Packing.validate resumed.Injector.packing = Ok ());
      let identical =
        packings_identical straight.Injector.packing resumed.Injector.packing
      in
      check c identical;
      let sz (r : Injector.result) = r.Injector.resilience in
      check c
        ((sz straight).Resilience.interrupted_sessions
        = (sz resumed).Resilience.interrupted_sessions);
      check c
        ((sz straight).Resilience.resumed_sessions
        = (sz resumed).Resilience.resumed_sessions);
      check c
        ((sz straight).Resilience.lost_sessions
        = (sz resumed).Resilience.lost_sessions);
      check c
        (List.length (sz straight).Resilience.recovery_latencies
        = List.length (sz resumed).Resilience.recovery_latencies
        && List.for_all2 Rat.equal
             (sz straight).Resilience.recovery_latencies
             (sz resumed).Resilience.recovery_latencies);
      Dbp_analysis.Table.add_row t2
        [
          name;
          string_of_int snap.Snapshot.meta.Snapshot.events_applied;
          string_of_int (sz resumed).Resilience.interrupted_sessions;
          string_of_int (sz resumed).Resilience.resumed_sessions;
          string_of_int (sz resumed).Resilience.lost_sessions;
          fmt_rat resumed.Injector.packing.Packing.total_cost;
          (if identical then "yes" else "NO");
        ])
    fault_policy_names;
  let total, failed = totals c in
  {
    experiment = "E19";
    artefact =
      "Checkpoint/restore: deterministic resume fidelity and recovery \
       cost (extension)";
    tables = [ t1; t2 ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
