open Dbp_num
open Dbp_core
open Dbp_workload
open Dbp_analysis
open Exp_common

let mus = [ 2.0; 4.0; 8.0; 16.0 ]
let seeds = [ 41L; 42L ]

let run () =
  let c = counter () in
  let table =
    Table.create ~title:"E6: FF vs BF vs MFF(8) vs MFF(mu+7) on mixed workloads"
      ~columns:
        [ "target mu"; "seed"; "FF"; "BF"; "MFF(8)"; "MFF(mu+7)";
          "MFF8 bound"; "MFF8 verdict"; "MFFmu bound"; "MFFmu verdict" ]
  in
  List.iter
    (fun mu_f ->
      List.iter
        (fun seed ->
          let spec =
            Spec.with_target_mu { Spec.default with Spec.count = 120 } ~mu:mu_f
          in
          let instance = Generator.generate ~seed spec in
          let mu = Instance.mu instance in
          let ratio_of policy = measure_policy ~policy instance in
          let ff = ratio_of First_fit.policy in
          let bf = ratio_of Best_fit.policy in
          let mff8 = ratio_of Modified_first_fit.policy_mu_oblivious in
          let mff_mu = ratio_of (Modified_first_fit.policy_known_mu ~mu) in
          let bound8 = Theorem_bounds.mff_oblivious ~mu in
          let bound_mu = Theorem_bounds.mff_known_mu ~mu in
          let v8 = Ratio.check_bound mff8 ~bound:bound8 in
          let v_mu = Ratio.check_bound mff_mu ~bound:bound_mu in
          check c (v8 <> Ratio.Violated);
          check c (v_mu <> Ratio.Violated);
          Table.add_row table
            [
              Printf.sprintf "%.0f" mu_f;
              Int64.to_string seed;
              fmt_rat ff.Ratio.ratio_upper;
              fmt_rat bf.Ratio.ratio_upper;
              fmt_rat mff8.Ratio.ratio_upper;
              fmt_rat mff_mu.Ratio.ratio_upper;
              fmt_rat bound8;
              Ratio.verdict_to_string v8;
              fmt_rat bound_mu;
              Ratio.verdict_to_string v_mu;
            ])
        seeds)
    mus;
  (* Adversarial stress: MFF on the Theorem 1 fragmentation instance.
     All items have size 1/k, so they land in one MFF pool and MFF pays
     the same k*mu cost as FF: the mu lower bound applies to MFF too. *)
  let stress =
    Table.create ~title:"E6b: MFF(8) replaying the Figure 2 instance (no escape)"
      ~columns:[ "k"; "mu"; "MFF(8) ratio"; "FF ratio" ]
  in
  List.iter
    (fun (k, mu_i) ->
      let mu = Rat.of_int mu_i in
      let instance = Patterns.fragmentation ~k ~mu in
      let mff = measure_policy ~policy:Modified_first_fit.policy_mu_oblivious instance in
      let ff = measure_policy ~policy:First_fit.policy instance in
      check c Rat.(mff.Ratio.ratio_upper >= ff.Ratio.ratio_upper);
      Table.add_row stress
        [
          string_of_int k;
          string_of_int mu_i;
          fmt_rat mff.Ratio.ratio_upper;
          fmt_rat ff.Ratio.ratio_upper;
        ])
    [ (4, 6); (8, 6) ];
  let total, failed = totals c in
  {
    experiment = "E6";
    artefact = "Section 4.4 (Modified First Fit bounds)";
    tables = [ table; stress ];
    charts = [];
    checks_total = total;
    checks_failed = failed;
  }
