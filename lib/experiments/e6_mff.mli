(** E6 — Section 4.4: Modified First Fit.

    Head-to-head of FF, BF, MFF(k=8) and the semi-online MFF(k=mu+7)
    on mixed random workloads across a [mu] sweep, checking the
    [8/7 mu + 55/7] and [mu + 8] bounds; plus the adversarial stress
    test: MFF replaying the Theorem 1 instance. *)

val run : unit -> Exp_common.outcome
