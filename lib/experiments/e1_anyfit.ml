open Dbp_num
open Dbp_core
open Dbp_adversary
open Dbp_analysis
open Exp_common

let mus = [ 2; 5; 10; 20 ]
let ks = [ 2; 4; 8; 16; 32; 64 ]

let run () =
  let c = counter () in
  let table =
    Table.create ~title:"E1: Any Fit vs the Figure 2 adversary (policy = FF)"
      ~columns:[ "mu"; "k"; "measured ratio"; "eq (1) k*mu/(k+mu-1)"; "bound mu"; "exact match" ]
  in
  let series =
    List.map
      (fun mu_i ->
        let mu = Rat.of_int mu_i in
        let points =
          List.map
            (fun k ->
              let result = Anyfit_lb.run ~k ~mu () in
              let expected = Theorem_bounds.anyfit_construction_ratio ~k ~mu in
              let matches = Rat.equal result.Anyfit_lb.ratio_lower expected in
              check c matches;
              check c Rat.(result.Anyfit_lb.ratio_lower <= mu);
              Table.add_row table
                [
                  string_of_int mu_i;
                  string_of_int k;
                  fmt_exact result.Anyfit_lb.ratio_lower;
                  fmt_exact expected;
                  string_of_int mu_i;
                  (if matches then "yes" else "NO");
                ];
              (float_of_int k, Rat.to_float result.Anyfit_lb.ratio_lower))
            ks
        in
        (Printf.sprintf "mu=%d" mu_i, points))
      mus
  in
  (* The same construction traps every deterministic Any Fit policy. *)
  let cross_policy =
    Table.create ~title:"E1b: same trap, all deterministic Any Fit policies (mu=10, k=16)"
      ~columns:[ "policy"; "measured ratio"; "eq (1)" ]
  in
  let mu = Rat.of_int 10 in
  List.iter
    (fun policy ->
      let result = Anyfit_lb.run ~policy ~k:16 ~mu () in
      let expected = Theorem_bounds.anyfit_construction_ratio ~k:16 ~mu in
      check c (Rat.equal result.Anyfit_lb.ratio_lower expected);
      Table.add_row cross_policy
        [
          policy.Policy.name;
          fmt_exact result.Anyfit_lb.ratio_lower;
          fmt_exact expected;
        ])
    (Algorithms.any_fit_family ());
  let chart =
    Chart.render ~title:"E1: ratio -> mu as k grows (x = k, y = ratio)"
      ~series ()
  in
  let total, failed = totals c in
  {
    experiment = "E1";
    artefact = "Theorem 1 / Figure 2 (Any Fit lower bound mu)";
    tables = [ table; cross_policy ];
    charts = [ chart ];
    checks_total = total;
    checks_failed = failed;
  }
