(* Scaled-integer fixed-point values over a per-run common
   denominator.  See fixed.mli for the exactness contract; the short
   version: conversions either succeed exactly or return [None], and
   admitted values are small enough (|v| <= max_int/4) that a single
   add/sub can never wrap, which is what lets the simulator's commit
   path run on raw int arithmetic. *)

type scale = int
type t = int

exception Overflow

let max_den = 1 lsl 30
let bound = max_int / 4
let unit = 1
let den s = s
let scale_of_den d = if d >= 1 && d <= max_den then Some d else None

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let including s r =
  let d = Rat.den r in
  (* Rat.t is normalised with den >= 1, so [d >= 1] here. *)
  if s mod d = 0 then Some s
  else
    let q = d / gcd d s in
    if s > max_den / q then None else Some (s * q)

let of_rat s r =
  let d = Rat.den r in
  if s mod d <> 0 then None
  else
    let m = s / d in
    let n = Rat.num r in
    if n > 0 then if n > bound / m then None else Some (n * m)
    else if n < 0 then if n < -(bound / m) then None else Some (n * m)
    else Some 0

let fits s r = match of_rat s r with Some _ -> true | None -> false
let to_rat s v = Rat.make v s
let zero = 0

let add a b =
  let c = a + b in
  if (a >= 0 && b >= 0 && c < 0) || (a < 0 && b < 0 && c >= 0) then
    raise Overflow
  else c

let sub a b =
  if b = min_int then if a < 0 then a - b else raise Overflow
  else add a (-b)

let compare : t -> t -> int = Int.compare
let equal (a : t) (b : t) = a = b
