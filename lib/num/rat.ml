type t = { num : int; den : int }

exception Overflow

(* Overflow-checked native integer arithmetic.  [min_int] is excluded
   from the representable range so that [abs]/[neg] are total. *)

let add_exn a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else s

let mul_exn a b =
  (* Both factors below 2^31 in magnitude cannot overflow a 63-bit
     product; one [lor]+compare decides it, sparing the hot path the
     division-based check.  [abs min_int] is negative, so min_int
     lands in the slow branch and raises there. *)
  if Stdlib.abs a lor Stdlib.abs b < 0x4000_0000 then a * b
  else if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a || a = min_int || b = min_int then raise Overflow else p

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let gcd a b = gcd (Stdlib.abs a) (Stdlib.abs b)

let zero = { num = 0; den = 1 }
let one = { num = 1; den = 1 }
let two = { num = 2; den = 1 }
let minus_one = { num = -1; den = 1 }

let make num den =
  if den = 0 then raise Division_by_zero
  else if num = min_int || den = min_int then raise Overflow
  else
    let num, den = if den < 0 then (-num, -den) else (num, den) in
    if num = 0 then zero
    else
      let g = gcd num den in
      { num = num / g; den = den / g }

let of_int n = if n = min_int then raise Overflow else { num = n; den = 1 }
let num t = t.num
let den t = t.den

(* a/b + c/d with cross-reduction of the denominators:
   g = gcd(b,d); result = (a*(d/g) + c*(b/g)) / (b/g*d/g*g). *)
let add x y =
  let g = gcd x.den y.den in
  let dx = x.den / g and dy = y.den / g in
  let n = add_exn (mul_exn x.num dy) (mul_exn y.num dx) in
  let d = mul_exn (mul_exn dx dy) g in
  make n d

let neg x = { x with num = -x.num }
let sub x y = add x (neg y)

(* a/b * c/d with cross-reduction: gcd(a,d) and gcd(c,b) first. *)
let mul x y =
  let g1 = gcd x.num y.den and g2 = gcd y.num x.den in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  let n = mul_exn (x.num / g1) (y.num / g2) in
  let d = mul_exn (x.den / g2) (y.den / g1) in
  make n d

let inv x =
  if x.num = 0 then raise Division_by_zero
  else if x.num < 0 then { num = -x.den; den = -x.num }
  else { num = x.den; den = x.num }

let div x y = mul x (inv y)
let mul_int x n = mul x (of_int n)
let div_int x n = div x (of_int n)
let sum l = List.fold_left add zero l

let to_float_unchecked x = float_of_int x.num /. float_of_int x.den

(* Exact comparison of non-negative a/b vs c/d (b, d > 0) by continued
   fractions: compare integer parts, then the inverted fractional
   parts.  Terminates because (b, r1) / (d, r2) shrink as in the
   Euclidean algorithm; never overflows. *)
let rec compare_pos a b c d =
  let q1 = a / b and q2 = c / d in
  if q1 <> q2 then Int.compare q1 q2
  else
    let r1 = a mod b and r2 = c mod d in
    if r1 = 0 && r2 = 0 then 0
    else if r1 = 0 then -1
    else if r2 = 0 then 1
    else compare_pos d r2 b r1

let compare x y =
  (* Fast paths: equal denominators (both operands are normalised, so
     comparing numerators is exact), then cross-multiplication when it
     fits; otherwise the exact continued-fraction comparison (no float
     fallback — floats would misorder close rationals). *)
  if x.den = y.den then Int.compare x.num y.num
  else
  match (mul_exn x.num y.den, mul_exn y.num x.den) with
  | a, b -> Int.compare a b
  | exception Overflow -> (
      match (Int.compare x.num 0, Int.compare y.num 0) with
      | sx, sy when sx <> sy -> Int.compare sx sy
      | 1, _ -> compare_pos x.num x.den y.num y.den
      | -1, _ -> compare_pos (-y.num) y.den (-x.num) x.den
      | _ -> 0)

let equal x y = x.num = y.num && x.den = y.den
let sign x = Int.compare x.num 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let min_list = function
  | [] -> invalid_arg "Rat.min_list: empty list"
  | x :: rest -> List.fold_left min x rest

let max_list = function
  | [] -> invalid_arg "Rat.max_list: empty list"
  | x :: rest -> List.fold_left max x rest

let is_zero x = x.num = 0
let is_integer x = x.den = 1

let floor x =
  if x.num >= 0 then x.num / x.den
  else
    let q = x.num / x.den in
    if Stdlib.( = ) (x.num mod x.den) 0 then q else Stdlib.( - ) q 1

let ceil x =
  if x.num <= 0 then x.num / x.den
  else
    let q = x.num / x.den in
    if Stdlib.( = ) (x.num mod x.den) 0 then q else Stdlib.( + ) q 1

let to_float = to_float_unchecked

let of_float ?(den = 1_000_000) f =
  if not (Float.is_finite f) then invalid_arg "Rat.of_float: not finite"
  else
    let scaled = Float.round (f *. float_of_int den) in
    if Stdlib.( >= ) (Float.abs scaled) 4.0e18 then raise Overflow
    else make (int_of_float scaled) den

let to_string x =
  if Stdlib.( = ) x.den 1 then string_of_int x.num
  else Printf.sprintf "%d/%d" x.num x.den

let of_string s =
  match String.index_opt s '/' with
  | None -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> of_int n
      | None -> failwith ("Rat.of_string: " ^ s))
  | Some i -> (
      let n = String.trim (String.sub s 0 i) in
      let d =
        String.trim
          (String.sub s (Stdlib.( + ) i 1)
             (Stdlib.( - ) (String.length s) (Stdlib.( + ) i 1)))
      in
      match (int_of_string_opt n, int_of_string_opt d) with
      | Some n, Some d -> make n d
      | _ -> failwith ("Rat.of_string: " ^ s))

let pp fmt x = Format.pp_print_string fmt (to_string x)
let pp_float fmt x = Format.fprintf fmt "%.6g" (to_float x)
(* Typed splitmix-style mixer over the two int fields: avoids the
   polymorphic [Hashtbl.hash] (R3) and avalanches small numerators and
   denominators better than it. *)
let hash x =
  let mix h k =
    let k = k * 0x2545F4914F6CDD1D in
    let k = k lxor (k lsr 29) in
    ((h * 31) lxor k) land max_int
  in
  mix (mix 0 x.num) x.den
let abs x = if Stdlib.( < ) x.num 0 then neg x else x

let ( = ) = equal
let ( < ) x y = Stdlib.( < ) (compare x y) 0
let ( <= ) x y = Stdlib.( <= ) (compare x y) 0
let ( > ) x y = Stdlib.( > ) (compare x y) 0
let ( >= ) x y = Stdlib.( >= ) (compare x y) 0
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
