(* Dense exact-rational resource vectors (see vec.mli).  The
   representation is a plain Rat.t array, transparent inside this
   module only; all construction paths copy, so values are immutable
   from the outside. *)

type t = Rat.t array

let make = function
  | [] -> invalid_arg "Vec.make: empty component list"
  | comps -> Array.of_list comps

let of_array a =
  if Array.length a = 0 then invalid_arg "Vec.of_array: empty array";
  Array.copy a

let init d f =
  if d < 1 then invalid_arg "Vec.init: dims < 1";
  Array.init d f

let scalar r = [| r |]

let const ~dims r = init dims (fun _ -> r)
let zero ~dims = const ~dims Rat.zero
let ones ~dims = const ~dims Rat.one

let dim = Array.length
let get (v : t) i = v.(i)
let to_list = Array.to_list
let to_array = Array.copy

let check_dims op a b =
  if Array.length a <> Array.length b then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" op
         (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.init (Array.length a) (fun i -> Rat.add a.(i) b.(i))

let sub a b =
  check_dims "sub" a b;
  Array.init (Array.length a) (fun i -> Rat.sub a.(i) b.(i))

let cmax a b =
  check_dims "cmax" a b;
  Array.init (Array.length a) (fun i -> Rat.max a.(i) b.(i))

let equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (Rat.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let compare a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = Rat.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let le a b =
  check_dims "le" a b;
  let rec go i =
    i >= Array.length a || (Rat.(a.(i) <= b.(i)) && go (i + 1))
  in
  go 0

let is_nonneg v = Array.for_all (fun c -> Rat.sign c >= 0) v
let has_positive v = Array.exists (fun c -> Rat.sign c > 0) v
let is_zero v = Array.for_all Rat.is_zero v

let truncate v ~dims =
  if dims < 1 || dims > Array.length v then
    invalid_arg "Vec.truncate: dims out of range";
  Array.sub v 0 dims

let max_component v =
  Array.fold_left Rat.max v.(0) v

let sum v = Array.fold_left Rat.add Rat.zero v

let max_norm ~capacity v =
  check_dims "max_norm" v capacity;
  let best = ref (Rat.div v.(0) capacity.(0)) in
  for i = 1 to Array.length v - 1 do
    best := Rat.max !best (Rat.div v.(i) capacity.(i))
  done;
  !best

let sum_norm ~capacity v =
  check_dims "sum_norm" v capacity;
  let acc = ref Rat.zero in
  for i = 0 to Array.length v - 1 do
    acc := Rat.add !acc (Rat.div v.(i) capacity.(i))
  done;
  !acc

let to_string v =
  String.concat "," (Array.to_list (Array.map Rat.to_string v))

let of_string s =
  if s = "" then failwith "Vec.of_string: empty string";
  String.split_on_char ',' s |> List.map Rat.of_string |> make

let pp fmt v =
  Format.pp_print_string fmt (to_string v)

module Scaled = struct
  type grid = Fixed.scale array
  type sv = int array

  let base ~dims =
    if dims < 1 then invalid_arg "Vec.Scaled.base: dims < 1";
    Array.make dims Fixed.unit

  let dims = Array.length
  let den (g : grid) i = Fixed.den g.(i)

  let including (g : grid) (v : t) =
    if Array.length g <> Array.length v then
      invalid_arg "Vec.Scaled.including: dimension mismatch";
    let out = Array.copy g in
    let rec go i =
      if i >= Array.length g then Some out
      else
        match Fixed.including out.(i) v.(i) with
        | None -> None
        | Some s ->
            out.(i) <- s;
            go (i + 1)
    in
    go 0

  let of_vec (g : grid) (v : t) =
    if Array.length g <> Array.length v then
      invalid_arg "Vec.Scaled.of_vec: dimension mismatch";
    let out = Array.make (Array.length v) 0 in
    let rec go i =
      if i >= Array.length v then Some out
      else
        match Fixed.of_rat g.(i) v.(i) with
        | None -> None
        | Some n ->
            out.(i) <- n;
            go (i + 1)
    in
    go 0

  let to_vec (g : grid) (sv : sv) =
    if Array.length g <> Array.length sv then
      invalid_arg "Vec.Scaled.to_vec: dimension mismatch";
    Array.init (Array.length sv) (fun i -> Fixed.to_rat g.(i) sv.(i))

  let le (a : sv) (b : sv) =
    let rec go i =
      i >= Array.length a || (Int.compare a.(i) b.(i) <= 0 && go (i + 1))
    in
    Int.equal (Array.length a) (Array.length b) && go 0

  let add (a : sv) (b : sv) =
    Array.init (Array.length a) (fun i -> Fixed.add a.(i) b.(i))

  let sub (a : sv) (b : sv) =
    Array.init (Array.length a) (fun i -> Fixed.sub a.(i) b.(i))

  let equal (a : sv) (b : sv) =
    let rec go i = i >= Array.length a || (Int.equal a.(i) b.(i) && go (i + 1)) in
    Int.equal (Array.length a) (Array.length b) && go 0
end
