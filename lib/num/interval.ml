type t = { lo : Rat.t; hi : Rat.t }

let make lo hi =
  if Rat.(hi < lo) then invalid_arg "Interval.make: hi < lo"
  else { lo; hi }

let lo t = t.lo
let hi t = t.hi
let length t = Rat.sub t.hi t.lo
let is_empty t = Rat.equal t.lo t.hi
let contains t x = Rat.(t.lo <= x) && Rat.(x <= t.hi)
let contains_interval outer inner =
  Rat.(outer.lo <= inner.lo) && Rat.(inner.hi <= outer.hi)

let overlaps a b = Rat.(a.lo <= b.hi) && Rat.(b.lo <= a.hi)

let overlaps_open a b =
  Rat.(Rat.max a.lo b.lo < Rat.min a.hi b.hi)

let intersect a b =
  let lo = Rat.max a.lo b.lo and hi = Rat.min a.hi b.hi in
  if Rat.(lo <= hi) then Some { lo; hi } else None

let hull a b = { lo = Rat.min a.lo b.lo; hi = Rat.max a.hi b.hi }
let shift t d = { lo = Rat.add t.lo d; hi = Rat.add t.hi d }
let equal a b = Rat.equal a.lo b.lo && Rat.equal a.hi b.hi

let compare a b =
  let c = Rat.compare a.lo b.lo in
  if c <> 0 then c else Rat.compare a.hi b.hi

let merge_overlapping intervals =
  let sorted = List.sort compare intervals in
  let rec go acc = function
    | [] -> List.rev acc
    | iv :: rest -> (
        match acc with
        | cur :: acc' when Rat.(iv.lo <= cur.hi) ->
            go ({ cur with hi = Rat.max cur.hi iv.hi } :: acc') rest
        | _ -> go (iv :: acc) rest)
  in
  go [] sorted

let union_measure intervals =
  merge_overlapping intervals |> List.map length |> Rat.sum

let measure_difference a b =
  let a = merge_overlapping a and b = merge_overlapping b in
  let overlap =
    List.fold_left
      (fun acc ia ->
        List.fold_left
          (fun acc ib ->
            match intersect ia ib with
            | Some iv -> Rat.add acc (length iv)
            | None -> acc)
          acc b)
      Rat.zero a
  in
  Rat.sub (Rat.sum (List.map length a)) overlap

let pp fmt t = Format.fprintf fmt "[%a, %a]" Rat.pp t.lo Rat.pp t.hi
