(** Exact rational arithmetic on native (63-bit) integers.

    All values are kept normalised: the denominator is strictly positive
    and the numerator and denominator are coprime.  Every arithmetic
    operation checks for machine-integer overflow and raises {!Overflow}
    rather than silently wrapping.  This module is the numeric backbone
    of the whole reproduction: item sizes, event times, bin costs and
    competitive ratios are all exact rationals, so the adversarial
    constructions of Theorems 1 and 2 (which manipulate infinitesimals
    [epsilon] and [delta]) produce costs that match the paper's closed
    forms exactly. *)

type t = private { num : int; den : int }

exception Overflow
(** Raised when an intermediate or final value does not fit in a native
    integer. *)

val zero : t
val one : t
val two : t
val minus_one : t

val make : int -> int -> t
(** [make num den] is the normalised rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val num : t -> int
val den : t -> int

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on division by {!zero}. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on {!zero}. *)

val mul_int : t -> int -> t
val div_int : t -> int -> t

val sum : t list -> t
val min_list : t list -> t
(** @raise Invalid_argument on the empty list. *)

val max_list : t list -> t
(** @raise Invalid_argument on the empty list. *)

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t

val is_zero : t -> bool
val is_integer : t -> bool

(** {1 Rounding} *)

val floor : t -> int
(** Largest integer [<= t]. *)

val ceil : t -> int
(** Smallest integer [>= t]. *)

(** {1 Conversions} *)

val to_float : t -> float

val of_float : ?den:int -> float -> t
(** [of_float ~den f] quantises [f] onto the grid of multiples of
    [1/den] (default [den = 1_000_000]), rounding to nearest.  Keeping
    all randomly generated quantities on a common coarse grid keeps
    denominators small and sums far from overflow. *)

val to_string : t -> string
(** ["7/2"], or ["7"] when the denominator is 1. *)

val of_string : string -> t
(** Parses the {!to_string} format as well as plain integers.
    @raise Failure on malformed input. *)

val pp : Format.formatter -> t -> unit
val pp_float : Format.formatter -> t -> unit
(** Prints a 6-decimal floating approximation, for human-facing tables. *)

val hash : t -> int
