(** Integer-valued piecewise-constant (step) functions of rational time.

    The number of open bins [n(t)] maintained by an online algorithm,
    and the optimal repacking size [OPT(R,t)], are both step functions
    that change only at item arrival/departure events.  The total cost
    of a packing is the integral of [n(t)] over the packing period
    (times the cost rate [C]), which this module computes exactly. *)

type t
(** A right-continuous step function with bounded support: the value is
    0 outside [[start, stop]]. *)

val empty : t
(** The identically-zero function. *)

val of_breakpoints : (Rat.t * int) list -> t
(** [of_breakpoints [(t0, v0); (t1, v1); ...]] is the function equal to
    [v0] on [[t0, t1)), [v1] on [[t1, t2)), ..., and [0] before [t0] and
    from the last breakpoint on (the last value must be 0).
    Breakpoints must be strictly increasing in time.
    @raise Invalid_argument on unsorted input or nonzero final value. *)

val of_deltas : (Rat.t * int) list -> t
(** [of_deltas events] builds the function whose value jumps by the
    given signed amount at each time.  Events need not be sorted;
    deltas at equal times are merged.  The deltas must globally cancel
    (the function returns to 0). *)

val value_at : t -> Rat.t -> int
(** Right-continuous evaluation: the value on [[t, t + dt)). *)

val integral : t -> Rat.t
(** Exact integral over the whole support. *)

val integral_over : t -> Interval.t -> Rat.t
(** Exact integral restricted to an interval. *)

val max_value : t -> int
(** Maximum value attained (0 for {!empty}).  For a packing timeline
    this is the classical DBP objective: the maximum number of bins
    ever used. *)

val support : t -> Interval.t option
(** Smallest interval outside which the function is 0. *)

val measure_positive : t -> Rat.t
(** Total length of time where the value is [> 0] — the span of the
    item list when applied to the active-item count. *)

val add : t -> t -> t
val scale : t -> int -> t
val map : t -> f:(int -> int) -> t
(** Applies [f] pointwise; [f 0] must be [0]. *)

val breakpoints : t -> (Rat.t * int) list
(** Canonical breakpoint list ([of_breakpoints] round-trips). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
