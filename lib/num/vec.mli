(** Dense exact-rational resource vectors: the numeric substrate of
    Dynamic Vector Bin Packing (DVBP).

    An item demands, and a bin offers, a quantity in each of [d >= 1]
    resource dimensions (GPU, CPU, RAM, bandwidth, ...).  Components
    are exact {!Rat.t}s; every operation is component-wise and exact,
    so the scalar model is literally the [d = 1] special case —
    {!scalar}/{!get} embed and project without any loss, and the
    vector engine's [d = 1] runs are bit-identical to the scalar one.

    Fitting is the component-wise partial order {!le}: an item fits a
    bin iff its demand is [<=] the residual in {e every} dimension.
    Any Fit policies rank fitting bins by a norm of the residual —
    {!max_norm} (the [_maxDims] idiom of multi-resource schedulers) or
    {!sum_norm} — both normalised per-dimension by capacity so
    heterogeneous capacities compare meaningfully.

    {!Scaled} is the per-dimension fixed-point fast track: one
    {!Fixed.scale} grid per dimension, exact-or-refuse admission, int
    component arrays.  Like scalar {!Fixed}, it is an accelerator,
    never an approximation. *)

type t
(** A vector with [dim >= 1] components.  Immutable. *)

val make : Rat.t list -> t
(** @raise Invalid_argument on the empty list. *)

val of_array : Rat.t array -> t
(** Copies. @raise Invalid_argument on the empty array. *)

val init : int -> (int -> Rat.t) -> t
(** @raise Invalid_argument if [d < 1]. *)

val scalar : Rat.t -> t
(** The [d = 1] embedding. *)

val const : dims:int -> Rat.t -> t
val zero : dims:int -> t
val ones : dims:int -> t

val dim : t -> int
val get : t -> int -> Rat.t
val to_list : t -> Rat.t list
val to_array : t -> Rat.t array
(** A fresh copy; mutating it cannot affect the vector. *)

val add : t -> t -> t
(** Component-wise. @raise Invalid_argument on a dimension mismatch
    (likewise for every binary operation below). *)

val sub : t -> t -> t

val cmax : t -> t -> t
(** Component-wise maximum (the running peak level of a bin). *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic; a total order for sorting, {e not} the fit order. *)

val le : t -> t -> bool
(** [le a b] iff [a] is [<=] [b] in every component: the DVBP fit
    relation (item demand vs bin residual). *)

val is_nonneg : t -> bool
val has_positive : t -> bool
val is_zero : t -> bool

val truncate : t -> dims:int -> t
(** The first [dims] components — projecting a full resource profile
    onto a lower-dimensional model.  [truncate v ~dims:(dim v)] is
    [v].  @raise Invalid_argument unless [1 <= dims <= dim v]. *)

val max_component : t -> Rat.t
val sum : t -> Rat.t

val max_norm : capacity:t -> t -> Rat.t
(** [max_i v_i / W_i]: the largest per-dimension fraction of capacity.
    At [d = 1] this is [v / W] — the same order as the raw scalar, so
    Best/Worst Fit under this norm reproduce their scalar decisions.
    @raise Division_by_zero on a zero capacity component. *)

val sum_norm : capacity:t -> t -> Rat.t
(** [sum_i v_i / W_i]: total normalised load across dimensions.  Also
    [v / W] at [d = 1]. *)

val to_string : t -> string
(** Components comma-joined in {!Rat.to_string} form: ["1/2,3,7/5"].
    At [d = 1] exactly [Rat.to_string]. *)

val of_string : string -> t
(** Parses the {!to_string} format. @raise Failure on malformed
    input (including the empty string). *)

val pp : Format.formatter -> t -> unit

(** Per-dimension fixed-point mirror: each dimension carries its own
    {!Fixed.scale}, values are int arrays scaled per component.
    Admission is exact-or-refuse, so every conversion that succeeds
    round-trips bit-identically — the vector engine uses this for its
    hot fit checks and lets the exact representation stay
    authoritative. *)
module Scaled : sig
  type grid
  (** One {!Fixed.scale} per dimension. *)

  type sv = int array
  (** Components scaled by the grid's per-dimension denominators. *)

  val base : dims:int -> grid
  (** Every dimension on the integer grid. *)

  val dims : grid -> int
  val den : grid -> int -> int

  val including : grid -> t -> grid option
  (** Refines each dimension's scale to contain the corresponding
      component ({!Fixed.including} per dimension); [None] when any
      dimension's lcm chase exceeds {!Fixed.max_den}.
      @raise Invalid_argument on a dimension mismatch. *)

  val of_vec : grid -> t -> sv option
  (** Exact conversion, [None] if any component is off its
      dimension's grid or beyond {!Fixed.bound}.  Never rounds. *)

  val to_vec : grid -> sv -> t
  (** Exact inverse wherever {!of_vec} succeeds. *)

  val le : sv -> sv -> bool
  (** Component-wise [<=] on same-grid values: the fit relation. *)

  val add : sv -> sv -> sv
  (** Overflow-checked ({!Fixed.add} per component).
      @raise Fixed.Overflow when any component wraps. *)

  val sub : sv -> sv -> sv
  val equal : sv -> sv -> bool
end
