(* Canonical representation: a list of (time, value) pairs, strictly
   increasing in time, with no two consecutive equal values, value 0
   before the first breakpoint, and final value 0.  The function is
   right-continuous: the pair (t, v) means "value v on [t, t_next)". *)

type t = (Rat.t * int) list

let empty = []

let canonicalise points =
  let rec dedup prev = function
    | [] -> []
    | (t, v) :: rest ->
        if v = prev then dedup prev rest else (t, v) :: dedup v rest
  in
  dedup 0 points

let of_breakpoints points =
  let rec check_sorted = function
    | (t1, _) :: ((t2, _) :: _ as rest) ->
        if Rat.(t2 <= t1) then
          invalid_arg "Step_fn.of_breakpoints: unsorted breakpoints"
        else check_sorted rest
    | _ -> ()
  in
  check_sorted points;
  (match List.rev points with
  | (_, v) :: _ when v <> 0 ->
      invalid_arg "Step_fn.of_breakpoints: final value must be 0"
  | _ -> ());
  canonicalise points

let of_deltas events =
  let sorted =
    List.sort (fun (t1, _) (t2, _) -> Rat.compare t1 t2) events
  in
  (* Merge deltas at equal times, then prefix-sum. *)
  let rec merge = function
    | (t1, d1) :: (t2, d2) :: rest when Rat.equal t1 t2 ->
        merge ((t1, d1 + d2) :: rest)
    | pt :: rest -> pt :: merge rest
    | [] -> []
  in
  let merged = merge sorted in
  let acc = ref 0 in
  let points =
    List.map
      (fun (t, d) ->
        acc := !acc + d;
        (t, !acc))
      merged
  in
  if !acc <> 0 then invalid_arg "Step_fn.of_deltas: deltas do not cancel"
  else canonicalise points

let value_at t time =
  let rec go value = function
    | [] -> value
    | (bp, v) :: rest -> if Rat.(bp <= time) then go v rest else value
  in
  go 0 t

let integral_pieces t ~clip =
  (* Fold over consecutive breakpoint pairs, yielding (value, length)
     pieces, optionally clipped to an interval. *)
  let rec go acc = function
    | (t1, v) :: ((t2, _) :: _ as rest) ->
        let seg = Interval.make t1 t2 in
        let seg =
          match clip with
          | None -> Some seg
          | Some iv -> Interval.intersect seg iv
        in
        let acc =
          match seg with
          | Some s -> (v, Interval.length s) :: acc
          | None -> acc
        in
        go acc rest
    | _ -> acc
  in
  go [] t

let integral t =
  integral_pieces t ~clip:None
  |> List.map (fun (v, len) -> Rat.mul_int len v)
  |> Rat.sum

let integral_over t iv =
  integral_pieces t ~clip:(Some iv)
  |> List.map (fun (v, len) -> Rat.mul_int len v)
  |> Rat.sum

let max_value t = List.fold_left (fun m (_, v) -> Stdlib.max m v) 0 t

let support = function
  | [] -> None
  | (t0, _) :: _ as points ->
      let rec last = function
        | [ (t, _) ] -> t
        | _ :: rest -> last rest
        | [] -> assert false
      in
      Some (Interval.make t0 (last points))

let measure_positive t =
  integral_pieces t ~clip:None
  |> List.filter_map (fun (v, len) -> if v > 0 then Some len else None)
  |> Rat.sum

let breakpoints t = t

(* Merge the breakpoints of two step functions, combining values with
   [f].  Used for pointwise addition. *)
let combine f a b =
  let times =
    List.sort_uniq Rat.compare (List.map fst a @ List.map fst b)
  in
  List.map (fun time -> (time, f (value_at a time) (value_at b time))) times
  |> canonicalise

let add a b = combine ( + ) a b
let scale t k = canonicalise (List.map (fun (time, v) -> (time, v * k)) t)

let map t ~f =
  if f 0 <> 0 then invalid_arg "Step_fn.map: f 0 must be 0"
  else canonicalise (List.map (fun (time, v) -> (time, f v)) t)

let equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (t1, v1) (t2, v2) -> Rat.equal t1 t2 && v1 = v2) a b

let pp fmt t =
  Format.fprintf fmt "@[<h>";
  List.iter (fun (time, v) -> Format.fprintf fmt "%a->%d " Rat.pp time v) t;
  Format.fprintf fmt "@]"
