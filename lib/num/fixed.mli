(** Scaled-integer fixed-point values: the engine's numeric fast path.

    A {!scale} is a per-run common denominator [D] computed from the
    workload's size/time grid; a fixed-point value is the native int
    [n] representing the exact rational [n/D].  Conversions are exact
    or refused: {!of_rat} returns [None] whenever a rational does not
    lie on the [1/D] grid or its scaled magnitude would exceed
    {!bound}, and {!to_rat} re-normalises through {!Rat.make}, so
    [to_rat s (of_rat s r) = r] bit-for-bit whenever [of_rat]
    succeeds.  The engine degrades to exact {!Rat} arithmetic on the
    first [None] — fixed-point is an accelerator, never an
    approximation.

    Values admitted by {!of_rat} satisfy [|v| <= bound = max_int/4],
    so a single sum or difference of two admitted values cannot wrap;
    the checked {!add}/{!sub} exist for arbitrary operands (and for
    the property tests that pin the overflow contract).

    Lint rule R7 confines this interface to [lib/num] and
    [lib/core/simulator.ml]: policies, experiments and analysis code
    only ever see exact rationals. *)

type scale
(** A strictly positive common denominator, at most {!max_den}. *)

type t = int
(** A value scaled by some {!scale}'s denominator.  The type is
    transparent so the simulator's dense arrays stay unboxed; rule R7
    polices the blast radius. *)

exception Overflow
(** Raised by {!add}/{!sub} when the mathematical result does not fit
    a native int. *)

val max_den : int
(** Largest denominator a scale accepts ([2^30]); beyond it the lcm
    chase is hopeless and the engine should stay exact. *)

val bound : int
(** Magnitude ceiling enforced by {!of_rat} ([max_int/4]), chosen so
    [a + b] and [a - b] of admitted values can never wrap. *)

val unit : scale
(** The integer grid ([D = 1]). *)

val den : scale -> int
(** The denominator [D] itself. *)

val scale_of_den : int -> scale option
(** [scale_of_den d] is the scale with denominator [d], or [None]
    unless [1 <= d <= max_den]. *)

val including : scale -> Rat.t -> scale option
(** [including s r] is the smallest scale refining [s] whose grid
    contains [r] (the lcm of [den s] and [r]'s denominator), or
    [None] if that lcm exceeds {!max_den}.  Folding [including] over
    a workload computes the run's common denominator. *)

val zero : t

val of_rat : scale -> Rat.t -> t option
(** Exact conversion: [Some (num r * (D / den r))] when [den r]
    divides [D] and the result's magnitude is at most {!bound};
    [None] otherwise.  Never rounds. *)

val fits : scale -> Rat.t -> bool
(** [fits s r] iff [of_rat s r] succeeds. *)

val to_rat : scale -> t -> Rat.t
(** [to_rat s v] is the canonical (gcd-normalised) rational [v/D] —
    bit-identical to the value exact arithmetic would have produced,
    because {!Rat.make} always normalises. *)

val add : t -> t -> t
(** Overflow-checked sum of two same-scale values.
    @raise Overflow when the result wraps. *)

val sub : t -> t -> t
(** Overflow-checked difference of two same-scale values.
    @raise Overflow when the result wraps. *)

val compare : t -> t -> int
(** Same order as {!Rat.compare} on the represented rationals. *)

val equal : t -> t -> bool
