(** Closed time intervals [[lo, hi]] over exact rationals.

    Items in the MinTotal DBP problem are active over a closed interval
    [I(r) = [a(r), d(r)]]; bin usage periods are intervals too.  This
    module also provides the span computation of Figure 1 of the paper:
    the measure of the union of a set of intervals. *)

type t = { lo : Rat.t; hi : Rat.t }

val make : Rat.t -> Rat.t -> t
(** [make lo hi].  @raise Invalid_argument if [hi < lo]. *)

val lo : t -> Rat.t
val hi : t -> Rat.t
val length : t -> Rat.t

val is_empty : t -> bool
(** True when [lo = hi] (zero measure). *)

val contains : t -> Rat.t -> bool
(** Closed membership: [lo <= x <= hi]. *)

val contains_interval : t -> t -> bool
(** [contains_interval outer inner]. *)

val overlaps : t -> t -> bool
(** True when the two closed intervals share at least one point. *)

val overlaps_open : t -> t -> bool
(** True when the intervals share a set of positive measure, i.e. their
    open interiors intersect.  Two intervals that merely touch at an
    endpoint do not [overlaps_open]. *)

val intersect : t -> t -> t option
val hull : t -> t -> t
val shift : t -> Rat.t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
(** Orders by [lo], then by [hi]. *)

val union_measure : t list -> Rat.t
(** Measure (total length) of the union of the intervals — the
    [span] of Figure 1 when applied to item intervals. *)

val merge_overlapping : t list -> t list
(** Canonical disjoint decomposition of the union, sorted by [lo].
    Intervals that merely touch are merged. *)

val measure_difference : t list -> t list -> Rat.t
(** [measure_difference a b]: measure of (union of [a]) minus (union of
    [b]) — the amount of [a]'s coverage not already covered by [b]. *)

val pp : Format.formatter -> t -> unit
