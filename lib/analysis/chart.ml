let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let render ~title ?(height = 16) ?(width = 60) ~series () =
  if series = [] then invalid_arg "Chart.render: no series";
  List.iter
    (fun (name, pts) ->
      if pts = [] then invalid_arg ("Chart.render: empty series " ^ name))
    series;
  let all = List.concat_map snd series in
  let xs = List.map fst all and ys = List.map snd all in
  let fmin = List.fold_left Float.min infinity
  and fmax = List.fold_left Float.max neg_infinity in
  let x0 = fmin xs and x1 = fmax xs and y0 = fmin ys and y1 = fmax ys in
  let x_span = if x1 > x0 then x1 -. x0 else 1.0 in
  let y_span = if y1 > y0 then y1 -. y0 else 1.0 in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun s_idx (_, pts) ->
      let glyph = glyphs.(s_idx mod Array.length glyphs) in
      List.iter
        (fun (x, y) ->
          let col =
            int_of_float ((x -. x0) /. x_span *. float_of_int (width - 1))
          in
          let row =
            height - 1
            - int_of_float ((y -. y0) /. y_span *. float_of_int (height - 1))
          in
          if row >= 0 && row < height && col >= 0 && col < width then
            grid.(row).(col) <- glyph)
        pts)
    series;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "-- %s --\n" title);
  Array.iteri
    (fun row_idx row ->
      let label =
        if row_idx = 0 then Printf.sprintf "%8.3g |" y1
        else if row_idx = height - 1 then Printf.sprintf "%8.3g |" y0
        else "         |"
      in
      Buffer.add_string buf label;
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf ("         +" ^ String.make width '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "          %-8.3g%*s\n" x0 (width - 8) (Printf.sprintf "%8.3g" x1));
  let legend =
    List.mapi
      (fun i (name, _) ->
        Printf.sprintf "%c = %s" glyphs.(i mod Array.length glyphs) name)
      series
  in
  Buffer.add_string buf ("          " ^ String.concat "   " legend ^ "\n");
  Buffer.contents buf

let print ~title ?height ?width ~series () =
  print_string (render ~title ?height ?width ~series ())

let histogram ~title ?(bins = 10) ?(width = 50) samples =
  if samples = [] then invalid_arg "Chart.histogram: empty sample";
  if bins < 1 then invalid_arg "Chart.histogram: bins < 1";
  let lo = List.fold_left Float.min infinity samples in
  let hi = List.fold_left Float.max neg_infinity samples in
  let range = if hi > lo then hi -. lo else 1.0 in
  let counts = Array.make bins 0 in
  List.iter
    (fun x ->
      let idx =
        min (bins - 1) (int_of_float ((x -. lo) /. range *. float_of_int bins))
      in
      counts.(idx) <- counts.(idx) + 1)
    samples;
  let peak = Array.fold_left max 1 counts in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "-- %s (n=%d) --\n" title (List.length samples));
  Array.iteri
    (fun i c ->
      let b_lo = lo +. (float_of_int i /. float_of_int bins *. range) in
      let b_hi = lo +. (float_of_int (i + 1) /. float_of_int bins *. range) in
      let bar = width * c / peak in
      Buffer.add_string buf
        (Printf.sprintf "  [%8.3g, %8.3g) %s %d\n" b_lo b_hi
           (String.make bar '#') c))
    counts;
  Buffer.contents buf
