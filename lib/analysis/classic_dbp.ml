open Dbp_num
open Dbp_core
open Dbp_opt

type t = {
  algorithm_max_bins : int;
  opt_max_bins : int;
  ratio : Rat.t;
}

let measure (packing : Packing.t) ~opt =
  let opt_max = Opt_total.max_bins opt in
  if opt_max <= 0 then invalid_arg "Classic_dbp.measure: empty OPT profile";
  {
    algorithm_max_bins = packing.Packing.max_bins;
    opt_max_bins = opt_max;
    ratio = Rat.make packing.Packing.max_bins opt_max;
  }

let coffman_ff_upper_bound = Rat.make 2897 1000

let pp fmt t =
  Format.fprintf fmt "max-bins %d vs OPT %d (ratio %a)" t.algorithm_max_bins
    t.opt_max_bins Rat.pp_float t.ratio
