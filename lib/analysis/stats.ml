type summary = {
  count : int;
  mean : float;
  stddev : float;
  minimum : float;
  maximum : float;
  median : float;
  ci95_half_width : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] -> invalid_arg "Stats.stddev: empty"
  | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      let ss =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      in
      sqrt (ss /. (n -. 1.0))

let quantile xs ~q =
  if xs = [] then invalid_arg "Stats.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of range";
  let sorted = Array.of_list (List.sort Float.compare xs) in
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarise xs =
  match xs with
  | [] -> invalid_arg "Stats.summarise: empty"
  | _ ->
      let n = List.length xs in
      let sd = stddev xs in
      {
        count = n;
        mean = mean xs;
        stddev = sd;
        minimum = List.fold_left Float.min infinity xs;
        maximum = List.fold_left Float.max neg_infinity xs;
        median = quantile xs ~q:0.5;
        ci95_half_width =
          (if n < 2 then 0.0 else 1.96 *. sd /. sqrt (float_of_int n));
      }

let of_rats rs = List.map Dbp_num.Rat.to_float rs

let pp_summary fmt s =
  Format.fprintf fmt "%.4g +- %.2g [%.4g, %.4g]" s.mean s.ci95_half_width
    s.minimum s.maximum
