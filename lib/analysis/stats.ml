type summary = {
  count : int;
  mean : float;
  stddev : float;
  minimum : float;
  maximum : float;
  median : float;
  ci95_half_width : float;
}

(* Two-sided 95% Student-t critical values, indexed by degrees of
   freedom 1..29 (Abramowitz & Stegun table 26.10).  For n >= 30 the
   normal approximation 1.96 is within ~2% and is what the committed
   experiment artefacts pin. *)
let t95 =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045;
  |]

let t_critical_95 ~df =
  if df < 1 then invalid_arg "Stats.t_critical_95: df < 1";
  if df <= 29 then t95.(df - 1) else 1.96

let quantile_sorted sorted ~q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of range";
  (* Exact endpoints, and no interpolation when [pos] lands on an
     element: the blend [x *. 1.0 +. y *. 0.0] is NaN whenever the
     unweighted neighbour is infinite, so [quantile ~q:0.0] of
     [1.0; infinity] used to be NaN instead of the minimum (and
     [~q:1.0] NaN instead of the maximum). *)
  if n = 1 || Float.equal q 0.0 then sorted.(0)
  else if Float.equal q 1.0 then sorted.(n - 1)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = min (n - 2) (int_of_float (Float.floor pos)) in
    let frac = pos -. float_of_int lo in
    if frac <= 0.0 then sorted.(lo)
    else (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(lo + 1) *. frac)
  end

let summarise_sorted sorted =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.summarise: empty";
  (* Welford's online update: one pass, no re-reading, numerically
     stable for the long near-constant series histograms produce. *)
  let mean = ref 0.0 and m2 = ref 0.0 in
  for i = 0 to n - 1 do
    let d = sorted.(i) -. !mean in
    mean := !mean +. (d /. float_of_int (i + 1));
    m2 := !m2 +. (d *. (sorted.(i) -. !mean))
  done;
  let sd = if n < 2 then 0.0 else sqrt (!m2 /. float_of_int (n - 1)) in
  {
    count = n;
    mean = !mean;
    stddev = sd;
    minimum = sorted.(0);
    maximum = sorted.(n - 1);
    median = quantile_sorted sorted ~q:0.5;
    ci95_half_width =
      (if n < 2 then 0.0
       else t_critical_95 ~df:(n - 1) *. sd /. sqrt (float_of_int n));
  }

let sorted_of_list xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  a

let summarise xs = summarise_sorted (sorted_of_list xs)
let quantile xs ~q = quantile_sorted (sorted_of_list xs) ~q

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> (summarise xs).mean

let stddev xs =
  match xs with [] -> invalid_arg "Stats.stddev: empty" | _ -> (summarise xs).stddev

let of_rats rs = List.map Dbp_num.Rat.to_float rs

let pp_summary fmt s =
  Format.fprintf fmt "%.4g +- %.2g [%.4g, %.4g]" s.mean s.ci95_half_width
    s.minimum s.maximum
