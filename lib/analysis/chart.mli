(** Minimal ASCII line charts, for eyeballing ratio-vs-parameter curves
    in terminal output (the "figures" side of the reproduction). *)

val render :
  title:string ->
  ?height:int ->
  ?width:int ->
  series:(string * (float * float) list) list ->
  unit ->
  string
(** Plots each named series of (x, y) points on a shared scaled grid,
    one glyph per series, with axis labels.  Series must be
    non-empty. *)

val print :
  title:string ->
  ?height:int ->
  ?width:int ->
  series:(string * (float * float) list) list ->
  unit ->
  unit

val histogram :
  title:string -> ?bins:int -> ?width:int -> float list -> string
(** Horizontal ASCII histogram of a sample: equal-width buckets over
    [[min, max]], bar lengths proportional to counts.
    @raise Invalid_argument on an empty sample or [bins < 1]. *)
