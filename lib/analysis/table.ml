type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reverse order *)
}

let create ~title ~columns = { title; columns; rows = [] }

let title t = t.title

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells, expected %d" (List.length row)
         (List.length t.columns));
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows
let row_count t = List.length t.rows

let widths t =
  let rows = t.columns :: List.rev t.rows in
  List.fold_left
    (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
    (List.map (fun _ -> 0) t.columns)
    rows

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let render t =
  let widths = widths t in
  let line row =
    String.concat " | " (List.map2 pad widths row) |> String.trim
  in
  let rule =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  let body = List.map line (List.rev t.rows) in
  String.concat "\n"
    (Printf.sprintf "== %s ==" t.title :: line t.columns :: rule :: body)
  ^ "\n"

let render_markdown t =
  let cells row = "| " ^ String.concat " | " row ^ " |" in
  let rule = cells (List.map (fun _ -> "---") t.columns) in
  String.concat "\n"
    ((Printf.sprintf "**%s**" t.title :: "" :: cells t.columns :: rule
     :: List.map cells (List.rev t.rows))
    @ [ "" ])

let print t = print_string (render t)

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (line t.columns :: List.map line (List.rev t.rows)) ^ "\n"
