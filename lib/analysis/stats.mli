(** Descriptive statistics for multi-seed experiment aggregation. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1); 0 for n < 2. *)
  minimum : float;
  maximum : float;
  median : float;
  ci95_half_width : float;
      (** Normal-approximation 95% confidence half-width
          (1.96 stddev / sqrt n); 0 for n < 2. *)
}

val summarise : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val quantile : float list -> q:float -> float
(** Linear-interpolation quantile, [q] in [[0, 1]].
    @raise Invalid_argument on the empty list or out-of-range [q]. *)

val mean : float list -> float
val stddev : float list -> float

val of_rats : Dbp_num.Rat.t list -> float list
(** Convenience conversion for summarising exact measurements. *)

val pp_summary : Format.formatter -> summary -> unit
(** ["mean +- ci [min, max]"]. *)
