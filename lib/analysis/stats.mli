(** Descriptive statistics for multi-seed experiment aggregation.

    Everything funnels through one path: sort once, then compute every
    statistic in a single pass over the sorted array
    ({!summarise_sorted}).  The list-taking wrappers exist for
    call-site convenience and pay exactly one sort. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1); 0 for n < 2. *)
  minimum : float;
  maximum : float;
  median : float;
  ci95_half_width : float;
      (** 95% confidence half-width using the Student-t critical value
          for n - 1 degrees of freedom when n < 30 (the normal
          z = 1.96 badly understates the interval for small seed
          sweeps), 1.96 for n >= 30; 0 for n < 2. *)
}

val summarise : float list -> summary
(** Sorts once, then one pass.
    @raise Invalid_argument on the empty list. *)

val summarise_sorted : float array -> summary
(** The underlying single-pass path.  The array must already be sorted
    ascending; it is not modified.
    @raise Invalid_argument on the empty array. *)

val quantile : float list -> q:float -> float
(** Linear-interpolation quantile, [q] in [[0, 1]].
    @raise Invalid_argument on the empty list or out-of-range [q]. *)

val quantile_sorted : float array -> q:float -> float
(** {!quantile} on an already-sorted array — no sort, no copy. *)

val t_critical_95 : df:int -> float
(** Two-sided 95% Student-t critical value for [df] degrees of
    freedom; 1.96 for [df >= 30].
    @raise Invalid_argument for [df < 1]. *)

val mean : float list -> float
val stddev : float list -> float

val of_rats : Dbp_num.Rat.t list -> float list
(** Convenience conversion for summarising exact measurements. *)

val pp_summary : Format.formatter -> summary -> unit
(** ["mean +- ci [min, max]"]. *)
