open Dbp_num
open Dbp_core

let glyph_of_fill fill =
  if fill < 0.25 then '.'
  else if fill < 0.5 then '-'
  else if fill < 0.75 then '='
  else '#'

(* Level of [bin] at column time [t]: sum of sizes of its items whose
   half-open activity window contains t. *)
let level_at (packing : Packing.t) (b : Packing.bin_record) t =
  let instance = packing.Packing.instance in
  List.fold_left
    (fun acc id ->
      let r = Instance.item instance id in
      if Item.active_at r t then Rat.add acc r.Item.size else acc)
    Rat.zero b.item_ids

let render ?(width = 64) (packing : Packing.t) =
  let period = Instance.packing_period packing.Packing.instance in
  let t0 = Rat.to_float (Interval.lo period) in
  let t1 = Rat.to_float (Interval.hi period) in
  let span = if t1 > t0 then t1 -. t0 else 1.0 in
  let capacity = Rat.to_float (Instance.capacity packing.Packing.instance) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "packing by %s: %d bins over [%g, %g]\n"
       packing.Packing.policy_name
       (Packing.bins_used packing)
       t0 t1);
  Array.iter
    (fun (b : Packing.bin_record) ->
      Buffer.add_string buf (Printf.sprintf "  b%-3d |" b.bin_id);
      for col = 0 to width - 1 do
        let tf = t0 +. ((float_of_int col +. 0.5) /. float_of_int width *. span) in
        let opened = Rat.to_float b.opened and closed = Rat.to_float b.closed in
        if tf < opened || tf >= closed then Buffer.add_char buf ' '
        else begin
          let t = Rat.of_float ~den:1_000_000 tf in
          let level = Rat.to_float (level_at packing b t) in
          let fill = level /. capacity in
          Buffer.add_char buf
            (if fill <= 0.0 then '.' else glyph_of_fill fill)
        end
      done;
      Buffer.add_string buf "|\n")
    packing.Packing.bins;
  Buffer.add_string buf
    (Printf.sprintf "       %-8g%*s\n" t0 (width - 8) (Printf.sprintf "%8g" t1));
  Buffer.contents buf

let print ?width packing = print_string (render ?width packing)

let svg_colors =
  [| "#4e79a7"; "#f28e2b"; "#59a14f"; "#e15759"; "#76b7b2"; "#edc948";
     "#b07aa1"; "#ff9da7"; "#9c755f"; "#bab0ac" |]

let render_svg ?(width = 800) ?(row_height = 26) (packing : Packing.t) =
  let instance = packing.Packing.instance in
  let period = Instance.packing_period instance in
  let t0 = Rat.to_float (Interval.lo period) in
  let t1 = Rat.to_float (Interval.hi period) in
  let span = if t1 > t0 then t1 -. t0 else 1.0 in
  let margin_left = 60 and margin_top = 30 in
  let bins = packing.Packing.bins in
  let height = margin_top + (Array.length bins * row_height) + 40 in
  let x_of time =
    margin_left
    + int_of_float ((time -. t0) /. span *. float_of_int (width - margin_left - 20))
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"monospace\" font-size=\"11\">\n"
       width height);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"16\">packing by %s: %d bins, cost %.4g</text>\n"
       margin_left packing.Packing.policy_name (Array.length bins)
       (Rat.to_float packing.Packing.total_cost));
  Array.iteri
    (fun row (b : Packing.bin_record) ->
      let y = margin_top + (row * row_height) in
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"6\" y=\"%d\">b%d [%s]</text>\n"
           (y + (row_height / 2) + 4) b.bin_id b.tag);
      (* bin usage background *)
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#eee\" \
            stroke=\"#999\"/>\n"
           (x_of (Rat.to_float b.opened))
           (y + 2)
           (max 1 (x_of (Rat.to_float b.closed) - x_of (Rat.to_float b.opened)))
           (row_height - 4));
      List.iter
        (fun item_id ->
          let r = Instance.item instance item_id in
          let color = svg_colors.(item_id mod Array.length svg_colors) in
          let share =
            Rat.to_float (Rat.div r.Item.size b.capacity)
          in
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
                fill=\"%s\" fill-opacity=\"%.2f\" stroke=\"%s\"><title>item \
                %d size %s [%s, %s]</title></rect>\n"
               (x_of (Rat.to_float r.Item.arrival))
               (y + 4)
               (max 1
                  (x_of (Rat.to_float r.Item.departure)
                  - x_of (Rat.to_float r.Item.arrival)))
               (row_height - 8) color
               (0.35 +. (0.6 *. share))
               color item_id (Rat.to_string r.Item.size)
               (Rat.to_string r.Item.arrival)
               (Rat.to_string r.Item.departure)))
        b.item_ids)
    bins;
  let axis_y = margin_top + (Array.length bins * row_height) + 14 in
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#333\"/>\n"
       margin_left axis_y (width - 20) axis_y);
  Buffer.add_string buf
    (Printf.sprintf "<text x=\"%d\" y=\"%d\">%.4g</text>\n" margin_left
       (axis_y + 16) t0);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%.4g</text>\n" (width - 20)
       (axis_y + 16) t1);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
