(** ASCII Gantt rendering of a packing: one row per bin, time on the
    horizontal axis — the textual analogue of the bin-configuration
    figures in the paper (Figures 2–4).

    Each bin row shows its usage period; within it, glyphs encode the
    bin's level (how full it is) at each rendered time column:
    ['.'] under 25%, ['-'] under 50%, ['='] under 75%, ['#'] 75% and
    above. *)

open Dbp_core

val render : ?width:int -> Packing.t -> string
(** [width] columns of time resolution (default 64). *)

val print : ?width:int -> Packing.t -> unit

val render_svg : ?width:int -> ?row_height:int -> Packing.t -> string
(** Standalone SVG document: one horizontal lane per bin, one rectangle
    per item positioned by its activity interval, opacity scaled by the
    item's share of the bin capacity, with a time axis.  Suitable for
    embedding in reports ([dbp decompose --svg out.svg]). *)
