(** Structural comparison of two packings of the same instance — the
    "why did policy A pay more than policy B here" debugging tool.

    Reports the first item the two policies placed differently (with
    the open-bin context at that moment reconstructible from the
    placements), the per-policy bin counts, and the cost gap, plus the
    items co-located by one policy but separated by the other. *)

open Dbp_num
open Dbp_core

type t = {
  cost_a : Rat.t;
  cost_b : Rat.t;
  cost_gap : Rat.t;  (** [cost_a - cost_b]. *)
  bins_a : int;
  bins_b : int;
  first_divergence : int option;
      (** Lowest item id the two packings assign to different
          {e cohorts} (sets of co-located earlier items) — bin indices
          themselves are not comparable across policies. *)
  split_pairs : int;
      (** Item pairs sharing a bin under A but not under B. *)
  joined_pairs : int;  (** ... and vice versa. *)
}

val compare : Packing.t -> Packing.t -> t
(** @raise Invalid_argument if the packings are of different
    instances (by item count). *)

val pp : Format.formatter -> t -> unit
