(** Measured competitive ratios: [A_total(R) / OPT_total(R)] with the
    offline optimum computed by {!Dbp_opt.Opt_total}.

    When a segment of the OPT computation is not solved to optimality
    the ratio is only known within an interval, and comparisons against
    a theoretical bound are graded accordingly: a bound can be
    {e confirmed} (holds even against the OPT lower bound), merely
    {e consistent} (holds against the OPT upper bound), or {e violated}
    (fails even against the OPT upper bound — which would falsify the
    theorem or reveal an implementation bug). *)

open Dbp_num
open Dbp_core
open Dbp_opt

type t = {
  algorithm_cost : Rat.t;
  opt : Opt_total.t;
  ratio_lower : Rat.t;  (** [cost / opt.upper]. *)
  ratio_upper : Rat.t;  (** [cost / opt.lower]. *)
  exact : bool;
}

val measure : ?node_budget:int -> Packing.t -> t

val of_costs : algorithm_cost:Rat.t -> opt:Opt_total.t -> t

val value_exn : t -> Rat.t
(** The exact ratio.  @raise Failure when OPT was not exact. *)

type verdict = Confirmed | Consistent | Violated

val check_bound : t -> bound:Rat.t -> verdict
val verdict_to_string : verdict -> string
val pp : Format.formatter -> t -> unit
