(** Plain-text table rendering for experiment reports (EXPERIMENTS.md
    is generated from these). *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
(** @raise Invalid_argument on a wrong-arity row. *)

val add_rows : t -> string list list -> unit
val title : t -> string
val row_count : t -> int
val render : t -> string
(** Pipe-separated, column-aligned, with a title line and a rule. *)

val render_markdown : t -> string
(** GitHub-flavoured markdown table. *)

val print : t -> unit

val render_csv : t -> string
(** RFC-4180-style CSV: header row then data rows; cells containing
    commas or quotes are quoted. *)
