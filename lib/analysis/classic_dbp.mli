(** The {e classical} dynamic bin packing objective, for contrast.

    Classical DBP (Coffman, Garey & Johnson 1983; the paper's related
    work) minimises the {e maximum number of bins ever open}, not the
    total bin-time.  This module measures that objective on our
    packings so the two can be compared side by side: the paper's
    Figure 2 instance, for example, is harmless under the classical
    objective (FF's peak equals OPT's peak) yet costs First Fit a
    factor of nearly [mu] under MinTotal. *)

open Dbp_core
open Dbp_opt

type t = {
  algorithm_max_bins : int;
  opt_max_bins : int;  (** Peak of the repacking optimum [OPT(R,t)]. *)
  ratio : Dbp_num.Rat.t;  (** [algorithm_max_bins / opt_max_bins]. *)
}

val measure : Packing.t -> opt:Opt_total.t -> t
(** @raise Invalid_argument if the OPT profile is empty. *)

val coffman_ff_upper_bound : Dbp_num.Rat.t
(** 2897/1000 — the classical First Fit competitive-ratio upper bound
    for the max-bins objective, quoted for context. *)

val pp : Format.formatter -> t -> unit
