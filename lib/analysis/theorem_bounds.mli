(** Closed-form competitive-ratio bounds from the paper, as exact
    rational functions of [mu] (and [k] where applicable). *)

open Dbp_num

val anyfit_lower : mu:Rat.t -> Rat.t
(** Theorem 1: any Any Fit algorithm has ratio [>= mu]. *)

val anyfit_construction_ratio : k:int -> mu:Rat.t -> Rat.t
(** Equation (1): the exact ratio [k mu / (k + mu - 1)] the Figure 2
    construction achieves at finite [k]. *)

val ff_large : k:Rat.t -> Rat.t
(** Theorem 3: all sizes [>= W/k] implies [FF <= k * OPT]. *)

val ff_small : k:Rat.t -> mu:Rat.t -> Rat.t
(** Theorem 4: all sizes [< W/k] implies
    [FF <= (k/(k-1) mu + 6k/(k-1) + 1) OPT].
    @raise Invalid_argument if [k <= 1]. *)

val ff_general : mu:Rat.t -> Rat.t
(** Theorem 5: [FF <= (2 mu + 13) OPT]. *)

val mff_oblivious : mu:Rat.t -> Rat.t
(** Section 4.4, [k = 8]: [MFF <= (8/7 mu + 55/7) OPT]. *)

val mff_known_mu : mu:Rat.t -> Rat.t
(** Section 4.4, [k = mu + 7]: [MFF <= (mu + 8) OPT]. *)

val bestfit_forced_ratio : k:int -> mu:Rat.t -> iterations:int -> Rat.t
(** Theorem 2's guarantee [k/2] once [iterations >= (k-1)/mu]
    (returns [k/2] as a rational; the realised ratio of the
    construction is measured, not derived). *)
