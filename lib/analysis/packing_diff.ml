open Dbp_num
open Dbp_core

type t = {
  cost_a : Rat.t;
  cost_b : Rat.t;
  cost_gap : Rat.t;
  bins_a : int;
  bins_b : int;
  first_divergence : int option;
  split_pairs : int;
  joined_pairs : int;
}

(* Cohort of an item: the set of lower-id items sharing its bin.  Two
   packings agree on a prefix iff every item's cohort matches. *)
let cohort (packing : Packing.t) item_id =
  let bin = packing.Packing.assignment.(item_id) in
  packing.Packing.bins.(bin).Packing.item_ids
  |> List.filter (fun id -> id < item_id)
  |> List.sort Int.compare

let compare (a : Packing.t) (b : Packing.t) =
  let n = Array.length a.Packing.assignment in
  if Array.length b.Packing.assignment <> n then
    invalid_arg "Packing_diff.compare: different instances";
  let first_divergence = ref None in
  (for item = 0 to n - 1 do
     if !first_divergence = None && cohort a item <> cohort b item then
       first_divergence := Some item
   done);
  let same_bin (p : Packing.t) i j =
    p.Packing.assignment.(i) = p.Packing.assignment.(j)
  in
  let split = ref 0 and joined = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match (same_bin a i j, same_bin b i j) with
      | true, false -> incr split
      | false, true -> incr joined
      | true, true | false, false -> ()
    done
  done;
  {
    cost_a = a.Packing.total_cost;
    cost_b = b.Packing.total_cost;
    cost_gap = Rat.sub a.Packing.total_cost b.Packing.total_cost;
    bins_a = Packing.bins_used a;
    bins_b = Packing.bins_used b;
    first_divergence = !first_divergence;
    split_pairs = !split;
    joined_pairs = !joined;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cost %a vs %a (gap %a); bins %d vs %d; first divergence at %s; %d \
     pairs split, %d joined@]"
    Rat.pp_float t.cost_a Rat.pp_float t.cost_b Rat.pp_float t.cost_gap
    t.bins_a t.bins_b
    (match t.first_divergence with
    | Some i -> "item " ^ string_of_int i
    | None -> "none")
    t.split_pairs t.joined_pairs
