open Dbp_num
open Dbp_core

type sub_period = {
  bin : int;
  index : int;
  period : Interval.t;
  reference_point : Rat.t option;
  reference_bin : int option;
}

type case = I | II | III | IV | V

type pairing = {
  joints : (sub_period * sub_period) list;
  singles : sub_period list;
  non_intersecting : sub_period list;
}

type report = {
  packing : Packing.t;
  delta : Rat.t;
  mu : Rat.t;
  left_periods : Interval.t option array;
  right_lengths : Rat.t array;
  sub_periods : sub_period list;
  pairing : pairing;
  span : Rat.t;
  cost_left : Rat.t;
  charge_count : int;
  demand : Rat.t;
  violations : string list;
}

let classify a b =
  if a.bin = b.bin && a.index = b.index then None
  else if a.bin = b.bin then
    if a.index >= 2 && b.index >= 2 then Some I else Some II
  else if a.index >= 2 && b.index >= 2 then Some III
  else if a.index = 1 && b.index = 1 then Some V
  else Some IV

let reference_periods_intersect ~delta a b =
  match (a.reference_bin, b.reference_bin, a.reference_point, b.reference_point)
  with
  | Some ba, Some bb, Some ta, Some tb ->
      ba = bb && Rat.(Rat.abs (Rat.sub ta tb) < Rat.mul_int delta 2)
  | _ -> false

(* ---- decomposition ---------------------------------------------------- *)

let left_right_split (packing : Packing.t) =
  let bins = packing.Packing.bins in
  let start = Interval.lo (Instance.packing_period packing.Packing.instance) in
  let n = Array.length bins in
  let left = Array.make n None in
  let right_len = Array.make n Rat.zero in
  let latest_close = ref start in
  Array.iteri
    (fun i (b : Packing.bin_record) ->
      let e_i = !latest_close in
      let total = Rat.sub b.closed b.opened in
      (if Rat.(e_i <= b.opened) then right_len.(i) <- total
       else begin
         let left_hi = Rat.min b.closed e_i in
         left.(i) <- Some (Interval.make b.opened left_hi);
         right_len.(i) <- Rat.sub total (Rat.sub left_hi b.opened)
       end);
      latest_close := Rat.max !latest_close b.closed)
    bins;
  (left, right_len)

(* Split I_i^L right-to-left into chunks of (mu+2)Delta, merging a
   too-short first chunk into the second (Figure 5). *)
let split_left_period ~chunk ~two_delta (iv : Interval.t) =
  let len = Interval.length iv in
  if Rat.(len <= chunk) then [ iv ]
  else begin
    let count = Rat.ceil (Rat.div len chunk) in
    let boundaries =
      (* lo, hi - (count-1) chunk, ..., hi - chunk, hi *)
      Interval.lo iv
      :: List.init count (fun idx ->
             let back = count - 1 - idx in
             Rat.sub (Interval.hi iv) (Rat.mul_int chunk back))
    in
    let rec to_intervals = function
      | a :: (b :: _ as rest) -> Interval.make a b :: to_intervals rest
      | _ -> []
    in
    let pieces = to_intervals boundaries in
    match pieces with
    | first :: second :: rest when Rat.(Interval.length first < two_delta) ->
        Interval.make (Interval.lo first) (Interval.hi second) :: rest
    | pieces -> pieces
  end

let reference_point_of (b : Packing.bin_record) ~(period : Interval.t) ~is_last
    =
  let inside t =
    Rat.(Interval.lo period <= t)
    && (Rat.(t < Interval.hi period)
       || (is_last && Rat.(t = Interval.hi period)))
  in
  List.find_opt (fun (t, _) -> inside t) b.placements |> Option.map fst

let reference_bin_of (packing : Packing.t) ~bin ~point =
  let rec scan best k =
    if k >= bin then best
    else
      let cand = packing.Packing.bins.(k) in
      let best =
        if Rat.(point < cand.Packing.closed) then Some k else best
      in
      scan best (k + 1)
  in
  scan None 0

(* Resource demand of the items sitting in [bin] at time [point],
   restricted to the window [point - delta, point + delta]. *)
let demand_in_window (packing : Packing.t) ~bin ~point ~delta =
  let window =
    Interval.make (Rat.sub point delta) (Rat.add point delta)
  in
  let instance = packing.Packing.instance in
  packing.Packing.bins.(bin).Packing.item_ids
  |> List.map (fun id ->
         let r = Instance.item instance id in
         if Item.active_at r point then
           match Interval.intersect (Item.interval r) window with
           | Some overlap -> Rat.mul r.Item.size (Interval.length overlap)
           | None -> Rat.zero
         else Rat.zero)
  |> Rat.sum

(* ---- pairing (Figure 7) ------------------------------------------------ *)

let build_pairing ~delta sub_periods =
  let intersecting, non_intersecting =
    List.partition
      (fun p ->
        List.exists
          (fun q ->
            not (p.bin = q.bin && p.index = q.index)
            && reference_periods_intersect ~delta p q)
          sub_periods)
      sub_periods
  in
  (* All intersecting periods should be first sub-periods (Case V);
     pair each unpaired one with its back-intersect partner. *)
  let sorted =
    List.sort (fun a b -> Int.compare a.bin b.bin) intersecting
  in
  let paired = Hashtbl.create 16 in
  let joints = ref [] and singles = ref [] in
  List.iter
    (fun p ->
      if not (Hashtbl.mem paired (p.bin, p.index)) then begin
        let back =
          List.find_opt
            (fun q ->
              q.bin > p.bin
              && (not (Hashtbl.mem paired (q.bin, q.index)))
              && reference_periods_intersect ~delta p q)
            sorted
        in
        match back with
        | Some q ->
            Hashtbl.add paired (p.bin, p.index) ();
            Hashtbl.add paired (q.bin, q.index) ();
            joints := (p, q) :: !joints
        | None ->
            Hashtbl.add paired (p.bin, p.index) ();
            singles := p :: !singles
      end)
    sorted;
  {
    joints = List.rev !joints;
    singles = List.rev !singles;
    non_intersecting;
  }

(* ---- the checker ------------------------------------------------------- *)

let analyse ?k (packing : Packing.t) =
  let bins = packing.Packing.bins in
  if Array.length bins = 0 then invalid_arg "Ff_decomposition: no bins";
  let instance = packing.Packing.instance in
  let capacity = Instance.capacity instance in
  let delta = Instance.min_interval_length instance in
  let max_len = Instance.max_interval_length instance in
  let mu = Instance.mu instance in
  let violations = ref [] in
  let violation fmt =
    Format.kasprintf (fun s -> violations := s :: !violations) fmt
  in
  (* Bins must be indexed in opening order. *)
  Array.iteri
    (fun i (b : Packing.bin_record) ->
      if i > 0 then begin
        let prev = bins.(i - 1) in
        if Rat.(b.opened < prev.Packing.opened) then
          violation "bins not in opening order at %d" i
      end)
    bins;
  let left_periods, right_lengths = left_right_split packing in
  (* Equation (5): span(R) = sum len(I_i^R). *)
  let span = Instance.span instance in
  let right_total = Rat.sum (Array.to_list right_lengths) in
  if not (Rat.equal span right_total) then
    violation "eq (5): span %a <> sum of right periods %a" Rat.pp span Rat.pp
      right_total;
  (* Equation (6): FF_total = sum len(I_i^L) + span. *)
  let cost_left =
    Array.to_list left_periods
    |> List.map (function None -> Rat.zero | Some iv -> Interval.length iv)
    |> Rat.sum
  in
  if not (Rat.equal packing.Packing.total_cost (Rat.add cost_left span)) then
    violation "eq (6): cost %a <> left %a + span %a" Rat.pp
      packing.Packing.total_cost Rat.pp cost_left Rat.pp span;
  (* Sub-period split and merge. *)
  let chunk = Rat.mul (Rat.add mu Rat.two) delta in
  let two_delta = Rat.mul_int delta 2 in
  let cap_f1 = Rat.mul (Rat.add mu (Rat.of_int 4)) delta in
  let sub_periods =
    Array.to_list left_periods
    |> List.mapi (fun i left ->
           match left with
           | None -> []
           | Some iv ->
               let pieces = split_left_period ~chunk ~two_delta iv in
               let last = List.length pieces in
               List.mapi
                 (fun jdx period ->
                   let j = jdx + 1 in
                   let is_last = j = last in
                   let reference_point =
                     reference_point_of bins.(i) ~period ~is_last
                   in
                   let reference_bin =
                     Option.bind reference_point (fun point ->
                         reference_bin_of packing ~bin:i ~point)
                   in
                   { bin = i; index = j; period; reference_point; reference_bin })
                 pieces)
    |> List.concat
  in
  (* Features f.1 - f.5. *)
  List.iter
    (fun p ->
      let len = Interval.length p.period in
      if Rat.(len > cap_f1) then
        violation "f.1: |I_{%d,%d}| = %a > (mu+4)delta" p.bin p.index Rat.pp len;
      if p.index >= 2 && not (Rat.equal len chunk) then
        violation "f.2: |I_{%d,%d}| <> (mu+2)delta" p.bin p.index;
      match p.reference_point with
      | None ->
          violation "no reference point in I_{%d,%d}" p.bin p.index
      | Some t ->
          if p.index = 1 && not (Rat.equal t (Interval.lo p.period)) then
            violation "f.4: t_{%d,1} <> I_{%d,1}^-" p.bin p.bin;
          if
            Rat.(t < Interval.lo p.period)
            || Rat.(t > Rat.add (Interval.lo p.period) max_len)
          then violation "f.5: t_{%d,%d} outside [lo, lo + mu delta]" p.bin p.index;
          if p.reference_bin = None then
            violation "no reference bin for I_{%d,%d}" p.bin p.index)
    sub_periods;
  (* f.3: a split bin's first sub-period is >= 2 delta. *)
  let by_bin = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let cur = try Hashtbl.find by_bin p.bin with Not_found -> [] in
      Hashtbl.replace by_bin p.bin (p :: cur))
    sub_periods;
  Hashtbl.iter
    (fun bin ps ->
      if List.length ps >= 2 then
        List.iter
          (fun p ->
            if p.index = 1 && Rat.(Interval.length p.period < two_delta) then
              violation "f.3: first sub-period of bin %d shorter than 2 delta"
                bin)
          ps)
    by_bin;
  (* Lemma 1: intersections only in Case V.  Lemma 2 on Case V pairs. *)
  let rec pairs = function
    | [] -> []
    | p :: rest -> List.map (fun q -> (p, q)) rest @ pairs rest
  in
  let all_pairs = pairs sub_periods in
  List.iter
    (fun (p, q) ->
      if reference_periods_intersect ~delta p q then begin
        match classify p q with
        | Some V ->
            let first, _ = if p.bin < q.bin then (p, q) else (q, p) in
            if Rat.(Interval.length first.period >= two_delta) then
              violation
                "lemma 2: intersecting I_{%d,1} has length >= 2 delta"
                first.bin
        | Some (I | II | III | IV) ->
            violation
              "lemma 1: reference periods of I_{%d,%d} and I_{%d,%d} intersect"
              p.bin p.index q.bin q.index
        | None -> ()
      end)
    all_pairs;
  (* Lemma 3: at most one front- and one back-intersect per period. *)
  List.iter
    (fun p ->
      let fronts =
        List.filter
          (fun q -> q.bin < p.bin && reference_periods_intersect ~delta p q)
          sub_periods
      and backs =
        List.filter
          (fun q -> q.bin > p.bin && reference_periods_intersect ~delta p q)
          sub_periods
      in
      if List.length fronts > 1 then
        violation "lemma 3: I_{%d,%d} has %d front-intersects" p.bin p.index
          (List.length fronts);
      if List.length backs > 1 then
        violation "lemma 3: I_{%d,%d} has %d back-intersects" p.bin p.index
          (List.length backs))
    sub_periods;
  (* Pairing and Lemma 4: the representatives' reference periods are
     pairwise disjoint. *)
  let pairing = build_pairing ~delta sub_periods in
  let representatives =
    List.map fst pairing.joints @ pairing.singles @ pairing.non_intersecting
  in
  List.iter
    (fun (p, q) ->
      if
        (not (p.bin = q.bin && p.index = q.index))
        && reference_periods_intersect ~delta p q
      then
        violation "lemma 4: representatives I_{%d,%d} and I_{%d,%d} intersect"
          p.bin p.index q.bin q.index)
    (pairs representatives);
  (* Lemma 5: auxiliary periods pairwise disjoint (same bin -> points
     at least 2 delta apart). *)
  List.iter
    (fun (p, q) ->
      match (p.reference_point, q.reference_point) with
      | Some tp, Some tq when p.bin = q.bin ->
          if Rat.(Rat.abs (Rat.sub tp tq) < two_delta) then
            violation "lemma 5: auxiliary periods of bin %d intersect" p.bin
      | _ -> ())
    all_pairs;
  (* Demand inequalities. *)
  let demand = Instance.total_demand instance in
  let w_delta = Rat.mul capacity delta in
  List.iter
    (fun p ->
      match (p.reference_point, p.reference_bin) with
      | Some point, Some ref_bin ->
          let u_ref = demand_in_window packing ~bin:ref_bin ~point ~delta in
          let u_aux = demand_in_window packing ~bin:p.bin ~point ~delta in
          (* (14): u(p-dagger) + u(p-double-dagger) >= W delta. *)
          if Rat.(Rat.add u_ref u_aux < w_delta) then
            violation "ineq (14) fails at I_{%d,%d}" p.bin p.index;
          (* (8), all-small regime. *)
          (match k with
          | Some k ->
              let threshold =
                Rat.mul (Rat.sub Rat.one (Rat.div Rat.one k)) w_delta
              in
              if Rat.(u_ref < threshold) then
                violation "ineq (8) fails at I_{%d,%d}" p.bin p.index
          | None -> ())
      | _ -> ())
    sub_periods;
  let charge_count =
    List.length pairing.joints
    + List.length pairing.singles
    + List.length pairing.non_intersecting
  in
  (* (11) / (15) global demand bounds. *)
  (match k with
  | Some k ->
      let bound =
        Rat.mul_int
          (Rat.mul (Rat.sub Rat.one (Rat.div Rat.one k)) w_delta)
          charge_count
      in
      if Rat.(demand < bound) then
        violation "ineq (11): u(R) = %a < %a" Rat.pp demand Rat.pp bound
  | None -> ());
  let bound15 = Rat.div (Rat.mul_int w_delta charge_count) (Rat.of_int 2) in
  if Rat.(demand < bound15) then
    violation "ineq (15): u(R) = %a < %a" Rat.pp demand Rat.pp bound15;
  (* (10): FF_total <= charge_count (mu+6) delta + span. *)
  let bound10 =
    Rat.add
      (Rat.mul_int (Rat.mul (Rat.add mu (Rat.of_int 6)) delta) charge_count)
      span
  in
  if Rat.(packing.Packing.total_cost > bound10) then
    violation "ineq (10): cost %a > %a" Rat.pp packing.Packing.total_cost
      Rat.pp bound10;
  {
    packing;
    delta;
    mu;
    left_periods;
    right_lengths;
    sub_periods;
    pairing;
    span;
    cost_left;
    charge_count;
    demand;
    violations = List.rev !violations;
  }

let upper_bound_inequality_10 r =
  let bound =
    Rat.add
      (Rat.mul_int
         (Rat.mul (Rat.add r.mu (Rat.of_int 6)) r.delta)
         r.charge_count)
      r.span
  in
  Rat.(r.packing.Packing.total_cost <= bound)

let demand_inequality_15 r =
  let w_delta = Rat.mul (Instance.capacity r.packing.Packing.instance) r.delta in
  Rat.(r.demand >= Rat.div (Rat.mul_int w_delta r.charge_count) Rat.two)

let demand_inequality_11 r ~k =
  let w_delta = Rat.mul (Instance.capacity r.packing.Packing.instance) r.delta in
  let per = Rat.mul (Rat.sub Rat.one (Rat.div Rat.one k)) w_delta in
  Rat.(r.demand >= Rat.mul_int per r.charge_count)

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>decomposition: %d bins, %d sub-periods, %d joints + %d singles + %d \
     non-intersecting = %d charges; span=%a, left=%a, u(R)=%a; %d violations@]"
    (Array.length r.packing.Packing.bins)
    (List.length r.sub_periods)
    (List.length r.pairing.joints)
    (List.length r.pairing.singles)
    (List.length r.pairing.non_intersecting)
    r.charge_count Rat.pp_float r.span Rat.pp_float r.cost_left Rat.pp_float
    r.demand
    (List.length r.violations)
