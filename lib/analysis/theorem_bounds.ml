open Dbp_num

let anyfit_lower ~mu = mu

let anyfit_construction_ratio ~k ~mu =
  Rat.div (Rat.mul_int mu k) (Rat.add (Rat.of_int k) (Rat.sub mu Rat.one))

let ff_large ~k = k

let ff_small ~k ~mu =
  if Rat.(k <= Rat.one) then invalid_arg "Theorem_bounds.ff_small: k <= 1";
  let factor = Rat.div k (Rat.sub k Rat.one) in
  Rat.sum [ Rat.mul factor mu; Rat.mul_int factor 6; Rat.one ]

let ff_general ~mu = Rat.add (Rat.mul_int mu 2) (Rat.of_int 13)

let mff_oblivious ~mu =
  Rat.add (Rat.mul (Rat.make 8 7) mu) (Rat.make 55 7)

let mff_known_mu ~mu = Rat.add mu (Rat.of_int 8)

let bestfit_forced_ratio ~k ~mu:_ ~iterations:_ = Rat.make k 2
