(** The Section 4.3 proof machinery, executed on {e real} First Fit
    packings.

    Theorems 4 and 5 bound First Fit by decomposing each bin's usage
    period [I_i] and charging bounded-length sub-periods to disjoint
    chunks of resource demand.  This module computes the entire
    decomposition on a concrete packing — usage period splits
    [I_i^L / I_i^R], sub-period split-and-merge (Figure 5), reference
    points [t_{i,j}] and reference bins (Figure 6), joint-period
    pairing (Figure 7), auxiliary periods (Figure 8) — and {e checks}
    every feature, lemma and inequality of the proof:

    - Features (f.1)–(f.5);
    - Lemma 1 (no reference-period intersections in Cases I–IV of
      Table 2), Lemma 2, Lemma 3, Lemma 4, Lemma 5;
    - the span identity [span(R) = sum of len(I_i^R)] (equation (5));
    - the cost identity (6);
    - the demand inequalities (8)/(11) in the all-small regime and
      (14)/(15) in general.

    A healthy First Fit packing yields [violations = []]; any violation
    indicates a bug in the simulator, in First Fit, or a genuine
    counterexample to the paper's argument.  The test suite runs this
    checker over hundreds of random workloads. *)

open Dbp_num
open Dbp_core

(** One sub-period [I_{i,j}] with its derived proof objects. *)
type sub_period = {
  bin : int;  (** [i]: the bin whose [I_i^L] was split. *)
  index : int;  (** [j >= 1], temporal order inside [I_i^L]. *)
  period : Interval.t;  (** [I_{i,j}]. *)
  reference_point : Rat.t option;  (** [t_{i,j}], when a placement exists. *)
  reference_bin : int option;  (** [b_dagger(I_{i,j})]. *)
}

type case = I | II | III | IV | V
(** Table 2's classification of a pair of sub-periods. *)

type pairing = {
  joints : (sub_period * sub_period) list;  (** Joint-periods, [i < i']. *)
  singles : sub_period list;
  non_intersecting : sub_period list;  (** The set [I^L_U]. *)
}

type report = {
  packing : Packing.t;
  delta : Rat.t;  (** Minimum interval length [Delta]. *)
  mu : Rat.t;
  left_periods : Interval.t option array;  (** [I_i^L] per bin (None = empty). *)
  right_lengths : Rat.t array;  (** [len(I_i^R)] per bin. *)
  sub_periods : sub_period list;  (** All of [I^L], temporal per bin. *)
  pairing : pairing;
  span : Rat.t;
  cost_left : Rat.t;  (** [sum of len(I_i^L)]. *)
  charge_count : int;
      (** [|I^L_I(J)| + |I^L_I(S)| + |I^L_U|]: the number of disjoint
          demand charges. *)
  demand : Rat.t;  (** [u(R)]. *)
  violations : string list;  (** Empty on a healthy packing. *)
}

val classify : sub_period -> sub_period -> case option
(** Table 2 (None when both [j = 1] and [i] equal — same sub-period or
    impossible combination). *)

val reference_periods_intersect : delta:Rat.t -> sub_period -> sub_period -> bool

val analyse : ?k:Rat.t -> Packing.t -> report
(** Runs the full decomposition and all checks.  Pass [k] to also check
    the all-small-items inequality (8)/(11) (requires every size
    [< W/k]); inequality (14)/(15) is checked regardless.
    @raise Invalid_argument if the packing used zero bins. *)

val upper_bound_inequality_10 : report -> bool
(** Inequality (10): [FF_total <= charge_count * (mu+6) * delta + span]. *)

val demand_inequality_15 : report -> bool
(** Inequality (15): [u(R) >= 1/2 * charge_count * W * delta]. *)

val demand_inequality_11 : report -> k:Rat.t -> bool
(** Inequality (11): [u(R) >= charge_count * (W - W/k) * delta]. *)

val pp_report : Format.formatter -> report -> unit
