open Dbp_num
open Dbp_core
open Dbp_opt

type t = {
  algorithm_cost : Rat.t;
  opt : Opt_total.t;
  ratio_lower : Rat.t;
  ratio_upper : Rat.t;
  exact : bool;
}

let of_costs ~algorithm_cost ~(opt : Opt_total.t) =
  if Rat.sign opt.Opt_total.lower <= 0 then
    invalid_arg "Ratio.of_costs: OPT lower bound is not positive";
  {
    algorithm_cost;
    opt;
    ratio_lower = Rat.div algorithm_cost opt.Opt_total.upper;
    ratio_upper = Rat.div algorithm_cost opt.Opt_total.lower;
    exact = opt.Opt_total.exact;
  }

let measure ?node_budget (packing : Packing.t) =
  let opt = Opt_total.compute ?node_budget packing.Packing.instance in
  of_costs ~algorithm_cost:packing.Packing.total_cost ~opt

let value_exn t =
  if t.exact then t.ratio_upper
  else
    failwith
      (Format.asprintf "Ratio.value_exn: only bounded in [%a, %a]" Rat.pp
         t.ratio_lower Rat.pp t.ratio_upper)

type verdict = Confirmed | Consistent | Violated

let check_bound t ~bound =
  if Rat.(t.ratio_upper <= bound) then Confirmed
  else if Rat.(t.ratio_lower <= bound) then Consistent
  else Violated

let verdict_to_string = function
  | Confirmed -> "confirmed"
  | Consistent -> "consistent"
  | Violated -> "VIOLATED"

let pp fmt t =
  if t.exact then Format.fprintf fmt "ratio=%a" Rat.pp_float t.ratio_upper
  else
    Format.fprintf fmt "ratio in [%a, %a]" Rat.pp_float t.ratio_lower
      Rat.pp_float t.ratio_upper
