(** Budget-constrained repacking over an instance replay.

    Drives the O(open-bins) engine through an instance exactly like
    {!Dbp_core.Simulator.run}, but after the last departure of each
    timestamp the {!Repack_policy} may propose whole-bin-emptying
    migration batches, committed through
    {!Dbp_core.Simulator.Online.migrate} while the {!Budget} can pay.
    Migrated items continue under fresh segment ids (numbered from the
    instance size upward); {!finish} reconstructs the {e effective}
    instance — each migration splits an item into exactly-accounted
    segments — and assembles the packing against it, so
    [Packing.validate] and cost conservation hold exactly.

    Guarantees, exercised by the test suite and the [repack-smoke] CI
    job: a run under {!Budget.zero} (or [No_repack]) makes exactly the
    same engine calls as [Simulator.run] — bit-identical packing,
    exact cost and trace stream; and {!freeze}/{!thaw} resume
    mid-run bit-identically. *)

open Dbp_num
open Dbp_core

type stats = {
  migrations : int;  (** Committed moves. *)
  migrated_volume : Rat.t;  (** Total size moved, exact. *)
  bins_closed_by_repack : int;  (** Sources drained shut. *)
  reclaimed_bin_seconds : Rat.t;
      (** Lower bound on bin-seconds saved: for each drained source,
          the time from the drain to the departure of its
          longest-staying occupant — the interval the bin would have
          stayed open for. *)
  denied_triggers : int;  (** Drains declined for lack of budget. *)
}

type result = { packing : Packing.t; effective : Instance.t; stats : stats }
(** [effective] is physically the input instance when no migration
    happened. *)

type t

val create :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?metrics:Dbp_obs.Metrics.t ->
  ?profile:Dbp_obs.Profile.t ->
  budget:Budget.spec ->
  repack:Repack_policy.t ->
  policy:Policy.t ->
  Instance.t ->
  t
(** [audit] defaults to [false]; the taps are the engine's
    ({!Dbp_core.Simulator.Online.create}).
    @raise Invalid_argument on an invalid budget spec. *)

val step : t -> bool
(** Feeds the next instance event (ticking the budget first) and, after
    the last departure of a timestamp, runs the repack trigger loop.
    Returns [false] when the event stream is exhausted. *)

val drain :
  ?checkpoint_every:int ->
  ?on_checkpoint:(events_done:int -> t -> unit) ->
  t ->
  unit
(** Steps to the end.  [checkpoint_every]/[on_checkpoint] mirror
    {!Dbp_core.Simulator.run}'s periodic checkpoint tap and change no
    packing decision.
    @raise Invalid_argument if [checkpoint_every <= 0]. *)

val events_done : t -> int
val events_total : t -> int

val stats : t -> stats
(** Odometers so far; also embedded in {!finish}'s result. *)

val budget_state : t -> Budget.t

val finish : t -> result
(** @raise Invalid_argument if events remain. *)

val run :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?metrics:Dbp_obs.Metrics.t ->
  ?profile:Dbp_obs.Profile.t ->
  ?budget:Budget.spec ->
  ?repack:Repack_policy.t ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(events_done:int -> t -> unit) ->
  policy:Policy.t ->
  Instance.t ->
  result
(** [create] + [drain] + [finish].  [budget] defaults to
    {!Budget.zero} and [repack] to [No_repack] — the defaults
    reproduce {!Dbp_core.Simulator.run} exactly.  [audit] defaults to
    {!Dbp_core.Audit.enabled_from_env}. *)

(** {1 Checkpointing} *)

module Frozen : sig
  type t = {
    r_engine : Simulator.Online.Frozen.t;
    r_budget : Budget.Frozen.t;
    r_repack : Repack_policy.t;
    r_events_done : int;
    r_next_seg : int;
    r_log : (int * int * Rat.t) list;
        (** Migration log [(old engine id, fresh id, time)],
            chronological — enough to rebuild the id maps and the
            effective instance. *)
    r_bins_closed : int;
    r_reclaimed : Rat.t;
  }
end

val freeze : t -> Frozen.t
(** Captures the runner between events (engine, budget, id maps via
    the log, odometers).
    @raise Dbp_core.Simulator.Invalid_step if the packing policy is
    volatile (cannot checkpoint). *)

val thaw :
  ?audit:bool ->
  ?sink:Dbp_obs.Sink.t ->
  ?metrics:Dbp_obs.Metrics.t ->
  ?profile:Dbp_obs.Profile.t ->
  policy:Policy.t ->
  instance:Instance.t ->
  Frozen.t ->
  t
(** Rebuilds a runner that continues the frozen run bit-identically.
    [instance] and [policy] must be the frozen run's.
    @raise Invalid_argument on an inconsistent image (segment counter
    vs log, non-chronological log, negative counters). *)
