(** Budget-constrained repacking policies.

    Under MinTotal cost (total bin-seconds) the only migration that
    ever pays is one that closes a bin early — moving items between
    bins that both stay open is free to the adversary and costly to
    the budget.  Every policy here therefore plans
    {b whole-bin-emptying batches}: completely drain one source bin
    into the surviving open bins, or propose nothing.

    Policies are pure planners over view snapshots; committing the
    moves (through {!Dbp_core.Simulator.Online.migrate}) and paying
    the {!Budget} is the caller's job ({!Runner}, or the fault
    injector's recovery ladder). *)

open Dbp_num
open Dbp_core

type t =
  | No_repack  (** Never proposes a move. *)
  | Consolidate_sparsest
      (** Drain the emptiest open bin, oldest placements first,
          first-fit into the survivors. *)
  | Ffd_sparsest
      (** Drain the emptiest open bin largest-item-first (first-fit
          decreasing) — fits tight residuals that defeat
          [Consolidate_sparsest]'s arrival order. *)

type move = { mv_item : int; mv_from : int; mv_to : int; mv_size : Rat.t }
(** One planned migration: engine item [mv_item] of size [mv_size]
    from bin [mv_from] to bin [mv_to]. *)

val name : t -> string
(** ["none"], ["consolidate"], ["ffd"] — the CLI names. *)

val of_string : string -> (t, string) result
val all : t list

val plan :
  ?forbidden_src:(int -> bool) ->
  t ->
  budget:Budget.t ->
  views:Bin.view list ->
  items_of:(int -> (int * Rat.t) list) ->
  move list
(** Plans one affordable whole-bin-emptying batch against the open
    fleet [views] (opening order, as {!Dbp_core.Simulator.Online.open_bins}
    returns them).  [items_of bin_id] must list the bin's active
    [(item_id, size)] pairs oldest placement first.  Source selection
    is deterministic: the lowest-level bin, ties to the
    earliest-opened.  Targets are tried first-fit in opening order
    against residuals that account for the batch's own earlier moves.

    [forbidden_src] (default: nothing forbidden) excludes bins from
    {b source} selection only — they remain valid migration targets.
    {!Runner} forbids bins that already received a migration at the
    current instant: re-moving a just-landed item would give it a
    zero-length segment in the effective instance.

    Returns [[]] when there is nothing to gain (fewer than two open
    bins), the drain does not fit, or the budget cannot pay for the
    whole batch — in the last case the budget's denial counter is
    bumped ({!Budget.note_denied}).  Never spends from the budget:
    callers pay per committed move with {!Budget.spend}. *)
