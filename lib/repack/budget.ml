open Dbp_num

(* Recourse budgets for limited-repacking (see DESIGN.md "Repacking"):
   how much migration a run may buy.  Everything is exact [Rat.t]
   arithmetic — a budget decision is a packing decision, and the
   repeatability guarantees (budget=0 bit-identity, checkpoint/resume
   bit-identity) would not survive floating point. *)

type kind = Items | Volume

type mode =
  | Unlimited
  | Total of Rat.t
  | Per_event of Rat.t
  | Token_bucket of { rate : Rat.t; burst : Rat.t }

type spec = { kind : kind; mode : mode }

let zero = { kind = Items; mode = Total Rat.zero }
let unlimited = { kind = Items; mode = Unlimited }

let validate spec =
  match spec.mode with
  | Unlimited -> ()
  | Total limit ->
      if Rat.sign limit < 0 then invalid_arg "Budget: negative total budget"
  | Per_event limit ->
      if Rat.sign limit < 0 then invalid_arg "Budget: negative per-event budget"
  | Token_bucket { rate; burst } ->
      if Rat.sign rate < 0 then invalid_arg "Budget: negative refill rate";
      if Rat.sign burst < 0 then invalid_arg "Budget: negative burst"

(* The largest token balance the mode can ever reach: [Total]/[Per_event]
   start there, and a token bucket starts full and is capped at its
   burst.  A spec whose peak cannot pay for a single move never
   repacks — callers use this to take the exact budget=0 fast path. *)
let peak_tokens spec =
  match spec.mode with
  | Unlimited -> None
  | Total limit -> Some limit
  | Per_event limit -> Some limit
  | Token_bucket { burst; _ } -> Some burst

let never_affords spec =
  match peak_tokens spec with
  | None -> false
  | Some peak -> (
      match spec.kind with
      | Items -> Rat.(peak < Rat.one)
      | Volume -> Rat.sign peak <= 0)

let kind_name = function Items -> "items" | Volume -> "volume"

let spec_to_string spec =
  let k = kind_name spec.kind in
  match spec.mode with
  | Unlimited -> k ^ ":inf"
  | Total limit -> Printf.sprintf "%s:total:%s" k (Rat.to_string limit)
  | Per_event limit -> Printf.sprintf "%s:event:%s" k (Rat.to_string limit)
  | Token_bucket { rate; burst } ->
      Printf.sprintf "%s:bucket:%s:%s" k (Rat.to_string rate)
        (Rat.to_string burst)

let rat_of_string s =
  match Rat.of_string s with
  | r -> Ok r
  | exception (Failure _ | Division_by_zero) ->
      Error (Printf.sprintf "not a rational: '%s'" s)

let spec_of_string s =
  let nonneg what r =
    if Rat.sign r < 0 then
      Error (Printf.sprintf "negative %s budget: %s" what (Rat.to_string r))
    else Ok r
  in
  let with_kind kind parts =
    match parts with
    | [ "inf" ] | [ "unlimited" ] -> Ok { kind; mode = Unlimited }
    | [ "total"; limit ] ->
        Result.bind (rat_of_string limit) (fun r ->
            Result.map (fun r -> { kind; mode = Total r }) (nonneg "total" r))
    | [ "event"; limit ] ->
        Result.bind (rat_of_string limit) (fun r ->
            Result.map
              (fun r -> { kind; mode = Per_event r })
              (nonneg "per-event" r))
    | [ "bucket"; rate; burst ] ->
        Result.bind (rat_of_string rate) (fun rate ->
            Result.bind (nonneg "refill-rate" rate) (fun rate ->
                Result.bind (rat_of_string burst) (fun burst ->
                    Result.map
                      (fun burst ->
                        { kind; mode = Token_bucket { rate; burst } })
                      (nonneg "burst" burst))))
    | [ limit ] ->
        Result.bind (rat_of_string limit) (fun r ->
            Result.map (fun r -> { kind; mode = Total r }) (nonneg "total" r))
    | _ -> Error (Printf.sprintf "malformed budget spec: '%s'" s)
  in
  match String.split_on_char ':' s with
  | "items" :: rest -> with_kind Items rest
  | "volume" :: rest -> with_kind Volume rest
  | rest -> with_kind Items rest

(* ---- live state ------------------------------------------------------ *)

type t = {
  spec : spec;
  mutable tokens : Rat.t;  (* ignored when Unlimited *)
  mutable moves : int;
  mutable moved_volume : Rat.t;
  mutable denied : int;
}

let initial_tokens spec =
  match spec.mode with
  | Unlimited -> Rat.zero
  | Total limit | Per_event limit -> limit
  | Token_bucket { burst; _ } -> burst

let create spec =
  validate spec;
  {
    spec;
    tokens = initial_tokens spec;
    moves = 0;
    moved_volume = Rat.zero;
    denied = 0;
  }

let spec t = t.spec

let tick t =
  match t.spec.mode with
  | Unlimited | Total _ -> ()
  | Per_event limit -> t.tokens <- limit
  | Token_bucket { rate; burst } ->
      t.tokens <- Rat.min burst (Rat.add t.tokens rate)

let cost_of t ~size =
  match t.spec.kind with Items -> Rat.one | Volume -> size

let affords t ~cost =
  match t.spec.mode with Unlimited -> true | _ -> Rat.(cost <= t.tokens)

let note_denied t = t.denied <- t.denied + 1

let spend t ~size =
  let cost = cost_of t ~size in
  (match t.spec.mode with
  | Unlimited -> ()
  | _ ->
      if Rat.(cost > t.tokens) then
        invalid_arg "Budget.spend: insufficient tokens";
      t.tokens <- Rat.sub t.tokens cost);
  t.moves <- t.moves + 1;
  t.moved_volume <- Rat.add t.moved_volume size

let tokens_left t =
  match t.spec.mode with Unlimited -> None | _ -> Some t.tokens

let moves t = t.moves
let moved_volume t = t.moved_volume
let denied t = t.denied

(* ---- checkpoint image ------------------------------------------------ *)

module Frozen = struct
  type t = {
    fb_spec : spec;
    fb_tokens : Rat.t;
    fb_moves : int;
    fb_moved_volume : Rat.t;
    fb_denied : int;
  }
end

let freeze t =
  {
    Frozen.fb_spec = t.spec;
    fb_tokens = t.tokens;
    fb_moves = t.moves;
    fb_moved_volume = t.moved_volume;
    fb_denied = t.denied;
  }

let thaw (f : Frozen.t) =
  validate f.Frozen.fb_spec;
  if Rat.sign f.Frozen.fb_tokens < 0 then
    invalid_arg "Budget.thaw: negative token balance";
  if f.Frozen.fb_moves < 0 then invalid_arg "Budget.thaw: negative move count";
  if Rat.sign f.Frozen.fb_moved_volume < 0 then
    invalid_arg "Budget.thaw: negative moved volume";
  if f.Frozen.fb_denied < 0 then
    invalid_arg "Budget.thaw: negative denial count";
  {
    spec = f.Frozen.fb_spec;
    tokens = f.Frozen.fb_tokens;
    moves = f.Frozen.fb_moves;
    moved_volume = f.Frozen.fb_moved_volume;
    denied = f.Frozen.fb_denied;
  }
