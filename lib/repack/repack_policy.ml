open Dbp_num
open Dbp_core

(* Budget-constrained repacking policies.  Under MinTotal cost the only
   move that ever helps is one that lets a bin CLOSE earlier — shuffling
   items between bins that both stay open changes nothing, since an
   open bin costs the same at any level.  So every policy here proposes
   whole-bin-emptying batches: drain one source bin completely into the
   surviving fleet, or do nothing.  A batch is proposed only if the
   budget can pay for all of it; partial drains are pure waste. *)

type t = No_repack | Consolidate_sparsest | Ffd_sparsest

type move = { mv_item : int; mv_from : int; mv_to : int; mv_size : Rat.t }

let name = function
  | No_repack -> "none"
  | Consolidate_sparsest -> "consolidate"
  | Ffd_sparsest -> "ffd"

let all = [ No_repack; Consolidate_sparsest; Ffd_sparsest ]

let of_string s =
  match String.lowercase_ascii s with
  | "none" | "no" | "off" -> Ok No_repack
  | "consolidate" | "sparsest" -> Ok Consolidate_sparsest
  | "ffd" -> Ok Ffd_sparsest
  | _ ->
      Error
        (Printf.sprintf
           "unknown repack policy '%s' (expected none, consolidate or ffd)" s)

(* The emptiest open bin is the cheapest to drain and the most likely
   to fit elsewhere; ties break to the earliest-opened (views arrive in
   opening order), keeping planning deterministic. *)
let sparsest views =
  match views with
  | [] -> None
  | v :: rest ->
      Some
        (List.fold_left
           (fun best v ->
             if Rat.(v.Bin.bin_level < best.Bin.bin_level) then v else best)
           v rest)

(* First-fit the batch into the survivors against simulated residuals:
   the plan must stay feasible as its own earlier moves land. *)
let place_all ~targets items =
  let residuals = Array.map (fun v -> v.Bin.bin_residual) targets in
  let rec place acc = function
    | [] -> Some (List.rev acc)
    | (item_id, size, from_bin) :: rest ->
        let n = Array.length targets in
        let rec scan i =
          if i >= n then None
          else if Rat.(size <= residuals.(i)) then Some i
          else scan (i + 1)
        in
        (match scan 0 with
        | None -> None
        | Some i ->
            residuals.(i) <- Rat.sub residuals.(i) size;
            place
              ({
                 mv_item = item_id;
                 mv_from = from_bin;
                 mv_to = targets.(i).Bin.bin_id;
                 mv_size = size;
               }
               :: acc)
              rest)
  in
  place [] items

let plan ?(forbidden_src = fun _ -> false) policy ~budget ~views ~items_of =
  match policy with
  | No_repack -> []
  | Consolidate_sparsest | Ffd_sparsest -> (
      match views with
      | [] | [ _ ] -> []
      | views -> (
          (* Bins barred from being the source (e.g. bins that already
             received a migration at this instant) still serve as
             targets below. *)
          let candidates =
            List.filter (fun v -> not (forbidden_src v.Bin.bin_id)) views
          in
          match sparsest candidates with
          | None -> []
          | Some src ->
              let targets =
                Array.of_list
                  (List.filter
                     (fun v -> v.Bin.bin_id <> src.Bin.bin_id)
                     views)
              in
              (* Oldest placement first keeps the batch deterministic;
                 FFD additionally re-sorts by size, largest first. *)
              let items =
                List.map
                  (fun (id, size) -> (id, size, src.Bin.bin_id))
                  (items_of src.Bin.bin_id)
              in
              let items =
                match policy with
                | Ffd_sparsest ->
                    List.stable_sort
                      (fun (id1, s1, _) (id2, s2, _) ->
                        let c = Rat.compare s2 s1 in
                        if c <> 0 then c else Int.compare id1 id2)
                      items
                | _ -> items
              in
              (match place_all ~targets items with
              | None -> []
              | Some moves ->
                  let total_cost =
                    List.fold_left
                      (fun acc mv ->
                        Rat.add acc (Budget.cost_of budget ~size:mv.mv_size))
                      Rat.zero moves
                  in
                  if Budget.affords budget ~cost:total_cost then moves
                  else begin
                    Budget.note_denied budget;
                    []
                  end)))
