open Dbp_num
open Dbp_core

(* Budget-constrained repacking over an instance replay.
   The runner drives the O(open-bins) engine exactly like
   [Simulator.run], but after the last departure of each timestamp it
   lets the repack policy propose whole-bin-emptying migration batches
   and commits every batch the budget can pay for.  Migrated items
   continue under fresh segment ids (>= the instance size); a compact
   migration log [(old engine id, new engine id, time)] is enough to
   reconstruct the effective instance at [finish].

   When no migration ever happens the effective instance IS the input
   instance and every engine call matches [Simulator.run] one for one,
   so a budget=0 run is bit-identical to the plain engine — packing,
   exact cost and trace stream. *)

type stats = {
  migrations : int;
  migrated_volume : Rat.t;
  bins_closed_by_repack : int;
  reclaimed_bin_seconds : Rat.t;
  denied_triggers : int;
}

type result = { packing : Packing.t; effective : Instance.t; stats : stats }

type t = {
  instance : Instance.t;
  n : int;  (* Instance.size; first fresh segment id *)
  policy : Policy.t;
  repack : Repack_policy.t;
  budget : Budget.t;
  enabled : bool;  (* false = exact budget=0 fast path: never plan *)
  online : Simulator.Online.t;
  events : Event.t array;
  mutable idx : int;  (* events fully processed (triggers included) *)
  current : (int, int) Hashtbl.t;  (* orig id -> engine id hosting it *)
  origin : (int, int) Hashtbl.t;  (* segment id (>= n) -> orig id *)
  mutable next_seg : int;
  mutable log : (int * int * Rat.t) list;  (* (old, new, time), newest first *)
  mutable bins_closed : int;
  mutable reclaimed : Rat.t;
}

let orig_of st id = if id < st.n then id else Hashtbl.find st.origin id

let create ?(audit = false) ?sink ?metrics ?profile ~budget ~repack ~policy
    instance =
  Budget.validate budget;
  let online =
    Simulator.Online.create ~audit ?sink ?metrics ?profile
      ?grid:(Simulator.grid_of_instance instance)
      ~policy ~capacity:(Instance.capacity instance) ()
  in
  let n = Instance.size instance in
  {
    instance;
    n;
    policy;
    repack;
    budget = Budget.create budget;
    enabled =
      (match repack with
      | Repack_policy.No_repack -> false
      | _ -> not (Budget.never_affords budget));
    online;
    events = Array.of_list (Event.of_instance instance);
    idx = 0;
    current = Hashtbl.create (max 16 n);
    origin = Hashtbl.create 16;
    next_seg = n;
    log = [];
    bins_closed = 0;
    reclaimed = Rat.zero;
  }

(* Commit one planned batch.  [place_all] guaranteed the whole source
   drains, so the last move must close it; the bin would otherwise
   have stayed open until its last survivor departed, which bounds the
   bin-seconds reclaimed from below. *)
let apply_batch st ~now moves =
  let latest =
    List.fold_left
      (fun acc mv ->
        Rat.max acc
          (Instance.item st.instance (orig_of st mv.Repack_policy.mv_item))
            .Item.departure)
      now moves
  in
  let closed_src = ref false in
  List.iter
    (fun mv ->
      let new_id = st.next_seg in
      st.next_seg <- st.next_seg + 1;
      let closed =
        Simulator.Online.migrate st.online ~now
          ~item_id:mv.Repack_policy.mv_item ~to_bin:mv.Repack_policy.mv_to
          ~new_item_id:new_id
      in
      let orig = orig_of st mv.Repack_policy.mv_item in
      Hashtbl.replace st.current orig new_id;
      Hashtbl.replace st.origin new_id orig;
      st.log <- (mv.Repack_policy.mv_item, new_id, now) :: st.log;
      Budget.spend st.budget ~size:mv.Repack_policy.mv_size;
      if closed then closed_src := true)
    moves;
  if not !closed_src then
    invalid_arg "Runner: repack batch did not empty its source bin";
  st.bins_closed <- st.bins_closed + 1;
  st.reclaimed <- Rat.add st.reclaimed (Rat.sub latest now)

(* Keep draining the sparsest bin while a whole drain is affordable —
   closing one bin can make the next one drainable.  Bins that received
   a migration at this instant are barred from being drained until the
   next instant: re-moving a just-landed item would give it a
   zero-length segment, which the effective instance cannot express. *)
let rec trigger ?(landed = []) st ~now =
  if st.enabled then begin
    let views = Simulator.Online.open_bins st.online in
    let moves =
      Repack_policy.plan
        ~forbidden_src:(fun id -> List.exists (fun b -> b = id) landed)
        st.repack ~budget:st.budget ~views
        ~items_of:(fun bin_id ->
          List.rev (Simulator.Online.active_items_in st.online bin_id))
    in
    match moves with
    | [] -> ()
    | moves ->
        apply_batch st ~now moves;
        let landed =
          List.fold_left
            (fun acc mv -> mv.Repack_policy.mv_to :: acc)
            landed moves
        in
        trigger ~landed st ~now
  end

(* Repack only once all departures of a timestamp have landed:
   same-instant departures would otherwise leave zero-length segments,
   and the fleet is not in its settled state until they drain. *)
let last_departure_of_instant st e =
  match e.Event.kind with
  | Event.Arrival -> false
  | Event.Departure ->
      st.idx >= Array.length st.events
      ||
      let next = st.events.(st.idx) in
      (match next.Event.kind with
      | Event.Arrival -> true
      | Event.Departure -> not (Rat.equal next.Event.time e.Event.time))

let step st =
  if st.idx >= Array.length st.events then false
  else begin
    let e = st.events.(st.idx) in
    st.idx <- st.idx + 1;
    Budget.tick st.budget;
    (match e.Event.kind with
    | Event.Arrival ->
        let item = e.Event.item in
        ignore
          (Simulator.Online.arrive st.online ~now:e.Event.time
             ~size:item.Item.size ~item_id:item.Item.id);
        Hashtbl.replace st.current item.Item.id item.Item.id
    | Event.Departure ->
        let orig = e.Event.item.Item.id in
        let cur =
          match Hashtbl.find_opt st.current orig with
          | Some c -> c
          | None -> orig
        in
        Simulator.Online.depart st.online ~now:e.Event.time ~item_id:cur;
        Hashtbl.remove st.current orig;
        if last_departure_of_instant st e then trigger st ~now:e.Event.time);
    true
  end

let events_done st = st.idx
let events_total st = Array.length st.events

let drain ?checkpoint_every ?on_checkpoint st =
  (match checkpoint_every with
  | Some k when k <= 0 ->
      invalid_arg "Runner.drain: checkpoint_every must be positive"
  | _ -> ());
  let hook () =
    match (checkpoint_every, on_checkpoint) with
    | Some k, Some f when st.idx mod k = 0 -> f ~events_done:st.idx st
    | _ -> ()
  in
  while step st do
    hook ()
  done

let stats st =
  {
    migrations = Budget.moves st.budget;
    migrated_volume = Budget.moved_volume st.budget;
    bins_closed_by_repack = st.bins_closed;
    reclaimed_bin_seconds = st.reclaimed;
    denied_triggers = Budget.denied st.budget;
  }

let budget_state st = st.budget

(* Replay the migration log over the original items: each migration
   ends one segment at the move time and starts the fresh one there,
   inheriting the original departure until a later move cuts it again. *)
let effective_instance st =
  if st.next_seg = st.n then st.instance
  else begin
    let total = st.next_seg in
    let starts = Array.make total Rat.zero in
    let stops = Array.make total Rat.zero in
    let sizes = Array.make total Rat.zero in
    for i = 0 to st.n - 1 do
      let it = Instance.item st.instance i in
      starts.(i) <- it.Item.arrival;
      stops.(i) <- it.Item.departure;
      sizes.(i) <- it.Item.size
    done;
    List.iter
      (fun (old_id, new_id, time) ->
        let it = Instance.item st.instance (orig_of st new_id) in
        stops.(old_id) <- time;
        starts.(new_id) <- time;
        stops.(new_id) <- it.Item.departure;
        sizes.(new_id) <- it.Item.size)
      (List.rev st.log);
    let items =
      List.init total (fun id ->
          Item.make ~id ~size:sizes.(id) ~arrival:starts.(id)
            ~departure:stops.(id))
    in
    Instance.create ~capacity:(Instance.capacity st.instance) items
  end

let finish st =
  if st.idx < Array.length st.events then
    invalid_arg "Runner.finish: events remain — drain the run first";
  let effective = effective_instance st in
  let packing =
    {
      (Simulator.Online.finish st.online ~instance:effective) with
      Packing.policy_name = st.policy.Policy.name;
    }
  in
  { packing; effective; stats = stats st }

let run ?audit ?sink ?metrics ?profile ?(budget = Budget.zero)
    ?(repack = Repack_policy.No_repack) ?checkpoint_every ?on_checkpoint
    ~policy instance =
  let audit =
    match audit with Some a -> a | None -> Audit.enabled_from_env ()
  in
  let st =
    create ~audit ?sink ?metrics ?profile ~budget ~repack ~policy instance
  in
  drain ?checkpoint_every ?on_checkpoint st;
  finish st

(* ---- checkpoint/restore --------------------------------------------- *)

module Frozen = struct
  type t = {
    r_engine : Simulator.Online.Frozen.t;
    r_budget : Budget.Frozen.t;
    r_repack : Repack_policy.t;
    r_events_done : int;
    r_next_seg : int;
    r_log : (int * int * Rat.t) list;  (** Chronological. *)
    r_bins_closed : int;
    r_reclaimed : Rat.t;
  }
end

let freeze st =
  {
    Frozen.r_engine = Simulator.Online.freeze st.online;
    r_budget = Budget.freeze st.budget;
    r_repack = st.repack;
    r_events_done = st.idx;
    r_next_seg = st.next_seg;
    r_log = List.rev st.log;
    r_bins_closed = st.bins_closed;
    r_reclaimed = st.reclaimed;
  }

let thaw ?(audit = false) ?sink ?metrics ?profile ~policy ~instance
    (f : Frozen.t) =
  let n = Instance.size instance in
  let budget = Budget.thaw f.Frozen.r_budget in
  if f.Frozen.r_events_done < 0 then
    invalid_arg "Runner.thaw: negative event count";
  if f.Frozen.r_next_seg <> n + List.length f.Frozen.r_log then
    invalid_arg "Runner.thaw: segment counter disagrees with migration log";
  if f.Frozen.r_bins_closed < 0 then
    invalid_arg "Runner.thaw: negative bins-closed count";
  if Rat.sign f.Frozen.r_reclaimed < 0 then
    invalid_arg "Runner.thaw: negative reclaimed bin-seconds";
  let online =
    Simulator.Online.thaw ~audit ?sink ?metrics ?profile ~policy
      f.Frozen.r_engine
  in
  let events = Array.of_list (Event.of_instance instance) in
  if f.Frozen.r_events_done > Array.length events then
    invalid_arg "Runner.thaw: more events done than the instance has";
  let origin = Hashtbl.create 16 in
  let seg_orig id = if id < n then id else Hashtbl.find origin id in
  List.iter
    (fun (old_id, new_id, _) ->
      if new_id < n then
        invalid_arg "Runner.thaw: migration log reuses an instance id";
      let orig =
        match seg_orig old_id with
        | orig -> orig
        | exception Not_found ->
            invalid_arg "Runner.thaw: migration log is not chronological"
      in
      Hashtbl.replace origin new_id orig)
    f.Frozen.r_log;
  let current = Hashtbl.create (max 16 n) in
  List.iter
    (fun (b : Simulator.Online.Frozen.bin) ->
      match b.Simulator.Online.Frozen.b_closed with
      | Some _ -> ()
      | None ->
          List.iter
            (fun (id, _) -> Hashtbl.replace current (seg_orig id) id)
            b.Simulator.Online.Frozen.b_active)
    f.Frozen.r_engine.Simulator.Online.Frozen.s_bins;
  {
    instance;
    n;
    policy;
    repack = f.Frozen.r_repack;
    budget;
    enabled =
      (match f.Frozen.r_repack with
      | Repack_policy.No_repack -> false
      | _ -> not (Budget.never_affords (Budget.spec budget)));
    online;
    events;
    idx = f.Frozen.r_events_done;
    current;
    origin;
    next_seg = f.Frozen.r_next_seg;
    log = List.rev f.Frozen.r_log;
    bins_closed = f.Frozen.r_bins_closed;
    reclaimed = f.Frozen.r_reclaimed;
  }
