(** Recourse budgets for limited repacking.

    A budget bounds how much migration a repacker may perform — the
    recourse axis of the cost/recourse trade-off mapped by experiment
    E20.  Two cost metrics ({!kind}): [Items] charges one token per
    item moved (the "number of moved items" recourse of the
    limited-repacking literature), [Volume] charges the item's size
    (moved volume / migration bytes).  Four replenishment disciplines
    ({!mode}): [Unlimited], a [Total] allowance for the whole run, a
    [Per_event] allowance that resets at every instance event, and an
    amortized [Token_bucket] that accrues [rate] tokens per event up
    to [burst].

    All accounting is exact {!Dbp_num.Rat} arithmetic and the state is
    checkpointable ({!freeze}/{!thaw}), so budget-constrained runs
    keep the engine's bit-identical replay guarantees. *)

open Dbp_num

type kind = Items | Volume

type mode =
  | Unlimited
  | Total of Rat.t
  | Per_event of Rat.t
  | Token_bucket of { rate : Rat.t; burst : Rat.t }

type spec = { kind : kind; mode : mode }

val zero : spec
(** [{kind = Items; mode = Total 0}] — no recourse at all.  A run
    under {!zero} is bit-identical to one without a repacker. *)

val unlimited : spec
(** [{kind = Items; mode = Unlimited}] — free repacking. *)

val validate : spec -> unit
(** @raise Invalid_argument on a negative allowance, rate or burst. *)

val never_affords : spec -> bool
(** True iff the spec can never pay for any move (its peak token
    balance is below the cheapest possible cost).  Repackers use this
    to take the exact budget=0 fast path: no planning, no trace
    perturbation. *)

val spec_to_string : spec -> string
(** Canonical form, e.g. ["items:total:8"], ["volume:event:1/2"],
    ["items:bucket:1/4:8"] (rate then burst), ["items:inf"].
    {!spec_of_string} inverts it. *)

val spec_of_string : string -> (spec, string) result
(** Parses {!spec_to_string} plus the CLI shorthands: a bare rational
    ["8"] means [items:total:8], ["inf"]/["unlimited"] mean
    [items:inf], and the kind prefix may be dropped (defaults to
    [items]).  Rejects negative amounts. *)

(** {1 Live state} *)

type t

val create : spec -> t
(** Fresh budget: [Total]/[Per_event] start with their allowance, a
    token bucket starts full (at [burst]).
    @raise Invalid_argument on an invalid spec. *)

val spec : t -> spec

val tick : t -> unit
(** Advances one instance event: resets a [Per_event] allowance,
    accrues [rate] (capped at [burst]) into a token bucket.  No-op for
    [Unlimited]/[Total]. *)

val cost_of : t -> size:Rat.t -> Rat.t
(** Token cost of moving one item of [size]: 1 under [Items], [size]
    under [Volume]. *)

val affords : t -> cost:Rat.t -> bool
(** Whether the current balance covers [cost] (always true for
    [Unlimited]).  Pure — safe to probe speculatively while
    planning. *)

val spend : t -> size:Rat.t -> unit
(** Pays for one committed move and records it in the
    {!moves}/{!moved_volume} odometers.
    @raise Invalid_argument if the balance cannot cover it — callers
    must gate on {!affords}. *)

val note_denied : t -> unit
(** Records a repacking opportunity that was declined for lack of
    budget (the {!denied} counter). *)

val tokens_left : t -> Rat.t option
(** Current balance; [None] for [Unlimited]. *)

val moves : t -> int
val moved_volume : t -> Rat.t
val denied : t -> int

(** {1 Checkpointing} *)

module Frozen : sig
  type t = {
    fb_spec : spec;
    fb_tokens : Rat.t;
    fb_moves : int;
    fb_moved_volume : Rat.t;
    fb_denied : int;
  }
end

val freeze : t -> Frozen.t

val thaw : Frozen.t -> t
(** @raise Invalid_argument on an invalid spec or negative
    balances/counters. *)
