(** The Theorem 2 construction (Figure 3): Best Fit has no bounded
    competitive ratio for any fixed max/min interval length ratio [mu].

    The adaptive adversary keeps [k] bins alive forever while the
    active volume stays below one bin:

    - time 0: [k^2 M] items of size [eps = 1/(kM)] (where
      [M = k(n+1)+1]) arrive; Best Fit fills [k] bins.
    - time [delta0 = 1] (the minimum interval length): bin [b_i] is
      trimmed to level [1/k - i*eps], making the levels pairwise
      distinct with [b_1] fullest.
    - iteration [j = 1..n]: inside a shrinking window just before
      [j*mu], group [m = 1..k] of [M - (jk + m)] items arrives; Best
      Fit sends the whole group to the currently fullest bin — [b_m] —
      and then the adversary departs [b_m]'s old items, leaving level
      [1/k - (jk+m)*eps].  Every bin stays open, yet the total active
      volume is below 1 outside the windows.
    - after iteration [n], the survivors depart at [n*mu + 1].

    Window offsets shrink geometrically across iterations so that every
    item interval length lies in [[1, mu]] {e exactly} (the paper
    treats the window width [delta] as an infinitesimal; see
    DESIGN.md).  Best Fit pays [k*(n*mu + 1)]; the explicit offline
    packing pays at most [k + n*mu + sum of window widths], so the
    measured ratio grows linearly in [k] for [n ~ k], reproducing
    inequality (2). *)

open Dbp_num
open Dbp_core

type result = {
  instance : Instance.t;
  packing : Packing.t;
  algorithm_cost : Rat.t;
  opt_upper : Rat.t;  (** Cost of the explicit offline packing. *)
  ratio_lower : Rat.t;
  items_total : int;
  mu_realised : Rat.t;  (** Measured max/min interval ratio — equals [mu]. *)
}

val run :
  ?policy:Policy.t ->
  ?delta:Rat.t ->
  k:int ->
  mu:Rat.t ->
  iterations:int ->
  unit ->
  result
(** Plays against [policy] (default Best Fit — the construction
    verifies each group lands on the expected bin and raises
    [Failure] if the policy deviates from Best Fit's forced behaviour).
    [delta] is the final window width (default [min (mu-1) (1/2)] ...
    capped to keep all interval lengths within [[1, mu]]).
    @raise Invalid_argument if [k < 2], [iterations < 1] or [mu <= 1]. *)

val paper_iterations : k:int -> mu:Rat.t -> int
(** The [n >= (k-1)/mu] threshold from the paper, past which the ratio
    provably exceeds [k/2]. *)
