open Dbp_num
open Dbp_core

type record = {
  size : Rat.t;
  arrival : Rat.t;
  mutable departure : Rat.t option;
}

(* Growable array of records, indexed by item id. *)
type t = {
  online : Simulator.Online.t;
  policy_name : string;
  mutable items : record option array;
  mutable count : int;
  capacity : Rat.t;
}

let create ~policy ~capacity =
  {
    online = Simulator.Online.create ~policy ~capacity ();
    policy_name = policy.Policy.name;
    items = Array.make 64 None;
    count = 0;
    capacity;
  }

let online t = t.online

let ensure_room t =
  if t.count >= Array.length t.items then begin
    let bigger = Array.make (2 * Array.length t.items) None in
    Array.blit t.items 0 bigger 0 t.count;
    t.items <- bigger
  end

let record_exn t id =
  if id < 0 || id >= t.count then invalid_arg "Recorder: unknown item id";
  match t.items.(id) with
  | Some r -> r
  | None -> assert false

let arrive t ~now ~size =
  ensure_room t;
  let id = t.count in
  ignore (Simulator.Online.arrive t.online ~now ~size ~item_id:id);
  t.items.(id) <- Some { size; arrival = now; departure = None };
  t.count <- t.count + 1;
  id

let arrive_many t ~now ~size ~count =
  List.init count (fun _ -> arrive t ~now ~size)

let depart t ~now id =
  let record = record_exn t id in
  (match record.departure with
  | Some _ -> invalid_arg "Recorder.depart: item already departed"
  | None -> ());
  Simulator.Online.depart t.online ~now ~item_id:id;
  record.departure <- Some now

let depart_all_active t ~now =
  for id = 0 to t.count - 1 do
    match record_exn t id with
    | { departure = Some _; _ } -> ()
    | { departure = None; _ } -> depart t ~now id
  done

let bin_of t id =
  match Simulator.Online.bin_of_item t.online id with
  | Some b -> b
  | None -> invalid_arg "Recorder.bin_of: item not active"

let active_ids_in_bin t bin_id =
  Simulator.Online.active_items_in t.online bin_id
  |> List.rev_map fst

let finish t =
  let items =
    List.init t.count (fun id ->
        let r = record_exn t id in
        match r.departure with
        | None -> invalid_arg "Recorder.finish: item still active"
        | Some departure ->
            Item.make ~id ~size:r.size ~arrival:r.arrival ~departure)
  in
  let instance = Instance.create ~capacity:t.capacity items in
  let packing = Simulator.Online.finish t.online ~instance in
  (instance, { packing with Packing.policy_name = t.policy_name })
