(** Adaptive-adversary harness.

    An adaptive adversary plays the competitive-analysis game: it feeds
    arrivals/departures into a live {!Dbp_core.Simulator.Online} run,
    {e observing} the algorithm's placements before deciding the next
    move.  The recorder tracks every item it injected so that, at the
    end of the game, the realised instance (with the departure times
    the adversary chose) and the algorithm's packing can be assembled
    for analysis. *)

open Dbp_num
open Dbp_core

type t

val create : policy:Policy.t -> capacity:Rat.t -> t

val arrive : t -> now:Rat.t -> size:Rat.t -> int
(** Injects an arrival; allocates the next sequential item id and
    returns it.  The bin the algorithm chose is observable through
    {!online}. *)

val arrive_many : t -> now:Rat.t -> size:Rat.t -> count:int -> int list
(** [count] identical simultaneous arrivals (in submission order). *)

val depart : t -> now:Rat.t -> int -> unit
(** Departs an item previously injected and still active. *)

val depart_all_active : t -> now:Rat.t -> unit

val online : t -> Simulator.Online.t
(** The live run, for observing bins and placements. *)

val bin_of : t -> int -> int
(** Bin currently holding the item.
    @raise Invalid_argument if the item is not active. *)

val active_ids_in_bin : t -> int -> int list
(** Active item ids in a bin, in insertion order. *)

val finish : t -> Instance.t * Packing.t
(** Ends the game: every injected item must have departed.  Returns the
    realised instance and the algorithm's packing of it (which
    satisfies [Packing.validate]). *)
