open Dbp_num
open Dbp_core

type result = {
  instance : Instance.t;
  packing : Packing.t;
  algorithm_cost : Rat.t;
  opt_upper : Rat.t;
  ratio_lower : Rat.t;
  items_total : int;
  mu_realised : Rat.t;
}

let paper_iterations ~k ~mu =
  max 1 (Rat.ceil (Rat.div (Rat.of_int (k - 1)) mu))

(* Window slot offsets (relative to the iteration anchor j*mu, as a
   positive "time before the anchor"): within iteration j the window
   has width delta_j = delta * 2^(j - n); group m arrives at offset
   x_a(m) * delta_j and bin m's old items depart at x_d(m) * delta_j,
   with 1 >= x_a(1) > x_d(1) > ... > x_a(k) > x_d(k) > 0.  The
   geometric shrinking makes every cross-iteration interval length
   <= mu exactly (see the .mli). *)
let x_arrival ~k m = Rat.make (2 * (k - m + 1)) ((2 * k) + 1)
let x_departure ~k m = Rat.make ((2 * (k - m + 1)) - 1) ((2 * k) + 1)

let run ?(policy = Best_fit.policy) ?delta ~k ~mu ~iterations () =
  if k < 2 then invalid_arg "Bestfit_unbounded.run: k < 2";
  if iterations < 1 then invalid_arg "Bestfit_unbounded.run: iterations < 1";
  (* window widths shrink as delta * 2^(j - n): cap n so the shift and
     the item count k^2 * (k(n+1)+1) stay in native-integer range *)
  if iterations > 50 then invalid_arg "Bestfit_unbounded.run: iterations > 50";
  if Rat.(mu <= Rat.one) then invalid_arg "Bestfit_unbounded.run: mu <= 1";
  let n = iterations in
  let delta =
    match delta with
    | Some d ->
        if Rat.sign d <= 0 || Rat.(d > Rat.sub mu Rat.one) then
          invalid_arg "Bestfit_unbounded.run: need 0 < delta <= mu - 1"
        else d
    | None -> Rat.min (Rat.sub mu Rat.one) (Rat.make 1 2)
  in
  let capacity = Rat.one in
  let m_param = (k * (n + 1)) + 1 in
  let eps = Rat.make 1 (k * m_param) in
  (* delta_j = delta * 2^(j-n) for j = 1..n. *)
  let delta_of_iter j =
    let shift = n - j in
    Rat.div delta (Rat.of_int (1 lsl shift))
  in
  let adv = Recorder.create ~policy ~capacity in
  (* Phase 1: k^2 * M items of size eps at time 0 fill k bins. *)
  ignore
    (Recorder.arrive_many adv ~now:Rat.zero ~size:eps ~count:(k * k * m_param));
  let bins = Simulator.Online.open_bins (Recorder.online adv) in
  if List.length bins <> k then
    failwith
      (Printf.sprintf "Bestfit_unbounded: expected %d bins, policy opened %d" k
         (List.length bins));
  let bin_ids = Array.of_list (List.map (fun (v : Bin.view) -> v.Bin.bin_id) bins) in
  (* current.(m-1): the items presently meant to stay in b_m. *)
  let current = Array.make k [] in
  (* Phase 2: at time 1, trim bin i to M - i items (level 1/k - i*eps). *)
  let one = Rat.one in
  Array.iteri
    (fun idx bin_id ->
      let i = idx + 1 in
      let ids = Recorder.active_ids_in_bin adv bin_id in
      let keep_count = m_param - i in
      let rec split kept rest count =
        match rest with
        | [] -> (kept, [])
        | _ when count = 0 -> (kept, rest)
        | id :: tl -> split (id :: kept) tl (count - 1)
      in
      let kept, extras = split [] ids keep_count in
      List.iter (fun id -> Recorder.depart adv ~now:one id) extras;
      current.(idx) <- kept)
    bin_ids;
  (* Phase 3: iterations. *)
  for j = 1 to n do
    let anchor = Rat.mul_int mu j in
    let dj = delta_of_iter j in
    for m = 1 to k do
      let t_arr = Rat.sub anchor (Rat.mul (x_arrival ~k m) dj) in
      let t_dep = Rat.sub anchor (Rat.mul (x_departure ~k m) dj) in
      let count = m_param - ((j * k) + m) in
      assert (count >= 1);
      let fresh = Recorder.arrive_many adv ~now:t_arr ~size:eps ~count in
      (* Best Fit must have sent the whole group to b_m. *)
      let expected = bin_ids.(m - 1) in
      List.iter
        (fun id ->
          let got = Recorder.bin_of adv id in
          if got <> expected then
            failwith
              (Printf.sprintf
                 "Bestfit_unbounded: iteration %d group %d item went to bin \
                  %d, expected %d (policy is not Best Fit?)"
                 j m got expected))
        fresh;
      (* Old items of b_m depart, leaving level 1/k - (jk+m)*eps. *)
      List.iter (fun id -> Recorder.depart adv ~now:t_dep id) current.(m - 1);
      current.(m - 1) <- fresh
    done
  done;
  (* Phase 4: survivors depart at n*mu + 1 (length in [1, 1 + delta]). *)
  let t_end = Rat.add (Rat.mul_int mu n) Rat.one in
  Recorder.depart_all_active adv ~now:t_end;
  let instance, packing = Recorder.finish adv in
  let algorithm_cost = packing.Packing.total_cost in
  (* Explicit offline packing: k bins on [0,1]; 1 bin on [1, n*mu + 1];
     1 extra bin inside each arrival window (width delta_j). *)
  let windows = ref Rat.zero in
  for j = 1 to n do
    windows := Rat.add !windows (delta_of_iter j)
  done;
  let opt_upper =
    Rat.sum [ Rat.of_int k; Rat.mul_int mu n; !windows ]
  in
  {
    instance;
    packing;
    algorithm_cost;
    opt_upper;
    ratio_lower = Rat.div algorithm_cost opt_upper;
    items_total = Instance.size instance;
    mu_realised = Instance.mu instance;
  }
