(** The Theorem 1 construction (Figure 2): a lower bound of [mu] on the
    competitive ratio of {e any} Any Fit algorithm.

    With bin capacity 1, [k^2] items of size [1/k] arrive at time 0 —
    any Any Fit algorithm opens exactly [k] bins and fills them full.
    At time [delta] (the minimum interval length) the adversary departs
    all but one item {e per opened bin}, so [k] bins each hold a single
    item of size [1/k] until everything leaves at [mu * delta].  The
    algorithm pays [k * mu * delta]; the optimum repacks the stragglers
    into one bin and pays [k * delta + (mu - 1) * delta], giving the
    exact ratio [k * mu / (k + mu - 1) -> mu] as [k] grows. *)

open Dbp_num
open Dbp_core

type result = {
  instance : Instance.t;
  packing : Packing.t;
  algorithm_cost : Rat.t;  (** Measured [AF_total(R)], C = 1. *)
  opt_upper : Rat.t;
      (** Cost of the explicit offline packing in the proof:
          [k*delta + (mu-1)*delta].  An upper bound on [OPT_total]
          (and exactly [OPT_total] for this instance). *)
  ratio_lower : Rat.t;  (** [algorithm_cost / opt_upper]. *)
}

val closed_form_ratio : k:int -> mu:Rat.t -> Rat.t
(** [k * mu / (k + mu - 1)], the ratio equation (1) of the paper. *)

val run : ?policy:Policy.t -> ?delta:Rat.t -> k:int -> mu:Rat.t -> unit -> result
(** Plays the game against [policy] (default First Fit).  [delta]
    (default 1) is the minimum interval length; [mu >= 1] the target
    interval ratio; [k >= 1] the construction parameter.
    @raise Invalid_argument on [k < 1] or [mu < 1].

    For any Any Fit policy the measured [ratio_lower] equals
    {!closed_form_ratio} exactly (asserted by the test suite). *)
