open Dbp_num
open Dbp_core

type result = {
  instance : Instance.t;
  packing : Packing.t;
  algorithm_cost : Rat.t;
  opt_upper : Rat.t;
  ratio_lower : Rat.t;
}

let closed_form_ratio ~k ~mu =
  Rat.div (Rat.mul_int mu k) (Rat.add (Rat.of_int k) (Rat.sub mu Rat.one))

let run ?(policy = First_fit.policy) ?(delta = Rat.one) ~k ~mu () =
  if k < 1 then invalid_arg "Anyfit_lb.run: k < 1";
  if Rat.(mu < Rat.one) then invalid_arg "Anyfit_lb.run: mu < 1";
  if Rat.sign delta <= 0 then invalid_arg "Anyfit_lb.run: delta <= 0";
  let capacity = Rat.one in
  let size = Rat.make 1 k in
  let adv = Recorder.create ~policy ~capacity in
  (* Phase 1: k^2 items of size 1/k at time 0. *)
  ignore (Recorder.arrive_many adv ~now:Rat.zero ~size ~count:(k * k));
  (* Phase 2 (adaptive): at delta, keep exactly one item per opened
     bin and depart the rest. *)
  let open_bins = Simulator.Online.open_bins (Recorder.online adv) in
  List.iter
    (fun (v : Bin.view) ->
      match Recorder.active_ids_in_bin adv v.bin_id with
      | [] -> ()
      | _keep :: extras ->
          List.iter (fun id -> Recorder.depart adv ~now:delta id) extras)
    open_bins;
  (* Phase 3: stragglers leave at mu * delta. *)
  Recorder.depart_all_active adv ~now:(Rat.mul mu delta);
  let instance, packing = Recorder.finish adv in
  let algorithm_cost = packing.Packing.total_cost in
  (* Offline: k full bins on [0, delta], then one bin holding the k
     stragglers (total size 1) on [delta, mu delta]. *)
  let opt_upper =
    Rat.add
      (Rat.mul_int delta k)
      (Rat.mul (Rat.sub mu Rat.one) delta)
  in
  {
    instance;
    packing;
    algorithm_cost;
    opt_upper;
    ratio_lower = Rat.div algorithm_cost opt_upper;
  }
