(** Offline non-migratory MinTotal heuristics: build a feasible group
    partition with full knowledge of the item intervals.

    These are the practical "plan tomorrow's fleet from today's
    reservations" algorithms; {!Offline_exact} gives the true optimum
    on small instances. *)

open Dbp_num
open Dbp_core

type solution = { groups : Group.t list; cost : Rat.t }

val first_fit_by_arrival : Instance.t -> solution
(** Items in arrival order into the first feasible group — the offline
    analogue of online First Fit.  Not identical to it: a group whose
    members have all departed stays joinable (online, that bin closed
    forever), so this variant can bridge activity gaps — sometimes
    saving a bin, sometimes paying fresh span an online bin would have
    shared.  Neither dominates the other; E12 measures the difference. *)

val least_span_increase : Instance.t -> solution
(** Items in arrival order; each goes to the feasible group whose span
    grows the least (ties to the oldest group), so items nest into
    already-paid-for time. *)

val longest_first : Instance.t -> solution
(** Items by decreasing interval length, first-fit into groups: long
    items frame the bins, short ones fill the gaps — the
    duration-aware analogue of FFD. *)

val best : Instance.t -> solution
(** The cheapest of the above. *)

val validate : Instance.t -> solution -> (unit, string) result
(** Partition exactness, per-group feasibility, cost consistency. *)
