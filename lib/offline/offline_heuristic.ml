open Dbp_num
open Dbp_core

type solution = { groups : Group.t list; cost : Rat.t }

let cost_of groups = Rat.sum (List.map Group.span groups)
let solution groups = { groups; cost = cost_of groups }

let pack ~order ~choose instance =
  let capacity = Instance.capacity instance in
  let items = order (Array.to_list (Instance.items instance)) in
  let place groups item =
    match choose groups item with
    | Some g ->
        List.map (fun g' -> if g' == g then Group.add g item else g') groups
    | None -> groups @ [ Group.add (Group.empty ~capacity) item ]
  in
  solution (List.fold_left place [] items)

let first_feasible groups item =
  List.find_opt (fun g -> Group.fits g item) groups

let by_arrival items = List.sort Item.compare items

let first_fit_by_arrival instance =
  pack ~order:by_arrival ~choose:first_feasible instance

let least_span_increase instance =
  let choose groups item =
    let candidates = List.filter (fun g -> Group.fits g item) groups in
    match candidates with
    | [] -> None
    | g0 :: rest ->
        let better g best =
          Rat.(Group.span_increase g item < Group.span_increase best item)
        in
        Some
          (List.fold_left
             (fun best g -> if better g best then g else best)
             g0 rest)
  in
  pack ~order:by_arrival ~choose instance

let longest_first instance =
  let order items =
    List.sort
      (fun (a : Item.t) (b : Item.t) ->
        let c = Rat.compare (Item.length b) (Item.length a) in
        if c <> 0 then c else Item.compare a b)
      items
  in
  pack ~order ~choose:first_feasible instance

let best instance =
  let candidates =
    [
      first_fit_by_arrival instance;
      least_span_increase instance;
      longest_first instance;
    ]
  in
  List.fold_left
    (fun acc s -> if Rat.(s.cost < acc.cost) then s else acc)
    (List.hd candidates) (List.tl candidates)

let validate instance { groups; cost } =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let capacity = Instance.capacity instance in
  let assigned =
    List.concat_map (fun g -> List.map (fun (r : Item.t) -> r.id) (Group.items g)) groups
  in
  let sorted = List.sort Int.compare assigned in
  let expected = List.init (Instance.size instance) Fun.id in
  if sorted <> expected then fail "not a partition of the items"
  else if
    List.exists (fun g -> Rat.(Group.peak_load g > capacity)) groups
  then fail "a group exceeds capacity"
  else if not (Rat.equal cost (cost_of groups)) then
    fail "cost does not match the groups"
  else Ok ()
