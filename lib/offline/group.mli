(** Item groups: the unit of {e offline, non-migratory} MinTotal
    packing.

    With full knowledge of arrivals and departures but no migration, a
    MinTotal solution is exactly a partition of the items into
    {e feasible groups} — sets whose total active size never exceeds
    the capacity — and its cost is the sum over groups of the group's
    {e span} (a bin is open only while some member is active; if a
    group's activity has a gap the bin closes and a fresh one opens,
    which costs the same as one bin with a gap).  This module maintains
    a group incrementally with exact feasibility and span accounting. *)

open Dbp_num
open Dbp_core

type t

val empty : capacity:Rat.t -> t
val of_items : capacity:Rat.t -> Item.t list -> t
(** @raise Invalid_argument if the items are jointly infeasible. *)

val items : t -> Item.t list
val size : t -> int
val span : t -> Rat.t
(** Measure of the union of member intervals: the group's bin cost. *)

val fits : t -> Item.t -> bool
(** Whether adding the item keeps the peak concurrent load within
    capacity. *)

val add : t -> Item.t -> t
(** Persistent add.  @raise Invalid_argument if it does not fit. *)

val span_increase : t -> Item.t -> Rat.t
(** [span (add t item) - span t] without building the new group. *)

val peak_load : t -> Rat.t
(** Maximum concurrent total size over time (0 for the empty group). *)
