(** Exact offline non-migratory MinTotal packing, by branch and bound
    over group partitions.

    This is the optimum an omniscient dispatcher that still cannot
    migrate items can reach.  It sits strictly between the paper's
    repacking optimum [OPT_total] (which may teleport items at every
    instant) and any online algorithm:

    [OPT_total  <=  offline non-migratory OPT  <=  A_total] for every
    online algorithm A — both gaps can be strict, and experiment E12
    measures them.

    Branching follows arrival order (item into each feasible existing
    group, then a fresh group); nodes are pruned with
    [current cost + measure(remaining activity not yet covered)] and
    the global demand bound against the incumbent (initialised from
    {!Offline_heuristic.best}). *)

open Dbp_num
open Dbp_core

type result = {
  lower : Rat.t;  (** Certified lower bound on the offline optimum. *)
  upper : Rat.t;  (** Cost of the best partition found. *)
  exact : bool;
  solution : Offline_heuristic.solution;  (** Achieves [upper]. *)
  nodes : int;  (** Search nodes explored. *)
}

val solve : ?node_budget:int -> Instance.t -> result
(** [node_budget] defaults to 500_000. *)

val solve_exn : ?node_budget:int -> Instance.t -> Rat.t
(** The exact optimum.  @raise Failure if the budget trips first. *)
