open Dbp_num
open Dbp_core

type result = {
  lower : Rat.t;
  upper : Rat.t;
  exact : bool;
  solution : Offline_heuristic.solution;
  nodes : int;
}

exception Budget_exhausted

let covered_of_groups groups =
  Interval.merge_overlapping
    (List.concat_map
       (fun g -> List.map Item.interval (Group.items g))
       groups)

let solve ?(node_budget = 500_000) instance =
  let capacity = Instance.capacity instance in
  let items =
    Array.of_list
      (List.sort Item.compare (Array.to_list (Instance.items instance)))
  in
  let n = Array.length items in
  (* Suffix activity unions, for the uncovered-span prune. *)
  let suffix_cover = Array.make (n + 1) [] in
  for i = n - 1 downto 0 do
    suffix_cover.(i) <-
      Interval.merge_overlapping
        (Item.interval items.(i) :: suffix_cover.(i + 1))
  done;
  let global_lower = Dbp_opt.Bounds.opt_lower_bound instance in
  let incumbent = ref (Offline_heuristic.best instance) in
  let nodes = ref 0 in
  let rec branch i groups cost =
    incr nodes;
    if !nodes > node_budget then raise Budget_exhausted;
    if i >= n then begin
      if Rat.(cost < !incumbent.Offline_heuristic.cost) then
        incumbent := { Offline_heuristic.groups; cost }
    end
    else begin
      let uncovered =
        Interval.measure_difference suffix_cover.(i) (covered_of_groups groups)
      in
      let lb = Rat.max (Rat.add cost uncovered) global_lower in
      if Rat.(lb >= !incumbent.Offline_heuristic.cost) then ()
      else begin
        let item = items.(i) in
        (* existing groups, cheapest span increase first *)
        let candidates =
          List.filter (fun g -> Group.fits g item) groups
          |> List.map (fun g -> (Group.span_increase g item, g))
          |> List.sort (fun (a, _) (b, _) -> Rat.compare a b)
        in
        List.iter
          (fun (inc, g) ->
            let groups' =
              List.map (fun g' -> if g' == g then Group.add g item else g') groups
            in
            branch (i + 1) groups' (Rat.add cost inc))
          candidates;
        (* a fresh group *)
        let fresh = Group.add (Group.empty ~capacity) item in
        branch (i + 1) (fresh :: groups) (Rat.add cost (Group.span fresh))
      end
    end
  in
  let exact =
    match branch 0 [] Rat.zero with
    | () -> true
    | exception Budget_exhausted -> false
  in
  let upper = !incumbent.Offline_heuristic.cost in
  {
    lower = (if exact then upper else global_lower);
    upper;
    exact;
    solution = !incumbent;
    nodes = !nodes;
  }

let solve_exn ?node_budget instance =
  let r = solve ?node_budget instance in
  if r.exact then r.upper
  else
    failwith
      (Format.asprintf "Offline_exact.solve_exn: budget exhausted in [%a, %a]"
         Rat.pp r.lower Rat.pp r.upper)
