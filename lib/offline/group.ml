open Dbp_num
open Dbp_core

type t = {
  capacity : Rat.t;
  members : Item.t list;
  covered : Interval.t list;  (* disjoint, sorted: the union of intervals *)
  span : Rat.t;
}

let empty ~capacity =
  if Rat.sign capacity <= 0 then invalid_arg "Group.empty: capacity <= 0";
  { capacity; members = []; covered = []; span = Rat.zero }

let items t = t.members
let size t = List.length t.members
let span t = t.span

(* Sweep the level over the events of [extra :: members] and report the
   peak.  Events sorted with departures before arrivals at ties, which
   matches the simulator's convention. *)
let peak_with t extra =
  let deltas =
    List.concat_map
      (fun (r : Item.t) ->
        [ (r.arrival, r.size); (r.departure, Rat.neg r.size) ])
      (match extra with None -> t.members | Some r -> r :: t.members)
  in
  let sorted =
    List.sort
      (fun (t1, s1) (t2, s2) ->
        let c = Rat.compare t1 t2 in
        if c <> 0 then c else Rat.compare s1 s2)
      deltas
  in
  let level = ref Rat.zero and peak = ref Rat.zero in
  List.iter
    (fun (_, s) ->
      level := Rat.add !level s;
      if Rat.(!level > !peak) then peak := !level)
    sorted;
  !peak

let peak_load t = peak_with t None
let fits t item = Rat.(peak_with t (Some item) <= t.capacity)

let covered_with t (item : Item.t) =
  Interval.merge_overlapping (Item.interval item :: t.covered)

let span_increase t item =
  let merged = covered_with t item in
  Rat.sub (Rat.sum (List.map Interval.length merged)) t.span

let add t item =
  if not (fits t item) then invalid_arg "Group.add: item does not fit";
  let covered = covered_with t item in
  {
    t with
    members = item :: t.members;
    covered;
    span = Rat.sum (List.map Interval.length covered);
  }

let of_items ~capacity items =
  List.fold_left add (empty ~capacity) items
