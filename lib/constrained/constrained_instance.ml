open Dbp_num
open Dbp_core

type region = string

type t = {
  instance : Instance.t;
  regions : region array;
  allowed : region list array;
}

let create ~regions ~allowed instance =
  if regions = [] then invalid_arg "Constrained_instance.create: no regions";
  let sorted = List.sort_uniq String.compare regions in
  if List.length sorted <> List.length regions then
    invalid_arg "Constrained_instance.create: duplicate regions";
  if List.length allowed <> Instance.size instance then
    invalid_arg "Constrained_instance.create: allowed/items length mismatch";
  List.iteri
    (fun i allow ->
      if allow = [] then
        invalid_arg
          (Printf.sprintf
             "Constrained_instance.create: item %d has no allowed region" i);
      List.iter
        (fun g ->
          if not (List.mem g regions) then
            invalid_arg
              (Printf.sprintf
                 "Constrained_instance.create: item %d allows unknown region %s"
                 i g))
        allow)
    allowed;
  {
    instance;
    regions = Array.of_list regions;
    allowed = Array.of_list (List.map (List.sort_uniq String.compare) allowed);
  }

let unconstrained ~regions instance =
  create ~regions
    ~allowed:(List.init (Instance.size instance) (fun _ -> regions))
    instance

let allowed_of t i = t.allowed.(i)
let is_allowed t ~item ~region = List.mem region t.allowed.(item)

let restrict_to_region t region =
  Instance.restrict t.instance ~f:(fun (r : Item.t) ->
      t.allowed.(r.id) = [ region ])

let lower_bound t =
  let base = Dbp_opt.Bounds.opt_lower_bound t.instance in
  let single_region_spans =
    Array.to_list t.regions
    |> List.map (fun g ->
           match restrict_to_region t g with
           | None -> Rat.zero
           | Some sub -> Instance.span sub)
    |> Rat.sum
  in
  Rat.max base single_region_spans

let pp fmt t =
  Format.fprintf fmt "@[<v>constrained %a over %d regions@]" Instance.pp
    t.instance (Array.length t.regions)
