(** Latency-based constraint generation for distributed-cloud
    dispatching: datacenters and players live on the unit square, RTT
    is proportional to Euclidean distance, and a request may be served
    from every datacenter within the latency budget (the nearest one is
    always allowed, so constraints are never empty).

    This is the synthetic substitute for real player/datacenter
    topology (see DESIGN.md): what matters to the constrained DBP
    behaviour is the {e shape} of the allowed sets — their sizes and
    overlaps — which the latency budget controls directly. *)

open Dbp_core

type datacenter = { name : Constrained_instance.region; x : float; y : float }

val default_datacenters : datacenter list
(** Four regions at the corners of the unit square:
    us-west, us-east, eu-west, ap-south. *)

val constrain :
  ?seed:int64 ->
  ?datacenters:datacenter list ->
  latency_budget:float ->
  Instance.t ->
  Constrained_instance.t
(** Draws a uniform player position per item; allows every datacenter
    within [latency_budget] (distance units), plus always the nearest.
    [latency_budget >= sqrt 2] therefore means unconstrained.
    @raise Invalid_argument if [datacenters] is empty or
    [latency_budget < 0]. *)

val mean_allowed : Constrained_instance.t -> float
(** Average size of the allowed sets — the realised constraint
    tightness. *)
