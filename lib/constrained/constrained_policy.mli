(** Online policies for constrained DBP.

    A constrained policy only ever places an item into a bin whose
    region the item allows (bins carry their region as the tag), and
    opens new bins in an allowed region chosen by its region-selection
    rule.  Policies are built {e per constrained instance} — they
    capture the allowed-region table, which is legitimate online
    information (the dispatcher knows where a request may be served the
    moment it arrives). *)

open Dbp_core

type region_rule =
  | First_allowed  (** Deterministic: the item's first allowed region. *)
  | Fewest_open_bins
      (** Open the new bin in the allowed region currently running the
          fewest open bins (ties to the first allowed). *)

val first_fit : ?rule:region_rule -> Constrained_instance.t -> Policy.t
(** First Fit over the open bins in allowed regions (opening order);
    new bins placed per [rule] (default [First_allowed]). *)

val best_fit : ?rule:region_rule -> Constrained_instance.t -> Policy.t

val run :
  policy:(Constrained_instance.t -> Policy.t) ->
  Constrained_instance.t ->
  Packing.t
(** Simulate and check region feasibility of the result.
    @raise Failure if any placement violates its item's constraint
    (an internal-error guard; cannot happen with the policies above). *)

val validate_regions : Constrained_instance.t -> Packing.t -> (unit, string) result
(** Every item sits in a bin tagged with one of its allowed regions. *)
