(** The {e constrained} Dynamic Bin Packing problem the paper poses as
    future work (Section 5): each item may only be assigned to a subset
    of the bins, modelling interactivity constraints when dispatching
    playing requests across geographically distributed clouds — a
    player can only be served from datacenters close enough for
    acceptable latency.

    Bins are partitioned by {e region} (the datacenter that hosts the
    VM); an item carries the set of regions it may be served from. *)

open Dbp_num
open Dbp_core

type region = string

type t = private {
  instance : Instance.t;
  regions : region array;  (** The universe of regions. *)
  allowed : region list array;  (** Per item id; each non-empty. *)
}

val create :
  regions:region list -> allowed:region list list -> Instance.t -> t
(** [allowed] is parallel to the instance's items.
    @raise Invalid_argument if [regions] is empty or has duplicates,
    some item's allowed list is empty, mismatched in length, or
    mentions an unknown region. *)

val unconstrained : regions:region list -> Instance.t -> t
(** Every item allowed everywhere. *)

val allowed_of : t -> int -> region list
val is_allowed : t -> item:int -> region:region -> bool

val restrict_to_region : t -> region -> Instance.t option
(** The sub-instance of items allowed {e only} in that region (their
    singleton-constraint load), or [None] if there are none. *)

val lower_bound : t -> Rat.t
(** A valid lower bound on the constrained [OPT_total]:
    [max(u(R)/W, span(R), sum over regions g of span(items allowed only
    in g))] — single-region items must be served by that region's bins,
    and bins in different regions are disjoint. *)

val pp : Format.formatter -> t -> unit
