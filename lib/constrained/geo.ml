open Dbp_core
open Dbp_rand

type datacenter = { name : Constrained_instance.region; x : float; y : float }

let default_datacenters =
  [
    { name = "us-west"; x = 0.0; y = 0.0 };
    { name = "us-east"; x = 1.0; y = 0.0 };
    { name = "eu-west"; x = 0.0; y = 1.0 };
    { name = "ap-south"; x = 1.0; y = 1.0 };
  ]

let distance dc (px, py) = sqrt (((dc.x -. px) ** 2.0) +. ((dc.y -. py) ** 2.0))

let constrain ?(seed = 17L) ?(datacenters = default_datacenters)
    ~latency_budget instance =
  if datacenters = [] then invalid_arg "Geo.constrain: no datacenters";
  if latency_budget < 0.0 then invalid_arg "Geo.constrain: negative budget";
  let rng = Splitmix64.create seed in
  let allowed =
    List.init (Instance.size instance) (fun _ ->
        let player =
          (Splitmix64.next_float rng, Splitmix64.next_float rng)
        in
        let with_distances =
          List.map (fun dc -> (dc, distance dc player)) datacenters
        in
        let nearest =
          List.fold_left
            (fun (bdc, bd) (dc, d) -> if d < bd then (dc, d) else (bdc, bd))
            (List.hd with_distances) (List.tl with_distances)
          |> fst
        in
        let within =
          List.filter_map
            (fun (dc, d) -> if d <= latency_budget then Some dc.name else None)
            with_distances
        in
        List.sort_uniq String.compare (nearest.name :: within))
  in
  Constrained_instance.create
    ~regions:(List.map (fun dc -> dc.name) datacenters)
    ~allowed instance

let mean_allowed (ci : Constrained_instance.t) =
  let n = Instance.size ci.Constrained_instance.instance in
  let total =
    List.init n (fun i ->
        List.length (Constrained_instance.allowed_of ci i))
    |> List.fold_left ( + ) 0
  in
  float_of_int total /. float_of_int n
