open Dbp_core

type region_rule = First_allowed | Fewest_open_bins

let pick_region rule (ci : Constrained_instance.t) ~bins ~item_id =
  let allowed = Constrained_instance.allowed_of ci item_id in
  match rule with
  | First_allowed -> List.hd allowed
  | Fewest_open_bins ->
      let open_count g =
        List.length
          (List.filter (fun (v : Bin.view) -> String.equal v.bin_tag g) bins)
      in
      let best, _ =
        List.fold_left
          (fun (best_g, best_n) g ->
            let n = open_count g in
            if n < best_n then (g, n) else (best_g, best_n))
          (List.hd allowed, open_count (List.hd allowed))
          (List.tl allowed)
      in
      best

let make_policy ~name ~select ?(rule = First_allowed)
    (ci : Constrained_instance.t) =
  Policy.make ~name (fun ~capacity:_ ->
      {
        Policy.on_arrival =
          (fun ~now:_ ~bins ~size ~item_id ->
            let allowed = Constrained_instance.allowed_of ci item_id in
            let eligible =
              List.filter
                (fun (v : Bin.view) -> List.mem v.bin_tag allowed)
                bins
            in
            match select eligible ~size with
            | Some (v : Bin.view) -> Policy.Existing v.bin_id
            | None -> Policy.New_bin (pick_region rule ci ~bins ~item_id));
        on_departure = Policy.no_departure_handler;
        (* Reads only the immutable constraint table. *)
        persistence = Policy.Stateless;
      })

let first_fit ?rule ci =
  make_policy ~name:"constrained-first-fit" ~select:Fit.first ?rule ci

let best_fit ?rule ci =
  make_policy ~name:"constrained-best-fit" ~select:Fit.best ?rule ci

let validate_regions (ci : Constrained_instance.t) (packing : Packing.t) =
  let bad = ref None in
  Array.iter
    (fun (b : Packing.bin_record) ->
      List.iter
        (fun item_id ->
          if not (Constrained_instance.is_allowed ci ~item:item_id ~region:b.tag)
          then bad := Some (item_id, b.tag))
        b.item_ids)
    packing.Packing.bins;
  match !bad with
  | None -> Ok ()
  | Some (item, region) ->
      Error
        (Printf.sprintf "item %d placed in disallowed region %s" item region)

let run ~policy (ci : Constrained_instance.t) =
  let packing =
    Simulator.run ~policy:(policy ci) ci.Constrained_instance.instance
  in
  (match validate_regions ci packing with
  | Ok () -> ()
  | Error msg -> failwith ("Constrained_policy.run: " ^ msg));
  packing
