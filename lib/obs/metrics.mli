(** In-process metrics registry: counters, gauges, exact rational
    sums and raw-observation histograms, keyed by name.

    All write paths are O(1) amortised (a hashtable hit plus a bump);
    histograms store every observation and are summarised on demand by
    one sort of a snapshot — see [Dbp_analysis.Stats.summarise] for
    the single-sort summary path.  Costs that must stay exact
    (bin-seconds of the MinTotal objective) go into {!add_rat} sums,
    which never touch floats. *)

open Dbp_num

type t

val create : unit -> t

(** {1 Writing} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val set_gauge : t -> string -> int -> unit

val add_rat : t -> string -> Rat.t -> unit
(** Exact accumulating sum; use for costs and other [Rat.t] totals. *)

val observe : t -> string -> float -> unit
val observe_int : t -> string -> int -> unit
val observe_rat : t -> string -> Rat.t -> unit

(** {1 Reading} *)

val counters : t -> (string * int) list
(** Sorted by name; likewise below. *)

val gauges : t -> (string * int) list
val rat_sums : t -> (string * Rat.t) list

val counter : t -> string -> int
(** 0 for a name never incremented. *)

val gauge : t -> string -> int option
val rat_sum : t -> string -> Rat.t option

type hist_aggregates = {
  agg_count : int;
  agg_sum : float;
  agg_min : float;
  agg_max : float;
}

val observations : t -> string -> float array option
(** Snapshot of a histogram's raw observations, in insertion order. *)

val hist_aggregates : t -> string -> hist_aggregates option
(** The incrementally maintained aggregates; the test suite checks
    them against a brute-force recomputation over {!observations}. *)

val histograms : t -> (string * float array) list

val is_empty : t -> bool

(** {1 Checkpointing} *)

type dump = {
  d_counters : (string * int) list;
  d_gauges : (string * int) list;
  d_rat_sums : (string * Rat.t) list;
  d_hists : (string * float array) list;
      (** Raw observations in insertion order — order matters, see
          {!restore}. *)
}

val dump : t -> dump
(** A full snapshot of the registry (names sorted, observations in
    insertion order). *)

val restore : dump -> t
(** A fresh registry holding the dumped state.  Histogram aggregates
    are rebuilt by replaying the observations in their original
    insertion order, so the float [sum] (a left-to-right addition
    chain) is bit-identical to the dumped registry's — a restored
    registry continues exactly where the dump stopped. *)
