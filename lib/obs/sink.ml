(* A sink owns the monotonic sequence counter, so one sink shared
   between the engine and the fault injector yields a single totally
   ordered stream.  [enabled = false] (the null sink) skips the
   formatting work entirely; the truly free path is not passing a sink
   to the engine at all. *)

type t = {
  mutable seq : int;
  enabled : bool;
  write : string -> unit;
  flush_fn : unit -> unit;
}

let make ~enabled write flush_fn = { seq = 0; enabled; write; flush_fn }

let to_channel oc =
  make ~enabled:true
    (fun line -> output_string oc line)
    (fun () -> Stdlib.flush oc)

let to_buffer buf = make ~enabled:true (Buffer.add_string buf) (fun () -> ())
let null () = make ~enabled:false (fun _ -> ()) (fun () -> ())

let emit t ~time kind =
  if t.enabled then begin
    let ev = { Trace_event.seq = t.seq; time; kind } in
    t.write (Trace_event.to_ndjson ev);
    t.write "\n"
  end;
  t.seq <- t.seq + 1

let emitted t = t.seq
let flush t = t.flush_fn ()

let set_seq t seq =
  if seq < 0 then invalid_arg "Sink.set_seq: negative sequence number";
  t.seq <- seq
