(** The structured engine-event trace: schema ["dbp-trace/2"].

    Every event the simulator (and the fault injector) can produce,
    stamped with a monotonic sequence number and the exact rational
    simulation time.  Events serialise to NDJSON — one flat JSON
    object per line, integers and strings only, rationals rendered as
    strings ([3/10] style) so nothing is ever rounded.

    The kinds map onto the paper's event model (see DESIGN.md
    "Observability"): [Arrive]/[Depart] are the endpoints of an item's
    active interval [I(r)], [Bin_open]/[Bin_close] delimit a bin's
    usage period (the quantity Theorem 4 decomposes), [Pack] records
    the placement decision with the post-insert level, and
    [Fail_bin]/[Retry]/[Shed]/[Resume] come from the fault-injection
    layer.

    Version 2 adds the vector kinds [Varrive]/[Vpack]/[Vbin_open] for
    multi-resource (DVBP) runs; their per-dimension payloads are
    {!Dbp_num.Vec.to_string} comma-joined rationals.  The scalar kinds
    serialise byte-identically to version 1, so every [dbp-trace/1]
    stream validates as [dbp-trace/2] — and a [d = 1] vector run emits
    exactly the scalar kinds, keeping the embedding bit-identical. *)

open Dbp_num

type kind =
  | Arrive of { item : int; size : Rat.t }
  | Pack of { item : int; bin : int; level : Rat.t; residual : Rat.t }
      (** [level]/[residual] are the bin's state {e after} the insert:
          the per-bin utilisation at pack time. *)
  | Depart of { item : int; bin : int; held : Rat.t }
      (** [held] is the time the item spent packed (departure minus
          placement instant). *)
  | Bin_open of { bin : int; tag : string; capacity : Rat.t }
  | Bin_close of { bin : int; opened : Rat.t; cost : Rat.t }
      (** [cost] is the closed usage period's length — exactly what
          the bin contributes to the MinTotal objective. *)
  | Fail_bin of { bin : int; victims : int; lost_level : Rat.t }
  | Migrate of {
      item : int;
      new_item : int;
      from_bin : int;
      to_bin : int;
      size : Rat.t;
    }
      (** A live migration (limited-recourse repacking): the active
          item left [from_bin] and re-entered [to_bin] at the same
          instant under the fresh id [new_item] — both bins' exact
          accounting splits at this timestamp. *)
  | Retry of { item : int; attempt : int }
  | Shed of { item : int }
  | Resume of { item : int; latency : Rat.t }
  | Varrive of { item : int; sizes : Vec.t }
      (** A multi-resource arrival: the item's demand vector. *)
  | Vpack of { item : int; bin : int; levels : Vec.t; residuals : Vec.t }
      (** Vector placement; [levels]/[residuals] are per-dimension
          state {e after} the insert. *)
  | Vbin_open of { bin : int; tag : string; capacities : Vec.t }

type t = { seq : int; time : Rat.t; kind : kind }

val schema : string
(** ["dbp-trace/2"]. *)

val kind_name : kind -> string

val to_ndjson : t -> string
(** One JSON object, no trailing newline. *)

val of_ndjson : string -> (t, string) result
(** Strict schema validation: unknown kinds, missing/extra/duplicate
    keys, wrong value types and malformed rationals are all errors. *)

type value = Int of int | Str of string

val parse_flat_object : string -> ((string * value) list, string) result
(** The strict minimal JSON reader behind {!of_ndjson}: one flat
    object whose values are integers or strings; nesting, floats,
    booleans and duplicate keys are rejected.  Exposed so sibling
    NDJSON schemas (the checkpoint format) parse with the same
    strictness.  Fields come back in source order. *)

type event = t
(** Alias so {!Feed}'s signature can name the event type. *)

type stream_error = { line : int; byte : int; message : string }
(** A stream-validation failure: [line] is the 1-based non-blank line
    number, [byte] the absolute offset of that line's first byte in
    the stream — socket servers report it so a client can locate the
    offending frame even when chunk boundaries hid the line
    structure. *)

val stream_error_to_string : stream_error -> string
(** ["line %d (byte %d): %s"]. *)

(** Incremental whole-stream validation over arbitrary read chunks.

    A [Feed] accepts the stream in whatever pieces the transport
    delivers — a chunk may end mid-line — and returns events as their
    lines complete, enforcing the same invariants as {!parse_all}:
    every line parses strictly, sequence numbers are exactly
    [seq_start, seq_start+1, ...], timestamps never decrease.
    {!Feed.close} flushes a final line that lacks its trailing
    newline (what a short read or an unterminated file leaves
    behind).  After an error the feed is poisoned: every further call
    returns the same {!stream_error}. *)
module Feed : sig
  type nonrec t

  val create : ?seq_start:int -> unit -> t
  (** [seq_start] (default 0) positions the sequence check — a
      consumer resuming mid-stream (checkpoint thaw, per-connection
      framing) starts where it left off. *)

  val feed : t -> ?off:int -> ?len:int -> string -> (event list, stream_error) result
  (** Consume [len] bytes of [s] starting at [off] (defaults: the
      whole string) and return the events whose lines completed, in
      stream order.  @raise Invalid_argument if [off]/[len] do not
      describe a substring of [s]. *)

  val close : t -> (event list, stream_error) result
  (** Signal end of stream: commits a pending unterminated final
      line, if any. *)

  val bytes_consumed : t -> int
  (** Absolute offset of the first byte not yet part of a committed
      line — the resume point after a short read. *)

  val next_seq : t -> int
  (** The sequence number the next event must carry. *)
end

val parse_all : string -> (t list, string) result
(** Validates a whole NDJSON document (blank lines ignored): every
    line parses, sequence numbers are exactly [0, 1, 2, ...] and
    timestamps never decrease.  A final line without its trailing
    newline is accepted.  Errors carry the 1-based line number and
    absolute byte offset ({!stream_error_to_string} format). *)

val pp : Format.formatter -> t -> unit
