(** The structured engine-event trace: schema ["dbp-trace/2"].

    Every event the simulator (and the fault injector) can produce,
    stamped with a monotonic sequence number and the exact rational
    simulation time.  Events serialise to NDJSON — one flat JSON
    object per line, integers and strings only, rationals rendered as
    strings ([3/10] style) so nothing is ever rounded.

    The kinds map onto the paper's event model (see DESIGN.md
    "Observability"): [Arrive]/[Depart] are the endpoints of an item's
    active interval [I(r)], [Bin_open]/[Bin_close] delimit a bin's
    usage period (the quantity Theorem 4 decomposes), [Pack] records
    the placement decision with the post-insert level, and
    [Fail_bin]/[Retry]/[Shed]/[Resume] come from the fault-injection
    layer.

    Version 2 adds the vector kinds [Varrive]/[Vpack]/[Vbin_open] for
    multi-resource (DVBP) runs; their per-dimension payloads are
    {!Dbp_num.Vec.to_string} comma-joined rationals.  The scalar kinds
    serialise byte-identically to version 1, so every [dbp-trace/1]
    stream validates as [dbp-trace/2] — and a [d = 1] vector run emits
    exactly the scalar kinds, keeping the embedding bit-identical. *)

open Dbp_num

type kind =
  | Arrive of { item : int; size : Rat.t }
  | Pack of { item : int; bin : int; level : Rat.t; residual : Rat.t }
      (** [level]/[residual] are the bin's state {e after} the insert:
          the per-bin utilisation at pack time. *)
  | Depart of { item : int; bin : int; held : Rat.t }
      (** [held] is the time the item spent packed (departure minus
          placement instant). *)
  | Bin_open of { bin : int; tag : string; capacity : Rat.t }
  | Bin_close of { bin : int; opened : Rat.t; cost : Rat.t }
      (** [cost] is the closed usage period's length — exactly what
          the bin contributes to the MinTotal objective. *)
  | Fail_bin of { bin : int; victims : int; lost_level : Rat.t }
  | Migrate of {
      item : int;
      new_item : int;
      from_bin : int;
      to_bin : int;
      size : Rat.t;
    }
      (** A live migration (limited-recourse repacking): the active
          item left [from_bin] and re-entered [to_bin] at the same
          instant under the fresh id [new_item] — both bins' exact
          accounting splits at this timestamp. *)
  | Retry of { item : int; attempt : int }
  | Shed of { item : int }
  | Resume of { item : int; latency : Rat.t }
  | Varrive of { item : int; sizes : Vec.t }
      (** A multi-resource arrival: the item's demand vector. *)
  | Vpack of { item : int; bin : int; levels : Vec.t; residuals : Vec.t }
      (** Vector placement; [levels]/[residuals] are per-dimension
          state {e after} the insert. *)
  | Vbin_open of { bin : int; tag : string; capacities : Vec.t }

type t = { seq : int; time : Rat.t; kind : kind }

val schema : string
(** ["dbp-trace/2"]. *)

val kind_name : kind -> string

val to_ndjson : t -> string
(** One JSON object, no trailing newline. *)

val of_ndjson : string -> (t, string) result
(** Strict schema validation: unknown kinds, missing/extra/duplicate
    keys, wrong value types and malformed rationals are all errors. *)

type value = Int of int | Str of string

val parse_flat_object : string -> ((string * value) list, string) result
(** The strict minimal JSON reader behind {!of_ndjson}: one flat
    object whose values are integers or strings; nesting, floats,
    booleans and duplicate keys are rejected.  Exposed so sibling
    NDJSON schemas (the checkpoint format) parse with the same
    strictness.  Fields come back in source order. *)

val parse_all : string -> (t list, string) result
(** Validates a whole NDJSON document (blank lines ignored): every
    line parses, sequence numbers are exactly [0, 1, 2, ...] and
    timestamps never decrease.  Errors carry the 1-based line. *)

val pp : Format.formatter -> t -> unit
