(** Pluggable destinations for the structured event trace.

    A sink owns the stream's monotonic sequence counter: share one
    sink between the engine and the fault injector and the combined
    stream stays totally ordered.  The [null] sink counts events but
    skips all formatting; leaving the engine's [?sink] unset costs
    one branch per event. *)

open Dbp_num

type t

val to_channel : out_channel -> t
(** NDJSON lines straight to the channel; {!flush} flushes it.  The
    caller keeps ownership of the channel (and closes it). *)

val to_buffer : Buffer.t -> t

val null : unit -> t
(** Counts sequence numbers, writes nothing, never formats. *)

val emit : t -> time:Rat.t -> Trace_event.kind -> unit

val emitted : t -> int
(** Events emitted so far (= the next sequence number). *)

val flush : t -> unit

val set_seq : t -> int -> unit
(** Positions the sequence counter, so a sink attached to a resumed
    run continues the stream of the interrupted one: the concatenation
    of the two outputs validates as a single [dbp-trace/2] stream.
    @raise Invalid_argument on a negative sequence number. *)
