(* Per-phase wall-time accounting.  The API is shaped for a hot loop
   that is usually NOT being profiled: [enter]/[leave] take the
   engine's [t option] directly, so the disabled path is one pattern
   match and no clock read, and call sites in the exact-arithmetic
   core never mention floats (the token is abstract). *)

type span = { mutable seconds : float; mutable calls : int }
type t = { spans : (string, span) Hashtbl.t }
type token = float

let create () = { spans = Hashtbl.create 8 }
let disabled_token = 0.0

let enter = function
  | None -> disabled_token
  | Some _ -> Unix.gettimeofday ()

let leave opt name token =
  match opt with
  | None -> ()
  | Some t ->
      let s =
        match Hashtbl.find_opt t.spans name with
        | Some s -> s
        | None ->
            let s = { seconds = 0.0; calls = 0 } in
            Hashtbl.add t.spans name s;
            s
      in
      s.seconds <- s.seconds +. (Unix.gettimeofday () -. token);
      s.calls <- s.calls + 1

let time t name f =
  let opt = Some t in
  let token = enter opt in
  Fun.protect ~finally:(fun () -> leave opt name token) f

let spans t =
  Hashtbl.fold (fun name s acc -> (name, s.seconds, s.calls) :: acc) t.spans []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let total t = Hashtbl.fold (fun _ s acc -> acc +. s.seconds) t.spans 0.0

let reset t = Hashtbl.reset t.spans
