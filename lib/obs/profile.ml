(* Per-phase wall-time accounting.  The API is shaped for a hot loop
   that is usually NOT being profiled: [enter]/[leave] take the
   engine's [t option] directly, so the disabled path is one pattern
   match and no clock read, and call sites in the exact-arithmetic
   core never mention floats (the token is abstract).  The token is an
   immediate int (nanoseconds) rather than a float so the disabled
   path allocates nothing — a boxed-float token per event was
   measurable in the engine's unprofiled hot loop. *)

type span = { mutable seconds : float; mutable calls : int }
type t = { spans : (string, span) Hashtbl.t }
type token = int

let create () = { spans = Hashtbl.create 8 }
let disabled_token = 0
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let enter = function None -> disabled_token | Some _ -> now_ns ()

let leave opt name token =
  match opt with
  | None -> ()
  | Some t ->
      let s =
        match Hashtbl.find_opt t.spans name with
        | Some s -> s
        | None ->
            let s = { seconds = 0.0; calls = 0 } in
            Hashtbl.add t.spans name s;
            s
      in
      s.seconds <- s.seconds +. (float_of_int (now_ns () - token) /. 1e9);
      s.calls <- s.calls + 1

let time t name f =
  let opt = Some t in
  let token = enter opt in
  Fun.protect ~finally:(fun () -> leave opt name token) f

let spans t =
  Hashtbl.fold (fun name s acc -> (name, s.seconds, s.calls) :: acc) t.spans []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let total t = Hashtbl.fold (fun _ s acc -> acc +. s.seconds) t.spans 0.0

let reset t = Hashtbl.reset t.spans
