open Dbp_num

(* Histograms keep the raw observations (growable array) plus running
   aggregates.  The aggregates are cheap per observation; quantiles
   are computed on demand from one sort of a snapshot (see
   [Dbp_analysis.Stats.summarise]), never incrementally — a single
   sort per summary is the whole cost model. *)

type hist = {
  mutable data : float array;
  mutable len : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  rat_sums : (string, Rat.t ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    rat_sums = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

let cell tbl name init =
  match Hashtbl.find_opt tbl name with
  | Some c -> c
  | None ->
      let c = init () in
      Hashtbl.add tbl name c;
      c

let add t name n =
  let c = cell t.counters name (fun () -> ref 0) in
  c := !c + n

let incr t name = add t name 1

let set_gauge t name v =
  let c = cell t.gauges name (fun () -> ref 0) in
  c := v

let add_rat t name r =
  let c = cell t.rat_sums name (fun () -> ref Rat.zero) in
  c := Rat.add !c r

let observe t name x =
  let h =
    cell t.hists name (fun () ->
        { data = Array.make 64 0.0; len = 0; sum = 0.0; minv = x; maxv = x })
  in
  if h.len >= Array.length h.data then begin
    let grown = Array.make (2 * Array.length h.data) 0.0 in
    Array.blit h.data 0 grown 0 h.len;
    h.data <- grown
  end;
  h.data.(h.len) <- x;
  h.len <- h.len + 1;
  h.sum <- h.sum +. x;
  if x < h.minv then h.minv <- x;
  if x > h.maxv then h.maxv <- x

let observe_int t name n = observe t name (float_of_int n)
let observe_rat t name r = observe t name (Rat.to_float r)

(* ---- snapshots ------------------------------------------------------ *)

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.counters ( ! )
let gauges t = sorted_bindings t.gauges ( ! )
let rat_sums t = sorted_bindings t.rat_sums ( ! )

let counter t name =
  match Hashtbl.find_opt t.counters name with Some c -> !c | None -> 0

let gauge t name =
  match Hashtbl.find_opt t.gauges name with Some c -> Some !c | None -> None

let rat_sum t name =
  match Hashtbl.find_opt t.rat_sums name with
  | Some c -> Some !c
  | None -> None

type hist_aggregates = {
  agg_count : int;
  agg_sum : float;
  agg_min : float;
  agg_max : float;
}

let observations t name =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some h -> Some (Array.sub h.data 0 h.len)

let hist_aggregates t name =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some h ->
      if h.len = 0 then None
      else
        Some
          { agg_count = h.len; agg_sum = h.sum; agg_min = h.minv; agg_max = h.maxv }

let histograms t =
  sorted_bindings t.hists (fun h -> Array.sub h.data 0 h.len)

(* ---- checkpointing -------------------------------------------------- *)

type dump = {
  d_counters : (string * int) list;
  d_gauges : (string * int) list;
  d_rat_sums : (string * Rat.t) list;
  d_hists : (string * float array) list;
}

let dump t =
  {
    d_counters = counters t;
    d_gauges = gauges t;
    d_rat_sums = rat_sums t;
    d_hists = histograms t;
  }

(* Restoring replays every observation in insertion order, so the
   incrementally maintained float aggregates (notably [sum], a
   left-to-right chain of additions) come out bit-identical to the
   original registry's — continuing a restored registry is
   indistinguishable from never having stopped. *)
let restore d =
  let t = create () in
  List.iter (fun (name, v) -> add t name v) d.d_counters;
  List.iter (fun (name, v) -> set_gauge t name v) d.d_gauges;
  List.iter (fun (name, v) -> add_rat t name v) d.d_rat_sums;
  List.iter
    (fun (name, values) -> Array.iter (fun x -> observe t name x) values)
    d.d_hists;
  t

let is_empty t =
  Hashtbl.length t.counters = 0
  && Hashtbl.length t.gauges = 0
  && Hashtbl.length t.rat_sums = 0
  && Hashtbl.length t.hists = 0
