open Dbp_num

(* The structured trace schema ("dbp-trace/2", see DESIGN.md
   "Observability").  One event per NDJSON line; timestamps are exact
   rationals rendered as strings, never floats, so a consumer can
   reconstruct bin usage periods bit-exactly.  Version 2 adds the
   vector kinds (varrive/vpack/vbin_open) for multi-resource runs,
   whose per-dimension payloads are comma-joined rational strings;
   the scalar kinds are byte-identical to version 1, so every
   dbp-trace/1 stream is a valid dbp-trace/2 stream. *)

type kind =
  | Arrive of { item : int; size : Rat.t }
  | Pack of { item : int; bin : int; level : Rat.t; residual : Rat.t }
  | Depart of { item : int; bin : int; held : Rat.t }
  | Bin_open of { bin : int; tag : string; capacity : Rat.t }
  | Bin_close of { bin : int; opened : Rat.t; cost : Rat.t }
  | Fail_bin of { bin : int; victims : int; lost_level : Rat.t }
  | Migrate of {
      item : int;
      new_item : int;
      from_bin : int;
      to_bin : int;
      size : Rat.t;
    }
  | Retry of { item : int; attempt : int }
  | Shed of { item : int }
  | Resume of { item : int; latency : Rat.t }
  | Varrive of { item : int; sizes : Vec.t }
  | Vpack of { item : int; bin : int; levels : Vec.t; residuals : Vec.t }
  | Vbin_open of { bin : int; tag : string; capacities : Vec.t }

type t = { seq : int; time : Rat.t; kind : kind }

let schema = "dbp-trace/2"

let kind_name = function
  | Arrive _ -> "arrive"
  | Pack _ -> "pack"
  | Depart _ -> "depart"
  | Bin_open _ -> "bin_open"
  | Bin_close _ -> "bin_close"
  | Fail_bin _ -> "fail_bin"
  | Migrate _ -> "migrate"
  | Retry _ -> "retry"
  | Shed _ -> "shed"
  | Resume _ -> "resume"
  | Varrive _ -> "varrive"
  | Vpack _ -> "vpack"
  | Vbin_open _ -> "vbin_open"

(* ---- emission ------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_ndjson t =
  let buf = Buffer.create 96 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\"seq\":%d,\"t\":\"%s\",\"kind\":\"%s\"" t.seq
    (Rat.to_string t.time) (kind_name t.kind);
  (match t.kind with
  | Arrive { item; size } ->
      add ",\"item\":%d,\"size\":\"%s\"" item (Rat.to_string size)
  | Pack { item; bin; level; residual } ->
      add ",\"item\":%d,\"bin\":%d,\"level\":\"%s\",\"residual\":\"%s\"" item
        bin (Rat.to_string level) (Rat.to_string residual)
  | Depart { item; bin; held } ->
      add ",\"item\":%d,\"bin\":%d,\"held\":\"%s\"" item bin
        (Rat.to_string held)
  | Bin_open { bin; tag; capacity } ->
      add ",\"bin\":%d,\"tag\":\"%s\",\"capacity\":\"%s\"" bin (escape tag)
        (Rat.to_string capacity)
  | Bin_close { bin; opened; cost } ->
      add ",\"bin\":%d,\"opened\":\"%s\",\"cost\":\"%s\"" bin
        (Rat.to_string opened) (Rat.to_string cost)
  | Fail_bin { bin; victims; lost_level } ->
      add ",\"bin\":%d,\"victims\":%d,\"lost_level\":\"%s\"" bin victims
        (Rat.to_string lost_level)
  | Migrate { item; new_item; from_bin; to_bin; size } ->
      add ",\"item\":%d,\"new_item\":%d,\"from\":%d,\"to\":%d,\"size\":\"%s\""
        item new_item from_bin to_bin (Rat.to_string size)
  | Retry { item; attempt } -> add ",\"item\":%d,\"attempt\":%d" item attempt
  | Shed { item } -> add ",\"item\":%d" item
  | Resume { item; latency } ->
      add ",\"item\":%d,\"latency\":\"%s\"" item (Rat.to_string latency)
  | Varrive { item; sizes } ->
      add ",\"item\":%d,\"sizes\":\"%s\"" item (Vec.to_string sizes)
  | Vpack { item; bin; levels; residuals } ->
      add ",\"item\":%d,\"bin\":%d,\"levels\":\"%s\",\"residuals\":\"%s\"" item
        bin (Vec.to_string levels) (Vec.to_string residuals)
  | Vbin_open { bin; tag; capacities } ->
      add ",\"bin\":%d,\"tag\":\"%s\",\"capacities\":\"%s\"" bin (escape tag)
        (Vec.to_string capacities));
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ---- strict parsing (schema validation) ----------------------------- *)

(* A deliberately minimal JSON-object reader: the schema only ever
   emits one flat object per line whose values are integers or
   strings, so that is all the validator accepts.  Anything else —
   nesting, floats, booleans, duplicate or unknown keys — is a schema
   violation by construction. *)

type value = Int of int | Str of string

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let parse_object line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= n then bad "unexpected end of line" else line.[!pos] in
  let advance () = incr pos in
  let expect c =
    if peek () <> c then bad "expected '%c' at column %d" c !pos else advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | 'u' ->
              advance ();
              if !pos + 3 >= n then bad "truncated \\u escape";
              let hex = String.sub line !pos 4 in
              pos := !pos + 3;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
              | _ -> bad "unsupported \\u escape '\\u%s'" hex)
          | c -> bad "unsupported escape '\\%c'" c);
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = '-' then advance ();
    while !pos < n && line.[!pos] >= '0' && line.[!pos] <= '9' do
      advance ()
    done;
    if !pos = start || (!pos = start + 1 && line.[start] = '-') then
      bad "expected an integer at column %d" start;
    match int_of_string_opt (String.sub line start (!pos - start)) with
    | Some i -> i
    | None -> bad "integer out of range at column %d" start
  in
  expect '{';
  let fields = ref [] in
  let rec members () =
    let key = parse_string () in
    if List.mem_assoc key !fields then bad "duplicate key \"%s\"" key;
    expect ':';
    let v =
      match peek () with
      | '"' -> Str (parse_string ())
      | '-' | '0' .. '9' -> Int (parse_int ())
      | c -> bad "unsupported value starting with '%c' (only ints and strings)" c
    in
    fields := (key, v) :: !fields;
    match peek () with
    | ',' ->
        advance ();
        members ()
    | '}' -> advance ()
    | c -> bad "expected ',' or '}' but found '%c'" c
  in
  (match peek () with
  | '}' -> advance ()
  | _ -> members ());
  if !pos <> n then bad "trailing characters after the closing '}'";
  List.rev !fields

let parse_flat_object line =
  match parse_object line with
  | fields -> Ok fields
  | exception Bad msg -> Error msg

let of_ndjson line =
  try
    let fields = parse_object line in
    let consumed = ref [] in
    let take key =
      consumed := key :: !consumed;
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> bad "missing key \"%s\"" key
    in
    let int_field key =
      match take key with
      | Int i -> i
      | Str _ -> bad "key \"%s\" must be an integer" key
    in
    let str_field key =
      match take key with
      | Str s -> s
      | Int _ -> bad "key \"%s\" must be a string" key
    in
    let rat_field key =
      let s = str_field key in
      match Rat.of_string s with
      | r -> r
      | exception (Failure _ | Division_by_zero) ->
          bad "key \"%s\" is not a rational: '%s'" key s
    in
    let vec_field key =
      let s = str_field key in
      match Vec.of_string s with
      | v -> v
      | exception (Failure _ | Division_by_zero) ->
          bad "key \"%s\" is not a rational vector: '%s'" key s
    in
    let seq = int_field "seq" in
    if seq < 0 then bad "negative sequence number %d" seq;
    let time = rat_field "t" in
    let kname = str_field "kind" in
    let kind =
      match kname with
      | "arrive" ->
          Arrive { item = int_field "item"; size = rat_field "size" }
      | "pack" ->
          Pack
            {
              item = int_field "item";
              bin = int_field "bin";
              level = rat_field "level";
              residual = rat_field "residual";
            }
      | "depart" ->
          Depart
            {
              item = int_field "item";
              bin = int_field "bin";
              held = rat_field "held";
            }
      | "bin_open" ->
          Bin_open
            {
              bin = int_field "bin";
              tag = str_field "tag";
              capacity = rat_field "capacity";
            }
      | "bin_close" ->
          Bin_close
            {
              bin = int_field "bin";
              opened = rat_field "opened";
              cost = rat_field "cost";
            }
      | "fail_bin" ->
          Fail_bin
            {
              bin = int_field "bin";
              victims = int_field "victims";
              lost_level = rat_field "lost_level";
            }
      | "migrate" ->
          Migrate
            {
              item = int_field "item";
              new_item = int_field "new_item";
              from_bin = int_field "from";
              to_bin = int_field "to";
              size = rat_field "size";
            }
      | "retry" ->
          Retry { item = int_field "item"; attempt = int_field "attempt" }
      | "shed" -> Shed { item = int_field "item" }
      | "resume" ->
          Resume { item = int_field "item"; latency = rat_field "latency" }
      | "varrive" ->
          Varrive { item = int_field "item"; sizes = vec_field "sizes" }
      | "vpack" ->
          Vpack
            {
              item = int_field "item";
              bin = int_field "bin";
              levels = vec_field "levels";
              residuals = vec_field "residuals";
            }
      | "vbin_open" ->
          Vbin_open
            {
              bin = int_field "bin";
              tag = str_field "tag";
              capacities = vec_field "capacities";
            }
      | other -> bad "unknown event kind \"%s\"" other
    in
    List.iter
      (fun (key, _) ->
        if not (List.mem key !consumed) then
          bad "unknown key \"%s\" for kind \"%s\"" key kname)
      fields;
    Ok { seq; time; kind }
  with Bad msg -> Error msg

(* ---- incremental stream validation ---------------------------------- *)

type event = t

type stream_error = { line : int; byte : int; message : string }

let stream_error_to_string e =
  Printf.sprintf "line %d (byte %d): %s" e.line e.byte e.message

(* Socket-framed input arrives in arbitrary chunks: a read may end in
   the middle of a line, and the very last line of a stream may lack
   its trailing newline.  [Feed] carries the undelivered suffix across
   calls and validates the whole-stream invariants (sequence numbers
   exactly [seq_start, seq_start+1, ...], time never decreasing) as
   lines complete.  Errors pin both the 1-based non-blank line number
   and the absolute byte offset of that line's first byte, so a caller
   resuming after a short read can report — or seek to — the exact
   spot. *)
module Feed = struct
  type nonrec t = {
    partial : Buffer.t;  (* bytes of the current unterminated line *)
    mutable next_seq : int;
    mutable prev_time : Rat.t option;
    mutable lines : int;  (* non-blank lines committed so far *)
    mutable line_start : int;  (* absolute offset of the current line *)
    mutable total : int;  (* absolute bytes fed so far *)
    mutable failed : stream_error option;
  }

  let create ?(seq_start = 0) () =
    {
      partial = Buffer.create 256;
      next_seq = seq_start;
      prev_time = None;
      lines = 0;
      line_start = 0;
      total = 0;
      failed = None;
    }

  let bytes_consumed t = t.line_start
  let next_seq t = t.next_seq

  let fail t message =
    let e = { line = t.lines + 1; byte = t.line_start; message } in
    t.failed <- Some e;
    Error e

  (* Validate one completed line.  Blank lines are ignored, as in the
     whole-document parser; a trailing '\r' is tolerated so CRLF
     socket clients work. *)
  let commit t raw acc =
    let raw =
      let n = String.length raw in
      if n > 0 && raw.[n - 1] = '\r' then String.sub raw 0 (n - 1) else raw
    in
    if raw = "" then Ok acc
    else
      match of_ndjson raw with
      | Error msg -> fail t msg
      | Ok ev ->
          if ev.seq <> t.next_seq then
            fail t
              (Printf.sprintf "sequence number %d, expected %d" ev.seq
                 t.next_seq)
          else if
            match t.prev_time with
            | Some p -> Rat.(ev.time < p)
            | None -> false
          then
            fail t
              (Printf.sprintf "time %s precedes the previous event"
                 (Rat.to_string ev.time))
          else begin
            t.lines <- t.lines + 1;
            t.next_seq <- ev.seq + 1;
            t.prev_time <- Some ev.time;
            Ok (ev :: acc)
          end

  let feed t ?(off = 0) ?len s =
    match t.failed with
    | Some e -> Error e
    | None ->
        let len =
          match len with Some l -> l | None -> String.length s - off
        in
        if off < 0 || len < 0 || off + len > String.length s then
          invalid_arg "Trace_event.Feed.feed";
        let stop = off + len in
        (* The absolute stream offset of [s.[x]] is [base + x]. *)
        let base = t.total - off in
        let rec go i acc =
          if i >= stop then Ok (List.rev acc)
          else
            match String.index_from_opt s i '\n' with
            | Some j when j < stop -> (
                Buffer.add_substring t.partial s i (j - i);
                let raw = Buffer.contents t.partial in
                Buffer.clear t.partial;
                match commit t raw acc with
                | Error e -> Error e
                | Ok acc ->
                    t.line_start <- base + j + 1;
                    go (j + 1) acc)
            | Some _ | None ->
                Buffer.add_substring t.partial s i (stop - i);
                Ok (List.rev acc)
        in
        let r = go off [] in
        t.total <- t.total + len;
        r

  (* End of stream: a final line without its trailing newline is
     accepted — exactly the case a short read leaves behind. *)
  let close t =
    match t.failed with
    | Some e -> Error e
    | None ->
        if Buffer.length t.partial = 0 then Ok []
        else begin
          let raw = Buffer.contents t.partial in
          Buffer.clear t.partial;
          match commit t raw [] with
          | Error e -> Error e
          | Ok acc ->
              t.line_start <- t.total;
              Ok (List.rev acc)
        end
end

(* Whole-stream validation: every line parses, sequence numbers are
   exactly 0, 1, 2, ... and time never goes backwards.  Built on
   {!Feed}, so a missing final newline is accepted and errors carry
   byte offsets alongside line numbers. *)
let parse_all text =
  let f = Feed.create () in
  match Feed.feed f text with
  | Error e -> Error (stream_error_to_string e)
  | Ok evs -> (
      match Feed.close f with
      | Error e -> Error (stream_error_to_string e)
      | Ok evs' -> Ok (evs @ evs'))

let pp fmt t =
  Format.fprintf fmt "#%d t=%a %s" t.seq Rat.pp t.time (kind_name t.kind)
