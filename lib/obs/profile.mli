(** Per-phase wall-time spans for the engine's profiling hooks.

    Shaped for a hot loop that is usually {e not} being profiled:
    {!enter} and {!leave} take the profiled component's [t option]
    directly, so the disabled path ([None]) is a single pattern match
    with no clock read — and the token is abstract, so call sites in
    the float-banned exact-arithmetic core (lint rule R1) never
    mention a float. *)

type t
type token

val create : unit -> t

val enter : t option -> token
(** Reads the clock only when profiling is on. *)

val leave : t option -> string -> token -> unit
(** Accrues the elapsed time since {!enter} to the named phase. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Convenience wrapper for cold paths; exception-safe. *)

val spans : t -> (string * float * int) list
(** [(phase, total seconds, calls)], sorted by phase name. *)

val total : t -> float
val reset : t -> unit
