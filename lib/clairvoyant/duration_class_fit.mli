(** Duration-classified First Fit.

    The time-axis dual of Harmonic/MFF size classification, and the key
    idea behind the constant-competitive {e clairvoyant} MinTotal
    algorithms in the follow-up literature (Li–Tang–Cai's journal
    version; Azar–Vainstein): classify items by predicted duration into
    geometric classes [[2^i, 2^(i+1)) * base] and run First Fit within
    each class.  Items sharing a bin then have durations within a
    factor 2 of each other, so a bin's span cannot be dominated by one
    long straggler — exactly the failure mode behind the Theorem 1
    lower bound.

    With perfect predictions this caps the effective per-bin μ at 2
    regardless of the workload's global μ. *)

open Dbp_num
open Dbp_core

val class_of : base:Rat.t -> duration:Rat.t -> int
(** The geometric class index: 0 for durations in [[base, 2 base)),
    negative for shorter, positive for longer.
    @raise Invalid_argument if [base <= 0] or [duration <= 0]. *)

val policy : ?base:Rat.t -> Predictor.t -> Policy.t
(** First Fit within the item's predicted-duration class ([base]
    defaults to 1, the generators' minimum interval length). *)
