(** Prediction-guided packing policies.

    The MinTotal cost of a bin is its usage time, so the right question
    at each arrival is not "where does the size fit best" (Best Fit —
    which Theorem 2 shows can be catastrophic) but "where does the
    {e lifetime} fit best".  Given predicted departures these policies
    answer it directly:

    - {!aligned_fit} puts the item into the fitting bin whose predicted
      closing time is closest to the item's predicted departure, so
      bins die together instead of lingering near-empty.  When even the
      best alignment is off by more than [mixing_threshold] times the
      item's predicted remaining lifetime it opens a dedicated bin
      instead (so it is deliberately {e not} an Any Fit algorithm —
      like MFF, it spends bins to avoid bad cohabitation);
    - {!least_extension_fit} puts the item where it extends the bin's
      predicted usage period the least (0 if it nests inside), the
      online analogue of the offline least-span-increase heuristic; it
      stays within the Any Fit family.

    Both degrade gracefully: with {!Predictor.Oblivious} predictions
    they collapse to (tie-broken) First Fit-like behaviour. *)

open Dbp_num
open Dbp_core

val aligned_fit : ?mixing_threshold:Rat.t -> Predictor.t -> Policy.t
(** [mixing_threshold] defaults to 1/2.
    @raise Invalid_argument if negative. *)

val least_extension_fit : Predictor.t -> Policy.t
