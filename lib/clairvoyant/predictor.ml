open Dbp_num
open Dbp_core
open Dbp_rand

type model =
  | Exact
  | Noisy of { sigma : float }
  | Scaled of { factor : Rat.t }
  | Oblivious

type t = Rat.t array

let build ?(seed = 13L) model instance =
  let rng = Splitmix64.create seed in
  let max_len = Instance.max_interval_length instance in
  Array.map
    (fun (r : Item.t) ->
      let true_len = Item.length r in
      let predicted_len =
        match model with
        | Exact -> true_len
        | Noisy { sigma } ->
            if sigma < 0.0 then invalid_arg "Predictor: negative sigma";
            let noise = exp (sigma *. Dist.normal rng ~mean:0.0 ~stddev:1.0) in
            let scaled =
              Rat.of_float ~den:10_000 (Rat.to_float true_len *. noise)
            in
            Rat.max (Rat.make 1 10_000) scaled
        | Scaled { factor } ->
            if Rat.sign factor <= 0 then
              invalid_arg "Predictor: factor must be positive";
            Rat.mul true_len factor
        | Oblivious -> max_len
      in
      Rat.add r.arrival predicted_len)
    (Instance.items instance)

let predicted_departure t id = t.(id)

let mean_absolute_error t instance =
  let n = Instance.size instance in
  let total =
    Array.to_list (Instance.items instance)
    |> List.map (fun (r : Item.t) -> Rat.abs (Rat.sub t.(r.id) r.departure))
    |> Rat.sum
  in
  Rat.div_int total n
