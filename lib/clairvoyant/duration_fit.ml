open Dbp_num
open Dbp_core

(* Both policies track which active items sit in which bin (the policy
   learns its own placements; the simulator confirms them by not
   raising) so the bin's predicted closing time is the max predicted
   departure of its current members. *)

type state = {
  item_bin : (int, int) Hashtbl.t;
  bin_items : (int, (int * Rat.t) list) Hashtbl.t;  (* (item, pred dep) *)
}

let new_state () =
  { item_bin = Hashtbl.create 64; bin_items = Hashtbl.create 16 }

let bin_close state ~now bin_id =
  match Hashtbl.find_opt state.bin_items bin_id with
  | None | Some [] -> now
  | Some members ->
      List.fold_left (fun acc (_, d) -> Rat.max acc d) now members

let record state ~bin_id ~item_id ~pred =
  Hashtbl.replace state.item_bin item_id bin_id;
  let members =
    Option.value ~default:[] (Hashtbl.find_opt state.bin_items bin_id)
  in
  Hashtbl.replace state.bin_items bin_id ((item_id, pred) :: members)

let forget state ~item_id =
  match Hashtbl.find_opt state.item_bin item_id with
  | None -> ()
  | Some bin_id ->
      Hashtbl.remove state.item_bin item_id;
      let members =
        Option.value ~default:[] (Hashtbl.find_opt state.bin_items bin_id)
        |> List.filter (fun (id, _) -> id <> item_id)
      in
      if members = [] then Hashtbl.remove state.bin_items bin_id
      else Hashtbl.replace state.bin_items bin_id members

(* Generic prediction-scored policy: choose the fitting bin with the
   minimal score (ties to the earliest-opened), or open a fresh bin
   when even the best score exceeds the acceptability bound computed by
   [too_poor].  The simulator allocates bin ids sequentially and this
   policy is the run's only opener, so the id of a freshly requested
   bin is the count of bins opened so far — that lets placements into
   new bins be recorded immediately. *)
let scored_policy ~name ~score ~too_poor predictor =
  Policy.make ~name (fun ~capacity:_ ->
      let state = new_state () in
      let bins_opened = ref 0 in
      let open_fresh ~item_id ~pred =
        let bin_id = !bins_opened in
        incr bins_opened;
        record state ~bin_id ~item_id ~pred;
        Policy.New_bin "dur"
      in
      {
        Policy.on_arrival =
          (fun ~now ~bins ~size ~item_id ->
            let pred = Predictor.predicted_departure predictor item_id in
            let fitting = Fit.fitting bins ~size in
            match fitting with
            | [] -> open_fresh ~item_id ~pred
            | first :: rest ->
                let best, best_score =
                  List.fold_left
                    (fun (best_v, best_s) (v : Bin.view) ->
                      let s =
                        score ~close:(bin_close state ~now v.bin_id) ~pred
                      in
                      if Rat.(s < best_s) then (v, s) else (best_v, best_s))
                    ( first,
                      score ~close:(bin_close state ~now first.Bin.bin_id) ~pred
                    )
                    rest
                in
                if too_poor ~now ~pred ~best_score then
                  open_fresh ~item_id ~pred
                else begin
                  record state ~bin_id:best.Bin.bin_id ~item_id ~pred;
                  Policy.Existing best.Bin.bin_id
                end);
        on_departure =
          (fun ~now:_ ~bins:_ ~item_id -> forget state ~item_id);
        (* The placement tables depend on the whole run history and
           have no serialisation; such a run cannot checkpoint. *)
        persistence = Policy.Volatile;
      })

(* Misalignment worse than half the item's predicted remaining lifetime
   wastes more bin-time than a dedicated bin risks: open fresh. *)
let default_mixing_threshold = Rat.make 1 2

let aligned_fit ?(mixing_threshold = default_mixing_threshold) predictor =
  if Rat.sign mixing_threshold < 0 then
    invalid_arg "Duration_fit.aligned_fit: negative threshold";
  scored_policy ~name:"aligned-fit"
    ~score:(fun ~close ~pred -> Rat.abs (Rat.sub close pred))
    ~too_poor:(fun ~now ~pred ~best_score ->
      let remaining = Rat.sub pred now in
      Rat.(best_score > Rat.mul mixing_threshold remaining))
    predictor

(* Placing into a fitting bin never extends predicted usage by more
   than a fresh bin would, so least-extension stays an Any Fit
   algorithm. *)
let least_extension_fit predictor =
  scored_policy ~name:"least-extension-fit"
    ~score:(fun ~close ~pred -> Rat.max Rat.zero (Rat.sub pred close))
    ~too_poor:(fun ~now:_ ~pred:_ ~best_score:_ -> false)
    predictor
