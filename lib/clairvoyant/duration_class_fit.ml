open Dbp_num
open Dbp_core

let class_of ~base ~duration =
  if Rat.sign base <= 0 then invalid_arg "Duration_class_fit: base <= 0";
  if Rat.sign duration <= 0 then
    invalid_arg "Duration_class_fit: duration <= 0";
  (* the integer i with base * 2^i <= duration < base * 2^(i+1) *)
  let rec up i bound =
    let next = Rat.mul_int bound 2 in
    if Rat.(duration < next) then i else up (i + 1) next
  in
  let rec down i bound =
    if Rat.(duration >= bound) then i
    else down (i - 1) (Rat.div_int bound 2)
  in
  if Rat.(duration >= base) then up 0 base
  else down (-1) (Rat.div_int base 2)

let policy ?(base = Rat.one) predictor =
  if Rat.sign base <= 0 then invalid_arg "Duration_class_fit.policy: base <= 0";
  Policy.make ~name:"duration-class-ff" (fun ~capacity:_ ->
      {
        Policy.on_arrival =
          (fun ~now ~bins ~size ~item_id ->
            let pred = Predictor.predicted_departure predictor item_id in
            let duration = Rat.max (Rat.sub pred now) (Rat.make 1 1_000_000) in
            let tag =
              Printf.sprintf "d%d" (class_of ~base ~duration)
            in
            let pool =
              List.filter
                (fun (v : Bin.view) -> String.equal v.bin_tag tag)
                bins
            in
            match Fit.first pool ~size with
            | Some v -> Policy.Existing v.bin_id
            | None -> Policy.New_bin tag);
        on_departure = Policy.no_departure_handler;
        (* Reads only the immutable predictor: a fresh spawn resumes
           exactly. *)
        persistence = Policy.Stateless;
      })
