(** Departure-time predictions.

    The paper's semi-online MFF assumes the provider knows μ from
    "statistics of historical playing data".  The same statistics can
    yield {e per-session} duration estimates; this module models them,
    from perfect clairvoyance down to pure noise, so the value of
    knowing departures can be measured (experiment E14).

    A prediction table gives, for each item id, a {e predicted
    departure time} available at the item's arrival.  Predictions never
    leak true departures to a policy except through the table — the
    simulator still hides them. *)

open Dbp_num
open Dbp_core

type model =
  | Exact  (** Perfect clairvoyance. *)
  | Noisy of { sigma : float }
      (** Multiplicative log-normal error on the duration:
          [predicted = len * exp(sigma * Z)], clamped to at least one
          grid step. *)
  | Scaled of { factor : Rat.t }
      (** Systematic bias: [predicted = len * factor]. *)
  | Oblivious
      (** No information: predicts the instance's maximum interval
          length for everyone (what knowing only μΔ gives you). *)

type t = private Rat.t array
(** Predicted departure time, indexed by item id. *)

val build : ?seed:int64 -> model -> Instance.t -> t
val predicted_departure : t -> int -> Rat.t

val mean_absolute_error : t -> Instance.t -> Rat.t
(** Mean |predicted - actual departure| over the items. *)
