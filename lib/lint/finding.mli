(** A single lint finding: rule, severity, position, message. *)

type severity = Error | Warning

type t = {
  rule : string;  (** "R1".."R6", or "parse" for unreadable sources. *)
  severity : severity;
  path : string;  (** As given to the scanner (cwd-relative in the CLI). *)
  line : int;  (** 1-based. *)
  col : int;  (** 0-based, matching compiler locations. *)
  message : string;
}

val make :
  rule:string ->
  severity:severity ->
  path:string ->
  line:int ->
  col:int ->
  string ->
  t

val compare : t -> t -> int
(** Orders by path, then line, column and rule — the report order. *)

val message_hash : t -> string
(** First 8 hex chars of the MD5 of the message — the stable,
    position-independent core of the fingerprint. *)

val fingerprint : t -> string
(** [rule|path|m<message-hash>] — the baseline-file identity of a
    finding.  Positions are deliberately excluded so edits above a
    baselined finding do not invalidate it; [Lint.fingerprints]
    appends an occurrence index ([|0], [|1], …) when the same message
    fires more than once in one file. *)

val legacy_fingerprint : t -> string
(** The pre-PR-8 positional format [rule|path|line|col].  Still
    matched when reading a baseline (with a deprecation note); never
    written by {!Lint.save_baseline}. *)

val is_legacy_fingerprint : string -> bool
(** Recognises an old positional baseline entry (numeric third and
    fourth fields). *)

val severity_to_string : severity -> string
val to_human : t -> string
val to_json : t -> string
val json_escape : string -> string
