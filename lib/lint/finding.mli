(** A single lint finding: rule, severity, position, message. *)

type severity = Error | Warning

type t = {
  rule : string;  (** "R1".."R6", or "parse" for unreadable sources. *)
  severity : severity;
  path : string;  (** As given to the scanner (cwd-relative in the CLI). *)
  line : int;  (** 1-based. *)
  col : int;  (** 0-based, matching compiler locations. *)
  message : string;
}

val make :
  rule:string ->
  severity:severity ->
  path:string ->
  line:int ->
  col:int ->
  string ->
  t

val compare : t -> t -> int
(** Orders by path, then line, column and rule — the report order. *)

val fingerprint : t -> string
(** [rule|path|line|col] — the baseline-file identity of a finding.
    The message is deliberately excluded so rule rewording does not
    invalidate baselines. *)

val severity_to_string : severity -> string
val to_human : t -> string
val to_json : t -> string
val json_escape : string -> string
