(* The typed lint tier (T1..T4) over compiler-emitted typedtrees.

   Where the parsetree tier (R1..R7) greps tokens, this tier reads the
   inferred types out of `.cmt` artifacts: T1 sees every
   instantiation of a polymorphic comparison at a type that *contains*
   [Rat.t] (tuples, records, options, lists — via a cross-file taint
   fixpoint over type declarations), T2 sees [Fixed.t] crossing the
   numeric-kernel boundary even through aliases ([type t = Fixed.t]
   resolves to the real path in a typedtree), T3 sees mutable state
   captured by closures handed to [Domain.spawn], and T4 counts boxed
   allocations and rational temporaries inside the engine's
   commit/view functions.

   Residual blind spots (documented in DESIGN.md): [Fixed.t] is a
   transparent [int] alias, so a value whose inferred type already
   collapsed to [int] is indistinguishable from an int (the alias
   *declarations* and explicit [Fixed.t] flows are what T2 catches);
   inside [lib/num/rat.ml] itself the local [t] is not recognised as
   [Rat.t]; and T3 cannot see through a closure bound to a variable
   before reaching [Domain.spawn]. *)

open Typedtree

let all_typed_rules =
  [
    {
      Rules.id = "T1";
      severity = Finding.Error;
      title = "typed-rat-compare";
      what =
        "a polymorphic comparison or hash (Stdlib =/<>/</<=/>/>=/\
         compare/min/max, Hashtbl.hash) instantiated at a type that \
         contains Rat.t — including tuples, records, options and \
         lists of rationals, found by a structural walk of the \
         inferred type; use Rat.equal / Rat.compare / a typed \
         comparison";
    };
    {
      Rules.id = "T2";
      severity = Finding.Error;
      title = "fixed-escape";
      what =
        "Fixed.t (a raw scaled integer) occurring in an inferred or \
         declared type outside lib/num and lib/core/simulator.ml — \
         including through type aliases, which resolve to the real \
         path in a typedtree (Fixed.scale, the opaque grid handle, \
         is the sanctioned API currency and stays allowed)";
    };
    {
      Rules.id = "T3";
      severity = Finding.Error;
      title = "typed-domain-confinement";
      what =
        "mutable state (ref, Atomic.t, Hashtbl.t, arrays, mutable \
         record fields) captured by a closure handed to Domain.spawn \
         outside the approved parallel runners \
         (lib/experiments/registry.ml, lib/serve/shard_pool.ml) — \
         the data-race groundwork for sharded fleet service";
    };
    {
      Rules.id = "T4";
      severity = Finding.Warning;
      title = "hot-path-alloc";
      what =
        "boxed allocations (closures, tuples, records, non-constant \
         constructors) or Rat.t-returning applications beyond a \
         threshold inside the engine's commit/view functions in \
         lib/core/simulator.ml — the static side of the bench \
         --assert-floor perf gate";
    };
  ]

let find_typed_rule id = List.find (fun r -> r.Rules.id = id) all_typed_rules

(* T4 thresholds: the commit/view core as shipped sits under these; a
   regression that reintroduces rational arithmetic or closure churn
   on the per-event path trips the gate. *)
let t4_max_boxed = 3
let t4_max_rat_temps = 4

(* ---- path keys ------------------------------------------------------- *)

(* Normalised constructor keys: the last module component (with dune's
   [Lib__Module] mangling stripped) dot the type/value name, so
   [Dbp_num__Rat.t], [Dbp_num.Rat.t] and a test fixture's local
   [Rat.t] all key as "Rat.t". *)

let norm_unit name =
  let n = String.length name in
  let rec go i start =
    if i + 1 >= n then start
    else if name.[i] = '_' && name.[i + 1] = '_' then go (i + 2) (i + 2)
    else go (i + 1) start
  in
  let start = go 0 0 in
  if start >= n then name else String.sub name start (n - start)

let predef_types =
  [
    "int"; "char"; "string"; "bytes"; "float"; "bool"; "unit"; "exn";
    "array"; "list"; "option"; "nativeint"; "int32"; "int64"; "lazy_t";
    "floatarray"; "extension_constructor";
  ]

let rec module_last = function
  | Path.Pident id -> norm_unit (Ident.name id)
  | Path.Pdot (_, s) -> norm_unit s
  | Path.Papply (_, p) -> module_last p
  | Path.Pextra_ty (p, _) -> module_last p

let path_key ~unit_name p =
  match p with
  | Path.Pident id ->
      let n = Ident.name id in
      if List.mem n predef_types then n else unit_name ^ "." ^ n
  | Path.Pdot (m, n) -> module_last m ^ "." ^ n
  | Path.Papply (_, p) -> module_last p
  | Path.Pextra_ty (p, _) -> module_last p

(* ---- structural type walk ------------------------------------------- *)

(* Visits every type-constructor path in a type expression.  [arrows]
   controls whether the walk descends into function types: T1/T2 do
   (the instantiated type of a comparison primitive *is* an arrow);
   T3 does not (a function value is not itself shared mutable
   state). *)
let iter_constrs ?(arrows = true) ~f ty =
  let visited = Hashtbl.create 16 in
  let rec go ty =
    let id = Types.get_id ty in
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      match Types.get_desc ty with
      | Types.Tconstr (p, args, _) ->
          f p;
          List.iter go args
      | Types.Ttuple l -> List.iter go l
      | Types.Tarrow (_, a, b, _) -> if arrows then (go a; go b)
      | Types.Tpoly (t, _) -> go t
      | Types.Tvariant row ->
          List.iter
            (fun (_, rf) ->
              match Types.row_field_repr rf with
              | Types.Rpresent (Some t) -> go t
              | Types.Reither (_, ts, _) -> List.iter go ts
              | _ -> ())
            (Types.row_fields row)
      | _ -> ()
    end
  in
  go ty

let type_mentions ?arrows ~unit_name ~tainted ty =
  let found = ref false in
  iter_constrs ?arrows
    ~f:(fun p -> if tainted (path_key ~unit_name p) then found := true)
    ty;
  !found

(* ---- taint ----------------------------------------------------------- *)

(* A declaration digest: the keys its right-hand side mentions, plus
   whether it declares a mutable record field.  Collected per scanned
   file, then closed into three taint sets by a fixpoint so
   containment propagates through aliases, records and variants in
   any declaration order — across files. *)
type decl = {
  d_key : string;
  d_contains : string list;
  d_mutable_field : bool;
  d_path : string;  (* source path of the declaring file *)
  d_loc : Location.t;
}

let decl_of_type_declaration ~unit_name ~path (td : Typedtree.type_declaration)
    =
  let keys = ref [] in
  let add ty =
    iter_constrs ~f:(fun p -> keys := path_key ~unit_name p :: !keys) ty
  in
  let t = td.typ_type in
  Option.iter add t.Types.type_manifest;
  let mutable_field = ref false in
  let add_labels lds =
    List.iter
      (fun (ld : Types.label_declaration) ->
        if ld.Types.ld_mutable = Asttypes.Mutable then mutable_field := true;
        add ld.Types.ld_type)
      lds
  in
  (match t.Types.type_kind with
  | Types.Type_record (lds, _) -> add_labels lds
  | Types.Type_variant (cds, _) ->
      List.iter
        (fun (cd : Types.constructor_declaration) ->
          match cd.Types.cd_args with
          | Types.Cstr_tuple ts -> List.iter add ts
          | Types.Cstr_record lds -> add_labels lds)
        cds
  | Types.Type_abstract | Types.Type_open -> ());
  {
    d_key = unit_name ^ "." ^ Ident.name td.typ_id;
    d_contains = List.sort_uniq String.compare !keys;
    d_mutable_field = !mutable_field;
    d_path = path;
    d_loc = td.typ_loc;
  }

(* Built-in seeds for the mutable-state taint: the stdlib's shared
   mutable containers, plus raw arrays and bytes. *)
let builtin_mutable =
  [
    "Stdlib.ref"; "ref"; "array"; "bytes"; "Atomic.t"; "Hashtbl.t";
    "Queue.t"; "Stack.t"; "Buffer.t";
  ]

type taint = {
  rat : (string, unit) Hashtbl.t;
  fixed : (string, unit) Hashtbl.t;
  mut : (string, unit) Hashtbl.t;
}

let is_rat_key k = k = "Rat.t"
let is_fixed_key k = k = "Fixed.t"

let close_taint decls =
  let rat = Hashtbl.create 64 in
  let fixed = Hashtbl.create 16 in
  let mut = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace mut k ()) builtin_mutable;
  let changed = ref true in
  let tainted tbl k = Hashtbl.mem tbl k in
  while !changed do
    changed := false;
    List.iter
      (fun d ->
        let mark tbl cond =
          if cond && not (Hashtbl.mem tbl d.d_key) then begin
            Hashtbl.replace tbl d.d_key ();
            changed := true
          end
        in
        mark rat
          (List.exists (fun k -> is_rat_key k || tainted rat k) d.d_contains);
        (* Fixed-taint only propagates through declarations *outside*
           the allowlist: lib/num's own scale/ops and the engine's
           internals are the sanctioned home, not an escape. *)
        mark fixed
          ((not (Rules.r7_allowlisted d.d_path))
          && List.exists
               (fun k -> is_fixed_key k || tainted fixed k)
               d.d_contains);
        mark mut
          (d.d_mutable_field
          || List.exists (fun k -> tainted mut k) d.d_contains))
      decls
  done;
  { rat; fixed; mut }

(* Declarations key by their *innermost enclosing module* — the same
   component [path_key] sees at use sites (a use of the injector's
   [Frozen.fev] resolves to [...Injector.Frozen.fev], whose last module
   component is "Frozen", not the unit name). *)
let collect_decls ~unit_name ~path str =
  let acc = ref [] in
  let current = ref (norm_unit unit_name) in
  let default = Tast_iterator.default_iterator in
  let it =
    {
      default with
      Tast_iterator.type_declaration =
        (fun self td ->
          acc := decl_of_type_declaration ~unit_name:!current ~path td :: !acc;
          default.Tast_iterator.type_declaration self td);
      Tast_iterator.module_binding =
        (fun self mb ->
          let saved = !current in
          (match mb.mb_name.Location.txt with
          | Some n -> current := n
          | None -> ());
          default.Tast_iterator.module_binding self mb;
          current := saved);
    }
  in
  it.Tast_iterator.structure it str;
  !acc

(* ---- the pass -------------------------------------------------------- *)

type ctx = {
  path : string;
  unit_name : string;
  taint : taint;
  mutable findings : Finding.t list;
  seen : (string * int * int, unit) Hashtbl.t;  (* rule, line, col *)
  exempt : (int * int, unit) Hashtbl.t;
      (* T1: ident locations proven safe by their application context
         (comparison against a constant constructor). *)
}

let report ctx ~rule ~loc fmt =
  let r = find_typed_rule rule in
  let pos = loc.Location.loc_start in
  let line = pos.Lexing.pos_lnum
  and col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol in
  Printf.ksprintf
    (fun message ->
      if not (Hashtbl.mem ctx.seen (rule, line, col)) then begin
        Hashtbl.replace ctx.seen (rule, line, col) ();
        ctx.findings <-
          Finding.make ~rule:r.Rules.id ~severity:r.Rules.severity
            ~path:ctx.path ~line ~col message
          :: ctx.findings
      end)
    fmt

let contains_rat ctx ty =
  type_mentions ~unit_name:ctx.unit_name
    ~tainted:(fun k -> is_rat_key k || Hashtbl.mem ctx.taint.rat k)
    ty

let contains_fixed ctx ty =
  type_mentions ~unit_name:ctx.unit_name
    ~tainted:(fun k -> is_fixed_key k || Hashtbl.mem ctx.taint.fixed k)
    ty

let contains_mutable ctx ty =
  type_mentions ~arrows:false ~unit_name:ctx.unit_name
    ~tainted:(fun k -> Hashtbl.mem ctx.taint.mut k)
    ty

let short_type ty = Format.asprintf "%a" Printtyp.type_expr ty

(* T1: the polymorphic comparison/hash primitives, recognised by their
   resolved path — a locally shadowed [compare] resolves elsewhere and
   is naturally exempt. *)
let poly_compare_keys =
  [
    "Stdlib.="; "Stdlib.<>"; "Stdlib.compare"; "Stdlib.<"; "Stdlib.<=";
    "Stdlib.>"; "Stdlib.>="; "Stdlib.min"; "Stdlib.max"; "Hashtbl.hash";
    "Hashtbl.seeded_hash"; "Hashtbl.hash_param";
  ]

(* Binary comparisons whose result cannot reach a [Rat.t] when one
   operand is a constant (nullary) constructor: the runtime compares
   an immediate against a block and stops at the tag, so [xs = []] and
   [o <> None] never recurse into the rationals inside.  [Hashtbl.hash]
   and partial applications get no such out. *)
let const_exempt_keys = [ "Stdlib.="; "Stdlib.<>"; "Stdlib.compare" ]

let is_const_construct e =
  match e.exp_desc with
  | Texp_construct (_, cd, []) -> cd.Types.cstr_arity = 0
  | Texp_variant (_, None) -> true
  | _ -> false

let loc_pos loc =
  let pos = loc.Location.loc_start in
  (pos.Lexing.pos_lnum, pos.Lexing.pos_cnum - pos.Lexing.pos_bol)

let exempt_const_compare ctx ~key fn args =
  if List.mem key const_exempt_keys then
    match args with
    | [ (Asttypes.Nolabel, Some a); (Asttypes.Nolabel, Some b) ]
      when is_const_construct a || is_const_construct b ->
        Hashtbl.replace ctx.exempt (loc_pos fn.exp_loc) ()
    | _ -> ()

let check_t1 ctx ~loc key e =
  if
    List.mem key poly_compare_keys
    && (not (Hashtbl.mem ctx.exempt (loc_pos loc)))
    && contains_rat ctx e.exp_type
  then
    report ctx ~rule:"T1" ~loc
      "polymorphic %s instantiated at %s, which contains Rat.t; use \
       Rat.equal / Rat.compare / a typed comparison"
      key (short_type e.exp_type)

(* T2: any inferred or declared type mentioning Fixed.t outside the
   allowlist.  Expression-level detection anchors on identifiers (every
   flow of a scaled value passes through one); declaration-level
   detection sees resolved paths, which is what closes the
   [type t = Fixed.t] alias hole. *)
let check_t2_expr ctx ~loc e =
  if contains_fixed ctx e.exp_type then
    report ctx ~rule:"T2" ~loc
      "inferred type %s contains Fixed.t outside lib/num and the two-track \
       engine (lib/core/simulator.ml); keep scaled integers behind the \
       engine boundary"
      (short_type e.exp_type)

(* ---- T3: mutable capture by spawned closures ------------------------- *)

let spawn_keys = [ "Domain.spawn" ]

(* Idents bound by patterns anywhere inside [e] (function parameters,
   lets, match cases): captures are the used idents minus these. *)
let bound_idents_in e =
  let acc = ref [] in
  let default = Tast_iterator.default_iterator in
  let it =
    {
      default with
      Tast_iterator.pat =
        (fun (type k) self (p : k general_pattern) ->
          (match p.pat_desc with
          | Tpat_var (id, _) -> acc := id :: !acc
          | Tpat_alias (_, id, _) -> acc := id :: !acc
          | _ -> ());
          default.Tast_iterator.pat self p);
    }
  in
  it.Tast_iterator.expr it e;
  !acc

let check_t3_spawn ctx spawn_arg =
  let bound = bound_idents_in spawn_arg in
  let is_bound id = List.exists (Ident.same id) bound in
  let default = Tast_iterator.default_iterator in
  let it =
    {
      default with
      Tast_iterator.expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) ->
              let free =
                match p with Path.Pident id -> not (is_bound id) | _ -> true
              in
              if free && contains_mutable ctx e.exp_type then
                report ctx ~rule:"T3" ~loc:e.exp_loc
                  "%s : %s is mutable state captured by a closure passed to \
                   Domain.spawn outside the approved parallel runners \
                   (lib/experiments/registry.ml, lib/serve/shard_pool.ml); \
                   confine shared state to a runner or pass immutable \
                   snapshots"
                  (Path.name p) (short_type e.exp_type)
          | _ -> ());
          default.Tast_iterator.expr self e);
    }
  in
  it.Tast_iterator.expr it spawn_arg

(* ---- T4: allocation census of the commit/view core ------------------- *)

(* The fast-track per-event core, by name.  Deliberately NOT every
   [commit_*]: [commit_arrival_exact] is the exact track — the boxed
   fallback the fast path exists to avoid — and reporting helpers like
   [fast_timeline_and_cost] run once per run, not per event. *)
let t4_hot_name n =
  List.mem n
    [
      "commit_fast"; "fast_view"; "refresh_slot"; "mark_dirty";
      "flush_views"; "open_slot_append"; "open_slot_remove"; "fast_views";
      "fast_advance_clock_s"; "fast_advance_clock";
    ]

let t4_applies path = Rules.has_infix ~infix:"lib/core/simulator.ml" path

type census = {
  mutable closures : int;
  mutable tuples : int;
  mutable records : int;
  mutable constructs : int;
  mutable rat_temps : int;
}

(* Calls that only run on a panic branch: the census skips their whole
   argument subtree (format-string literals compile to constructor
   nests, and a cold [invalid_step] message must not count against the
   per-event budget). *)
let cold_call p =
  let n = Path.last p in
  n = "failwith" || n = "raise" || n = "raise_notrace"
  || (String.length n >= 8 && String.sub n 0 8 = "invalid_")

let census_of ctx body =
  let c = { closures = 0; tuples = 0; records = 0; constructs = 0; rat_temps = 0 } in
  let default = Tast_iterator.default_iterator in
  let it =
    {
      default with
      Tast_iterator.expr =
        (fun self e ->
          match e.exp_desc with
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
            when cold_call p ->
              ()
          | _ ->
              (match e.exp_desc with
              | Texp_function _ -> c.closures <- c.closures + 1
              | Texp_tuple _ -> c.tuples <- c.tuples + 1
              | Texp_record _ -> c.records <- c.records + 1
              | Texp_construct (_, _, args) when args <> [] ->
                  c.constructs <- c.constructs + 1
              | Texp_apply _ when contains_rat ctx e.exp_type ->
                  c.rat_temps <- c.rat_temps + 1
              | _ -> ());
              default.Tast_iterator.expr self e);
    }
  in
  (* Strip the outermost parameter chain: the function's own lambda
     nodes are its calling convention, not per-event allocation. *)
  let rec strip e =
    match e.exp_desc with
    | Texp_function { cases = [ { c_rhs; c_guard = None; _ } ]; _ } ->
        strip c_rhs
    | _ -> e
  in
  let body = strip body in
  (match body.exp_desc with
  | Texp_function { cases; _ } ->
      List.iter
        (fun cs ->
          Option.iter (it.Tast_iterator.expr it) cs.c_guard;
          it.Tast_iterator.expr it cs.c_rhs)
        cases
  | _ -> it.Tast_iterator.expr it body);
  c

let check_t4 ctx ~loc name body =
  let c = census_of ctx body in
  let boxed = c.closures + c.tuples + c.records + c.constructs in
  if Sys.getenv_opt "DBP_LINT_T4_DEBUG" <> None then
    Printf.eprintf "T4 census %s: boxed=%d (c=%d t=%d r=%d k=%d) rat=%d\n%!"
      name boxed c.closures c.tuples c.records c.constructs c.rat_temps;
  if boxed > t4_max_boxed || c.rat_temps > t4_max_rat_temps then
    report ctx ~rule:"T4" ~loc
      "hot commit/view function %s allocates on the per-event path: %d \
       boxed (%d closures, %d tuples, %d records, %d constructors; max %d) \
       and %d Rat.t temporaries (max %d); keep the commit core on unboxed \
       scaled ints"
      name boxed c.closures c.tuples c.records c.constructs t4_max_boxed
      c.rat_temps t4_max_rat_temps

(* ---- entry point ----------------------------------------------------- *)

let check ~path ~unit_name ~taint str =
  let ctx =
    {
      path;
      unit_name;
      taint;
      findings = [];
      seen = Hashtbl.create 64;
      exempt = Hashtbl.create 16;
    }
  in
  let t2_scope = not (Rules.r7_allowlisted path) in
  let t3_scope = not (Rules.r5_allowlisted path) in
  let fixed_ctor k = is_fixed_key k || Hashtbl.mem taint.fixed k in
  let default = Tast_iterator.default_iterator in
  let it =
    {
      default with
      Tast_iterator.expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) ->
              let key = path_key ~unit_name p in
              check_t1 ctx ~loc:e.exp_loc key e;
              if t2_scope then check_t2_expr ctx ~loc:e.exp_loc e
          | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as fn), args)
            ->
              let key = path_key ~unit_name p in
              exempt_const_compare ctx ~key fn args;
              if t3_scope && List.mem key spawn_keys then
                List.iter
                  (fun (_, arg) -> Option.iter (check_t3_spawn ctx) arg)
                  args
          | _ -> ());
          default.Tast_iterator.expr self e);
      Tast_iterator.typ =
        (fun self ct ->
          (match ct.ctyp_desc with
          | Ttyp_constr (p, _, _)
            when t2_scope && fixed_ctor (path_key ~unit_name p) ->
              report ctx ~rule:"T2" ~loc:ct.ctyp_loc
                "declared type mentions Fixed.t (as %s) outside lib/num and \
                 the two-track engine (lib/core/simulator.ml); aliases do \
                 not hide the scaled representation from the typed tier"
                (Path.name p)
          | _ -> ());
          default.Tast_iterator.typ self ct);
      Tast_iterator.value_binding =
        (fun self vb ->
          (if t4_applies path then
             match vb.vb_pat.pat_desc with
             | Tpat_var (_, { txt = name; _ }) when t4_hot_name name ->
                 check_t4 ctx ~loc:vb.vb_pat.pat_loc name vb.vb_expr
             | _ -> ());
          default.Tast_iterator.value_binding self vb);
    }
  in
  it.Tast_iterator.structure it str;
  List.sort Finding.compare ctx.findings
