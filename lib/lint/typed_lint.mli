(** Driver for the typed lint tier: loads [.cmt] typedtrees dune left
    under [_build] and runs {!Typed_rules} over them, sharing
    {!Finding} / baseline plumbing with the syntactic tier.  Also
    exposes an in-memory typechecking front end so the test suite can
    lint fixture strings without touching the filesystem. *)

val discover_cmts :
  ?build_dir:string ->
  roots:string list ->
  unit ->
  (string * string) list
(** [(source_path, unit_name)] for every implementation cmt found under
    [build_dir] (default: [_build/default] if present, else ["."]) whose
    recorded source lives under one of [roots].  Deduplicated by source
    path.  @raise Failure if [build_dir] does not exist. *)

val collect :
  ?build_dir:string -> roots:string list -> unit -> Finding.t list * int
(** All typed findings plus the number of files scanned.
    @raise Failure if no cmt artifacts were found (build first). *)

val run :
  ?baseline:string list ->
  ?build_dir:string ->
  roots:string list ->
  unit ->
  Lint.report

val typecheck_source : path:string -> source:string -> Typedtree.structure
(** Typechecks one source string against the initial (stdlib-only)
    environment.  Fixtures carry their own stub modules; {!Typed_rules}
    keys on the last module component, so a stub [Rat.t] matches the
    real one.  Raises the compiler's typing exception on error. *)

val run_typed_sources :
  ?baseline:string list -> (string * string) list -> Lint.report
(** The typed twin of [Lint.run_sources]: typechecks each
    [(path, source)] fixture in-memory (a failure to typecheck becomes
    a ["typecheck"] error finding), closes the taint over all fixtures'
    declarations, then runs T1..T4 on each. *)
