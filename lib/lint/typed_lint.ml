(* Driver for the typed lint tier: .cmt discovery and loading for
   `dbp check --typed` / the dune `@lint-typed` alias, plus an
   in-memory typechecking front end for the fixture tests (the typed
   twin of [Lint.run_sources]).

   Dune always compiles with -bin-annot, so building the repo leaves a
   typedtree for every module under
   [_build/default/<dir>/.<lib>.objs/byte/*.cmt]; each cmt records the
   relative source path it was compiled from, which drives the same
   path-based rule scoping as the syntactic tier. *)

(* ---- cmt discovery --------------------------------------------------- *)

let is_cmt path =
  String.length path > 4 && String.sub path (String.length path - 4) 4 = ".cmt"

let rec collect_cmts acc dir =
  Sys.readdir dir |> Array.to_list |> List.sort String.compare
  |> List.fold_left
       (fun acc entry ->
         let p = Filename.concat dir entry in
         if Sys.is_directory p then
           if entry = ".git" || entry = "node_modules" then acc
           else collect_cmts acc p
         else if is_cmt p then p :: acc
         else acc)
       acc

(* The build root holding the artifacts: [_build/default] when invoked
   from the workspace root, the current directory when already inside
   it (how a dune rule action runs). *)
let default_build_dir () =
  if Sys.file_exists "_build/default" && Sys.is_directory "_build/default"
  then "_build/default"
  else "."

let source_under ~roots src =
  List.exists
    (fun root ->
      let root = if Filename.check_suffix root "/" then root else root ^ "/" in
      String.length src >= String.length root
      && String.sub src 0 (String.length root) = root)
    roots

type loaded = {
  l_path : string;  (* relative source path, e.g. "lib/core/simulator.ml" *)
  l_unit : string;  (* normalised unit name, e.g. "Simulator" *)
  l_str : Typedtree.structure;
}

let load_cmt cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | {
      Cmt_format.cmt_annots = Cmt_format.Implementation str;
      cmt_sourcefile = Some src;
      cmt_modname;
      _;
    } ->
      Some
        {
          l_path = src;
          l_unit = Typed_rules.norm_unit cmt_modname;
          l_str = str;
        }
  | _ -> None
  | exception _ ->
      (* A cmt from another compiler version, or a truncated artifact:
         skip it rather than kill the whole pass. *)
      None

let load_all ?build_dir ~roots () =
  let build_dir =
    match build_dir with Some d -> d | None -> default_build_dir ()
  in
  if not (Sys.file_exists build_dir && Sys.is_directory build_dir) then
    failwith
      (Printf.sprintf "typed lint: build dir %s does not exist (run dune \
                       build first)" build_dir)
  else begin
    let candidates =
      List.filter
        (fun r ->
          let d = Filename.concat build_dir r in
          Sys.file_exists d && Sys.is_directory d)
        roots
    in
    let cmts =
      List.fold_left
        (fun acc r -> collect_cmts acc (Filename.concat build_dir r))
        [] candidates
      |> List.sort String.compare
    in
    (* One typedtree per source file: dune can leave several cmts for
       one module (e.g. under different contexts); keep the first. *)
    let seen = Hashtbl.create 64 in
    List.filter_map
      (fun cmt ->
        match load_cmt cmt with
        | Some l
          when source_under ~roots l.l_path && not (Hashtbl.mem seen l.l_path)
          ->
            Hashtbl.replace seen l.l_path ();
            Some l
        | _ -> None)
      cmts
  end

let discover_cmts ?build_dir ~roots () =
  List.map (fun l -> (l.l_path, l.l_unit)) (load_all ?build_dir ~roots ())

(* ---- running over loaded trees --------------------------------------- *)

let findings_of_loaded loaded =
  let decls =
    List.concat_map
      (fun l ->
        Typed_rules.collect_decls ~unit_name:l.l_unit ~path:l.l_path l.l_str)
      loaded
  in
  let taint = Typed_rules.close_taint decls in
  List.concat_map
    (fun l -> Typed_rules.check ~path:l.l_path ~unit_name:l.l_unit ~taint l.l_str)
    loaded

let collect ?build_dir ~roots () =
  let loaded = load_all ?build_dir ~roots () in
  if loaded = [] then
    failwith
      "typed lint: no .cmt artifacts found under the requested roots (run \
       dune build first)";
  (findings_of_loaded loaded, List.length loaded)

let run ?(baseline = []) ?build_dir ~roots () =
  let all, files_scanned = collect ?build_dir ~roots () in
  Lint.report_of ~baseline ~files_scanned all

(* ---- in-memory typechecking (fixture tests) -------------------------- *)

(* Typechecks a source string against the ambient initial environment
   (stdlib only).  Fixtures bring their own stub modules (a local
   [module Rat : sig ... end] etc.) — the typed rules key on the last
   module component, so a stub [Rat.t] and the real [Dbp_num__Rat.t]
   normalise to the same "Rat.t". *)

let init_typecheck =
  lazy
    (Clflags.dont_write_files := true;
     Compmisc.init_path ();
     Compmisc.initial_env ())

let unit_name_of_path path =
  let base = Filename.remove_extension (Filename.basename path) in
  String.capitalize_ascii base

let typecheck_source ~path ~source =
  let env = Lazy.force init_typecheck in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  let parsed = Parse.implementation lexbuf in
  let str, _, _, _, _ = Typemod.type_structure env parsed in
  str

let run_typed_sources ?(baseline = []) sources =
  (* Two passes, mirroring the cmt driver: first collect declarations
     from every fixture that typechecks (for the cross-file taint),
     then run the rules. *)
  let typed =
    List.map
      (fun (path, source) ->
        match typecheck_source ~path ~source with
        | str -> (path, Ok str)
        | exception e -> (path, Error e))
      sources
  in
  let decls =
    List.concat_map
      (fun (path, r) ->
        match r with
        | Ok str ->
            Typed_rules.collect_decls
              ~unit_name:(unit_name_of_path path) ~path str
        | Error _ -> [])
      typed
  in
  let taint = Typed_rules.close_taint decls in
  let findings =
    List.concat_map
      (fun (path, r) ->
        match r with
        | Ok str ->
            Typed_rules.check ~path ~unit_name:(unit_name_of_path path) ~taint
              str
        | Error e ->
            let msg =
              match Location.error_of_exn e with
              | Some (`Ok report) ->
                  Format.asprintf "%a" Location.print_report report
              | _ -> Printexc.to_string e
            in
            [
              Finding.make ~rule:"typecheck" ~severity:Finding.Error ~path
                ~line:1 ~col:0
                (Printf.sprintf "fixture does not typecheck: %s" msg);
            ])
      typed
  in
  Lint.report_of ~baseline ~files_scanned:(List.length sources) findings
