(* The seeded rule set (R1..R7) over the compiler-libs parsetree.

   The pass is purely syntactic: no type information is available, so
   every rule is a conservative heuristic with its blind spots
   documented in DESIGN.md ("Correctness tooling").  The repo-wide
   guarantee comes from the combination with the runtime auditor
   ([Dbp_core.Audit]), which checks the dynamic invariants the linter
   cannot see. *)

open Parsetree

type rule = {
  id : string;
  severity : Finding.severity;
  title : string;
  what : string;  (* one-line description, for --rules and the docs *)
}

let all_rules =
  [
    {
      id = "R1";
      severity = Finding.Error;
      title = "no-float-in-exact-core";
      what =
        "float literals, float operators (+. etc.), Float.* and bare \
         float conversions are banned in the exact-arithmetic \
         libraries (lib/core, lib/analysis, lib/adversary, \
         lib/repack, and lib/num/vec.ml's exact vector kernel); use \
         Rat (display-only modules stats/chart/timeline_render are \
         exempt)";
    };
    {
      id = "R2";
      severity = Finding.Error;
      title = "no-float-equality";
      what =
        "= / <> with a float literal operand anywhere; use an epsilon \
         test or Float.equal deliberately";
    };
    {
      id = "R3";
      severity = Finding.Warning;
      title = "no-polymorphic-compare-on-rat";
      what =
        "polymorphic = / <> / compare / Hashtbl.hash where a Rat.t \
         could flow (operand mentions Rat, or bare unshadowed \
         compare); use Rat.equal / Rat.compare / Int.compare";
    };
    {
      id = "R4";
      severity = Finding.Warning;
      title = "no-catch-all-try";
      what =
        "try ... with _ -> swallows every exception (including \
         Audit_violation and Rat.Overflow); match the exceptions you \
         mean";
    };
    {
      id = "R5";
      severity = Finding.Error;
      title = "confine-domain-primitives";
      what =
        "Domain / Atomic / Mutex / Condition / Thread usage is \
         confined to lib/experiments/registry.ml and \
         lib/serve/shard_pool.ml (the approved parallel runners); \
         new shared state must go through one of them";
    };
    {
      id = "R6";
      severity = Finding.Warning;
      title = "no-list-scans-in-hot-path";
      what =
        "List.mem / List.find / List.assoc / List.nth (and variants) \
         and Rat.sum-over-a-list in the O(open-bins) engine and \
         policy modules, the per-draw workload sampler, the \
         per-event repacker (budget/planner/runner), and the fault \
         injector's per-event degradation ladder reintroduce \
         linear scans and per-element rational folds those paths \
         were rewritten to avoid (fit.ml's vetted open-fleet scan is \
         the allowed primitive; fold the dense array instead)";
    };
    {
      id = "R7";
      severity = Finding.Error;
      title = "confine-fixed-point";
      what =
        "Fixed.t construction and scaled-integer arithmetic are \
         confined to lib/num and lib/core/simulator.ml (the \
         two-track engine); everywhere else stays on exact Rat so a \
         raw scaled int can never leak into results";
    };
  ]

let find_rule id = List.find (fun r -> r.id = id) all_rules

(* ---- path scoping --------------------------------------------------- *)

let has_infix ~infix path =
  let n = String.length path and m = String.length infix in
  let rec go i = i + m <= n && (String.sub path i m = infix || go (i + 1)) in
  m > 0 && go 0

let basename path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

(* Display-only modules: they summarise already-converted floats for
   human-facing tables and ASCII/SVG charts; nothing exact flows
   through them. *)
let r1_display_exempt path =
  has_infix ~infix:"lib/analysis/" path
  && List.mem (basename path)
       [ "stats.ml"; "chart.ml"; "timeline_render.ml" ]

let r1_applies path =
  (has_infix ~infix:"lib/core/" path
  || has_infix ~infix:"lib/analysis/" path
  || has_infix ~infix:"lib/adversary/" path
  || has_infix ~infix:"lib/repack/" path
  (* The vector kernel shares Rat's exactness contract; the rest of
     lib/num (rat.ml's own conversions, fixed.ml) stays exempt. *)
  || has_infix ~infix:"lib/num/vec.ml" path)
  && not (r1_display_exempt path)

(* The two sanctioned homes for domain-parallel primitives: the
   experiment runner and the fleet service's shard pool.  Everything
   else must route parallelism through one of them. *)
let r5_allowlisted path =
  has_infix ~infix:"lib/experiments/registry.ml" path
  || has_infix ~infix:"lib/serve/shard_pool.ml" path

let r6_hot_modules =
  [
    "simulator.ml"; "open_index.ml"; "bin.ml"; "packing.ml"; "event.ml";
    (* The per-arrival policy handlers are on the same O(open bins)
       event path as the engine itself.  [fit.ml] stays exempt: its
       single vetted scan over the open-fleet view is the primitive
       the policies are allowed to share. *)
    "first_fit.ml"; "best_fit.ml"; "worst_fit.ml"; "last_fit.ml";
    "next_fit.ml"; "random_fit.ml"; "harmonic_fit.ml";
    "modified_first_fit.ml"; "policy.ml";
    (* The vector engine and its policy family replay the same
       O(open bins) per-event path; the instance module feeds their
       event loop. *)
    "vec_simulator.ml"; "vec_policy.ml"; "vec_instance.ml";
  ]

(* The workload sampler draws once per generated item, so a linear
   scan there is O(catalog) per draw — the Discrete_sizes List.nth
   regression this extension was added to catch. *)
let r6_workload_modules = [ "generator.ml" ]

(* The repacker plans after every departure instant and meters every
   move, so its budget, planner and runner sit on the same per-event
   path as the engine. *)
let r6_repack_modules = [ "budget.ml"; "repack_policy.ml"; "runner.ml" ]

(* The degradation ladder (migrate -> evict/retry -> shed) runs per
   fault event, putting the injector on the same hot path as the
   repack runner. *)
let r6_faults_modules = [ "injector.ml" ]

let r7_allowlisted path =
  has_infix ~infix:"lib/num/" path
  || has_infix ~infix:"lib/core/simulator.ml" path

let r6_applies path =
  (has_infix ~infix:"lib/core/" path && List.mem (basename path) r6_hot_modules)
  || has_infix ~infix:"lib/workload/" path
     && List.mem (basename path) r6_workload_modules
  || has_infix ~infix:"lib/repack/" path
     && List.mem (basename path) r6_repack_modules
  || has_infix ~infix:"lib/faults/" path
     && List.mem (basename path) r6_faults_modules

(* ---- longident helpers ---------------------------------------------- *)

let rec longident_root = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, _) -> longident_root l
  | Longident.Lapply (l, _) -> longident_root l

let longident_to_string l = String.concat "." (Longident.flatten l)

let float_operators = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let float_stdlib_fns =
  [
    "float_of_int"; "int_of_float"; "float_of_string";
    "float_of_string_opt"; "truncate"; "sqrt"; "exp"; "log"; "log10";
    "mod_float"; "abs_float"; "nan"; "infinity"; "neg_infinity";
    "epsilon_float"; "max_float"; "min_float";
  ]

let domain_modules = [ "Domain"; "Atomic"; "Mutex"; "Condition"; "Thread"; "Semaphore" ]

let r6_banned_list_fns =
  [
    "mem"; "memq"; "find"; "find_opt"; "find_index"; "assoc"; "assoc_opt";
    "assq"; "assq_opt"; "mem_assoc"; "mem_assq"; "nth"; "nth_opt";
  ]

(* Rat.* functions whose result is *not* a Rat.t: a mention under one
   of these does not put a rational on either side of a comparison. *)
let rat_escaping_fns =
  [
    "sign"; "num"; "den"; "floor"; "ceil"; "to_float"; "to_string";
    "hash"; "is_zero"; "is_integer"; "compare"; "equal"; "pp"; "pp_float";
  ]

(* Does the expression subtree mention a value of (plausible) type
   [Rat.t]?  True for any [Rat.x] reference except the escaping
   functions above, and for [Rat.(...)] local opens. *)
let mentions_rat expr =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Rat", fn); _ }
            when List.mem fn rat_escaping_fns ->
              ()
          | Pexp_ident { txt; _ } when longident_root txt = "Rat" ->
              found := true
          | Pexp_open
              ( { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ },
                _ )
            when longident_root txt = "Rat" ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e)
    }
  in
  it.expr it expr;
  !found

(* ---- the pass ------------------------------------------------------- *)

type ctx = {
  path : string;
  mutable findings : Finding.t list;
  (* Earliest line of a *structure-level* [let compare] binding: from
     there on, bare [compare] is the file's own.  Local bindings do
     not touch this — they are tracked by [compare_shadow_depth]
     while their scope is being visited, so a shadow inside one
     function no longer suppresses findings in later functions. *)
  mutable toplevel_compare_from : int option;
  (* Depth of enclosing scopes (let-in, fun parameter, match case)
     that rebind [compare]. *)
  mutable compare_shadow_depth : int;
  (* Depth of enclosing [Rat.(...)] / [let open Rat in] scopes, where
     (=) is Rat's own exact comparison, not the polymorphic one. *)
  mutable rat_open_depth : int;
}

let report ctx ~rule ~loc fmt =
  let r = find_rule rule in
  let pos = loc.Location.loc_start in
  let line = pos.Lexing.pos_lnum
  and col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol in
  Printf.ksprintf
    (fun message ->
      ctx.findings <-
        Finding.make ~rule:r.id ~severity:r.severity ~path:ctx.path ~line ~col
          message
        :: ctx.findings)
    fmt

let compare_is_shadowed ctx line =
  ctx.compare_shadow_depth > 0
  ||
  match ctx.toplevel_compare_from with Some l -> line >= l | None -> false

let check_ident ctx ~loc txt =
  let root = longident_root txt in
  let name = longident_to_string txt in
  (* R1: float operators, Float.*, bare float conversions. *)
  if r1_applies ctx.path then begin
    (match txt with
    | Longident.Lident op when List.mem op float_operators ->
        report ctx ~rule:"R1" ~loc "float operator (%s) in exact-arithmetic library" op
    | Longident.Lident fn when List.mem fn float_stdlib_fns ->
        report ctx ~rule:"R1" ~loc "float primitive %s in exact-arithmetic library" fn
    | _ -> ());
    if root = "Float" then
      report ctx ~rule:"R1" ~loc "Float.* (%s) in exact-arithmetic library" name
  end;
  (* R5: domain-parallel primitives outside the approved runner. *)
  if List.mem root domain_modules && not (r5_allowlisted ctx.path) then
    report ctx ~rule:"R5" ~loc
      "%s outside the approved parallel runners \
       (lib/experiments/registry.ml, lib/serve/shard_pool.ml)"
      name;
  (* R3 (part): the polymorphic comparison/hash primitives themselves,
     applied or passed as arguments (e.g. [List.sort compare]). *)
  (match txt with
  | Longident.Ldot (Longident.Lident "Hashtbl", ("hash" | "seeded_hash" | "hash_param")) ->
      report ctx ~rule:"R3" ~loc
        "%s is the polymorphic hash; use Rat.hash / a typed hash" name
  | Longident.Lident "compare"
    when not
           (compare_is_shadowed ctx loc.Location.loc_start.Lexing.pos_lnum) ->
      report ctx ~rule:"R3" ~loc
        "bare polymorphic compare; use Rat.compare / Int.compare / a typed \
         comparison"
  | Longident.Ldot (Longident.Lident "Stdlib", "compare") ->
      report ctx ~rule:"R3" ~loc
        "Stdlib.compare is the polymorphic comparison; use Rat.compare / \
         Int.compare / a typed comparison"
  | _ -> ());
  (* R7: the fixed-point module must not leak out of the numeric
     kernel and the engine that owns the fallback contract. *)
  if List.mem "Fixed" (Longident.flatten txt) && not (r7_allowlisted ctx.path)
  then
    report ctx ~rule:"R7" ~loc
      "%s outside lib/num and the two-track engine \
       (lib/core/simulator.ml); pass exact Rat values and let the \
       engine decide the representation"
      name;
  (* R6: linear list scans in the hot-path engine modules. *)
  match txt with
  | Longident.Ldot (Longident.Lident "List", fn)
    when List.mem fn r6_banned_list_fns && r6_applies ctx.path ->
      report ctx ~rule:"R6" ~loc
        "List.%s in a hot-path engine module (O(n) scan); use the dense \
         store / Open_index / a hashtable"
        fn
  | Longident.Ldot (Longident.Lident "Rat", "sum") when r6_applies ctx.path ->
      report ctx ~rule:"R6" ~loc
        "Rat.sum folds a list on a hot path; fold the dense array with \
         Rat.add instead"
  | _ -> ()

let is_float_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

let check_apply ctx ~loc fn args =
  match fn.pexp_desc with
  | Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }
  | Pexp_ident
      { txt = Longident.Ldot (Longident.Lident "Stdlib", (("=" | "<>") as op)); _ }
    -> (
      let operands = List.map snd args in
      (* R2: float-literal equality, anywhere. *)
      if List.exists is_float_literal operands then
        report ctx ~rule:"R2" ~loc
          "float %s comparison against a literal; use an epsilon test or \
           Float.equal deliberately"
          op
      (* R3: polymorphic equality with a rational on either side.
         Inside Rat.(...) the operator is Rat's own exact one. *)
      else if ctx.rat_open_depth = 0 && List.exists mentions_rat operands then
        report ctx ~rule:"R3" ~loc
          "polymorphic %s on a Rat.t-bearing expression; use Rat.equal" op)
  | _ -> ()

let is_rat_open_expr ctx e =
  ignore ctx;
  match e.pexp_desc with
  | Pexp_open ({ popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }, _)
    ->
      longident_root txt = "Rat"
  | _ -> false

(* Does the pattern bind the name [compare] anywhere (var, alias,
   inside a tuple/record/or-pattern)? *)
let pat_binds_compare pat =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt = "compare"; _ }
          | Ppat_alias (_, { txt = "compare"; _ }) ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.pat it pat;
  !found

let with_compare_shadow ctx f =
  ctx.compare_shadow_depth <- ctx.compare_shadow_depth + 1;
  f ();
  ctx.compare_shadow_depth <- ctx.compare_shadow_depth - 1

(* A match/function/try case: the rebinding is in scope for the guard
   and the right-hand side only. *)
let visit_case ctx (self : Ast_iterator.iterator) c =
  self.pat self c.pc_lhs;
  let visit () =
    Option.iter (self.expr self) c.pc_guard;
    self.expr self c.pc_rhs
  in
  if pat_binds_compare c.pc_lhs then with_compare_shadow ctx visit
  else visit ()

let case_rebinds c = pat_binds_compare c.pc_lhs

let check ~path structure =
  let ctx =
    {
      path;
      findings = [];
      toplevel_compare_from = None;
      compare_shadow_depth = 0;
      rat_open_depth = 0;
    }
  in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> check_ident ctx ~loc:e.pexp_loc txt
          | Pexp_constant (Pconst_float _) when r1_applies ctx.path ->
              report ctx ~rule:"R1" ~loc:e.pexp_loc
                "float literal in exact-arithmetic library; use Rat.make"
          | Pexp_apply (fn, args) -> check_apply ctx ~loc:e.pexp_loc fn args
          | Pexp_try (_, cases) ->
              List.iter
                (fun c ->
                  match (c.pc_lhs.ppat_desc, c.pc_guard) with
                  | Ppat_any, None ->
                      report ctx ~rule:"R4" ~loc:c.pc_lhs.ppat_loc
                        "catch-all try ... with _ swallows every exception; \
                         match the exceptions you mean"
                  | _ -> ())
                cases
          | _ -> ());
          if is_rat_open_expr ctx e then begin
            ctx.rat_open_depth <- ctx.rat_open_depth + 1;
            default.expr self e;
            ctx.rat_open_depth <- ctx.rat_open_depth - 1
          end
          else
            (* Local [compare] rebindings shadow only their own scope
               (binding extents), not the rest of the file. *)
            match e.pexp_desc with
            | Pexp_let (rf, vbs, body)
              when List.exists (fun vb -> pat_binds_compare vb.pvb_pat) vbs ->
                let visit_vbs () = List.iter (self.value_binding self) vbs in
                if rf = Asttypes.Recursive then
                  with_compare_shadow ctx (fun () ->
                      visit_vbs ();
                      self.expr self body)
                else begin
                  visit_vbs ();
                  with_compare_shadow ctx (fun () -> self.expr self body)
                end
            | Pexp_fun (_, default_arg, pat, body) when pat_binds_compare pat
              ->
                Option.iter (self.expr self) default_arg;
                self.pat self pat;
                with_compare_shadow ctx (fun () -> self.expr self body)
            | Pexp_function cases when List.exists case_rebinds cases ->
                List.iter (visit_case ctx self) cases
            | Pexp_match (scrut, cases) when List.exists case_rebinds cases ->
                self.expr self scrut;
                List.iter (visit_case ctx self) cases
            | Pexp_try (body, cases) when List.exists case_rebinds cases ->
                self.expr self body;
                List.iter (visit_case ctx self) cases
            | _ -> default.expr self e);
      structure_item =
        (fun self item ->
          (* A structure-level [let compare] genuinely shadows the rest
             of the file (modulo its own non-recursive RHS, where the
             watermark is conservative). *)
          (match item.pstr_desc with
          | Pstr_value (_, vbs)
            when List.exists (fun vb -> pat_binds_compare vb.pvb_pat) vbs ->
              let line = item.pstr_loc.Location.loc_start.Lexing.pos_lnum in
              ctx.toplevel_compare_from <-
                (match ctx.toplevel_compare_from with
                | Some l -> Some (min l line)
                | None -> Some line)
          | _ -> ());
          default.structure_item self item);
      typ =
        (fun self t ->
          (match t.ptyp_desc with
          | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, _)
            when r1_applies ctx.path ->
              report ctx ~rule:"R1" ~loc:t.ptyp_loc
                "float type annotation in exact-arithmetic library; use Rat.t"
          | Ptyp_constr ({ txt; _ }, _)
            when List.mem "Fixed" (Longident.flatten txt)
                 && not (r7_allowlisted ctx.path) ->
              report ctx ~rule:"R7" ~loc:t.ptyp_loc
                "%s type outside lib/num and the two-track engine \
                 (lib/core/simulator.ml); keep scaled integers behind the \
                 engine boundary"
                (longident_to_string txt)
          | _ -> ());
          default.typ self t);
    }
  in
  it.structure it structure;
  List.sort Finding.compare ctx.findings
