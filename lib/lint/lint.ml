(* Lint driver: source discovery, parsing, baseline bookkeeping and
   report rendering.  The CLI front end is [bin/main.ml]'s `dbp check`;
   the dune `@lint` alias runs the same entry points. *)

type report = {
  findings : Finding.t list;  (* new findings, not in the baseline *)
  baselined : int;  (* findings suppressed by the baseline *)
  stale_baseline : string list;  (* baseline entries that no longer fire *)
  legacy_baseline : int;  (* old-format (line/col) entries that matched *)
  files_scanned : int;
}

(* ---- parsing -------------------------------------------------------- *)

let lint_source ~path ~source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Rules.check ~path structure
  | exception Syntaxerr.Error _ ->
      let pos = lexbuf.Lexing.lex_curr_p in
      [
        Finding.make ~rule:"parse" ~severity:Finding.Error ~path
          ~line:pos.Lexing.pos_lnum
          ~col:(pos.Lexing.pos_cnum - pos.Lexing.pos_bol)
          "syntax error: file does not parse";
      ]
  | exception e ->
      [
        Finding.make ~rule:"parse" ~severity:Finding.Error ~path ~line:1
          ~col:0
          (Printf.sprintf "cannot parse: %s" (Printexc.to_string e));
      ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path = lint_source ~path ~source:(read_file path)

(* ---- source discovery ----------------------------------------------- *)

let skip_dirs = [ "_build"; ".git"; "_opam"; "node_modules" ]

let is_ml path =
  String.length path > 3 && String.sub path (String.length path - 3) 3 = ".ml"

let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if List.mem entry skip_dirs then acc
           else collect acc (Filename.concat path entry))
         acc
  else if is_ml path then path :: acc
  else acc

let discover ~roots =
  List.fold_left
    (fun acc root ->
      if Sys.file_exists root then collect acc root
      else failwith (Printf.sprintf "lint root %s does not exist" root))
    [] roots
  |> List.sort_uniq String.compare

(* ---- baseline ------------------------------------------------------- *)

let load_baseline path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line ->
              let line = String.trim line in
              if line = "" || String.length line > 0 && line.[0] = '#' then
                go acc
              else go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])

let baseline_header =
  "# dbp lint baseline — accepted findings, one fingerprint per line:\n\
   # rule|path|m<message-hash>|<occurrence>\n\
   # (position-independent: edits above a finding do not invalidate it;\n\
   #  the old rule|path|line|col format is still read, with a\n\
   #  deprecation note)\n\
   # Regenerate with: dbp check --lint --update-baseline\n"

(* ---- fingerprints ---------------------------------------------------- *)

(* Occurrence-indexed fingerprints: [rule|path|m<hash>|k] where [k]
   numbers findings sharing the same rule, path and message, in
   position order.  Position-independent (an edit above a finding does
   not shift its identity), yet unique when the same message fires
   several times in one file. *)
let fingerprints findings =
  let seen = Hashtbl.create 16 in
  List.map
    (fun f ->
      let base = Finding.fingerprint f in
      let k = match Hashtbl.find_opt seen base with Some k -> k | None -> 0 in
      Hashtbl.replace seen base (k + 1);
      (f, Printf.sprintf "%s|%d" base k))
    (List.sort Finding.compare findings)

let save_baseline ~path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc baseline_header;
      List.iter
        (fun (_, fp) -> output_string oc (fp ^ "\n"))
        (fingerprints findings))

(* ---- running -------------------------------------------------------- *)

let report_of ~baseline ~files_scanned all =
  let with_fps = fingerprints all in
  let matched = Hashtbl.create 16 in
  let legacy_matched = ref 0 in
  let findings, baselined =
    List.fold_left
      (fun (fresh, n) (f, fp) ->
        if List.mem fp baseline then begin
          Hashtbl.replace matched fp ();
          (fresh, n + 1)
        end
        else
          (* Old positional entries still suppress, with a
             deprecation note in the report. *)
          let legacy = Finding.legacy_fingerprint f in
          if List.mem legacy baseline then begin
            Hashtbl.replace matched legacy ();
            incr legacy_matched;
            (fresh, n + 1)
          end
          else (f :: fresh, n))
      ([], 0) with_fps
  in
  let stale_baseline =
    List.filter (fun fp -> not (Hashtbl.mem matched fp)) baseline
  in
  {
    findings = List.rev findings;
    baselined;
    stale_baseline;
    legacy_baseline = !legacy_matched;
    files_scanned;
  }

let collect ~roots () =
  let files = discover ~roots in
  (List.concat_map lint_file files, List.length files)

let run ?(baseline = []) ~roots () =
  let all, files_scanned = collect ~roots () in
  report_of ~baseline ~files_scanned all

let run_sources ?(baseline = []) sources =
  report_of ~baseline ~files_scanned:(List.length sources)
    (List.concat_map (fun (path, source) -> lint_source ~path ~source) sources)

let errors report =
  List.filter (fun f -> f.Finding.severity = Finding.Error) report.findings

(* [--strict]: any new finding fails.  Default: only errors fail. *)
let exit_code ?(strict = false) report =
  if strict then if report.findings = [] then 0 else 1
  else if errors report = [] then 0
  else 1

(* ---- rendering ------------------------------------------------------ *)

let render_human report =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f -> Buffer.add_string buf (Finding.to_human f ^ "\n"))
    report.findings;
  List.iter
    (fun fp ->
      Buffer.add_string buf
        (Printf.sprintf "stale baseline entry (no longer fires): %s\n" fp))
    report.stale_baseline;
  if report.legacy_baseline > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "deprecated: %d baseline entr(y/ies) use the old rule|path|line|col \
          format; regenerate with --update-baseline\n"
         report.legacy_baseline);
  Buffer.add_string buf
    (Printf.sprintf
       "lint: %d file(s) scanned, %d finding(s) (%d error(s)), %d baselined\n"
       report.files_scanned
       (List.length report.findings)
       (List.length (errors report))
       report.baselined);
  Buffer.contents buf

let render_json report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"version\": 1,\n  \"findings\": [\n";
  List.iteri
    (fun i f ->
      Buffer.add_string buf ("    " ^ Finding.to_json f);
      if i < List.length report.findings - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    report.findings;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"summary\": {\"files_scanned\": %d, \"findings\": %d, \"errors\": \
        %d, \"baselined\": %d, \"stale_baseline\": %d}\n"
       report.files_scanned
       (List.length report.findings)
       (List.length (errors report))
       report.baselined
       (List.length report.stale_baseline));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
