(** The seeded lint rules (R1..R7) over the compiler-libs parsetree.

    The pass is syntactic — no type inference — so each rule is a
    conservative heuristic: R1 bans float literals/operators/[Float.*]
    in the exact-arithmetic libraries; R2 bans [=]/[<>] against float
    literals anywhere; R3 flags polymorphic [=]/[<>]/[compare]/
    [Hashtbl.hash] where a [Rat.t] could flow; R4 flags
    [try ... with _]; R5 confines [Domain]/[Atomic]/[Mutex] to the
    approved parallel runner; R6 bans [List.mem]/[find]/[assoc] and
    [Rat.sum]-over-a-list in the hot-path engine modules; R7 confines
    [Fixed] (scaled-integer fixed point) to [lib/num] and the
    two-track engine [lib/core/simulator.ml].  See DESIGN.md
    "Correctness tooling" for the rule-by-rule rationale and blind
    spots. *)

type rule = {
  id : string;
  severity : Finding.severity;
  title : string;
  what : string;
}

val all_rules : rule list
val find_rule : string -> rule

val check : path:string -> Parsetree.structure -> Finding.t list
(** Runs every applicable rule over one parsed implementation.  [path]
    drives the per-rule scoping (it is matched on [lib/core/] etc.
    segments), so fixture trees reproduce real scoping by mirroring
    the repo layout. *)

val r1_applies : string -> bool
val r5_allowlisted : string -> bool
val r6_applies : string -> bool
val r7_allowlisted : string -> bool
(** Exposed for the test suite's scoping checks, and shared with the
    typed tier's scoping ({!Typed_rules}). *)

val has_infix : infix:string -> string -> bool
(** Path-segment matching used by every scoping predicate. *)
