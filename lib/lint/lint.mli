(** Lint driver: source discovery, parsing, baseline bookkeeping and
    report rendering for the `dbp check --lint` subcommand and the
    dune [@lint] alias. *)

type report = {
  findings : Finding.t list;  (** New findings, not in the baseline. *)
  baselined : int;  (** Findings suppressed by the baseline. *)
  stale_baseline : string list;
      (** Baseline fingerprints that no longer fire (fixed or moved —
          time to regenerate the baseline). *)
  legacy_baseline : int;
      (** Matched entries still in the deprecated positional
          [rule|path|line|col] format — regenerate the baseline. *)
  files_scanned : int;
}

val lint_source : path:string -> source:string -> Finding.t list
(** Lints one implementation given as a string; [path] drives rule
    scoping.  A file that does not parse yields a single ["parse"]
    finding rather than an exception. *)

val lint_file : string -> Finding.t list

val discover : roots:string list -> string list
(** All [.ml] files under the roots, sorted, skipping [_build] and
    friends.  @raise Failure if a root does not exist. *)

val load_baseline : string -> string list
(** Fingerprints from a baseline file; [[]] if the file is absent.
    Lines starting with [#] and blank lines are ignored. *)

val save_baseline : path:string -> Finding.t list -> unit
(** Writes occurrence-indexed [rule|path|m<hash>|k] fingerprints. *)

val fingerprints : Finding.t list -> (Finding.t * string) list
(** Occurrence-indexed fingerprints in report order: [rule|path|m<hash>|k]
    where [k] numbers findings sharing rule, path and message. *)

val report_of :
  baseline:string list -> files_scanned:int -> Finding.t list -> report
(** Baseline bookkeeping over an already-collected finding set — shared
    by the syntactic tier, the typed tier ({!Typed_lint}) and combined
    runs.  Accepts both fingerprint formats; legacy positional matches
    are counted in [legacy_baseline]. *)

val collect : roots:string list -> unit -> Finding.t list * int
(** Raw findings plus the number of files scanned, without baseline
    bookkeeping — combine with {!report_of} to merge tiers. *)

val run : ?baseline:string list -> roots:string list -> unit -> report
val run_sources : ?baseline:string list -> (string * string) list -> report
(** [run_sources [(path, source); ...]] — the in-memory variant the
    fixture tests use. *)

val errors : report -> Finding.t list

val exit_code : ?strict:bool -> report -> int
(** [--strict]: any new finding fails (1).  Default: only
    error-severity findings fail. *)

val render_human : report -> string
val render_json : report -> string
