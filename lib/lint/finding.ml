type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  path : string;
  line : int;
  col : int;
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let make ~rule ~severity ~path ~line ~col message =
  { rule; severity; path; line; col; message }

let compare a b =
  let c = String.compare a.path b.path in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

(* Stable identity of a finding across runs.  Positions are excluded:
   the old [rule|path|line|col] scheme meant any unrelated edit above a
   baselined finding shifted its line and invalidated the whole file's
   baseline.  The identity is now the message content itself —
   [rule|path|m<hash>] — made unique by an occurrence index appended at
   the report level ([Lint.fingerprints]) when the same message fires
   more than once in one file. *)
let message_hash t =
  (* First 8 hex chars of the MD5 — stable across runs and OCaml
     versions, unlike [Hashtbl.hash]. *)
  String.sub (Digest.to_hex (Digest.string t.message)) 0 8

let fingerprint t = Printf.sprintf "%s|%s|m%s" t.rule t.path (message_hash t)

(* The pre-PR-8 positional format, still accepted when *reading* a
   baseline so existing files keep working (with a deprecation note);
   never written. *)
let legacy_fingerprint t = Printf.sprintf "%s|%s|%d|%d" t.rule t.path t.line t.col

let is_legacy_fingerprint s =
  match String.split_on_char '|' s with
  | [ _; _; line; col ] ->
      let numeric x = x <> "" && String.for_all (fun c -> c >= '0' && c <= '9') x in
      numeric line && numeric col
  | _ -> false

let to_human t =
  Printf.sprintf "%s:%d:%d: [%s/%s] %s" t.path t.line t.col t.rule
    (severity_to_string t.severity)
    t.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  Printf.sprintf
    "{\"rule\": \"%s\", \"severity\": \"%s\", \"path\": \"%s\", \"line\": \
     %d, \"col\": %d, \"message\": \"%s\"}"
    (json_escape t.rule)
    (severity_to_string t.severity)
    (json_escape t.path) t.line t.col (json_escape t.message)
