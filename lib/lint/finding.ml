type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  path : string;
  line : int;
  col : int;
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let make ~rule ~severity ~path ~line ~col message =
  { rule; severity; path; line; col; message }

let compare a b =
  let c = String.compare a.path b.path in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

(* Stable identity of a finding across runs: the message is excluded so
   rewording a rule does not invalidate a checked-in baseline. *)
let fingerprint t = Printf.sprintf "%s|%s|%d|%d" t.rule t.path t.line t.col

let to_human t =
  Printf.sprintf "%s:%d:%d: [%s/%s] %s" t.path t.line t.col t.rule
    (severity_to_string t.severity)
    t.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  Printf.sprintf
    "{\"rule\": \"%s\", \"severity\": \"%s\", \"path\": \"%s\", \"line\": \
     %d, \"col\": %d, \"message\": \"%s\"}"
    (json_escape t.rule)
    (severity_to_string t.severity)
    (json_escape t.path) t.line t.col (json_escape t.message)
