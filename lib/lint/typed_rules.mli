(** The typed lint tier (T1..T4), run over compiler typedtrees.

    Where the parsetree tier ({!Rules}, R1..R7) matches tokens, this
    tier reads inferred types out of [.cmt] artifacts: T1 flags a
    polymorphic comparison/hash instantiated at any type that
    {e contains} [Rat.t] (structural walk: tuples, records, options,
    lists, via a cross-file taint fixpoint over type declarations);
    T2 flags [Fixed.t] in any inferred or declared type outside
    [lib/num] and [lib/core/simulator.ml], including through aliases
    ([type t = Fixed.t] resolves to the real path in a typedtree);
    T3 flags mutable state captured by closures handed to
    [Domain.spawn] outside the approved parallel runner; T4 counts
    boxed allocations and [Rat.t] temporaries inside the engine's
    commit/view functions against fixed thresholds.  See DESIGN.md
    "Correctness tooling" for each rule's remaining blind spots. *)

val all_typed_rules : Rules.rule list
val find_typed_rule : string -> Rules.rule

val t4_max_boxed : int
val t4_max_rat_temps : int
(** The T4 gate: a commit/view function may allocate at most this many
    boxed values / Rat.t-returning applications (statically counted)
    before it is flagged. *)

val t4_hot_name : string -> bool
(** Is this binding name part of the engine's commit/view core? *)

val norm_unit : string -> string
(** Strips dune's [Lib__Module] mangling: ["Dbp_num__Rat"] → ["Rat"]. *)

val path_key : unit_name:string -> Path.t -> string
(** Normalised constructor/value key, e.g. ["Rat.t"], ["Stdlib.="],
    ["Domain.spawn"].  [unit_name] qualifies local ([Pident])
    declarations. *)

(** The containment taint closed over every scanned declaration:
    constructor keys whose definitions (transitively) contain [Rat.t],
    [Fixed.t], or mutable state. *)
type taint = {
  rat : (string, unit) Hashtbl.t;
  fixed : (string, unit) Hashtbl.t;
  mut : (string, unit) Hashtbl.t;
}

type decl
(** A type-declaration digest used by the taint fixpoint. *)

val collect_decls :
  unit_name:string -> path:string -> Typedtree.structure -> decl list

val close_taint : decl list -> taint
(** Fixpoint over all scanned files' declarations, so containment
    propagates through aliases/records/variants in any declaration
    order.  Fixed-taint only propagates through declarations outside
    the R7 allowlist. *)

val check :
  path:string ->
  unit_name:string ->
  taint:taint ->
  Typedtree.structure ->
  Finding.t list
(** Runs T1..T4 over one typed implementation.  [path] drives scoping
    exactly as in the syntactic tier (so fixtures mirror the repo
    layout); [unit_name] is the compilation unit (for qualifying local
    type paths). *)
