(* Multi-region dispatch (the paper's Section 5 future work) combined
   with heterogeneous fleets: a provider serving latency-constrained
   players from four datacenters, choosing both where and onto which
   server type to place each session.

   Run with:  dune exec examples/multi_region.exe *)

open Dbp_num
open Dbp_core
open Dbp_constrained
open Dbp_cloudgaming

let () =
  (* A 200-session evening trace. *)
  let spec =
    Dbp_workload.Spec.with_target_mu
      { Dbp_workload.Spec.default with Dbp_workload.Spec.count = 200 }
      ~mu:8.0
  in
  let instance = Dbp_workload.Generator.generate ~seed:99L spec in

  Format.printf "=== Latency-constrained dispatch ===@.";
  Format.printf "%-16s %-16s %-12s %-12s %-12s@." "latency budget"
    "mean |allowed|" "cFF" "cFF balanced" "lower bound";
  List.iter
    (fun budget ->
      let ci = Geo.constrain ~seed:99L ~latency_budget:budget instance in
      let ff = Constrained_policy.run ~policy:Constrained_policy.first_fit ci in
      let balanced =
        Constrained_policy.run
          ~policy:
            (Constrained_policy.first_fit
               ~rule:Constrained_policy.Fewest_open_bins)
          ci
      in
      Format.printf "%-16.2f %-16.2f %-12.1f %-12.1f %-12.1f@." budget
        (Geo.mean_allowed ci)
        (Rat.to_float ff.Packing.total_cost)
        (Rat.to_float balanced.Packing.total_cost)
        (Rat.to_float (Constrained_instance.lower_bound ci)))
    [ 0.3; 0.6; 0.9; 1.2; 1.5 ];
  Format.printf
    "@.Tighter latency budgets fragment the load across regions and raise@.";
  Format.printf "the bill; the lower bound shows how much is unavoidable.@.@.";

  (* Fleet mix on a gaming trace. *)
  Format.printf "=== Server-type mix (per-type capacities and prices) ===@.";
  let requests =
    Gaming_workload.generate ~seed:77L
      { Gaming_workload.default_profile with
        Gaming_workload.duration_hours = 8.0;
        base_rate = 30.0 }
  in
  Format.printf "%d requests over 8 h:@." (List.length requests);
  List.iter
    (fun strategy ->
      let report = Fleet.dispatch ~types:Fleet.default_types ~strategy requests in
      Format.printf "  %a@." Fleet.pp_report report)
    [
      Fleet.Single "g.small";
      Fleet.Single "g.xlarge";
      Fleet.Smallest_fitting;
      Fleet.Largest;
    ];
  Format.printf
    "@.With realistic (~10%%) bulk discounts, many small servers beat few@.";
  Format.printf
    "big ones: releasing capacity in 1-GPU slices tracks the load curve.@."
