(* The two adversarial constructions of the paper, live.

   Theorem 1 (Figure 2): an adaptive adversary forces ANY Any Fit
   algorithm to a ratio of k*mu/(k+mu-1) -> mu.

   Theorem 2 (Figure 3): Best Fit specifically can be strung along
   forever - the measured ratio grows linearly with k - while First Fit
   replaying the exact same instance stays near the optimum.

   Run with:  dune exec examples/adversary_demo.exe *)

open Dbp_num
open Dbp_core
open Dbp_adversary

let () =
  Format.printf "=== Theorem 1: the mu lower bound for Any Fit ===@.";
  let mu = Rat.of_int 10 in
  List.iter
    (fun k ->
      let r = Anyfit_lb.run ~k ~mu () in
      Format.printf
        "  k=%-3d  AF pays %-8s OPT pays %-8s ratio %-8s (eq (1): %s)@." k
        (Rat.to_string r.Anyfit_lb.algorithm_cost)
        (Rat.to_string r.Anyfit_lb.opt_upper)
        (Rat.to_string r.Anyfit_lb.ratio_lower)
        (Rat.to_string (Anyfit_lb.closed_form_ratio ~k ~mu)))
    [ 2; 4; 8; 16; 32 ];
  Format.printf "  ... the ratio approaches mu = %s as k grows.@.@."
    (Rat.to_string mu);

  Format.printf "=== Theorem 2: Best Fit is unbounded ===@.";
  let mu = Rat.two in
  List.iter
    (fun k ->
      let iterations = Bestfit_unbounded.paper_iterations ~k ~mu + 1 in
      let r = Bestfit_unbounded.run ~k ~mu ~iterations () in
      (* Replay the very same instance with First Fit: no trap. *)
      let ff =
        Simulator.run ~policy:First_fit.policy r.Bestfit_unbounded.instance
      in
      Format.printf
        "  k=%-3d (%5d items)  BF ratio >= %-6.3f  k/2 = %-4.1f  BF pays %.0f, FF pays only %.2f@."
        k r.Bestfit_unbounded.items_total
        (Rat.to_float r.Bestfit_unbounded.ratio_lower)
        (float_of_int k /. 2.0)
        (Rat.to_float r.Bestfit_unbounded.algorithm_cost)
        (Rat.to_float ff.Packing.total_cost))
    [ 2; 4; 6; 8 ];
  Format.printf
    "  ... BF's ratio grows without bound; FF shrugs the same instance off.@."
