(* The paper's motivating application end-to-end: a cloud gaming
   provider renting VMs by the hour and dispatching play requests.

   Generates a synthetic 24-hour request trace (Zipf game popularity,
   diurnal Poisson arrivals, log-normal sessions), dispatches it with
   each packing policy, and prices the resulting fleets - including the
   hourly-billing ablation.

   Run with:  dune exec examples/cloud_gaming.exe *)

open Dbp_num
open Dbp_core
open Dbp_cloudgaming

let () =
  let profile = Gaming_workload.default_profile in
  let requests = Gaming_workload.generate ~seed:2024L profile in
  let mu = Gaming_workload.mu_of requests in
  Format.printf
    "Trace: %d playing requests over %.0f h; session-length ratio mu = %a@.@."
    (List.length requests) profile.Gaming_workload.duration_hours Rat.pp_float
    mu;

  (* Which games are being requested? *)
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (r : Request.t) ->
      let title = r.game.Game.title in
      Hashtbl.replace counts title
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts title)))
    requests;
  Format.printf "Catalog mix:@.";
  Array.iter
    (fun (g : Game.t) ->
      Format.printf "  %-18s gpu=%-5s requests=%d@." g.Game.title
        (Rat.to_string g.Game.gpu_share)
        (Option.value ~default:0 (Hashtbl.find_opt counts g.Game.title)))
    profile.Gaming_workload.catalog.Game.games;

  (* Dispatch with every policy; price exactly (the paper's model) and
     per started hour (EC2 classic). *)
  let policies =
    [
      First_fit.policy;
      Best_fit.policy;
      Worst_fit.policy;
      Next_fit.policy;
      Modified_first_fit.policy_mu_oblivious;
      Modified_first_fit.policy_known_mu ~mu;
    ]
  in
  Format.printf "@.Exact billing (cost = server-hours):@.";
  List.iter
    (fun report -> Format.printf "  %a@." Dispatcher.pp_report report)
    (Dispatcher.compare_policies ~policies requests);
  Format.printf "@.Hourly billing (pay every started hour):@.";
  List.iter
    (fun report ->
      Format.printf "  %-10s $%a@." report.Dispatcher.policy_name Rat.pp_float
        report.Dispatcher.dollar_cost)
    (Dispatcher.compare_policies
       ~billing:(Billing.hourly ~rate_per_hour:Rat.one)
       ~policies requests)
