(* Empirical tour of every competitive-ratio bound in the paper: sweep
   mu on random workloads, measure each algorithm against the exact
   offline optimum, and place the measurements against the theorems.

   Run with:  dune exec examples/bounds_check.exe *)

open Dbp_num
open Dbp_core
open Dbp_workload
open Dbp_analysis

let measure policy instance = Ratio.measure (Simulator.run ~policy instance)

let () =
  Format.printf
    "mu sweep on random mixed workloads (120 items, capacity 1):@.@.";
  Format.printf
    "  %-4s | %-8s %-8s %-8s %-8s | %-10s %-10s %-10s@." "mu" "FF" "BF" "NF"
    "MFF8" "T5 bound" "MFF8 bound" "MFFmu bound";
  List.iter
    (fun mu_f ->
      let spec =
        Spec.with_target_mu { Spec.default with Spec.count = 120 } ~mu:mu_f
      in
      let instance = Generator.generate ~seed:77L spec in
      let mu = Instance.mu instance in
      let ff = measure First_fit.policy instance in
      let bf = measure Best_fit.policy instance in
      let nf = measure Next_fit.policy instance in
      let mff = measure Modified_first_fit.policy_mu_oblivious instance in
      Format.printf "  %-4.0f | %-8.3f %-8.3f %-8.3f %-8.3f | %-10.2f %-10.2f %-10.2f@."
        mu_f
        (Rat.to_float ff.Ratio.ratio_upper)
        (Rat.to_float bf.Ratio.ratio_upper)
        (Rat.to_float nf.Ratio.ratio_upper)
        (Rat.to_float mff.Ratio.ratio_upper)
        (Rat.to_float (Theorem_bounds.ff_general ~mu))
        (Rat.to_float (Theorem_bounds.mff_oblivious ~mu))
        (Rat.to_float (Theorem_bounds.mff_known_mu ~mu)))
    [ 1.0; 2.0; 4.0; 8.0; 16.0 ];
  Format.printf
    "@.Random loads sit far below the worst-case bounds; the adversarial@.";
  Format.printf
    "instances (see adversary_demo.exe) are what saturate them.@.@.";

  (* The Section 4.3 decomposition, on a real First Fit run. *)
  let instance =
    Generator.generate ~seed:99L
      (Spec.small_items
         (Spec.with_target_mu
            { Spec.default with
              Spec.count = 150;
              arrivals = Spec.Poisson { rate = 8.0 } }
            ~mu:6.0)
         ~k:4)
  in
  let packing = Simulator.run ~policy:First_fit.policy instance in
  let report = Ff_decomposition.analyse ~k:(Rat.of_int 4) packing in
  Format.printf "Section 4.3 decomposition on a small-items FF run:@.";
  Format.printf "  %a@." Ff_decomposition.pp_report report;
  Format.printf "  eq (6) cost split: %s (left) + %s (span) = %s (total)@."
    (Rat.to_string report.Ff_decomposition.cost_left)
    (Rat.to_string report.Ff_decomposition.span)
    (Rat.to_string packing.Packing.total_cost);
  Format.printf "  inequality (10): %b, (11): %b, (15): %b@."
    (Ff_decomposition.upper_bound_inequality_10 report)
    (Ff_decomposition.demand_inequality_11 report ~k:(Rat.of_int 4))
    (Ff_decomposition.demand_inequality_15 report)
