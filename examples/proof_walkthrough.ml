(* A guided tour of the Section 4.3 proof machinery on live packings:
   renders the bin timeline (the textual Figures 2-4), then runs the
   usage-period decomposition and reports every proof object it built.

   Run with:  dune exec examples/proof_walkthrough.exe *)

open Dbp_num
open Dbp_core
open Dbp_analysis

let tour title instance ~k =
  Format.printf "=== %s ===@." title;
  let packing = Simulator.run ~policy:First_fit.policy instance in
  Timeline_render.print ~width:56 packing;
  let report = Ff_decomposition.analyse ?k packing in
  Format.printf "@.%a@." Ff_decomposition.pp_report report;
  (* Show a few concrete proof objects. *)
  List.iteri
    (fun i (sp : Ff_decomposition.sub_period) ->
      if i < 4 then
        Format.printf
          "  sub-period I_{%d,%d} = %a, reference point %s, reference bin %s@."
          sp.Ff_decomposition.bin sp.Ff_decomposition.index Interval.pp
          sp.Ff_decomposition.period
          (match sp.Ff_decomposition.reference_point with
          | Some t -> Rat.to_string t
          | None -> "-")
          (match sp.Ff_decomposition.reference_bin with
          | Some b -> string_of_int b
          | None -> "-"))
    report.Ff_decomposition.sub_periods;
  (match report.Ff_decomposition.violations with
  | [] -> Format.printf "  every feature, lemma and inequality checked: OK@.@."
  | vs -> List.iter (fun v -> Format.printf "  VIOLATION: %s@." v) vs)

let () =
  (* 1. The Figure 2 adversarial instance: watch FF hold k bins open. *)
  tour "Figure 2 fragmentation (k=5, mu=4): FF keeps 5 near-empty bins"
    (Dbp_workload.Patterns.fragmentation ~k:5 ~mu:(Rat.of_int 4))
    ~k:None;

  (* 2. A dense small-items workload: non-trivial sub-periods, joint
     pairing, all Theorem 4 inequalities. *)
  let dense =
    Dbp_workload.Generator.generate ~seed:2L
      (Dbp_workload.Spec.small_items
         (Dbp_workload.Spec.with_target_mu
            { Dbp_workload.Spec.default with
              Dbp_workload.Spec.count = 120;
              arrivals = Dbp_workload.Spec.Poisson { rate = 8.0 } }
            ~mu:6.0)
         ~k:4)
  in
  tour "Dense small items (sizes < W/4): the Theorem 4 decomposition" dense
    ~k:(Some (Rat.of_int 4))
