(* Quickstart: build an instance by hand, pack it with First Fit,
   inspect the result and compare against the offline optimum.

   Run with:  dune exec examples/quickstart.exe *)

open Dbp_num
open Dbp_core

let () =
  (* Four playing requests on servers of GPU capacity 1.  Each item is
     (size, arrival, departure); departure times are hidden from the
     online algorithm until they happen. *)
  let item size arrival departure =
    Item.make ~id:0 ~size:(Rat.of_string size)
      ~arrival:(Rat.of_string arrival)
      ~departure:(Rat.of_string departure)
  in
  let instance =
    Instance.create ~capacity:Rat.one
      [
        item "1/2" "0" "4";   (* long-lived half-server session *)
        item "2/3" "1" "3";   (* conflicts with the first item *)
        item "1/3" "2" "5";   (* slots in beside the first *)
        item "1/2" "6" "8";   (* after an idle gap *)
      ]
  in
  Format.printf "%a@.@." Instance.pp instance;

  (* Pack it online with First Fit. *)
  let packing = Simulator.run ~policy:First_fit.policy instance in
  Format.printf "%a@.@." Packing.pp_summary packing;
  Array.iter
    (fun (b : Packing.bin_record) ->
      Format.printf "  bin %d: open [%a, %a], items %s@." b.bin_id Rat.pp
        b.opened Rat.pp b.closed
        (String.concat ", " (List.map string_of_int b.item_ids)))
    packing.Packing.bins;

  (* The exact offline optimum (repacking allowed at every instant). *)
  let opt = Dbp_opt.Opt_total.compute instance in
  Format.printf "@.%a@." Dbp_opt.Opt_total.pp opt;
  let ratio = Dbp_analysis.Ratio.measure packing in
  Format.printf "First Fit competitive ratio on this instance: %a@."
    Dbp_analysis.Ratio.pp ratio;

  (* Theorem 5 promises FF never exceeds 2 mu + 13. *)
  let bound = Dbp_analysis.Theorem_bounds.ff_general ~mu:(Instance.mu instance) in
  Format.printf "Theorem 5 bound 2mu+13 = %a: %s@." Rat.pp_float bound
    (Dbp_analysis.Ratio.verdict_to_string
       (Dbp_analysis.Ratio.check_bound ratio ~bound))
